#include "grid/topology.h"

#include <algorithm>

#include "util/strings.h"

namespace flexvis::grid {

std::string_view NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kPlant: return "plant";
    case NodeKind::kTransmission: return "transmission";
    case NodeKind::kDistribution: return "distribution";
    case NodeKind::kFeeder: return "feeder";
  }
  return "unknown";
}

GridTopology GridTopology::MakeRadial(int transmission_count, int plants,
                                      int distribution_per_transmission,
                                      int feeders_per_distribution) {
  GridTopology topo;
  core::GridNodeId next_id = 1;
  std::vector<core::GridNodeId> transmission_ids;

  // Layer 0: transmission substations, chained by 150 kV lines.
  for (int t = 0; t < transmission_count; ++t) {
    GridNode node;
    node.id = next_id++;
    node.name = StrFormat("TS-%02d", t + 1);
    node.kind = NodeKind::kTransmission;
    node.parent = core::kInvalidGridNodeId;
    node.layer = 1;
    node.slot = t;
    transmission_ids.push_back(node.id);
    topo.nodes_.push_back(std::move(node));
    if (t > 0) {
      topo.edges_.push_back(GridEdge{transmission_ids[t - 1], transmission_ids[t], 150.0});
    }
  }

  // Plants attach round-robin to transmission substations (drawn above them).
  for (int p = 0; p < plants; ++p) {
    GridNode node;
    node.id = next_id++;
    node.name = StrFormat("Plant-%02d", p + 1);
    node.kind = NodeKind::kPlant;
    node.parent = transmission_ids.empty()
                      ? core::kInvalidGridNodeId
                      : transmission_ids[p % transmission_ids.size()];
    node.layer = 0;
    node.slot = p;
    if (node.parent != core::kInvalidGridNodeId) {
      topo.edges_.push_back(GridEdge{node.id, node.parent, 110.0});
    }
    topo.nodes_.push_back(std::move(node));
  }

  // Layer 2: distribution substations under each transmission node.
  int dist_slot = 0;
  std::vector<core::GridNodeId> distribution_ids;
  for (core::GridNodeId ts : transmission_ids) {
    for (int d = 0; d < distribution_per_transmission; ++d) {
      GridNode node;
      node.id = next_id++;
      node.name = StrFormat("DS-%02d", dist_slot + 1);
      node.kind = NodeKind::kDistribution;
      node.parent = ts;
      node.layer = 2;
      node.slot = dist_slot++;
      distribution_ids.push_back(node.id);
      topo.edges_.push_back(GridEdge{ts, node.id, 60.0});
      topo.nodes_.push_back(std::move(node));
    }
  }

  // Layer 3: feeders under each distribution substation.
  int feeder_slot = 0;
  for (core::GridNodeId ds : distribution_ids) {
    for (int f = 0; f < feeders_per_distribution; ++f) {
      GridNode node;
      node.id = next_id++;
      node.name = StrFormat("F-%03d", feeder_slot + 1);
      node.kind = NodeKind::kFeeder;
      node.parent = ds;
      node.layer = 3;
      node.slot = feeder_slot++;
      topo.edges_.push_back(GridEdge{ds, node.id, 10.0});
      topo.nodes_.push_back(std::move(node));
    }
  }
  return topo;
}

Result<GridNode> GridTopology::Find(core::GridNodeId id) const {
  for (const GridNode& n : nodes_) {
    if (n.id == id) return n;
  }
  return NotFoundError(StrFormat("no grid node %lld", static_cast<long long>(id)));
}

std::vector<GridNode> GridTopology::Feeders() const {
  std::vector<GridNode> out;
  for (const GridNode& n : nodes_) {
    if (n.kind == NodeKind::kFeeder) out.push_back(n);
  }
  return out;
}

int GridTopology::MaxSlotsPerLayer() const {
  int max_slots = 0;
  for (int layer = 0; layer <= 3; ++layer) {
    int count = 0;
    for (const GridNode& n : nodes_) {
      if (n.layer == layer) ++count;
    }
    max_slots = std::max(max_slots, count);
  }
  return max_slots;
}

Status GridTopology::RegisterWithDatabase(dw::Database& db) const {
  for (const GridNode& n : nodes_) {
    FLEXVIS_RETURN_IF_ERROR(db.RegisterGridNode(
        dw::GridNodeInfo{n.id, n.name, std::string(NodeKindName(n.kind)), n.parent}));
  }
  return OkStatus();
}

}  // namespace flexvis::grid
