#ifndef FLEXVIS_GRID_TOPOLOGY_H_
#define FLEXVIS_GRID_TOPOLOGY_H_

#include <string>
#include <vector>

#include "core/types.h"
#include "dw/database.h"
#include "util/status.h"

namespace flexvis::grid {

/// Role of a node in the electricity network.
enum class NodeKind {
  kPlant = 0,         // generation connected at transmission level
  kTransmission,      // 110 kV+ substation
  kDistribution,      // MV substation
  kFeeder,            // LV feeder serving prosumers
};

std::string_view NodeKindName(NodeKind kind);

/// A grid node. `layer` and `slot` are deterministic layout coordinates
/// assigned by the builder (layer = electrical depth, slot = position within
/// the layer), which the schematic view (Fig. 4) maps to canvas x/y.
struct GridNode {
  core::GridNodeId id = core::kInvalidGridNodeId;
  std::string name;
  NodeKind kind = NodeKind::kFeeder;
  core::GridNodeId parent = core::kInvalidGridNodeId;
  int layer = 0;
  int slot = 0;
};

/// An electrical connection (the schematic view draws one line per edge;
/// `voltage_kv` selects the line weight, e.g. the 110 kV transmission lines
/// the paper's topological filter mentions).
struct GridEdge {
  core::GridNodeId from = core::kInvalidGridNodeId;
  core::GridNodeId to = core::kInvalidGridNodeId;
  double voltage_kv = 10.0;
};

/// The electricity-grid topology: a tree of substations with generation
/// attached at the transmission layer, standing in for the real Danish grid
/// model. Deterministic given its shape parameters.
class GridTopology {
 public:
  /// Builds a three-layer radial topology: `transmission_count` 110 kV
  /// substations in a chain, `plants` generation plants attached round-robin,
  /// `distribution_per_transmission` MV substations per transmission node,
  /// and `feeders_per_distribution` feeders per MV substation.
  static GridTopology MakeRadial(int transmission_count, int plants,
                                 int distribution_per_transmission,
                                 int feeders_per_distribution);

  const std::vector<GridNode>& nodes() const { return nodes_; }
  const std::vector<GridEdge>& edges() const { return edges_; }

  Result<GridNode> Find(core::GridNodeId id) const;

  /// All feeder nodes (prosumer attachment points).
  std::vector<GridNode> Feeders() const;

  /// Number of slots in the widest layer (layout aid).
  int MaxSlotsPerLayer() const;

  /// Registers all nodes as DW dimension rows.
  Status RegisterWithDatabase(dw::Database& db) const;

 private:
  std::vector<GridNode> nodes_;
  std::vector<GridEdge> edges_;
};

}  // namespace flexvis::grid

#endif  // FLEXVIS_GRID_TOPOLOGY_H_
