#ifndef FLEXVIS_VIZ_BASIC_VIEW_H_
#define FLEXVIS_VIZ_BASIC_VIEW_H_

#include <memory>
#include <vector>

#include "render/display_list.h"
#include "viz/lane_layout.h"
#include "viz/view_common.h"

namespace flexvis::viz {

/// Options of the basic view (Fig. 8).
struct BasicViewOptions {
  Frame frame;
  /// Explicit abscissa window; empty = the offers' extent.
  timeutil::TimeInterval window;
  /// Horizontal breathing room between boxes sharing a lane.
  int64_t lane_gap_minutes = 0;
  /// Vertical gap between lanes, pixels.
  double lane_padding = 2.0;
  /// Draw the dashed selection rectangle (canvas coordinates); empty = none.
  render::Rect selection;
  bool draw_legend = true;
};

/// The rendered basic view: the retained display list (tagged with offer ids
/// for hit testing), the layout, and the scales used, so interaction code
/// can translate pixels back to time.
struct BasicViewResult {
  std::unique_ptr<render::DisplayList> scene;
  LaneLayout layout;
  render::LinearScale time_scale;
  render::Rect plot;
  timeutil::TimeInterval window;
};

/// The basic view "is used to show a large numbers of flex-offers by
/// visualizing only the most essential properties of a flex-offer: 1)
/// duration of energy profile (light blue or red rectangles), 2) time
/// flexibility interval (grey rectangles); 3) scheduled starting time of a
/// respective appliance (red solid lines)" (Section 4). One stacked lane per
/// concurrent group of offers.
BasicViewResult RenderBasicView(const std::vector<core::FlexOffer>& offers,
                                const BasicViewOptions& options);

}  // namespace flexvis::viz

#endif  // FLEXVIS_VIZ_BASIC_VIEW_H_
