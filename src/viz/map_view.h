#ifndef FLEXVIS_VIZ_MAP_VIEW_H_
#define FLEXVIS_VIZ_MAP_VIEW_H_

#include <memory>
#include <vector>

#include "dw/lod.h"
#include "geo/atlas.h"
#include "render/display_list.h"
#include "viz/view_common.h"

namespace flexvis::viz {

/// Options of the geographic map view (Fig. 3: region outlines, each with a
/// small histogram of its flex-offers).
struct MapViewOptions {
  Frame frame;
  /// Time window the per-region histograms bucket over; empty = the offers'
  /// extent.
  timeutil::TimeInterval window;
  /// Histogram buckets per region.
  int histogram_buckets = 8;
  /// Shade regions by offer count (choropleth) in addition to the
  /// histograms.
  bool choropleth = true;
  /// Atlas level drawn with histograms ("city" = the leaves, as in Fig. 3;
  /// "region" rolls the leaf counts up to West/East Denmark — the drill-up
  /// the Spatial-Geographical requirement asks for: "select data for (or
  /// group on) a spatial object, e.g., country, city, or district").
  std::string level = "city";
  /// When set, histograms and counts come from the pyramid's per-region
  /// earliest-start aggregates instead of scanning `offers` — O(regions x
  /// buckets) per frame regardless of offer count. The pyramid must be
  /// built over the same offer population (the serving layer's snapshot
  /// pairs them); `offers` may then be empty.
  const dw::LodPyramid* lod = nullptr;
};

struct MapViewResult {
  std::unique_ptr<render::DisplayList> scene;
  /// Offer count per leaf region (aligned with `region_ids`).
  std::vector<core::RegionId> region_ids;
  std::vector<int64_t> region_counts;
};

/// Renders the map view: leaf-region polygons projected into the plot
/// rectangle, shaded by flex-offer count, each with a mini histogram of
/// offer earliest-start times ("a user-friendly view to explore and filter
/// flex-offer data on a map must be provided"). Region polygons carry the
/// region id as their display tag, so clicking a region can drive a filter.
MapViewResult RenderMapView(const std::vector<core::FlexOffer>& offers,
                            const geo::Atlas& atlas, const MapViewOptions& options);

}  // namespace flexvis::viz

#endif  // FLEXVIS_VIZ_MAP_VIEW_H_
