#ifndef FLEXVIS_VIZ_PIVOT_OFFERS_VIEW_H_
#define FLEXVIS_VIZ_PIVOT_OFFERS_VIEW_H_

#include <memory>
#include <vector>

#include "core/aggregation.h"
#include "olap/dimension.h"
#include "render/display_list.h"
#include "viz/lane_layout.h"
#include "viz/view_common.h"

namespace flexvis::viz {

/// Options of the integrated pivot-offers view — the paper's announced "next
/// immediate enhancement": "the basic and the detailed views will be
/// integrated into the pivot view, where the flex-offer aggregation will be
/// applied to produce inputs for the flex-offer visualization on swimlanes".
struct PivotOffersViewOptions {
  Frame frame;
  /// Hierarchy level whose members become the swimlanes; -1 = deepest.
  int level = -1;
  /// Aggregation applied per swimlane before drawing (Fig. 5's "flex-offer
  /// aggregation will be applied to produce inputs"); zero tolerances would
  /// barely aggregate, the default collapses each hour bucket.
  core::AggregationParams aggregation;
  /// Abscissa window; empty = the offers' union extent.
  timeutil::TimeInterval window;
  /// Skip members with no offers instead of drawing empty lanes.
  bool drop_empty_lanes = true;
};

/// One rendered swimlane.
struct PivotOffersLane {
  int member_id = -1;
  std::string label;
  size_t raw_count = 0;        // offers classified into this member
  size_t shown_count = 0;      // aggregates actually drawn
  int sub_lanes = 0;           // stacking depth inside the swimlane
};

struct PivotOffersViewResult {
  std::unique_ptr<render::DisplayList> scene;
  std::vector<PivotOffersLane> lanes;
  render::LinearScale time_scale;
  render::Rect plot;
  timeutil::TimeInterval window;
};

/// Renders the integrated view: offers are classified onto the members of
/// `dimension` at the chosen level (via each member's leaf extension over
/// the offer's fact attribute), aggregated per member, and drawn as mini
/// basic views on one swimlane per member, all sharing the time abscissa.
/// Boxes carry the (aggregate) offer ids as display tags, so hover and
/// selection work exactly as in the basic view.
PivotOffersViewResult RenderPivotOffersView(const std::vector<core::FlexOffer>& offers,
                                            const olap::Dimension& dimension,
                                            const PivotOffersViewOptions& options);

/// The fact-attribute value of `offer` for `dimension` (the value its
/// members' leaf extensions are matched against). Exposed for tests.
Result<int64_t> DimensionValueOf(const core::FlexOffer& offer,
                                 const olap::Dimension& dimension);

}  // namespace flexvis::viz

#endif  // FLEXVIS_VIZ_PIVOT_OFFERS_VIEW_H_
