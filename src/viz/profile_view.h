#ifndef FLEXVIS_VIZ_PROFILE_VIEW_H_
#define FLEXVIS_VIZ_PROFILE_VIEW_H_

#include <memory>
#include <vector>

#include "render/display_list.h"
#include "viz/lane_layout.h"
#include "viz/view_common.h"

namespace flexvis::viz {

/// Options of the profile view (Fig. 9).
struct ProfileViewOptions {
  Frame frame;
  timeutil::TimeInterval window;
  double lane_padding = 8.0;
  bool draw_legend = true;
  /// Soft cap: the view "is effective for a smaller flex-offer set with less
  /// than few thousands of flex-offers"; above the cap rendering degrades to
  /// the basic-view boxes for the excess offers. 0 disables the cap.
  size_t detail_cap = 2000;
};

struct ProfileViewResult {
  std::unique_ptr<render::DisplayList> scene;
  LaneLayout layout;
  render::LinearScale time_scale;
  /// Shared (synchronized) per-slice energy scale: kWh -> pixels of lane
  /// height. The same scale applies to every lane, which is what makes
  /// cross-offer comparison possible ("thanks to the synchronized scales of
  /// all ordinate axes, compare them across multiple flex-offers").
  double kwh_per_pixel = 0.0;
  double max_energy_kwh = 0.0;
  render::Rect plot;
  timeutil::TimeInterval window;
};

/// The profile view: the detailed flex-offer representation of Req. 1. Each
/// offer occupies a lane; within its lane it shows per-slice minimum energy
/// (solid fill), the min..max energy-flexibility band (lighter fill), and
/// the scheduled per-slice energy (red step line). All lanes use one
/// synchronized energy scale with pretty bounds.
ProfileViewResult RenderProfileView(const std::vector<core::FlexOffer>& offers,
                                    const ProfileViewOptions& options);

}  // namespace flexvis::viz

#endif  // FLEXVIS_VIZ_PROFILE_VIEW_H_
