#include "viz/pivot_view.h"

#include <algorithm>

#include "util/strings.h"

namespace flexvis::viz {

using render::Point;
using render::Rect;
using render::Style;

PivotViewResult RenderPivotView(const olap::PivotResult& pivot,
                                const PivotViewOptions& options) {
  PivotViewResult result;
  Frame frame = options.frame;
  if (frame.title.empty()) {
    frame.title = StrFormat("Pivot view - measure: %s",
                            std::string(olap::MeasureName(pivot.measure)).c_str());
  }
  result.scene = std::make_unique<render::DisplayList>(frame.width, frame.height);
  render::DisplayList& canvas = *result.scene;
  Rect outer = DrawFrame(canvas, frame);

  // MDX query window at the top (Fig. 5's "MDX query window").
  double mdx_height = 0.0;
  if (!options.mdx_text.empty()) {
    mdx_height = 30.0;
    Rect mdx_box{outer.x, outer.y, outer.width, mdx_height - 6.0};
    canvas.DrawRect(mdx_box, Style::FillStroke(render::Color(248, 248, 248),
                                               render::palette::kAxis));
    render::TextStyle mono;
    mono.size = 9.0;
    canvas.DrawText(Point{mdx_box.x + 6, mdx_box.y + 15},
                    StrFormat("MDX> %s", options.mdx_text.c_str()), mono);
  }

  // Layout: header column on the left, swimlanes to the right.
  const double header_width = std::min(220.0, outer.width * 0.3);
  Rect lanes_area{outer.x + header_width, outer.y + mdx_height, outer.width - header_width,
                  outer.height - mdx_height};
  const size_t rows = pivot.rows.size();
  if (rows == 0) return result;
  const double lane_h = lanes_area.height / static_cast<double>(rows);
  const double max_cell = std::max(pivot.MaxCell(), 1e-9);

  // Hierarchy indentation per row member (when the dimension is supplied).
  auto indent_of = [&](const olap::PivotHeader& h) -> double {
    if (options.hierarchy == nullptr || h.member_id < 0) return 0.0;
    const auto& members = options.hierarchy->members();
    if (h.member_id >= static_cast<int>(members.size())) return 0.0;
    return members[static_cast<size_t>(h.member_id)].level * 14.0;
  };

  for (size_t r = 0; r < rows; ++r) {
    const double lane_y = lanes_area.y + r * lane_h;
    // Alternating lane backgrounds, as swimlanes.
    if (r % 2 == 1) {
      canvas.DrawRect(Rect{outer.x, lane_y, outer.width, lane_h},
                      Style::Fill(render::Color(246, 248, 250)));
    }
    canvas.DrawLine(Point{outer.x, lane_y}, Point{outer.right(), lane_y},
                    Style::Stroke(render::palette::kGridLine));

    // Header with hierarchy indentation.
    render::TextStyle hdr;
    hdr.size = 10.0;
    hdr.bold = indent_of(pivot.rows[r]) == 0.0;
    canvas.DrawText(Point{outer.x + 4 + indent_of(pivot.rows[r]), lane_y + lane_h / 2 + 4},
                    pivot.rows[r].label, hdr);

    // Bars: one per column member, shared value scale.
    const size_t cols = pivot.cols.size();
    if (cols == 0) continue;
    const double slot_w = lanes_area.width / static_cast<double>(cols);
    for (size_t c = 0; c < cols; ++c) {
      const double v = pivot.cells[r][c];
      const double bar_h = (lane_h - 10.0) * v / max_cell;
      Rect bar{lanes_area.x + c * slot_w + slot_w * 0.15, lane_y + lane_h - 5.0 - bar_h,
               slot_w * 0.7, bar_h};
      canvas.DrawRect(bar, Style::FillStroke(render::CategoricalColor(c),
                                             render::palette::kAxis.WithAlpha(120)));
      if (options.draw_values && v > 0.0) {
        render::TextStyle val;
        val.size = 8.0;
        val.anchor = render::TextAnchor::kMiddle;
        canvas.DrawText(Point{bar.x + bar.width / 2, bar.y - 2}, FormatDouble(v, 1), val);
      }
    }
  }

  // Column headers along the bottom.
  const size_t cols = pivot.cols.size();
  if (cols > 0) {
    const double slot_w = lanes_area.width / static_cast<double>(cols);
    for (size_t c = 0; c < cols; ++c) {
      render::TextStyle col_hdr;
      col_hdr.size = 9.0;
      col_hdr.anchor = render::TextAnchor::kMiddle;
      canvas.DrawText(Point{lanes_area.x + c * slot_w + slot_w / 2,
                            lanes_area.y + lanes_area.height + 14},
                      pivot.cols[c].label, col_hdr);
    }
  }
  // Separator between headers and lanes.
  canvas.DrawLine(Point{lanes_area.x, lanes_area.y},
                  Point{lanes_area.x, lanes_area.y + lanes_area.height},
                  Style::Stroke(render::palette::kAxis));
  return result;
}

}  // namespace flexvis::viz
