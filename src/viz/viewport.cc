#include "viz/viewport.h"

#include <algorithm>
#include <cmath>

#include "time/granularity.h"

namespace flexvis::viz {

using timeutil::kMinutesPerSlice;
using timeutil::TimeInterval;
using timeutil::TimePoint;

double Viewport::ZoomLevel() const {
  if (full_.duration_minutes() <= 0) return 1.0;
  return static_cast<double>(window_.duration_minutes()) /
         static_cast<double>(full_.duration_minutes());
}

void Viewport::Zoom(double factor, TimePoint anchor) {
  if (factor <= 0.0 || window_.empty()) return;
  // Keep the anchor's relative position within the window.
  const double span = static_cast<double>(window_.duration_minutes());
  const double rel =
      std::clamp(static_cast<double>(anchor - window_.start) / span, 0.0, 1.0);
  double new_span = span / factor;
  new_span = std::clamp(new_span, static_cast<double>(kMinutesPerSlice),
                        static_cast<double>(full_.duration_minutes()));
  int64_t start = anchor.minutes() - static_cast<int64_t>(std::llround(rel * new_span));
  window_ = TimeInterval(TimePoint::FromMinutes(start),
                         TimePoint::FromMinutes(start + static_cast<int64_t>(
                                                            std::llround(new_span))));
  Clamp();
}

void Viewport::Pan(int64_t minutes) {
  window_ = TimeInterval(window_.start + minutes, window_.end + minutes);
  Clamp();
}

void Viewport::ZoomTo(const TimeInterval& window) {
  if (window.empty()) return;
  window_ = window;
  Clamp();
}

void Viewport::Clamp() {
  int64_t span = window_.duration_minutes();
  span = std::clamp(span, kMinutesPerSlice, std::max(kMinutesPerSlice,
                                                     full_.duration_minutes()));
  TimePoint start = window_.start;
  if (start < full_.start) start = full_.start;
  if (full_.end < start + span) start = full_.end - span;
  if (start < full_.start) start = full_.start;  // full extent shorter than span
  window_ = TimeInterval(start, start + span);
}

TimePoint Viewport::TimeAt(const render::LinearScale& scale, double x) {
  return TimePoint::FromMinutes(static_cast<int64_t>(std::llround(scale.Invert(x))));
}

}  // namespace flexvis::viz
