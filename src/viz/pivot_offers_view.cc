#include "viz/pivot_offers_view.h"

#include <algorithm>
#include <unordered_map>

#include "util/strings.h"

namespace flexvis::viz {

using core::FlexOffer;
using render::Point;
using render::Rect;
using render::Style;
using timeutil::TimePoint;

Result<int64_t> DimensionValueOf(const FlexOffer& offer, const olap::Dimension& dimension) {
  const std::string& column = dimension.fact_column();
  if (column == "state") return static_cast<int64_t>(offer.state);
  if (column == "direction") return static_cast<int64_t>(offer.direction);
  if (column == "energy_type") return static_cast<int64_t>(offer.energy_type);
  if (column == "prosumer_type") return static_cast<int64_t>(offer.prosumer_type);
  if (column == "appliance_type") return static_cast<int64_t>(offer.appliance_type);
  if (column == "region_id") return offer.region;
  if (column == "grid_node_id") return offer.grid_node;
  if (column == "prosumer_id") return offer.prosumer;
  return NotFoundError(StrFormat("dimension '%s' maps to unknown fact column '%s'",
                                 dimension.name().c_str(), column.c_str()));
}

PivotOffersViewResult RenderPivotOffersView(const std::vector<FlexOffer>& offers,
                                            const olap::Dimension& dimension,
                                            const PivotOffersViewOptions& options) {
  PivotOffersViewResult result;
  Frame frame = options.frame;
  if (frame.title.empty()) {
    frame.title = StrFormat("Pivot offers view - %s, %zu flex-offers",
                            dimension.name().c_str(), offers.size());
  }
  result.scene = std::make_unique<render::DisplayList>(frame.width, frame.height);
  render::DisplayList& canvas = *result.scene;
  Rect outer = DrawFrame(canvas, frame);

  result.window = options.window.empty() ? OffersExtent(offers) : options.window;
  const double header_width = std::min(190.0, outer.width * 0.25);
  Rect lanes_area{outer.x + header_width, outer.y, outer.width - header_width, outer.height};
  if (result.window.empty()) {
    result.time_scale = render::LinearScale(0, 1, lanes_area.x, lanes_area.right());
    result.plot = lanes_area;
    return result;
  }

  // Classify offers onto members of the chosen level.
  int level = options.level >= 0 ? options.level : dimension.num_levels() - 1;
  std::vector<int> member_ids = dimension.MembersAtLevel(level);
  std::unordered_map<int64_t, int> value_to_member;
  for (int id : member_ids) {
    for (int64_t v : dimension.members()[static_cast<size_t>(id)].leaf_values) {
      value_to_member.emplace(v, id);
    }
  }
  std::unordered_map<int, std::vector<FlexOffer>> by_member;
  for (const FlexOffer& o : offers) {
    Result<int64_t> value = DimensionValueOf(o, dimension);
    if (!value.ok()) continue;
    auto it = value_to_member.find(*value);
    if (it == value_to_member.end()) continue;
    by_member[it->second].push_back(o);
  }

  // Aggregate per swimlane ("the flex-offer aggregation will be applied to
  // produce inputs for the flex-offer visualization on swimlanes").
  struct LaneContent {
    PivotOffersLane info;
    std::vector<FlexOffer> shown;
    LaneLayout layout;
  };
  std::vector<LaneContent> lanes;
  core::FlexOfferId next_id = 2'000'000'000;
  core::Aggregator aggregator(options.aggregation);
  for (int id : member_ids) {
    auto it = by_member.find(id);
    size_t raw = it == by_member.end() ? 0 : it->second.size();
    if (raw == 0 && options.drop_empty_lanes) continue;
    LaneContent lane;
    lane.info.member_id = id;
    lane.info.label = dimension.members()[static_cast<size_t>(id)].name;
    lane.info.raw_count = raw;
    if (raw > 0) {
      core::AggregationResult agg = aggregator.Aggregate(it->second, &next_id);
      lane.shown = std::move(agg.aggregates);
      for (FlexOffer& o : agg.passthrough) lane.shown.push_back(std::move(o));
      lane.layout = AssignLanes(lane.shown);
    }
    lane.info.shown_count = lane.shown.size();
    lane.info.sub_lanes = std::max(1, lane.layout.lane_count);
    lanes.push_back(std::move(lane));
  }

  // Vertical space per swimlane proportional to its stacking depth.
  int total_sub_lanes = 0;
  for (const LaneContent& lane : lanes) total_sub_lanes += lane.info.sub_lanes;
  total_sub_lanes = std::max(1, total_sub_lanes);
  const double axis_height = 30.0;
  const double usable = lanes_area.height - axis_height;
  result.time_scale = MakeTimeScale(
      result.window, Rect{lanes_area.x, lanes_area.y, lanes_area.width, usable});
  result.plot = Rect{lanes_area.x, lanes_area.y, lanes_area.width, usable};

  render::DrawBottomAxis(canvas, result.plot, result.time_scale,
                         render::MakeTimeTicks(result.window));
  render::DrawBottomAxisTitle(canvas, result.plot, "time");

  const render::LinearScale& x = result.time_scale;
  double y = lanes_area.y;
  for (size_t li = 0; li < lanes.size(); ++li) {
    LaneContent& lane = lanes[li];
    const double lane_height =
        usable * static_cast<double>(lane.info.sub_lanes) / total_sub_lanes;
    // Swimlane background and separator.
    if (li % 2 == 1) {
      canvas.DrawRect(Rect{outer.x, y, outer.width, lane_height},
                      Style::Fill(render::Color(246, 248, 250)));
    }
    canvas.DrawLine(Point{outer.x, y}, Point{outer.right(), y},
                    Style::Stroke(render::palette::kGridLine));
    render::TextStyle hdr;
    hdr.size = 10.0;
    hdr.bold = true;
    canvas.DrawText(Point{outer.x + 4, y + 14}, lane.info.label, hdr);
    render::TextStyle sub;
    sub.size = 8.0;
    sub.color = render::palette::kAxis;
    canvas.DrawText(Point{outer.x + 4, y + 26},
                    StrFormat("%zu offers -> %zu shown", lane.info.raw_count,
                              lane.info.shown_count),
                    sub);

    // Mini basic view inside the swimlane.
    const double pad = 3.0;
    const double sub_height =
        std::max(2.0, (lane_height - 2 * pad) / lane.info.sub_lanes);
    canvas.PushClip(Rect{lanes_area.x, y, lanes_area.width, lane_height});
    for (size_t i = 0; i < lane.shown.size(); ++i) {
      const FlexOffer& offer = lane.shown[i];
      const int sub_lane = lane.layout.lane_of[i];
      const double box_y = y + lane_height - pad - (sub_lane + 1) * sub_height;
      canvas.BeginTag(offer.id);
      const double fx0 = x.Apply(static_cast<double>(offer.earliest_start.minutes()));
      const double fx1 = x.Apply(static_cast<double>(offer.latest_end().minutes()));
      if (offer.time_flexibility_minutes() > 0) {
        canvas.DrawRect(Rect{fx0, box_y + sub_height * 0.3, fx1 - fx0, sub_height * 0.4},
                        Style::Fill(render::palette::kTimeFlexibility.WithAlpha(130)));
      }
      TimePoint start =
          offer.schedule.has_value() ? offer.schedule->start : offer.earliest_start;
      const double px0 = x.Apply(static_cast<double>(start.minutes()));
      const double px1 = x.Apply(
          static_cast<double>((start + offer.profile_duration_minutes()).minutes()));
      canvas.DrawRect(Rect{px0, box_y, std::max(1.0, px1 - px0), sub_height - 1.0},
                      Style::FillStroke(OfferFillColor(offer),
                                        render::palette::kAxis.WithAlpha(140)));
      canvas.EndTag();
    }
    canvas.PopClip();
    result.lanes.push_back(lane.info);
    y += lane_height;
  }
  // Header/lane separator.
  canvas.DrawLine(Point{lanes_area.x, lanes_area.y}, Point{lanes_area.x, lanes_area.y + usable},
                  Style::Stroke(render::palette::kAxis));
  return result;
}

}  // namespace flexvis::viz
