#include "viz/session.h"

#include <algorithm>
#include <unordered_set>

#include "util/strings.h"
#include "viz/interaction.h"

namespace flexvis::viz {

Viewport& ViewTab::viewport() {
  if (!viewport_.has_value()) viewport_.emplace(OffersExtent(offers_));
  return *viewport_;
}

BasicViewResult ViewTab::RenderBasic(BasicViewOptions options) {
  if (options.window.empty() && viewport_.has_value()) {
    options.window = viewport_->window();
  }
  return RenderBasicView(offers_, options);
}

ProfileViewResult ViewTab::RenderProfile(ProfileViewOptions options) {
  if (options.window.empty() && viewport_.has_value()) {
    options.window = viewport_->window();
  }
  return RenderProfileView(offers_, options);
}

size_t ViewTab::RemoveSelected() {
  if (selection_.empty()) return 0;
  size_t before = offers_.size();
  offers_ = ExtractSelection(offers_, selection_, /*keep_selected=*/false);
  selection_.clear();
  return before - offers_.size();
}

Result<size_t> Session::LoadTab(const dw::FlexOfferFilter& filter, std::string title) {
  Result<std::vector<core::FlexOffer>> offers = db_->SelectFlexOffers(filter);
  if (!offers.ok()) return offers.status();
  if (title.empty()) {
    if (filter.prosumer.has_value()) {
      Result<dw::ProsumerInfo> p = db_->FindProsumer(*filter.prosumer);
      title = p.ok() ? p->name : StrFormat("Prosumer %lld",
                                           static_cast<long long>(*filter.prosumer));
    } else {
      title = "All prosumers";
    }
    if (!filter.window.empty()) {
      title += StrFormat(" %s..%s", filter.window.start.ToString().c_str(),
                         filter.window.end.ToString().c_str());
    }
  }
  tabs_.push_back(std::make_unique<ViewTab>(std::move(title), *std::move(offers)));
  return tabs_.size() - 1;
}

Result<size_t> Session::OpenSelectionAsTab(size_t source_tab) {
  if (source_tab >= tabs_.size()) {
    return OutOfRangeError(StrFormat("no tab %zu", source_tab));
  }
  ViewTab& src = *tabs_[source_tab];
  if (src.selection().empty()) {
    return FailedPreconditionError("the source tab has no selection");
  }
  std::vector<core::FlexOffer> selected =
      ExtractSelection(src.offers(), src.selection(), /*keep_selected=*/true);
  tabs_.push_back(std::make_unique<ViewTab>(
      StrFormat("%s (selection of %zu)", src.title().c_str(), selected.size()),
      std::move(selected)));
  return tabs_.size() - 1;
}

Result<size_t> Session::AggregateTab(size_t source_tab,
                                     const core::AggregationParams& params) {
  if (source_tab >= tabs_.size()) {
    return OutOfRangeError(StrFormat("no tab %zu", source_tab));
  }
  const ViewTab& src = *tabs_[source_tab];
  core::Aggregator aggregator(params);
  core::AggregationResult agg = aggregator.Aggregate(src.offers(), &next_aggregate_id_);
  std::vector<core::FlexOffer> contents = std::move(agg.aggregates);
  for (core::FlexOffer& o : agg.passthrough) contents.push_back(std::move(o));
  tabs_.push_back(std::make_unique<ViewTab>(
      StrFormat("%s (aggregated: %zu -> %zu)", src.title().c_str(), src.offers().size(),
                contents.size()),
      std::move(contents)));
  return tabs_.size() - 1;
}

Result<size_t> Session::DisaggregateTab(size_t source_tab) {
  if (source_tab >= tabs_.size()) {
    return OutOfRangeError(StrFormat("no tab %zu", source_tab));
  }
  const ViewTab& src = *tabs_[source_tab];
  std::vector<core::FlexOffer> contents;
  for (const core::FlexOffer& offer : src.offers()) {
    if (!offer.is_aggregate() || !offer.schedule.has_value()) {
      contents.push_back(offer);
      continue;
    }
    std::vector<core::FlexOffer> members;
    members.reserve(offer.aggregated_from.size());
    bool all_found = true;
    for (core::FlexOfferId id : offer.aggregated_from) {
      Result<core::FlexOffer> member = db_->GetFlexOffer(id);
      if (!member.ok()) {
        all_found = false;
        break;
      }
      members.push_back(*std::move(member));
    }
    if (!all_found) {
      contents.push_back(offer);  // keep the aggregate if members are gone
      continue;
    }
    Result<std::vector<core::FlexOffer>> scheduled = core::Disaggregate(offer, members);
    if (!scheduled.ok()) return scheduled.status();
    for (core::FlexOffer& m : *scheduled) contents.push_back(std::move(m));
  }
  tabs_.push_back(std::make_unique<ViewTab>(
      StrFormat("%s (disaggregated)", src.title().c_str()), std::move(contents)));
  return tabs_.size() - 1;
}

Status Session::CloseTab(size_t index) {
  if (index >= tabs_.size()) {
    return OutOfRangeError(StrFormat("no tab %zu", index));
  }
  tabs_.erase(tabs_.begin() + static_cast<std::ptrdiff_t>(index));
  return OkStatus();
}

}  // namespace flexvis::viz
