#include "viz/lod_view.h"

#include <algorithm>
#include <cmath>

#include "render/axis.h"
#include "util/simd.h"
#include "util/strings.h"

namespace flexvis::viz {

using render::Point;
using render::Rect;
using render::Style;

LodStripPainter::LodStripPainter(const dw::LodPyramid* pyramid, Kind kind)
    : pyramid_(pyramid), kind_(kind) {
  // Per-level normalization, fixed here so bar heights never depend on the
  // visible range (the translation invariance the tile cache relies on).
  max_starts_.assign(static_cast<size_t>(pyramid_->num_levels()), 1);
  max_kwh_.assign(static_cast<size_t>(pyramid_->num_levels()), 1.0);
  columns_.resize(static_cast<size_t>(pyramid_->num_levels()));
  for (int l = 0; l < pyramid_->num_levels(); ++l) {
    LevelColumns& cols = columns_[static_cast<size_t>(l)];
    const std::vector<dw::LodBucket>& buckets = pyramid_->level(l).buckets;
    cols.starts.reserve(buckets.size());
    cols.empty.reserve(buckets.size());
    cols.min_kwh.reserve(buckets.size());
    cols.max_kwh.reserve(buckets.size());
    cols.mean_max_kwh.reserve(buckets.size());
    for (const dw::LodBucket& bucket : buckets) {
      max_starts_[static_cast<size_t>(l)] =
          std::max(max_starts_[static_cast<size_t>(l)], bucket.starts);
      if (!bucket.empty()) {
        max_kwh_[static_cast<size_t>(l)] =
            std::max(max_kwh_[static_cast<size_t>(l)], bucket.max_kwh);
      }
      cols.starts.push_back(bucket.starts);
      cols.empty.push_back(bucket.empty() ? 1 : 0);
      cols.min_kwh.push_back(bucket.min_kwh);
      cols.max_kwh.push_back(bucket.max_kwh);
      cols.mean_max_kwh.push_back(bucket.mean_max_kwh());
    }
  }
}

void LodStripPainter::PaintBuckets(render::Canvas& canvas, int level, int64_t first_bucket,
                                   int64_t num_buckets, int px_per_bucket,
                                   int height_px) const {
  PaintInto(canvas, level, first_bucket, num_buckets, px_per_bucket, height_px, 0.0, 0.0);
}

void LodStripPainter::PaintInto(render::Canvas& canvas, int level, int64_t first_bucket,
                                int64_t num_buckets, int px_per_bucket, int height_px,
                                double x0, double y0) const {
  if (level < 0 || level >= pyramid_->num_levels() || height_px < 2) return;
  // Bucket sweep over the per-level SoA columns cached at construction: the
  // density pass touches only the starts column, the envelope pass only the
  // three energy columns it draws.
  const LevelColumns& cols = columns_[static_cast<size_t>(level)];
  const int64_t level_buckets = static_cast<int64_t>(cols.starts.size());
  const double w = static_cast<double>(px_per_bucket);
  if (kind_ == Kind::kDensity) {
    const int64_t* FLEXVIS_RESTRICT starts = cols.starts.data();
    const int64_t max_starts = max_starts_[static_cast<size_t>(level)];
    for (int64_t i = 0; i < num_buckets; ++i) {
      const int64_t b = first_bucket + i;
      if (b < 0 || b >= level_buckets) continue;
      // Integer bar height from integer inputs: byte-stable at every offset.
      const int64_t bar = starts[b] * (height_px - 1) / max_starts;
      if (bar <= 0) continue;
      const double x = x0 + static_cast<double>(i * px_per_bucket);
      canvas.DrawRect(Rect{x, y0 + static_cast<double>(height_px - bar),
                           w, static_cast<double>(bar)},
                      Style::Fill(render::palette::kAccepted));
    }
    return;
  }
  const uint8_t* FLEXVIS_RESTRICT empty = cols.empty.data();
  const double* FLEXVIS_RESTRICT min_kwh = cols.min_kwh.data();
  const double* FLEXVIS_RESTRICT max_kwh = cols.max_kwh.data();
  const double* FLEXVIS_RESTRICT mean_max = cols.mean_max_kwh.data();
  const double scale =
      static_cast<double>(height_px - 2) / max_kwh_[static_cast<size_t>(level)];
  const auto y_of = [&](double kwh) {
    return static_cast<double>(height_px - 1 - std::llround(std::max(0.0, kwh) * scale));
  };
  for (int64_t i = 0; i < num_buckets; ++i) {
    const int64_t b = first_bucket + i;
    if (b < 0 || b >= level_buckets || empty[b]) continue;
    const double x = x0 + static_cast<double>(i * px_per_bucket);
    const double y_max = y_of(max_kwh[b]);
    const double y_min = y_of(min_kwh[b]);
    // min..max energy-flexibility band (Fig. 9's light fill, aggregated).
    canvas.DrawRect(Rect{x, y0 + y_max, w, y_min - y_max + 1.0},
                    Style::Fill(render::palette::kRawOffer));
    // Mean-of-maxima tick: the aggregate silhouette of the schedules.
    canvas.DrawRect(Rect{x, y0 + y_of(mean_max[b]), w, 1.0},
                    Style::Fill(render::palette::kDemand));
  }
}

namespace {

LodViewResult RenderLodView(const dw::LodPyramid& pyramid, const LodViewOptions& options,
                            LodStripPainter::Kind kind) {
  LodViewResult result;
  Frame frame = options.frame;
  const char* flavor = kind == LodStripPainter::Kind::kDensity ? "Basic" : "Profile";
  result.window = options.window.empty() ? pyramid.extent() : options.window;

  const Rect plot = frame.PlotRect();
  if (!pyramid.empty()) {
    result.level = options.forced_level >= 0 && options.forced_level < pyramid.num_levels()
                       ? options.forced_level
                       : pyramid.ChooseLevel(result.window, plot.width,
                                             options.min_bucket_px);
    Result<dw::LodBucketRange> range = pyramid.Range(result.level, result.window);
    if (range.ok()) result.range = *range;
  }
  if (frame.title.empty()) {
    frame.title = StrFormat("%s view (LOD %d) - %lld flex-offers", flavor, result.level,
                            static_cast<long long>(pyramid.num_offers()));
  }

  result.scene = std::make_unique<render::DisplayList>(frame.width, frame.height);
  render::DisplayList& canvas = *result.scene;
  result.plot = DrawFrame(canvas, frame);
  if (pyramid.empty() || result.range.empty()) {
    result.time_scale = render::LinearScale(0, 1, result.plot.x, result.plot.right());
    return result;
  }

  // Whole pixels per bucket column (the painter's invariance contract); the
  // strip is left-aligned in the plot and may not fill it at coarse levels.
  result.px_per_bucket = std::clamp(
      static_cast<int>(result.plot.width / static_cast<double>(result.range.size())), 1,
      64);
  const int64_t bucket_minutes =
      pyramid.level(result.level).bucket_slices * timeutil::kMinutesPerSlice;
  const timeutil::TimeInterval strip_window(
      pyramid.origin() + result.range.begin * bucket_minutes,
      pyramid.origin() + result.range.end * bucket_minutes);
  const double strip_w =
      static_cast<double>(result.range.size() * result.px_per_bucket);
  result.time_scale = render::LinearScale(
      static_cast<double>(strip_window.start.minutes()),
      static_cast<double>(strip_window.end.minutes()), result.plot.x,
      result.plot.x + strip_w);

  render::DrawBottomAxis(canvas, result.plot, result.time_scale,
                         render::MakeTimeTicks(strip_window));
  render::DrawBottomAxisTitle(canvas, result.plot, "time");

  LodStripPainter painter(&pyramid, kind);
  canvas.PushClip(result.plot);
  painter.PaintInto(canvas, result.level, result.range.begin, result.range.size(),
                    result.px_per_bucket, static_cast<int>(result.plot.height),
                    result.plot.x, result.plot.y);
  canvas.PopClip();

  if (options.draw_legend) {
    std::vector<render::LegendEntry> entries;
    if (kind == LodStripPainter::Kind::kDensity) {
      entries.push_back({"offers starting per bucket", render::palette::kAccepted, false});
    } else {
      entries.push_back({"min..max energy band", render::palette::kRawOffer, false});
      entries.push_back({"mean of maxima", render::palette::kDemand, true});
    }
    render::DrawLegend(canvas, Point{result.plot.right() - 190, result.plot.y + 6},
                       entries);
  }
  return result;
}

}  // namespace

LodViewResult RenderBasicLodView(const dw::LodPyramid& pyramid,
                                 const LodViewOptions& options) {
  return RenderLodView(pyramid, options, LodStripPainter::Kind::kDensity);
}

LodViewResult RenderProfileLodView(const dw::LodPyramid& pyramid,
                                   const LodViewOptions& options) {
  return RenderLodView(pyramid, options, LodStripPainter::Kind::kEnvelope);
}

}  // namespace flexvis::viz
