#ifndef FLEXVIS_VIZ_PIVOT_VIEW_H_
#define FLEXVIS_VIZ_PIVOT_VIEW_H_

#include <memory>
#include <string>

#include "olap/cube.h"
#include "olap/dimension.h"
#include "render/display_list.h"
#include "viz/view_common.h"

namespace flexvis::viz {

/// Options of the OLAP pivot view (Fig. 5: an MDX query window at the top,
/// the chosen dimension hierarchy as a column of nested headers on the left,
/// and one swimlane of bars per hierarchy member).
struct PivotViewOptions {
  Frame frame;
  /// The MDX text echoed in the query window (informational; the caller
  /// evaluates it separately through olap::ParseMdx).
  std::string mdx_text;
  /// Draw the hierarchy breadcrumb column using this dimension (the query's
  /// row dimension). Optional.
  const olap::Dimension* hierarchy = nullptr;
  bool draw_values = true;
};

struct PivotViewResult {
  std::unique_ptr<render::DisplayList> scene;
};

/// Renders a pivot result as swimlanes: each row member gets a horizontal
/// lane with one bar per column member, all lanes sharing one value scale
/// ("analyse the preferred elements or the measures on multiple swimlanes in
/// the view"). Rows with deeper hierarchy levels are indented in the header
/// column, giving the drill-down reading of Fig. 5.
PivotViewResult RenderPivotView(const olap::PivotResult& pivot,
                                const PivotViewOptions& options);

}  // namespace flexvis::viz

#endif  // FLEXVIS_VIZ_PIVOT_VIEW_H_
