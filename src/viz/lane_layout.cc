#include "viz/lane_layout.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>

namespace flexvis::viz {

using timeutil::TimePoint;

LaneLayout AssignLanes(const std::vector<core::FlexOffer>& offers, int64_t gap_minutes) {
  LaneLayout layout;
  layout.lane_of.assign(offers.size(), 0);
  if (offers.empty()) return layout;

  // Cache extents: extent() walks the RLE profile, and the sort comparator
  // would otherwise recompute it O(n log n) times.
  std::vector<timeutil::TimeInterval> extents;
  extents.reserve(offers.size());
  for (const core::FlexOffer& o : offers) extents.push_back(o.extent());

  std::vector<size_t> order(offers.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return extents[a].start < extents[b].start;
  });

  // Sweep in start order, reusing the lowest-index lane that has come free
  // (first-fit; optimal lane count on interval graphs, and the lowest-index
  // rule keeps the drawing visually stable). Two heaps make this
  // O(n log n): `busy` orders occupied lanes by when they free up, `free`
  // orders released lanes by index.
  using BusyLane = std::pair<int64_t, int>;  // (end minutes, lane index)
  std::priority_queue<BusyLane, std::vector<BusyLane>, std::greater<BusyLane>> busy;
  std::priority_queue<int, std::vector<int>, std::greater<int>> free_lanes;
  int lane_count = 0;
  for (size_t idx : order) {
    const timeutil::TimeInterval& extent = extents[idx];
    while (!busy.empty() && busy.top().first + gap_minutes <= extent.start.minutes()) {
      free_lanes.push(busy.top().second);
      busy.pop();
    }
    int lane;
    if (free_lanes.empty()) {
      lane = lane_count++;
    } else {
      lane = free_lanes.top();
      free_lanes.pop();
    }
    busy.emplace(extent.end.minutes(), lane);
    layout.lane_of[idx] = lane;
  }
  layout.lane_count = lane_count;
  return layout;
}

LaneLayout AssignLanesNaive(const std::vector<core::FlexOffer>& offers) {
  LaneLayout layout;
  layout.lane_of.resize(offers.size());
  std::iota(layout.lane_of.begin(), layout.lane_of.end(), 0);
  layout.lane_count = static_cast<int>(offers.size());
  return layout;
}

bool ValidateLayout(const std::vector<core::FlexOffer>& offers, const LaneLayout& layout,
                    int64_t gap_minutes) {
  if (layout.lane_of.size() != offers.size()) return false;
  std::map<int, std::vector<size_t>> lanes;
  for (size_t i = 0; i < offers.size(); ++i) {
    int lane = layout.lane_of[i];
    if (lane < 0 || lane >= layout.lane_count) return false;
    lanes[lane].push_back(i);
  }
  for (auto& [lane, members] : lanes) {
    (void)lane;
    std::sort(members.begin(), members.end(), [&](size_t a, size_t b) {
      return offers[a].extent().start < offers[b].extent().start;
    });
    for (size_t k = 0; k + 1 < members.size(); ++k) {
      const auto cur = offers[members[k]].extent();
      const auto next = offers[members[k + 1]].extent();
      if (next.start < cur.end + gap_minutes) return false;
    }
  }
  return true;
}

}  // namespace flexvis::viz
