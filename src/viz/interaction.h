#ifndef FLEXVIS_VIZ_INTERACTION_H_
#define FLEXVIS_VIZ_INTERACTION_H_

#include <string>
#include <vector>

#include "render/display_list.h"
#include "render/scale.h"
#include "viz/view_common.h"

namespace flexvis::viz {

/// What the tool shows "when pointing their representations with a mouse
/// pointer" (Fig. 10): the offer's description, the yellow markers for its
/// creation/acceptance/assignment times, and dashed red links to the offers
/// it aggregates.
struct HoverInfo {
  bool hit = false;
  core::FlexOfferId offer = core::kInvalidFlexOfferId;
  std::string description;
  /// Constituent offers when the pointed offer is an aggregate.
  std::vector<core::FlexOfferId> provenance;
};

/// Mouse modes of the tool ("the mouse action can be changed to allow
/// interactive selection of flex-offers").
enum class MouseMode {
  kInspect,       // hover shows details (Fig. 10)
  kSelect,        // click/drag selects offers (Fig. 8)
};

/// Resolves the topmost offer under `pointer` in a rendered scene, using the
/// display list's offer tags.
HoverInfo HoverAt(const render::DisplayList& scene,
                  const std::vector<core::FlexOffer>& offers, const render::Point& pointer);

/// Draws the hover overlay for `info` onto `overlay`: yellow vertical lines
/// at the offer's creation/acceptance/assignment times (labeled), dashed red
/// provenance lines to each constituent offer's box, and the tooltip text.
/// `time_scale` and `plot` come from the view result the scene belongs to.
void DrawHoverOverlay(render::Canvas& overlay, const HoverInfo& info,
                      const std::vector<core::FlexOffer>& offers,
                      const render::DisplayList& scene,
                      const render::LinearScale& time_scale, const render::Rect& plot);

/// Offers intersecting the rubber-band `region` ("flex-offers can be
/// selected one-by-one or by drawing a rectangle").
std::vector<core::FlexOfferId> SelectByRectangle(const render::DisplayList& scene,
                                                 const render::Rect& region);

/// Single-click selection: the topmost offer at `pointer`, if any.
std::vector<core::FlexOfferId> SelectByClick(const render::DisplayList& scene,
                                             const render::Point& pointer);

/// Applies a selection to an offer list: returns the selected offers ("the
/// selected flex-offers can be shown on different tab") or the remainder
/// ("removed from the current view").
std::vector<core::FlexOffer> ExtractSelection(const std::vector<core::FlexOffer>& offers,
                                              const std::vector<core::FlexOfferId>& selection,
                                              bool keep_selected);

}  // namespace flexvis::viz

#endif  // FLEXVIS_VIZ_INTERACTION_H_
