#ifndef FLEXVIS_VIZ_LOD_VIEW_H_
#define FLEXVIS_VIZ_LOD_VIEW_H_

#include <memory>
#include <vector>

#include "dw/lod.h"
#include "render/display_list.h"
#include "render/tile.h"
#include "viz/view_common.h"

namespace flexvis::viz {

/// LOD-backed variants of the basic and profile views: instead of replaying
/// one draw op per flex-offer, they draw one column per pyramid bucket of
/// the level matched to the current zoom — O(pixels) whether the warehouse
/// holds ten offers or ten million. The same painter feeds the tile cache
/// (render::TiledStrip), so a panning session re-rasterizes only newly
/// exposed columns.

/// Bridges the dw LOD pyramid to the render tile layer. Bucket-local and
/// integer-aligned as StripPainter requires, so composing cached tiles is
/// byte-identical to a cold strip render. kDensity paints per-bucket
/// earliest-start bars (the basic view's aggregate silhouette); kEnvelope
/// paints the min..max energy band with a mean-of-maxima tick (the profile
/// view's aggregate). Normalization is per level and fixed at construction,
/// never derived from the visible range.
class LodStripPainter : public render::StripPainter {
 public:
  enum class Kind { kDensity, kEnvelope };

  /// `pyramid` must outlive the painter.
  LodStripPainter(const dw::LodPyramid* pyramid, Kind kind);

  void PaintBuckets(render::Canvas& canvas, int level, int64_t first_bucket,
                    int64_t num_buckets, int px_per_bucket, int height_px) const override;

  /// Like PaintBuckets with the strip origin at (x0, y0) — the direct
  /// (tile-less) path the LOD views use. x0/y0 should be whole pixels so
  /// the rasterized output stays translation-invariant.
  void PaintInto(render::Canvas& canvas, int level, int64_t first_bucket,
                 int64_t num_buckets, int px_per_bucket, int height_px, double x0,
                 double y0) const;

  const dw::LodPyramid* pyramid() const { return pyramid_; }
  Kind kind() const { return kind_; }

 private:
  /// One level's bucket fields as contiguous columns, cached at
  /// construction so the paint sweep reads flat arrays instead of striding
  /// over LodBucket structs. mean_max_kwh is the same division
  /// LodBucket::mean_max_kwh() performs, so cached and on-the-fly values
  /// are bit-identical.
  struct LevelColumns {
    std::vector<int64_t> starts;
    std::vector<uint8_t> empty;
    std::vector<double> min_kwh;
    std::vector<double> max_kwh;
    std::vector<double> mean_max_kwh;
  };

  const dw::LodPyramid* pyramid_;
  Kind kind_;
  std::vector<int64_t> max_starts_;  // per level
  std::vector<double> max_kwh_;      // per level
  std::vector<LevelColumns> columns_;  // per level
};

/// Options of the LOD views.
struct LodViewOptions {
  Frame frame;
  /// Visible window; empty = the pyramid's extent.
  timeutil::TimeInterval window;
  /// LOD choice: finest level keeping buckets at least this wide on screen.
  double min_bucket_px = 2.0;
  /// Pins the pyramid level regardless of zoom (golden figures render the
  /// same scene at coarse/mid/raw this way); -1 = choose from the window.
  int forced_level = -1;
  bool draw_legend = true;
};

struct LodViewResult {
  std::unique_ptr<render::DisplayList> scene;
  /// The pyramid level actually drawn.
  int level = 0;
  /// Bucket range of `level` that was drawn.
  dw::LodBucketRange range;
  /// Whole pixels per bucket column.
  int px_per_bucket = 1;
  render::LinearScale time_scale;
  render::Rect plot;
  timeutil::TimeInterval window;
};

/// Basic view over the pyramid: per-bucket offer-density bars (earliest
/// starts), the aggregate silhouette of Fig. 8 at any zoom.
LodViewResult RenderBasicLodView(const dw::LodPyramid& pyramid,
                                 const LodViewOptions& options);

/// Profile view over the pyramid: per-bucket min..max energy envelope with
/// the mean-of-maxima tick, the aggregate of Fig. 9's per-offer profiles.
LodViewResult RenderProfileLodView(const dw::LodPyramid& pyramid,
                                   const LodViewOptions& options);

}  // namespace flexvis::viz

#endif  // FLEXVIS_VIZ_LOD_VIEW_H_
