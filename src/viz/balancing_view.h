#ifndef FLEXVIS_VIZ_BALANCING_VIEW_H_
#define FLEXVIS_VIZ_BALANCING_VIEW_H_

#include <memory>

#include "render/display_list.h"
#include "sim/enterprise.h"
#include "viz/view_common.h"

namespace flexvis::viz {

/// Options of the before/after balancing chart (Fig. 1).
struct BalancingViewOptions {
  Frame frame;
};

struct BalancingViewResult {
  std::unique_ptr<render::DisplayList> scene;
  /// Imbalance (Σ|RES - total load| in kWh) in the before/after panels; the
  /// "after" number should be markedly lower — that is Fig. 1's message.
  double imbalance_before_kwh = 0.0;
  double imbalance_after_kwh = 0.0;
};

/// Renders Fig. 1's two panels side by side: production from RES as a line,
/// non-flexible demand as a filled area, flexible demand stacked on top — at
/// its *requested* times before balancing (left), at its *scheduled* times
/// after the MIRABEL system balanced demand and supply (right).
BalancingViewResult RenderBalancingView(const sim::PlanningReport& report,
                                        const BalancingViewOptions& options);

}  // namespace flexvis::viz

#endif  // FLEXVIS_VIZ_BALANCING_VIEW_H_
