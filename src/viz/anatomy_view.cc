#include "viz/anatomy_view.h"

#include <algorithm>

#include "util/strings.h"

namespace flexvis::viz {

using core::FlexOffer;
using core::ProfileSlice;
using render::Point;
using render::Rect;
using render::Style;
using timeutil::kMinutesPerSlice;
using timeutil::TimePoint;

FlexOffer MakePaperExampleOffer() {
  FlexOffer offer;
  offer.id = 1;
  offer.prosumer = 1;
  offer.appliance_type = core::ApplianceType::kElectricVehicle;
  // The evening of the prior day: acceptance 23:00, assignment 00:00,
  // earliest start 01:00, latest start 03:00, 2 h profile -> latest end 05:00.
  offer.creation_time = TimePoint::FromCalendarOrDie(2013, 1, 14, 21, 0);
  offer.acceptance_deadline = TimePoint::FromCalendarOrDie(2013, 1, 14, 23, 0);
  offer.assignment_deadline = TimePoint::FromCalendarOrDie(2013, 1, 15, 0, 0);
  offer.earliest_start = TimePoint::FromCalendarOrDie(2013, 1, 15, 1, 0);
  offer.latest_start = TimePoint::FromCalendarOrDie(2013, 1, 15, 3, 0);
  offer.profile = {ProfileSlice{2, 0.8, 1.6}, ProfileSlice{2, 1.2, 2.4},
                   ProfileSlice{2, 1.4, 2.0}, ProfileSlice{2, 0.6, 1.2}};
  core::Schedule sched;
  sched.start = TimePoint::FromCalendarOrDie(2013, 1, 15, 2, 0);
  for (const ProfileSlice& u : offer.UnitProfile()) {
    sched.energy_kwh.push_back((u.min_energy_kwh + u.max_energy_kwh) / 2.0);
  }
  offer.schedule = std::move(sched);
  offer.state = core::FlexOfferState::kAssigned;
  return offer;
}

namespace {

void VerticalMarker(render::DisplayList& canvas, const Rect& plot, double x,
                    const std::string& label, const render::Color& color, double label_y) {
  canvas.DrawLine(Point{x, plot.y}, Point{x, plot.bottom()},
                  Style::Stroke(color, 1.4).WithDash({5.0, 4.0}));
  render::TextStyle ts;
  ts.size = 9.0;
  ts.anchor = render::TextAnchor::kMiddle;
  canvas.DrawText(Point{x, label_y}, label, ts);
}

}  // namespace

AnatomyViewResult RenderAnatomyView(const FlexOffer& offer, const AnatomyViewOptions& options) {
  AnatomyViewResult result;
  Frame frame = options.frame;
  if (frame.title.empty()) frame.title = "Structural elements of a flex-offer";
  result.scene = std::make_unique<render::DisplayList>(frame.width, frame.height);
  render::DisplayList& canvas = *result.scene;
  Rect plot = DrawFrame(canvas, frame);

  // Window: creation to latest end, padded half an hour each side.
  timeutil::TimeInterval window(offer.creation_time - 30, offer.latest_end() + 30);
  render::LinearScale x = MakeTimeScale(window, plot);
  render::DrawBottomAxis(canvas, plot, x, render::MakeTimeTicks(window, 4, 12));
  render::DrawBottomAxisTitle(canvas, plot, "t");
  render::DrawLeftAxisTitle(canvas, plot, "kW");

  const double peak = std::max(offer.peak_energy_kwh(), 1e-9);
  render::PrettyScale pretty = render::MakePrettyScale(0.0, peak, 5);
  render::LinearScale y(0.0, pretty.nice_max, plot.bottom(), plot.y);
  render::DrawLeftAxis(canvas, plot, y, pretty.ticks);

  TimePoint start = offer.schedule.has_value() ? offer.schedule->start : offer.earliest_start;

  // Start-time flexibility band with arrows.
  const double fx0 = x.Apply(static_cast<double>(offer.earliest_start.minutes()));
  const double fx1 = x.Apply(static_cast<double>(offer.latest_start.minutes()));
  const double band_y = plot.y + 18.0;
  canvas.DrawRect(Rect{fx0, band_y - 7, fx1 - fx0, 14},
                  Style::Fill(render::palette::kTimeFlexibility.WithAlpha(120)));
  canvas.DrawLine(Point{fx0, band_y}, Point{fx1, band_y},
                  Style::Stroke(render::palette::kAxis, 1.4));
  for (double ax : {fx0, fx1}) {
    double dir = ax == fx0 ? 1.0 : -1.0;
    canvas.DrawLine(Point{ax, band_y}, Point{ax + dir * 6, band_y - 4},
                    Style::Stroke(render::palette::kAxis, 1.4));
    canvas.DrawLine(Point{ax, band_y}, Point{ax + dir * 6, band_y + 4},
                    Style::Stroke(render::palette::kAxis, 1.4));
  }
  render::TextStyle flex_label;
  flex_label.size = 10.0;
  flex_label.anchor = render::TextAnchor::kMiddle;
  canvas.DrawText(Point{(fx0 + fx1) / 2, band_y - 12}, "start time flexibility", flex_label);

  // Profile at the scheduled start: min fill + flexibility band per slice.
  const std::vector<ProfileSlice> units = offer.UnitProfile();
  for (size_t u = 0; u < units.size(); ++u) {
    TimePoint t0 = start + static_cast<int64_t>(u) * kMinutesPerSlice;
    double sx0 = x.Apply(static_cast<double>(t0.minutes()));
    double sx1 = x.Apply(static_cast<double>((t0 + kMinutesPerSlice).minutes()));
    double ymin = y.Apply(units[u].min_energy_kwh);
    double ymax = y.Apply(units[u].max_energy_kwh);
    canvas.DrawRect(Rect{sx0, ymax, sx1 - sx0, ymin - ymax},
                    Style::FillStroke(
                        render::Lerp(render::palette::kRawOffer,
                                     render::palette::kBackground, 0.45),
                        render::palette::kAxis.WithAlpha(120)));
    canvas.DrawRect(Rect{sx0, ymin, sx1 - sx0, plot.bottom() - ymin},
                    Style::FillStroke(render::palette::kRawOffer,
                                      render::palette::kAxis.WithAlpha(120)));
  }

  // Annotations for the min-energy fill and the flexibility band.
  if (!units.empty()) {
    TimePoint mid = start + static_cast<int64_t>(units.size() / 2) * kMinutesPerSlice;
    double mx = x.Apply(static_cast<double>(mid.minutes()));
    render::TextStyle note;
    note.size = 9.0;
    note.anchor = render::TextAnchor::kMiddle;
    size_t mid_u = units.size() / 2;
    canvas.DrawText(
        Point{mx, (y.Apply(units[mid_u].min_energy_kwh) + plot.bottom()) / 2},
        "minimum required energy", note);
    canvas.DrawText(Point{mx, (y.Apply(units[mid_u].max_energy_kwh) +
                               y.Apply(units[mid_u].min_energy_kwh)) /
                                  2},
                    "energy flexibility", note);
  }

  // Scheduled energy step line.
  if (offer.schedule.has_value()) {
    std::vector<Point> steps;
    for (size_t u = 0; u < offer.schedule->energy_kwh.size(); ++u) {
      TimePoint t0 = offer.schedule->start + static_cast<int64_t>(u) * kMinutesPerSlice;
      double sy = y.Apply(offer.schedule->energy_kwh[u]);
      steps.push_back(Point{x.Apply(static_cast<double>(t0.minutes())), sy});
      steps.push_back(Point{x.Apply(static_cast<double>((t0 + kMinutesPerSlice).minutes())), sy});
    }
    canvas.DrawPolyline(steps, Style::Stroke(render::palette::kScheduled, 2.2));
    render::TextStyle sched_note;
    sched_note.size = 9.0;
    sched_note.color = render::palette::kScheduled;
    canvas.DrawText(Point{steps.back().x + 4, steps.back().y}, "scheduled energy", sched_note);
  }

  // Lifecycle markers along the abscissa (Fig. 2's labeled time points).
  struct MarkerSpec {
    TimePoint t;
    std::string label;
    render::Color color;
  };
  const MarkerSpec markers[] = {
      {offer.acceptance_deadline,
       StrFormat("%s acceptance", offer.acceptance_deadline.TimeOfDayString().c_str()),
       render::palette::kMarker},
      {offer.assignment_deadline,
       StrFormat("%s assignment", offer.assignment_deadline.TimeOfDayString().c_str()),
       render::palette::kMarker},
      {offer.earliest_start,
       StrFormat("%s earliest start", offer.earliest_start.TimeOfDayString().c_str()),
       render::palette::kAxis},
      {offer.latest_start,
       StrFormat("%s latest start", offer.latest_start.TimeOfDayString().c_str()),
       render::palette::kAxis},
      {offer.latest_end(),
       StrFormat("%s latest end", offer.latest_end().TimeOfDayString().c_str()),
       render::palette::kAxis},
  };
  double label_y = plot.y + 44.0;
  for (const MarkerSpec& m : markers) {
    VerticalMarker(canvas, plot, x.Apply(static_cast<double>(m.t.minutes())), m.label, m.color,
                   label_y);
    label_y += 13.0;
  }
  return result;
}

}  // namespace flexvis::viz
