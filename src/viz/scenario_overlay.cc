#include "viz/scenario_overlay.h"

#include <algorithm>

#include "render/axis.h"
#include "render/scale.h"
#include "util/strings.h"

namespace flexvis::viz {

using render::Point;
using render::Rect;
using render::Style;
using timeutil::kMinutesPerSlice;

namespace {

// Muted band fills cycled across phases; curves keep the palette colors, so
// the bands must stay clearly in the background.
constexpr render::Color kBandCycle[] = {
    {255, 226, 178},  // warm sand
    {205, 222, 248},  // pale blue
    {214, 240, 214},  // pale green
    {240, 214, 240},  // pale violet
};

std::vector<Point> SeriesLine(const core::TimeSeries& series,
                              const timeutil::TimeInterval& window,
                              const render::LinearScale& x,
                              const render::LinearScale& y) {
  std::vector<Point> line;
  for (timeutil::TimePoint t = window.start; t < window.end; t = t + kMinutesPerSlice) {
    line.push_back(Point{x.Apply(static_cast<double>(t.minutes())),
                         y.Apply(std::max(0.0, series.At(t)))});
  }
  return line;
}

}  // namespace

ScenarioOverlayResult RenderScenarioOverlay(const sim::ScenarioOutcome& outcome,
                                            const ScenarioOverlayOptions& options) {
  ScenarioOverlayResult result;
  const sim::PlanningReport& report = outcome.plan;
  const timeutil::TimeInterval& window = report.window;

  Frame frame = options.frame;
  if (frame.title.empty()) {
    frame.title = StrFormat("scenario '%s': demand exploration across phases",
                            outcome.spec.name.c_str());
  }
  result.scene = std::make_unique<render::DisplayList>(frame.width, frame.height);
  render::DisplayList& canvas = *result.scene;
  Rect plot = DrawFrame(canvas, frame);
  plot.height -= 24;  // room for the legend row under the chart

  // Ordinate: the demand stack and the RES line share one honest scale.
  double y_max = 1.0;
  for (timeutil::TimePoint t = window.start; t < window.end; t = t + kMinutesPerSlice) {
    y_max = std::max(y_max, report.res_production.At(t));
    double stack = report.inflexible_demand.At(t) +
                   std::max(0.0, report.planned_flexible_load.At(t));
    y_max = std::max(y_max, stack);
    result.peak_demand_kwh = std::max(result.peak_demand_kwh, stack);
  }

  render::LinearScale x = MakeTimeScale(window, plot);
  render::PrettyScale pretty = render::MakePrettyScale(0.0, y_max, 5);
  render::LinearScale y(0.0, pretty.nice_max, plot.bottom(), plot.y);
  render::DrawLeftAxis(canvas, plot, y, pretty.ticks);
  render::DrawBottomAxis(canvas, plot, x, render::MakeTimeTicks(window, 4, 8));
  render::DrawLeftAxisTitle(canvas, plot, "kWh per slice");

  canvas.PushClip(plot);

  // Phase bands first: background context the curves are explored against.
  if (options.show_phase_bands) {
    for (size_t i = 0; i < outcome.spec.phases.size(); ++i) {
      const sim::ScenarioPhase& phase = outcome.spec.phases[i];
      timeutil::TimeInterval band = phase.window.Intersect(window);
      if (band.empty()) continue;
      double x0 = x.Apply(static_cast<double>(band.start.minutes()));
      double x1 = x.Apply(static_cast<double>(band.end.minutes()));
      const render::Color& fill =
          kBandCycle[i % (sizeof(kBandCycle) / sizeof(kBandCycle[0]))];
      canvas.DrawRect(Rect{x0, plot.y, x1 - x0, plot.height},
                      Style::Fill(fill.WithAlpha(90)));
      render::TextStyle label;
      label.size = 9.0;
      label.anchor = render::TextAnchor::kMiddle;
      label.color = render::palette::kAxis;
      // Stagger labels vertically so overlapping bands stay readable.
      double label_y = plot.y + 12 + 12.0 * static_cast<double>(i % 3);
      canvas.DrawText(Point{(x0 + x1) / 2, label_y}, phase.name, label);
      ++result.phases_drawn;
    }
  }

  // The demand stack: inflexible as a filled area, planned flexible stacked
  // on top, RES production as the line they are balanced against.
  std::vector<Point> base_area, flex_area;
  for (timeutil::TimePoint t = window.start; t < window.end; t = t + kMinutesPerSlice) {
    double px = x.Apply(static_cast<double>(t.minutes()));
    double inflex = std::max(0.0, report.inflexible_demand.At(t));
    double flex_top = inflex + std::max(0.0, report.planned_flexible_load.At(t));
    base_area.push_back(Point{px, y.Apply(inflex)});
    flex_area.push_back(Point{px, y.Apply(flex_top)});
  }
  if (base_area.size() >= 2) {
    std::vector<Point> base_poly = base_area;
    base_poly.push_back(Point{base_poly.back().x, plot.bottom()});
    base_poly.push_back(Point{base_poly.front().x, plot.bottom()});
    canvas.DrawPolygon(base_poly, Style::Fill(render::palette::kDemand.WithAlpha(150)));
    std::vector<Point> flex_poly = flex_area;
    for (size_t i = base_area.size(); i > 0; --i) flex_poly.push_back(base_area[i - 1]);
    canvas.DrawPolygon(flex_poly,
                       Style::Fill(render::palette::kFlexibleDemand.WithAlpha(180)));
  }
  canvas.DrawPolyline(SeriesLine(report.res_production, window, x, y),
                      Style::Stroke(render::palette::kResProduction, 2.2));
  // The forecast the plan targeted, dashed — the gap to inflexible demand is
  // the forecaster's error made visible.
  canvas.DrawPolyline(SeriesLine(report.planned_against_demand, window, x, y),
                      Style::Stroke(render::palette::kProvenance, 1.4)
                          .WithDash({4.0, 3.0}));
  canvas.PopClip();

  if (options.show_caption) {
    render::TextStyle caption;
    caption.size = 9.5;
    caption.color = render::palette::kAxis;
    std::string text = StrFormat(
        "forecaster=%s  bidding=%s  |  shards=%d  offers=%zu  |  "
        "forecast rmse %.1f kWh  settlement %.0f EUR",
        report.forecaster.c_str(), report.bidding.c_str(), outcome.merged.num_shards,
        outcome.workload.offers.size(), report.forecast_error.rmse,
        report.settlement.total_cost_eur);
    canvas.DrawText(Point{plot.x, frame.margin_top - 6}, text, caption);
  }

  std::vector<render::LegendEntry> entries = {
      {"production from RES", render::palette::kResProduction, true},
      {"non-flexible demand", render::palette::kDemand, false},
      {"planned flexible demand", render::palette::kFlexibleDemand, false},
      {"planned-against forecast", render::palette::kProvenance, true},
  };
  render::DrawLegend(canvas, Point{plot.x + 4, plot.bottom() + 26}, entries);
  return result;
}

}  // namespace flexvis::viz
