#include "viz/balancing_view.h"

#include <algorithm>

#include "util/strings.h"

namespace flexvis::viz {

using core::TimeSeries;
using render::Point;
using render::Rect;
using render::Style;
using timeutil::kMinutesPerSlice;

namespace {

// The flexible load as it would fall without balancing: every scheduled
// member executes at its earliest start with the same energies.
TimeSeries UnshiftedLoad(const sim::PlanningReport& report) {
  TimeSeries load(report.window.start,
                  static_cast<size_t>(report.window.duration_minutes() / kMinutesPerSlice));
  for (const core::FlexOffer& m : report.member_offers) {
    if (!m.schedule.has_value()) continue;
    const double sign = m.direction == core::Direction::kConsumption ? 1.0 : -1.0;
    for (size_t i = 0; i < m.schedule->energy_kwh.size(); ++i) {
      load.AddAt(m.earliest_start + static_cast<int64_t>(i) * kMinutesPerSlice,
                 sign * m.schedule->energy_kwh[i]);
    }
  }
  return load;
}

double Imbalance(const TimeSeries& res, const TimeSeries& inflexible,
                 const TimeSeries& flexible, const timeutil::TimeInterval& window) {
  double total = 0.0;
  for (timeutil::TimePoint t = window.start; t < window.end; t = t + kMinutesPerSlice) {
    total += std::abs(res.At(t) - inflexible.At(t) - flexible.At(t));
  }
  return total;
}

// One panel: RES line over stacked demand areas.
void DrawPanel(render::DisplayList& canvas, const Rect& panel, const char* title,
               const TimeSeries& res, const TimeSeries& inflexible,
               const TimeSeries& flexible, const timeutil::TimeInterval& window,
               double y_max) {
  render::TextStyle title_style;
  title_style.size = 11.0;
  title_style.bold = true;
  title_style.anchor = render::TextAnchor::kMiddle;
  canvas.DrawText(Point{panel.x + panel.width / 2, panel.y - 6}, title, title_style);

  render::LinearScale x = MakeTimeScale(window, panel);
  render::PrettyScale pretty = render::MakePrettyScale(0.0, y_max, 5);
  render::LinearScale y(0.0, pretty.nice_max, panel.bottom(), panel.y);
  render::DrawLeftAxis(canvas, panel, y, pretty.ticks);
  render::DrawBottomAxis(canvas, panel, x, render::MakeTimeTicks(window, 3, 7));

  canvas.PushClip(panel);
  // Stacked areas: inflexible demand, then flexible on top.
  std::vector<Point> base_area, flex_area;
  std::vector<Point> res_line;
  for (timeutil::TimePoint t = window.start; t < window.end; t = t + kMinutesPerSlice) {
    double px = x.Apply(static_cast<double>(t.minutes()));
    double inflex = std::max(0.0, inflexible.At(t));
    double flex_top = inflex + std::max(0.0, flexible.At(t));
    base_area.push_back(Point{px, y.Apply(inflex)});
    flex_area.push_back(Point{px, y.Apply(flex_top)});
    res_line.push_back(Point{px, y.Apply(std::max(0.0, res.At(t)))});
  }
  auto close_area = [&](std::vector<Point> upper, const std::vector<Point>& lower_or_axis,
                        bool to_axis) {
    std::vector<Point> poly = std::move(upper);
    if (to_axis) {
      poly.push_back(Point{poly.back().x, panel.bottom()});
      poly.push_back(Point{poly.front().x, panel.bottom()});
    } else {
      for (size_t i = lower_or_axis.size(); i > 0; --i) poly.push_back(lower_or_axis[i - 1]);
    }
    return poly;
  };
  if (base_area.size() >= 2) {
    canvas.DrawPolygon(close_area(base_area, {}, true),
                       Style::Fill(render::palette::kDemand.WithAlpha(170)));
    canvas.DrawPolygon(close_area(flex_area, base_area, false),
                       Style::Fill(render::palette::kFlexibleDemand.WithAlpha(190)));
    canvas.DrawPolyline(res_line, Style::Stroke(render::palette::kResProduction, 2.4));
  }
  canvas.PopClip();
}

}  // namespace

BalancingViewResult RenderBalancingView(const sim::PlanningReport& report,
                                        const BalancingViewOptions& options) {
  BalancingViewResult result;
  Frame frame = options.frame;
  if (frame.title.empty()) {
    frame.title = "Loads before and after MIRABEL balances demand and supply";
  }
  result.scene = std::make_unique<render::DisplayList>(frame.width, frame.height);
  render::DisplayList& canvas = *result.scene;
  Rect outer = DrawFrame(canvas, frame);

  TimeSeries before = UnshiftedLoad(report);
  const TimeSeries& after = report.planned_flexible_load;
  result.imbalance_before_kwh =
      Imbalance(report.res_production, report.inflexible_demand, before, report.window);
  result.imbalance_after_kwh =
      Imbalance(report.res_production, report.inflexible_demand, after, report.window);

  // Shared ordinate across both panels for honest comparison.
  double y_max = 1.0;
  for (timeutil::TimePoint t = report.window.start; t < report.window.end;
       t = t + kMinutesPerSlice) {
    y_max = std::max(y_max, report.res_production.At(t));
    y_max = std::max(y_max, report.inflexible_demand.At(t) +
                                std::max(std::max(0.0, before.At(t)), after.At(t)));
  }

  const double gap = 46.0;
  Rect left{outer.x, outer.y + 12, (outer.width - gap) / 2, outer.height - 40};
  Rect right{outer.x + (outer.width + gap) / 2, outer.y + 12, (outer.width - gap) / 2,
             outer.height - 40};
  DrawPanel(canvas, left,
            StrFormat("before (imbalance %.0f kWh)", result.imbalance_before_kwh).c_str(),
            report.res_production, report.inflexible_demand, before, report.window, y_max);
  DrawPanel(canvas, right,
            StrFormat("after (imbalance %.0f kWh)", result.imbalance_after_kwh).c_str(),
            report.res_production, report.inflexible_demand, after, report.window, y_max);

  std::vector<render::LegendEntry> entries = {
      {"production from RES", render::palette::kResProduction, true},
      {"non-flexible demand", render::palette::kDemand, false},
      {"flexible demand", render::palette::kFlexibleDemand, false},
  };
  render::DrawLegend(canvas, Point{outer.x + 4, outer.bottom() - 14}, entries);
  return result;
}

}  // namespace flexvis::viz
