#ifndef FLEXVIS_VIZ_SCHEMATIC_VIEW_H_
#define FLEXVIS_VIZ_SCHEMATIC_VIEW_H_

#include <array>
#include <memory>
#include <vector>

#include "grid/topology.h"
#include "render/display_list.h"
#include "viz/view_common.h"

namespace flexvis::viz {

/// Options of the grid-topology schematic view (Fig. 4: generator glyphs,
/// substations connected by lines, and a state pie per load area).
struct SchematicViewOptions {
  Frame frame;
  /// Draw the accepted/assigned/rejected pie at nodes of this layer
  /// (2 = distribution substations, matching Fig. 4's load areas).
  int pie_layer = 2;
  double pie_radius = 26.0;
  bool draw_legend = true;
};

struct SchematicViewResult {
  std::unique_ptr<render::DisplayList> scene;
  /// Node ids that received a pie, with their per-state counts (aligned).
  std::vector<core::GridNodeId> pie_nodes;
  std::vector<std::array<int64_t, core::kNumFlexOfferStates>> pie_counts;
};

/// Renders the schematic (topological) view: the grid tree laid out by
/// (layer, slot), 110 kV+ lines weighted by voltage, "G" glyphs for plants,
/// and per-area pies of accepted/assigned/rejected flex-offer shares ("to
/// select data for (or group on) the topological or electrical structure
/// [of] the electricity grid, e.g., for a particular 110kV transmission
/// line"). Node glyphs carry the grid-node id as display tag.
SchematicViewResult RenderSchematicView(const std::vector<core::FlexOffer>& offers,
                                        const grid::GridTopology& topology,
                                        const SchematicViewOptions& options);

}  // namespace flexvis::viz

#endif  // FLEXVIS_VIZ_SCHEMATIC_VIEW_H_
