#include "viz/profile_view.h"

#include <algorithm>

#include "util/strings.h"

namespace flexvis::viz {

using render::Point;
using render::Rect;
using render::Style;
using timeutil::kMinutesPerSlice;
using timeutil::TimePoint;

ProfileViewResult RenderProfileView(const std::vector<core::FlexOffer>& offers,
                                    const ProfileViewOptions& options) {
  ProfileViewResult result;
  Frame frame = options.frame;
  if (frame.title.empty()) {
    frame.title = StrFormat("Profile view - %zu flex-offers", offers.size());
  }
  result.scene = std::make_unique<render::DisplayList>(frame.width, frame.height);
  render::DisplayList& canvas = *result.scene;

  result.plot = DrawFrame(canvas, frame);
  result.window = options.window.empty() ? OffersExtent(offers) : options.window;
  if (result.window.empty()) {
    result.time_scale = render::LinearScale(0, 1, result.plot.x, result.plot.right());
    return result;
  }
  result.time_scale = MakeTimeScale(result.window, result.plot);
  result.layout = AssignLanes(offers);

  // Synchronized ordinate: one pretty scale over the global per-slice peak.
  double peak = 0.0;
  for (const core::FlexOffer& o : offers) peak = std::max(peak, o.peak_energy_kwh());
  render::PrettyScale pretty = render::MakePrettyScale(0.0, std::max(peak, 1e-9), 4);
  result.max_energy_kwh = pretty.nice_max;

  const Rect& plot = result.plot;
  const int lanes = std::max(1, result.layout.lane_count);
  const double lane_height =
      std::max(4.0, (plot.height - options.lane_padding * (lanes - 1)) / lanes);
  result.kwh_per_pixel = result.max_energy_kwh / lane_height;

  render::DrawBottomAxis(canvas, plot, result.time_scale,
                         render::MakeTimeTicks(result.window));
  render::DrawBottomAxisTitle(canvas, plot, "time");
  render::DrawLeftAxisTitle(canvas, plot, "energy per 15 min [kWh]");

  const render::LinearScale& x = result.time_scale;
  canvas.PushClip(plot.Expanded(1.0));
  for (size_t i = 0; i < offers.size(); ++i) {
    const core::FlexOffer& offer = offers[i];
    const int lane = result.layout.lane_of[i];
    const double base =
        plot.bottom() - lane * (lane_height + options.lane_padding);  // lane baseline (y of 0 kWh)
    const double lane_top = base - lane_height;

    canvas.BeginTag(offer.id);

    // Lane baseline and synchronized mini-axis labels (0 and max).
    canvas.DrawLine(Point{plot.x, base}, Point{plot.right(), base},
                    Style::Stroke(render::palette::kGridLine));
    render::TextStyle small;
    small.size = 8.0;
    small.anchor = render::TextAnchor::kEnd;
    small.color = render::palette::kAxis;
    canvas.DrawText(Point{plot.x - 4, base}, "0", small);
    canvas.DrawText(Point{plot.x - 4, lane_top + 8},
                    FormatDouble(result.max_energy_kwh, 1), small);

    const bool degraded = options.detail_cap > 0 && i >= options.detail_cap;
    TimePoint start =
        offer.schedule.has_value() ? offer.schedule->start : offer.earliest_start;

    // Grey time-flexibility band behind the profile.
    if (offer.time_flexibility_minutes() > 0) {
      const double fx0 = x.Apply(static_cast<double>(offer.earliest_start.minutes()));
      const double fx1 = x.Apply(static_cast<double>(offer.latest_end().minutes()));
      canvas.DrawRect(Rect{fx0, lane_top, fx1 - fx0, lane_height},
                      Style::Fill(render::palette::kTimeFlexibility.WithAlpha(60)));
    }

    if (degraded) {
      // Fallback box (see options.detail_cap).
      const double px0 = x.Apply(static_cast<double>(start.minutes()));
      const double px1 = x.Apply(
          static_cast<double>((start + offer.profile_duration_minutes()).minutes()));
      canvas.DrawRect(Rect{px0, lane_top, std::max(1.0, px1 - px0), lane_height},
                      Style::Fill(OfferFillColor(offer)));
      canvas.EndTag();
      continue;
    }

    // Per-unit-slice min fill and min..max flexibility band.
    const std::vector<core::ProfileSlice> units = offer.UnitProfile();
    const render::Color fill = OfferFillColor(offer);
    const render::Color band = render::Lerp(fill, render::palette::kBackground, 0.45);
    for (size_t u = 0; u < units.size(); ++u) {
      TimePoint t0 = start + static_cast<int64_t>(u) * kMinutesPerSlice;
      const double sx0 = x.Apply(static_cast<double>(t0.minutes()));
      const double sx1 = x.Apply(static_cast<double>((t0 + kMinutesPerSlice).minutes()));
      const double min_h = units[u].min_energy_kwh / result.kwh_per_pixel;
      const double max_h = units[u].max_energy_kwh / result.kwh_per_pixel;
      if (max_h > min_h) {
        canvas.DrawRect(Rect{sx0, base - max_h, sx1 - sx0, max_h - min_h},
                        Style::FillStroke(band, render::palette::kAxis.WithAlpha(70)));
      }
      if (min_h > 0.0) {
        canvas.DrawRect(Rect{sx0, base - min_h, sx1 - sx0, min_h},
                        Style::FillStroke(fill, render::palette::kAxis.WithAlpha(110)));
      }
    }

    // Scheduled energy: red step line across the unit slices (Fig. 9).
    if (offer.schedule.has_value()) {
      std::vector<Point> steps;
      steps.reserve(offer.schedule->energy_kwh.size() * 2);
      for (size_t u = 0; u < offer.schedule->energy_kwh.size(); ++u) {
        TimePoint t0 = offer.schedule->start + static_cast<int64_t>(u) * kMinutesPerSlice;
        const double sy = base - offer.schedule->energy_kwh[u] / result.kwh_per_pixel;
        steps.push_back(Point{x.Apply(static_cast<double>(t0.minutes())), sy});
        steps.push_back(
            Point{x.Apply(static_cast<double>((t0 + kMinutesPerSlice).minutes())), sy});
      }
      canvas.DrawPolyline(steps, Style::Stroke(render::palette::kScheduled, 2.0));
    }
    canvas.EndTag();
  }
  canvas.PopClip();

  if (options.draw_legend) {
    std::vector<render::LegendEntry> entries = {
        {"minimum required energy", render::palette::kRawOffer, false},
        {"energy flexibility (min..max)",
         render::Lerp(render::palette::kRawOffer, render::palette::kBackground, 0.45), false},
        {"scheduled energy", render::palette::kScheduled, true},
        {"time flexibility", render::palette::kTimeFlexibility, false},
    };
    render::DrawLegend(canvas, Point{plot.right() - 230, plot.y + 6}, entries);
  }
  return result;
}

}  // namespace flexvis::viz
