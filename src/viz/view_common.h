#ifndef FLEXVIS_VIZ_VIEW_COMMON_H_
#define FLEXVIS_VIZ_VIEW_COMMON_H_

#include <string>
#include <vector>

#include "core/flex_offer.h"
#include "render/axis.h"
#include "render/canvas.h"
#include "render/scale.h"
#include "time/time_point.h"

namespace flexvis::viz {

/// Chart frame shared by every view: outer size, margins, title, computed
/// plot rectangle.
struct Frame {
  double width = 1000.0;
  double height = 600.0;
  double margin_left = 70.0;
  double margin_right = 20.0;
  double margin_top = 40.0;
  double margin_bottom = 55.0;
  std::string title;

  render::Rect PlotRect() const {
    return render::Rect{margin_left, margin_top, width - margin_left - margin_right,
                        height - margin_top - margin_bottom};
  }
};

/// Draws the frame background and title; returns the plot rect.
render::Rect DrawFrame(render::Canvas& canvas, const Frame& frame);

/// Linear scale mapping TimePoint minutes onto the plot's x span.
render::LinearScale MakeTimeScale(const timeutil::TimeInterval& window,
                                  const render::Rect& plot);

/// The union extent of `offers`, expanded to whole hours (a sensible default
/// window when the caller does not supply one).
timeutil::TimeInterval OffersExtent(const std::vector<core::FlexOffer>& offers);

/// Fill color of an offer box: light red for aggregates, light blue for raw
/// offers (Fig. 8's color coding), dimmed variants for rejected offers.
render::Color OfferFillColor(const core::FlexOffer& offer);

/// State color used by pies and dashboards (Figs. 4 and 6).
render::Color StateColor(core::FlexOfferState state);

}  // namespace flexvis::viz

#endif  // FLEXVIS_VIZ_VIEW_COMMON_H_
