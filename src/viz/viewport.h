#ifndef FLEXVIS_VIZ_VIEWPORT_H_
#define FLEXVIS_VIZ_VIEWPORT_H_

#include "render/scale.h"
#include "time/time_point.h"

namespace flexvis::viz {

/// The pan/zoom state of a time-axis view. The GUI tool binds mouse wheel
/// and drag to these operations and re-renders the view with `window()` as
/// the abscissa window — the views themselves stay stateless.
class Viewport {
 public:
  /// `full` is the data extent; the viewport starts showing all of it.
  explicit Viewport(timeutil::TimeInterval full) : full_(full), window_(full) {}

  /// The currently visible window.
  const timeutil::TimeInterval& window() const { return window_; }
  /// The full data extent the viewport clamps to.
  const timeutil::TimeInterval& full_extent() const { return full_; }

  /// Visible fraction of the full extent, in (0, 1].
  double ZoomLevel() const;

  /// Zooms by `factor` around `anchor` (factor > 1 zooms in). The anchor
  /// keeps its on-screen position, as wheel-zoom users expect. The window
  /// clamps to the full extent and never shrinks below one slice.
  void Zoom(double factor, timeutil::TimePoint anchor);

  /// Shifts the window by `minutes` (positive = later), clamped so the
  /// window never leaves the full extent.
  void Pan(int64_t minutes);

  /// Zooms to exactly `window` (clamped to the full extent).
  void ZoomTo(const timeutil::TimeInterval& window);

  /// Back to the full extent.
  void Reset() { window_ = full_; }

  /// Maps a canvas x coordinate back to a time point under `scale` (used to
  /// turn a click into a Zoom anchor).
  static timeutil::TimePoint TimeAt(const render::LinearScale& scale, double x);

 private:
  void Clamp();

  timeutil::TimeInterval full_;
  timeutil::TimeInterval window_;
};

}  // namespace flexvis::viz

#endif  // FLEXVIS_VIZ_VIEWPORT_H_
