#include "viz/view_common.h"

#include "time/granularity.h"

namespace flexvis::viz {

using render::Color;
using render::palette::kAggregatedOffer;
using render::palette::kRawOffer;

render::Rect DrawFrame(render::Canvas& canvas, const Frame& frame) {
  canvas.Clear(render::palette::kBackground);
  if (!frame.title.empty()) {
    render::TextStyle ts;
    ts.size = 14.0;
    ts.bold = true;
    ts.anchor = render::TextAnchor::kStart;
    canvas.DrawText(render::Point{frame.margin_left, frame.margin_top - 14}, frame.title, ts);
  }
  return frame.PlotRect();
}

render::LinearScale MakeTimeScale(const timeutil::TimeInterval& window,
                                  const render::Rect& plot) {
  return render::LinearScale(static_cast<double>(window.start.minutes()),
                             static_cast<double>(window.end.minutes()), plot.x, plot.right());
}

timeutil::TimeInterval OffersExtent(const std::vector<core::FlexOffer>& offers) {
  timeutil::TimeInterval extent;
  bool first = true;
  for (const core::FlexOffer& o : offers) {
    extent = first ? o.extent() : extent.Span(o.extent());
    first = false;
  }
  if (extent.empty()) return extent;
  // Expand to whole hours so axis ticks have room.
  timeutil::TimePoint start = timeutil::TruncateTo(extent.start, timeutil::Granularity::kHour);
  timeutil::TimePoint end = timeutil::NextBoundary(extent.end - 1, timeutil::Granularity::kHour);
  return timeutil::TimeInterval(start, end);
}

Color OfferFillColor(const core::FlexOffer& offer) {
  Color base = offer.is_aggregate() ? kAggregatedOffer : kRawOffer;
  if (offer.state == core::FlexOfferState::kRejected) {
    // Rejected offers fade toward the background so anomalies (e.g. missing
    // assignments in an interval) stand out.
    return render::Lerp(base, render::palette::kBackground, 0.55);
  }
  return base;
}

Color StateColor(core::FlexOfferState state) {
  switch (state) {
    case core::FlexOfferState::kAccepted:
      return render::palette::kAccepted;
    case core::FlexOfferState::kAssigned:
      return render::palette::kAssigned;
    case core::FlexOfferState::kRejected:
      return render::palette::kRejected;
    case core::FlexOfferState::kOffered:
      return render::CategoricalColor(9);
  }
  return render::CategoricalColor(9);
}

}  // namespace flexvis::viz
