#include "viz/map_view.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace flexvis::viz {

using render::Point;
using render::Rect;
using render::Style;

namespace {

// Maps atlas coordinates (y grows north) into the plot rect (y grows down),
// preserving aspect ratio.
struct MapProjection {
  geo::GeoBounds bounds;
  Rect plot;
  double scale = 1.0;
  double offset_x = 0.0;
  double offset_y = 0.0;

  MapProjection(const geo::GeoBounds& b, const Rect& p) : bounds(b), plot(p) {
    double sx = b.width() > 0 ? p.width / b.width() : 1.0;
    double sy = b.height() > 0 ? p.height / b.height() : 1.0;
    scale = std::min(sx, sy);
    offset_x = p.x + (p.width - b.width() * scale) / 2.0;
    offset_y = p.y + (p.height - b.height() * scale) / 2.0;
  }

  Point Apply(const geo::GeoPoint& g) const {
    return Point{offset_x + (g.x - bounds.min_x) * scale,
                 offset_y + (bounds.max_y - g.y) * scale};
  }
};

}  // namespace

MapViewResult RenderMapView(const std::vector<core::FlexOffer>& offers,
                            const geo::Atlas& atlas, const MapViewOptions& options) {
  MapViewResult result;
  const bool use_lod = options.lod != nullptr && !options.lod->empty();
  const int64_t offer_population =
      use_lod ? options.lod->num_offers() : static_cast<int64_t>(offers.size());
  Frame frame = options.frame;
  if (frame.title.empty()) {
    frame.title = StrFormat("Map view - %lld flex-offers",
                            static_cast<long long>(offer_population));
  }
  result.scene = std::make_unique<render::DisplayList>(frame.width, frame.height);
  render::DisplayList& canvas = *result.scene;
  Rect plot = DrawFrame(canvas, frame);

  timeutil::TimeInterval window = options.window;
  if (window.empty()) window = use_lod ? options.lod->extent() : OffersExtent(offers);

  // The displayed regions: the atlas level the caller drills to ("city" =
  // the leaves, "region" = West/East Denmark, ...). Offers are tagged at
  // leaf regions; rolls-up follow the parent chain.
  std::map<core::RegionId, geo::GeoRegion> by_id;
  for (const geo::GeoRegion& r : atlas.regions()) by_id.emplace(r.id, r);
  std::vector<geo::GeoRegion> display;
  for (const geo::GeoRegion& r : atlas.regions()) {
    if (EqualsIgnoreCase(r.level, options.level)) display.push_back(r);
  }
  if (display.empty()) display = atlas.Leaves();
  std::map<core::RegionId, core::RegionId> rollup;  // any region -> displayed ancestor
  for (const geo::GeoRegion& r : atlas.regions()) {
    core::RegionId cursor = r.id;
    int hops = 0;
    while (cursor != core::kInvalidRegionId && hops < 8) {
      bool is_display = false;
      for (const geo::GeoRegion& d : display) {
        if (d.id == cursor) is_display = true;
      }
      if (is_display) {
        rollup[r.id] = cursor;
        break;
      }
      auto it = by_id.find(cursor);
      if (it == by_id.end()) break;
      cursor = it->second.parent;
      ++hops;
    }
  }

  // Count offers per displayed region and bucket their earliest starts.
  std::map<core::RegionId, std::vector<int64_t>> histograms;
  std::map<core::RegionId, int64_t> counts;
  const int buckets = std::max(1, options.histogram_buckets);
  for (const geo::GeoRegion& r : display) {
    histograms[r.id] = std::vector<int64_t>(static_cast<size_t>(buckets), 0);
    counts[r.id] = 0;
  }
  const int64_t span = std::max<int64_t>(1, window.duration_minutes());
  if (use_lod) {
    // Pyramid path: one pass over the LOD buckets of the coarsest level
    // still finer than a histogram bucket — per-frame work bounded by
    // regions x buckets, never by offer count.
    const dw::LodPyramid& pyr = *options.lod;
    const int64_t hist_minutes = std::max<int64_t>(timeutil::kMinutesPerSlice,
                                                   span / buckets);
    int lod_level = 0;
    while (lod_level + 1 < pyr.num_levels() &&
           pyr.level(lod_level + 1).bucket_slices * timeutil::kMinutesPerSlice <=
               hist_minutes) {
      ++lod_level;
    }
    Result<dw::LodBucketRange> range = pyr.Range(lod_level, window);
    const int64_t bucket_minutes =
        pyr.level(lod_level).bucket_slices * timeutil::kMinutesPerSlice;
    const int top = pyr.num_levels() - 1;
    const int64_t top_buckets = static_cast<int64_t>(pyr.level(top).buckets.size());
    for (size_t ri = 0; ri < pyr.regions().size(); ++ri) {
      auto roll = rollup.find(pyr.regions()[ri]);
      if (roll == rollup.end()) continue;
      auto it = histograms.find(roll->second);
      if (it == histograms.end()) continue;
      // Counts stay population-wide (the raw path ignores the window too).
      for (int64_t b = 0; b < top_buckets; ++b) {
        counts[roll->second] += pyr.RegionStarts(top, ri, b);
      }
      if (!range.ok()) continue;
      for (int64_t b = range->begin; b < range->end; ++b) {
        const int64_t starts = pyr.RegionStarts(lod_level, ri, b);
        if (starts == 0) continue;
        const int64_t offset =
            pyr.origin().minutes() + b * bucket_minutes - window.start.minutes();
        const int64_t hb = offset * buckets / span;
        if (hb >= 0 && hb < buckets) it->second[static_cast<size_t>(hb)] += starts;
      }
    }
  }
  if (!use_lod) {
    for (const core::FlexOffer& o : offers) {
      auto roll = rollup.find(o.region);
      if (roll == rollup.end()) continue;
      auto it = histograms.find(roll->second);
      if (it == histograms.end()) continue;
      ++counts[roll->second];
      int64_t offset = o.earliest_start - window.start;
      int64_t b = offset * buckets / span;
      if (b >= 0 && b < buckets) ++it->second[static_cast<size_t>(b)];
    }
  }
  int64_t max_count = 1;
  int64_t max_bucket = 1;
  for (const auto& [id, c] : counts) {
    (void)id;
    max_count = std::max(max_count, c);
  }
  for (const auto& [id, h] : histograms) {
    (void)id;
    for (int64_t v : h) max_bucket = std::max(max_bucket, v);
  }

  MapProjection proj(atlas.Bounds(), plot);

  // Strict ancestors of the displayed regions as context outlines.
  for (const geo::GeoRegion& r : atlas.regions()) {
    bool is_displayed = false;
    for (const geo::GeoRegion& d : display) {
      if (d.id == r.id) is_displayed = true;
    }
    bool is_ancestor = false;
    for (const geo::GeoRegion& d : display) {
      core::RegionId cursor = d.parent;
      int hops = 0;
      while (cursor != core::kInvalidRegionId && hops < 8) {
        if (cursor == r.id) is_ancestor = true;
        auto it = by_id.find(cursor);
        if (it == by_id.end()) break;
        cursor = it->second.parent;
        ++hops;
      }
    }
    if (is_displayed || !is_ancestor) continue;
    std::vector<Point> outline;
    outline.reserve(r.outline.vertices().size());
    for (const geo::GeoPoint& v : r.outline.vertices()) outline.push_back(proj.Apply(v));
    canvas.DrawPolygon(outline, Style::FillStroke(render::Color(246, 246, 246),
                                                  render::palette::kAxis.WithAlpha(90)));
  }

  // Displayed regions: choropleth fill + name + mini histogram.
  for (const geo::GeoRegion& r : display) {
    std::vector<Point> outline;
    outline.reserve(r.outline.vertices().size());
    for (const geo::GeoPoint& v : r.outline.vertices()) outline.push_back(proj.Apply(v));

    render::Color fill(235, 235, 235);
    if (options.choropleth) {
      double t = static_cast<double>(counts[r.id]) / static_cast<double>(max_count);
      fill = render::Lerp(render::Color(225, 237, 245), render::Color(70, 130, 180), t);
    }
    canvas.BeginTag(r.id);
    canvas.DrawPolygon(outline, Style::FillStroke(fill, render::palette::kAxis));
    canvas.EndTag();

    // Histogram anchored at the region centroid.
    Point c = proj.Apply(r.outline.Centroid());
    const double hist_w = 64.0;
    const double hist_h = 34.0;
    Rect hist{c.x - hist_w / 2, c.y - hist_h / 2, hist_w, hist_h};
    canvas.DrawRect(hist, Style::FillStroke(render::Color(255, 255, 255, 220),
                                            render::palette::kAxis));
    const std::vector<int64_t>& h = histograms[r.id];
    double bar_w = (hist_w - 8.0) / buckets;
    for (int b = 0; b < buckets; ++b) {
      double bh = max_bucket > 0 ? (hist_h - 12.0) * static_cast<double>(h[b]) /
                                       static_cast<double>(max_bucket)
                                 : 0.0;
      canvas.DrawRect(Rect{hist.x + 4.0 + b * bar_w, hist.bottom() - 4.0 - bh,
                           std::max(1.0, bar_w - 1.0), bh},
                      Style::Fill(render::palette::kAccepted));
    }
    // The "0 .. max" scale labels of Fig. 3.
    render::TextStyle axis_label;
    axis_label.size = 7.0;
    axis_label.anchor = render::TextAnchor::kEnd;
    canvas.DrawText(Point{hist.x - 1, hist.bottom() - 3}, "0", axis_label);
    canvas.DrawText(Point{hist.x - 1, hist.y + 8},
                    StrFormat("%lld", static_cast<long long>(max_bucket)), axis_label);

    render::TextStyle name_style;
    name_style.size = 10.0;
    name_style.anchor = render::TextAnchor::kMiddle;
    name_style.bold = true;
    canvas.DrawText(Point{c.x, hist.y - 4}, r.name, name_style);
    result.region_ids.push_back(r.id);
    result.region_counts.push_back(counts[r.id]);
  }
  return result;
}

}  // namespace flexvis::viz
