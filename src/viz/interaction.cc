#include "viz/interaction.h"

#include <algorithm>
#include <unordered_set>

#include "util/strings.h"

namespace flexvis::viz {

using render::Point;
using render::Rect;
using render::Style;

namespace {

const core::FlexOffer* FindOffer(const std::vector<core::FlexOffer>& offers,
                                 core::FlexOfferId id) {
  for (const core::FlexOffer& o : offers) {
    if (o.id == id) return &o;
  }
  return nullptr;
}

// Center of the topmost tagged item of `id` in the scene.
bool FindTagCenter(const render::DisplayList& scene, int64_t id, Point* center) {
  for (size_t i = scene.items().size(); i > 0; --i) {
    const render::DisplayItem& item = scene.items()[i - 1];
    if (item.tag != id) continue;
    Rect b = item.Bounds();
    *center = Point{b.x + b.width / 2, b.y + b.height / 2};
    return true;
  }
  return false;
}

}  // namespace

HoverInfo HoverAt(const render::DisplayList& scene,
                  const std::vector<core::FlexOffer>& offers, const Point& pointer) {
  HoverInfo info;
  std::vector<int64_t> hits = scene.HitTest(pointer);
  if (hits.empty()) return info;
  const core::FlexOffer* offer = FindOffer(offers, hits[0]);
  if (offer == nullptr) return info;
  info.hit = true;
  info.offer = offer->id;
  info.description = core::Describe(*offer);
  info.provenance = offer->aggregated_from;
  return info;
}

void DrawHoverOverlay(render::Canvas& overlay, const HoverInfo& info,
                      const std::vector<core::FlexOffer>& offers,
                      const render::DisplayList& scene,
                      const render::LinearScale& time_scale, const Rect& plot) {
  if (!info.hit) return;
  const core::FlexOffer* offer = FindOffer(offers, info.offer);
  if (offer == nullptr) return;

  // Yellow markers for the user-specified lifecycle times (Fig. 10).
  struct Marker {
    timeutil::TimePoint time;
    const char* label;
  };
  const Marker markers[] = {
      {offer->creation_time, "created"},
      {offer->acceptance_deadline, "acceptance"},
      {offer->assignment_deadline, "assignment"},
  };
  render::TextStyle label_style;
  label_style.size = 9.0;
  label_style.anchor = render::TextAnchor::kMiddle;
  for (const Marker& m : markers) {
    double x = time_scale.Apply(static_cast<double>(m.time.minutes()));
    if (x < plot.x || x > plot.right()) continue;
    overlay.DrawLine(Point{x, plot.y}, Point{x, plot.bottom()},
                     Style::Stroke(render::palette::kMarker, 2.0));
    overlay.DrawText(Point{x, plot.y + 10}, m.label, label_style);
  }

  // Dashed red provenance links from the aggregate to each constituent box.
  Point from;
  if (FindTagCenter(scene, offer->id, &from)) {
    for (core::FlexOfferId member : info.provenance) {
      Point to;
      if (FindTagCenter(scene, member, &to)) {
        overlay.DrawLine(from, to,
                         Style::Stroke(render::palette::kProvenance, 1.2).WithDash({4.0, 3.0}));
      }
    }
  }

  // Tooltip box near the pointed offer.
  const double pad = 6.0;
  double text_width = render::Canvas::MeasureTextWidth(info.description, 10.0);
  double box_width = std::min(text_width + 2 * pad, plot.width * 0.8);
  Rect tip{plot.x + 8, plot.y + 18, box_width, 22.0};
  overlay.DrawRect(tip, Style::FillStroke(render::Color(255, 252, 220, 240),
                                          render::palette::kAxis));
  render::TextStyle tip_style;
  tip_style.size = 10.0;
  overlay.DrawText(Point{tip.x + pad, tip.y + 15}, info.description, tip_style);
}

std::vector<core::FlexOfferId> SelectByRectangle(const render::DisplayList& scene,
                                                 const Rect& region) {
  return scene.HitTestRegion(region);
}

std::vector<core::FlexOfferId> SelectByClick(const render::DisplayList& scene,
                                             const Point& pointer) {
  std::vector<int64_t> hits = scene.HitTest(pointer);
  if (hits.empty()) return {};
  return {hits[0]};
}

std::vector<core::FlexOffer> ExtractSelection(const std::vector<core::FlexOffer>& offers,
                                              const std::vector<core::FlexOfferId>& selection,
                                              bool keep_selected) {
  std::unordered_set<core::FlexOfferId> selected(selection.begin(), selection.end());
  std::vector<core::FlexOffer> out;
  for (const core::FlexOffer& o : offers) {
    const bool in_selection = selected.count(o.id) != 0;
    if (in_selection == keep_selected) out.push_back(o);
  }
  return out;
}

}  // namespace flexvis::viz
