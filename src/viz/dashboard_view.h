#ifndef FLEXVIS_VIZ_DASHBOARD_VIEW_H_
#define FLEXVIS_VIZ_DASHBOARD_VIEW_H_

#include <memory>
#include <vector>

#include "core/measures.h"
#include "render/display_list.h"
#include "viz/view_common.h"

namespace flexvis::viz {

/// Options of the summary dashboard (Fig. 6: "a view to summarize the
/// complete flex-offer data for the selected time interval": the From/To
/// header, a state pie, and a per-slice stacked bar chart by state).
struct DashboardOptions {
  Frame frame;
  /// The summarized interval; empty = the offers' extent.
  timeutil::TimeInterval window;
  /// Draw the Req.-2 measures footer (scheduled energy, energy flexibility,
  /// mean time flexibility, balancing potential).
  bool measures_footer = true;
};

struct DashboardResult {
  std::unique_ptr<render::DisplayList> scene;
  core::StateCounts counts;
  /// The Req.-2 summary measures over the shown offers.
  double scheduled_energy_kwh = 0.0;
  core::BalancingPotential balancing_potential;
  /// Per-slice offer counts by state (Accepted/Assigned/Rejected), each
  /// covering the window.
  core::TimeSeries accepted_per_slice;
  core::TimeSeries assigned_per_slice;
  core::TimeSeries rejected_per_slice;
};

/// Renders the dashboard view: the pie shows the overall accepted/assigned/
/// rejected shares; the stacked bars show, per 15-minute slice, how many
/// offers of each state are active (their execution window covers the
/// slice).
DashboardResult RenderDashboardView(const std::vector<core::FlexOffer>& offers,
                                    const DashboardOptions& options);

}  // namespace flexvis::viz

#endif  // FLEXVIS_VIZ_DASHBOARD_VIEW_H_
