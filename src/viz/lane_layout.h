#ifndef FLEXVIS_VIZ_LANE_LAYOUT_H_
#define FLEXVIS_VIZ_LANE_LAYOUT_H_

#include <vector>

#include "core/flex_offer.h"
#include "time/time_point.h"

namespace flexvis::viz {

/// Assignment of flex-offers to stacked ordinate lanes. Flex-offers "are
/// temporal objects which may potentially overlap in time, [so] boxes
/// representing flex-offers are stacked on each other thus occupying one of
/// several ordinate axes in the graph" (Section 4). This is the dimensional-
/// stacking variation the paper's histogram plot is built on.
struct LaneLayout {
  /// lane_of[i] is the lane index of offers[i] (0 = bottom lane).
  std::vector<int> lane_of;
  int lane_count = 0;
};

/// Greedy first-fit lane assignment: offers sorted by extent start, each
/// placed in the lowest lane whose last occupant ends at or before the
/// offer's start (plus `gap_minutes` of horizontal breathing room). For
/// interval graphs this greedy uses the minimum possible number of lanes.
LaneLayout AssignLanes(const std::vector<core::FlexOffer>& offers, int64_t gap_minutes = 0);

/// Ablation baseline: every offer gets its own lane (what the view would do
/// without the stacking idea). Compared against AssignLanes in
/// bench/micro_layout.
LaneLayout AssignLanesNaive(const std::vector<core::FlexOffer>& offers);

/// True iff no two offers sharing a lane overlap in time (the layout
/// soundness invariant; exercised by property tests).
bool ValidateLayout(const std::vector<core::FlexOffer>& offers, const LaneLayout& layout,
                    int64_t gap_minutes = 0);

}  // namespace flexvis::viz

#endif  // FLEXVIS_VIZ_LANE_LAYOUT_H_
