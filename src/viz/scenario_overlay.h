#ifndef FLEXVIS_VIZ_SCENARIO_OVERLAY_H_
#define FLEXVIS_VIZ_SCENARIO_OVERLAY_H_

#include <memory>

#include "render/display_list.h"
#include "sim/scenario.h"
#include "viz/view_common.h"

namespace flexvis::viz {

/// Options of the scenario demand-exploration overlay (E³: demand curves
/// explored against the scenario's phase structure).
struct ScenarioOverlayOptions {
  Frame frame;
  /// Draw the shaded per-phase bands behind the curves.
  bool show_phase_bands = true;
  /// Draw the strategy / settlement caption under the title.
  bool show_caption = true;
};

struct ScenarioOverlayResult {
  std::unique_ptr<render::DisplayList> scene;
  /// Peak of the demand stack (inflexible + planned flexible) in kWh, the
  /// ordinate the chart is scaled to.
  double peak_demand_kwh = 0.0;
  /// Number of phase bands drawn.
  int phases_drawn = 0;
};

/// Renders a scenario outcome as a demand-exploration overlay: shaded
/// vertical bands mark each workload phase's window (the EV rush hour, the
/// heat-wave afternoon, the shifted DST cohort), with RES production,
/// inflexible demand, and the planned flexible load drawn across them, and a
/// caption naming the resolved forecaster / bidding strategies with the
/// settlement total. This is the dashboard's E³ entry point for the
/// extreme-event suite.
ScenarioOverlayResult RenderScenarioOverlay(const sim::ScenarioOutcome& outcome,
                                            const ScenarioOverlayOptions& options);

}  // namespace flexvis::viz

#endif  // FLEXVIS_VIZ_SCENARIO_OVERLAY_H_
