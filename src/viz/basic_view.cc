#include "viz/basic_view.h"

#include <algorithm>

#include "util/strings.h"

namespace flexvis::viz {

using render::Point;
using render::Rect;
using render::Style;
using timeutil::TimePoint;

BasicViewResult RenderBasicView(const std::vector<core::FlexOffer>& offers,
                                const BasicViewOptions& options) {
  BasicViewResult result;
  Frame frame = options.frame;
  if (frame.title.empty()) {
    frame.title = StrFormat("Basic view - %zu flex-offers", offers.size());
  }
  result.scene = std::make_unique<render::DisplayList>(frame.width, frame.height);
  render::DisplayList& canvas = *result.scene;

  result.plot = DrawFrame(canvas, frame);
  result.window = options.window.empty() ? OffersExtent(offers) : options.window;
  if (result.window.empty()) {
    // Nothing to draw; leave an empty frame.
    result.time_scale = render::LinearScale(0, 1, result.plot.x, result.plot.right());
    return result;
  }
  result.time_scale = MakeTimeScale(result.window, result.plot);
  result.layout = AssignLanes(offers, options.lane_gap_minutes);

  const render::LinearScale& x = result.time_scale;
  const Rect& plot = result.plot;
  const int lanes = std::max(1, result.layout.lane_count);
  const double lane_height =
      std::max(2.0, (plot.height - options.lane_padding * (lanes - 1)) / lanes);

  // Time axis first (grid lines under the boxes).
  render::DrawBottomAxis(canvas, plot, x, render::MakeTimeTicks(result.window));
  render::DrawBottomAxisTitle(canvas, plot, "time");

  canvas.PushClip(plot);
  for (size_t i = 0; i < offers.size(); ++i) {
    const core::FlexOffer& offer = offers[i];
    const int lane = result.layout.lane_of[i];
    // Lane 0 at the bottom, as in the paper's screenshots.
    const double y =
        plot.bottom() - (lane + 1) * lane_height - lane * options.lane_padding;

    canvas.BeginTag(offer.id);
    // 2) time flexibility interval: grey rectangle over the whole extent.
    const double x0 = x.Apply(static_cast<double>(offer.earliest_start.minutes()));
    const double x1 = x.Apply(static_cast<double>(offer.latest_end().minutes()));
    if (offer.time_flexibility_minutes() > 0) {
      canvas.DrawRect(Rect{x0, y + lane_height * 0.25, x1 - x0, lane_height * 0.5},
                      Style::Fill(render::palette::kTimeFlexibility.WithAlpha(140)));
    }
    // 1) duration of the energy profile: colored box at the earliest start
    //    (or the scheduled start when assigned).
    TimePoint profile_start =
        offer.schedule.has_value() ? offer.schedule->start : offer.earliest_start;
    const double px0 = x.Apply(static_cast<double>(profile_start.minutes()));
    const double px1 = x.Apply(
        static_cast<double>((profile_start + offer.profile_duration_minutes()).minutes()));
    canvas.DrawRect(Rect{px0, y, std::max(1.0, px1 - px0), lane_height},
                    Style::FillStroke(OfferFillColor(offer),
                                      render::palette::kAxis.WithAlpha(160)));
    // 3) scheduled starting time: red solid line.
    if (offer.schedule.has_value()) {
      const double sx = x.Apply(static_cast<double>(offer.schedule->start.minutes()));
      canvas.DrawLine(Point{sx, y - 1}, Point{sx, y + lane_height + 1},
                      Style::Stroke(render::palette::kScheduled, 2.0));
    }
    canvas.EndTag();
  }
  canvas.PopClip();

  // Interactive rubber-band selection rectangle (dashed red, Fig. 8).
  if (!options.selection.empty()) {
    canvas.DrawRect(options.selection,
                    Style::Stroke(render::palette::kSelection, 1.5).WithDash({6.0, 4.0}));
  }

  if (options.draw_legend) {
    std::vector<render::LegendEntry> entries = {
        {"raw flex-offer", render::palette::kRawOffer, false},
        {"aggregated flex-offer", render::palette::kAggregatedOffer, false},
        {"time flexibility", render::palette::kTimeFlexibility, false},
        {"scheduled start", render::palette::kScheduled, true},
    };
    render::DrawLegend(canvas, Point{plot.right() - 190, plot.y + 6}, entries);
  }
  return result;
}

}  // namespace flexvis::viz
