#ifndef FLEXVIS_VIZ_SESSION_H_
#define FLEXVIS_VIZ_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/aggregation.h"
#include "dw/database.h"
#include "viz/basic_view.h"
#include "viz/profile_view.h"
#include "viz/viewport.h"

namespace flexvis::viz {

/// Which of the two flex-offer views a tab shows.
enum class ViewKind {
  kBasic,
  kProfile,
};

/// One flex-offer view tab in the main application window ("when flex-offers
/// are read, a new flex-offer view tab is created in the main application
/// window"). A tab owns its offer set, its current selection, and renders
/// itself on demand.
class ViewTab {
 public:
  ViewTab(std::string title, std::vector<core::FlexOffer> offers)
      : title_(std::move(title)), offers_(std::move(offers)) {}

  const std::string& title() const { return title_; }
  const std::vector<core::FlexOffer>& offers() const { return offers_; }
  ViewKind view_kind() const { return view_kind_; }
  void set_view_kind(ViewKind kind) { view_kind_ = kind; }

  const std::vector<core::FlexOfferId>& selection() const { return selection_; }
  void set_selection(std::vector<core::FlexOfferId> ids) { selection_ = std::move(ids); }
  void clear_selection() { selection_.clear(); }

  /// The tab's pan/zoom state over its offers' extent. Mutations here show
  /// up in the next Render* call (a GUI binds wheel/drag to this object).
  Viewport& viewport();

  /// Renders the tab with its current view kind, using the tab's viewport
  /// window unless `options.window` overrides it. The result's scene is
  /// retained by the caller (the session does not cache scenes).
  BasicViewResult RenderBasic(BasicViewOptions options);
  ProfileViewResult RenderProfile(ProfileViewOptions options);

  /// Removes the selected offers from this tab ("removed from the current
  /// view"). Returns how many were removed; clears the selection.
  size_t RemoveSelected();

 private:
  std::string title_;
  std::vector<core::FlexOffer> offers_;
  ViewKind view_kind_ = ViewKind::kBasic;
  std::vector<core::FlexOfferId> selection_;
  std::optional<Viewport> viewport_;
};

/// The main-window model of the visualization tool: the loading tab
/// (Fig. 7), the open view tabs (Fig. 8's tab strip), and the aggregation
/// tools menu (Fig. 11). GUI-toolkit-free: a front end binds buttons to
/// these calls; tests and benches drive them directly.
class Session {
 public:
  /// `db` must outlive the session.
  explicit Session(const dw::Database* db) : db_(db) {}

  /// Shares ownership of `db`: the session keeps the warehouse snapshot
  /// alive for its own lifetime. This is how the concurrent serving layer
  /// (src/serve) binds a session to its pinned MVCC generation — the
  /// generation cannot be retired out from under an open session.
  explicit Session(std::shared_ptr<const dw::Database> db)
      : db_(db.get()), retained_db_(std::move(db)) {}

  const dw::Database& db() const { return *db_; }
  const std::vector<std::unique_ptr<ViewTab>>& tabs() const { return tabs_; }
  ViewTab* tab(size_t index) { return tabs_[index].get(); }

  /// The loading tab's "legal entity" dropdown contents.
  std::vector<dw::ProsumerInfo> LegalEntities() const { return db_->prosumers(); }

  /// Loads flex-offers per `filter` into a new view tab (the Fig. 7 flow:
  /// pick a legal entity and an absolute time interval, press load). Returns
  /// the tab index.
  Result<size_t> LoadTab(const dw::FlexOfferFilter& filter, std::string title = "");

  /// Opens a new tab holding the current selection of `source_tab` ("the
  /// selected flex-offers can be shown on different tab").
  Result<size_t> OpenSelectionAsTab(size_t source_tab);

  /// The aggregation tool (Fig. 11): aggregates the offers of `source_tab`
  /// with `params` into a new tab, so parameter tuning is an interactive
  /// load-aggregate-inspect loop. Returns the new tab index.
  Result<size_t> AggregateTab(size_t source_tab, const core::AggregationParams& params);

  /// The disaggregation tool: expands every scheduled aggregate of
  /// `source_tab` back into its scheduled members (fetched from the DW) in a
  /// new tab.
  Result<size_t> DisaggregateTab(size_t source_tab);

  /// Closes a tab.
  Status CloseTab(size_t index);

 private:
  const dw::Database* db_;
  /// Non-null only for the shared-ownership constructor.
  std::shared_ptr<const dw::Database> retained_db_;
  std::vector<std::unique_ptr<ViewTab>> tabs_;
  core::FlexOfferId next_aggregate_id_ = 1'000'000'000;
};

}  // namespace flexvis::viz

#endif  // FLEXVIS_VIZ_SESSION_H_
