#include "viz/schematic_view.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/strings.h"

namespace flexvis::viz {

using render::Point;
using render::Rect;
using render::Style;

namespace {

// Canvas position of a grid node from its (layer, slot) coordinates.
Point NodePosition(const grid::GridNode& node, const Rect& plot,
                   const std::map<int, int>& layer_sizes) {
  const int layers = 4;
  double y = plot.y + plot.height * (node.layer + 0.5) / layers;
  auto it = layer_sizes.find(node.layer);
  int count = it != layer_sizes.end() ? it->second : 1;
  double x = plot.x + plot.width * (node.slot + 0.5) / std::max(1, count);
  return Point{x, y};
}

}  // namespace

SchematicViewResult RenderSchematicView(const std::vector<core::FlexOffer>& offers,
                                        const grid::GridTopology& topology,
                                        const SchematicViewOptions& options) {
  SchematicViewResult result;
  Frame frame = options.frame;
  if (frame.title.empty()) {
    frame.title = StrFormat("Schematic grid view - %zu flex-offers", offers.size());
  }
  result.scene = std::make_unique<render::DisplayList>(frame.width, frame.height);
  render::DisplayList& canvas = *result.scene;
  Rect plot = DrawFrame(canvas, frame);

  // Layer occupancies for horizontal spacing.
  std::map<int, int> layer_sizes;
  for (const grid::GridNode& n : topology.nodes()) {
    layer_sizes[n.layer] = std::max(layer_sizes[n.layer], n.slot + 1);
  }
  std::map<core::GridNodeId, Point> positions;
  std::map<core::GridNodeId, const grid::GridNode*> nodes_by_id;
  for (const grid::GridNode& n : topology.nodes()) {
    positions[n.id] = NodePosition(n, plot, layer_sizes);
    nodes_by_id[n.id] = &n;
  }

  // Aggregate offer states up the topology: each offer counts at its feeder
  // and every ancestor, so pies at any layer reflect their whole subtree.
  std::map<core::GridNodeId, std::array<int64_t, core::kNumFlexOfferStates>> state_counts;
  for (const core::FlexOffer& o : offers) {
    core::GridNodeId node = o.grid_node;
    int hops = 0;
    while (node != core::kInvalidGridNodeId && hops < 8) {
      auto it = nodes_by_id.find(node);
      if (it == nodes_by_id.end()) break;
      state_counts[node][static_cast<size_t>(o.state)] += 1;
      node = it->second->parent;
      ++hops;
    }
  }

  // Edges first (under the node glyphs); line weight tracks voltage.
  for (const grid::GridEdge& e : topology.edges()) {
    auto a = positions.find(e.from);
    auto b = positions.find(e.to);
    if (a == positions.end() || b == positions.end()) continue;
    double width = e.voltage_kv >= 100.0 ? 2.6 : (e.voltage_kv >= 50.0 ? 1.8 : 1.0);
    canvas.DrawLine(a->second, b->second, Style::Stroke(render::palette::kAxis, width));
  }

  // Node glyphs.
  for (const grid::GridNode& n : topology.nodes()) {
    const Point p = positions[n.id];
    canvas.BeginTag(n.id);
    switch (n.kind) {
      case grid::NodeKind::kPlant: {
        // Generator symbol: circle with a "G" (Fig. 4).
        canvas.DrawCircle(p, 11.0, Style::FillStroke(render::Color(255, 255, 255),
                                                     render::palette::kAxis, 1.6));
        render::TextStyle g;
        g.size = 11.0;
        g.anchor = render::TextAnchor::kMiddle;
        g.bold = true;
        canvas.DrawText(Point{p.x, p.y + 4}, "G", g);
        break;
      }
      case grid::NodeKind::kTransmission:
        canvas.DrawRect(Rect{p.x - 8, p.y - 8, 16, 16},
                        Style::FillStroke(render::Color(60, 60, 60),
                                          render::palette::kAxis));
        break;
      case grid::NodeKind::kDistribution:
        canvas.DrawRect(Rect{p.x - 6, p.y - 6, 12, 12},
                        Style::FillStroke(render::Color(255, 255, 255),
                                          render::palette::kAxis, 1.4));
        break;
      case grid::NodeKind::kFeeder:
        canvas.DrawCircle(p, 3.0, Style::Fill(render::palette::kAxis));
        break;
    }
    canvas.EndTag();
    if (n.kind != grid::NodeKind::kFeeder) {
      render::TextStyle name;
      name.size = 8.0;
      name.anchor = render::TextAnchor::kMiddle;
      canvas.DrawText(Point{p.x, p.y - 14}, n.name, name);
    }
  }

  // State pies at the chosen layer (Fig. 4's 31/43/26 load-area pies).
  const core::FlexOfferState kPieStates[] = {core::FlexOfferState::kAccepted,
                                             core::FlexOfferState::kAssigned,
                                             core::FlexOfferState::kRejected};
  for (const grid::GridNode& n : topology.nodes()) {
    if (n.layer != options.pie_layer) continue;
    const auto& counts = state_counts[n.id];
    int64_t total = 0;
    for (core::FlexOfferState s : kPieStates) total += counts[static_cast<size_t>(s)];
    if (total == 0) continue;
    Point center{positions[n.id].x, positions[n.id].y + options.pie_radius + 18.0};
    double angle = 0.0;
    for (core::FlexOfferState s : kPieStates) {
      double share = static_cast<double>(counts[static_cast<size_t>(s)]) /
                     static_cast<double>(total);
      double sweep = share * 360.0;
      if (sweep <= 0.0) continue;
      canvas.BeginTag(n.id);
      canvas.DrawPieSlice(center, options.pie_radius, angle, sweep,
                          Style::FillStroke(StateColor(s), render::palette::kBackground, 1.0));
      canvas.EndTag();
      // Percentage labels as in Fig. 4.
      if (share >= 0.08) {
        double mid = (angle + sweep / 2.0 - 90.0) * M_PI / 180.0;
        render::TextStyle pct;
        pct.size = 8.0;
        pct.anchor = render::TextAnchor::kMiddle;
        canvas.DrawText(Point{center.x + std::cos(mid) * options.pie_radius * 0.6,
                              center.y + std::sin(mid) * options.pie_radius * 0.6 + 3},
                        StrFormat("%.0f%%", share * 100.0), pct);
      }
      angle += sweep;
    }
    result.pie_nodes.push_back(n.id);
    result.pie_counts.push_back(counts);
  }

  if (options.draw_legend) {
    std::vector<render::LegendEntry> entries = {
        {"Accepted", StateColor(core::FlexOfferState::kAccepted), false},
        {"Assigned", StateColor(core::FlexOfferState::kAssigned), false},
        {"Rejected", StateColor(core::FlexOfferState::kRejected), false},
    };
    render::DrawLegend(canvas, Point{plot.right() - 120, plot.y + 4}, entries);
  }
  return result;
}

}  // namespace flexvis::viz
