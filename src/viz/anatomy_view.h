#ifndef FLEXVIS_VIZ_ANATOMY_VIEW_H_
#define FLEXVIS_VIZ_ANATOMY_VIEW_H_

#include <memory>

#include "render/display_list.h"
#include "viz/view_common.h"

namespace flexvis::viz {

/// Options of the single-offer anatomy diagram (Fig. 2: "structural elements
/// of a flex-offer").
struct AnatomyViewOptions {
  Frame frame;
};

struct AnatomyViewResult {
  std::unique_ptr<render::DisplayList> scene;
};

/// Renders one flex-offer with every Req. 1 element called out: the profile
/// with minimum-energy fill and energy-flexibility band, the start-time
/// flexibility interval with arrows, the earliest/latest start and latest
/// end markers, the acceptance and assignment deadlines, and the scheduled
/// energy line. Returns the paper's own example when given
/// MakePaperExampleOffer().
AnatomyViewResult RenderAnatomyView(const core::FlexOffer& offer,
                                    const AnatomyViewOptions& options);

/// The flex-offer of Fig. 2: created before 11 pm (acceptance time), 0 am
/// assignment time, earliest start 1 am, latest start 3 am, a 2 h profile
/// (latest end 5 am), with per-slice energy flexibility and a schedule.
core::FlexOffer MakePaperExampleOffer();

}  // namespace flexvis::viz

#endif  // FLEXVIS_VIZ_ANATOMY_VIEW_H_
