#include "viz/dashboard_view.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace flexvis::viz {

using render::Point;
using render::Rect;
using render::Style;
using timeutil::kMinutesPerSlice;

DashboardResult RenderDashboardView(const std::vector<core::FlexOffer>& offers,
                                    const DashboardOptions& options) {
  DashboardResult result;
  Frame frame = options.frame;
  timeutil::TimeInterval window =
      options.window.empty() ? OffersExtent(offers) : options.window;
  if (frame.title.empty()) {
    frame.title = StrFormat("From: %s   To: %s", window.start.ToString().c_str(),
                            window.end.ToString().c_str());
  }
  result.scene = std::make_unique<render::DisplayList>(frame.width, frame.height);
  render::DisplayList& canvas = *result.scene;
  Rect outer = DrawFrame(canvas, frame);

  result.counts = CountByState(offers);

  // Per-slice active counts by state.
  size_t slices = window.empty()
                      ? 0
                      : static_cast<size_t>(window.duration_minutes() / kMinutesPerSlice);
  result.accepted_per_slice = core::TimeSeries(window.start, slices);
  result.assigned_per_slice = core::TimeSeries(window.start, slices);
  result.rejected_per_slice = core::TimeSeries(window.start, slices);
  for (const core::FlexOffer& o : offers) {
    core::TimeSeries* series = nullptr;
    switch (o.state) {
      case core::FlexOfferState::kAccepted: series = &result.accepted_per_slice; break;
      case core::FlexOfferState::kAssigned: series = &result.assigned_per_slice; break;
      case core::FlexOfferState::kRejected: series = &result.rejected_per_slice; break;
      case core::FlexOfferState::kOffered: break;
    }
    if (series == nullptr) continue;
    timeutil::TimeInterval active = o.extent().Intersect(window);
    for (timeutil::TimePoint t = active.start; t < active.end; t = t + kMinutesPerSlice) {
      series->AddAt(t, 1.0);
    }
  }

  // Left third: state pie; right two thirds: stacked bars.
  const double pie_cx = outer.x + outer.width * 0.17;
  const double pie_cy = outer.y + outer.height * 0.45;
  const double pie_r = std::min(outer.width * 0.14, outer.height * 0.32);
  const core::FlexOfferState kStates[] = {core::FlexOfferState::kAccepted,
                                          core::FlexOfferState::kAssigned,
                                          core::FlexOfferState::kRejected};
  int64_t pie_total = 0;
  for (core::FlexOfferState s : kStates) pie_total += result.counts[s];
  double angle = 0.0;
  for (core::FlexOfferState s : kStates) {
    if (pie_total == 0) break;
    double share = static_cast<double>(result.counts[s]) / static_cast<double>(pie_total);
    double sweep = share * 360.0;
    if (sweep <= 0.0) continue;
    canvas.DrawPieSlice(Point{pie_cx, pie_cy}, pie_r, angle, sweep,
                        Style::FillStroke(StateColor(s), render::palette::kBackground, 1.5));
    if (share >= 0.05) {
      double mid = (angle + sweep / 2.0 - 90.0) * M_PI / 180.0;
      render::TextStyle pct;
      pct.size = 10.0;
      pct.anchor = render::TextAnchor::kMiddle;
      canvas.DrawText(Point{pie_cx + std::cos(mid) * pie_r * 0.62,
                            pie_cy + std::sin(mid) * pie_r * 0.62 + 3},
                      StrFormat("%.0f%%", share * 100.0), pct);
    }
    angle += sweep;
  }
  std::vector<render::LegendEntry> entries = {
      {StrFormat("Accepted (%lld)",
                 static_cast<long long>(result.counts[core::FlexOfferState::kAccepted])),
       StateColor(core::FlexOfferState::kAccepted), false},
      {StrFormat("Assigned (%lld)",
                 static_cast<long long>(result.counts[core::FlexOfferState::kAssigned])),
       StateColor(core::FlexOfferState::kAssigned), false},
      {StrFormat("Rejected (%lld)",
                 static_cast<long long>(result.counts[core::FlexOfferState::kRejected])),
       StateColor(core::FlexOfferState::kRejected), false},
  };
  render::DrawLegend(canvas, Point{outer.x + 8, pie_cy + pie_r + 14}, entries);

  // Stacked bars.
  Rect chart{outer.x + outer.width * 0.36, outer.y + 10, outer.width * 0.62,
             outer.height - 55};
  double max_stack = 1.0;
  for (size_t i = 0; i < slices; ++i) {
    double stack = result.accepted_per_slice.AtIndex(static_cast<int64_t>(i)) +
                   result.assigned_per_slice.AtIndex(static_cast<int64_t>(i)) +
                   result.rejected_per_slice.AtIndex(static_cast<int64_t>(i));
    max_stack = std::max(max_stack, stack);
  }
  render::PrettyScale pretty = render::MakePrettyScale(0.0, max_stack, 5);
  render::LinearScale y(0.0, pretty.nice_max, chart.bottom(), chart.y);
  render::LinearScale x = MakeTimeScale(window, chart);
  render::DrawLeftAxis(canvas, chart, y, pretty.ticks);
  render::DrawBottomAxis(canvas, chart, x, render::MakeTimeTicks(window));
  render::DrawLeftAxisTitle(canvas, chart, "active flex-offers");

  const double bar_w = slices > 0 ? chart.width / static_cast<double>(slices) : chart.width;
  for (size_t i = 0; i < slices; ++i) {
    double x0 = chart.x + i * bar_w;
    double base = chart.bottom();
    const core::TimeSeries* stack_order[] = {&result.rejected_per_slice,
                                             &result.assigned_per_slice,
                                             &result.accepted_per_slice};
    const core::FlexOfferState stack_states[] = {core::FlexOfferState::kRejected,
                                                 core::FlexOfferState::kAssigned,
                                                 core::FlexOfferState::kAccepted};
    for (int k = 0; k < 3; ++k) {
      double v = stack_order[k]->AtIndex(static_cast<int64_t>(i));
      if (v <= 0.0) continue;
      double h = v / pretty.nice_max * chart.height;
      canvas.DrawRect(Rect{x0 + 0.5, base - h, std::max(1.0, bar_w - 1.0), h},
                      Style::Fill(StateColor(stack_states[k])));
      base -= h;
    }
  }

  // Req.-2 measures footer.
  result.scheduled_energy_kwh = core::TotalScheduledEnergyKwh(offers);
  result.balancing_potential = core::ComputeBalancingPotential(offers);
  if (options.measures_footer) {
    core::AttributeStats tf =
        core::Summarize(offers, core::NumericAttribute::kTimeFlexibilityMinutes);
    core::AttributeStats flex =
        core::Summarize(offers, core::NumericAttribute::kEnergyFlexibilityKwh);
    std::string footer = StrFormat(
        "scheduled %s kWh   energy flexibility %s kWh   mean time flexibility %s min   "
        "balancing potential %s",
        FormatDouble(result.scheduled_energy_kwh, 0).c_str(),
        FormatDouble(flex.sum, 0).c_str(), FormatDouble(tf.mean(), 0).c_str(),
        FormatDouble(result.balancing_potential.potential, 3).c_str());
    render::TextStyle footer_style;
    footer_style.size = 10.0;
    footer_style.anchor = render::TextAnchor::kMiddle;
    canvas.DrawText(Point{outer.x + outer.width / 2, outer.bottom() + 30}, footer,
                    footer_style);
  }
  return result;
}

}  // namespace flexvis::viz
