#include "core/measures.h"

#include <algorithm>
#include <cmath>

#include "util/simd.h"

namespace flexvis::core {

using timeutil::kMinutesPerSlice;

int64_t StateCounts::total() const {
  int64_t t = 0;
  for (int64_t c : by_state) t += c;
  return t;
}

double StateCounts::Fraction(FlexOfferState s) const {
  int64_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>((*this)[s]) / static_cast<double>(t);
}

StateCounts CountByState(const std::vector<FlexOffer>& offers) {
  StateCounts counts;
  for (const FlexOffer& o : offers) ++counts.by_state[static_cast<size_t>(o.state)];
  return counts;
}

StateCounts CountByState(const ProfileColumns& cols) {
  StateCounts counts;
  const uint8_t* FLEXVIS_RESTRICT state = cols.state();
  const size_t n = cols.num_offers();
  for (size_t i = 0; i < n; ++i) ++counts.by_state[state[i]];
  return counts;
}

std::string_view NumericAttributeName(NumericAttribute attribute) {
  switch (attribute) {
    case NumericAttribute::kTotalMinEnergyKwh: return "TotalMinEnergyKwh";
    case NumericAttribute::kTotalMaxEnergyKwh: return "TotalMaxEnergyKwh";
    case NumericAttribute::kEnergyFlexibilityKwh: return "EnergyFlexibilityKwh";
    case NumericAttribute::kTimeFlexibilityMinutes: return "TimeFlexibilityMinutes";
    case NumericAttribute::kProfileDurationSlices: return "ProfileDurationSlices";
    case NumericAttribute::kScheduledEnergyKwh: return "ScheduledEnergyKwh";
  }
  return "Unknown";
}

double AttributeValue(const FlexOffer& offer, NumericAttribute attribute) {
  switch (attribute) {
    case NumericAttribute::kTotalMinEnergyKwh:
      return offer.total_min_energy_kwh();
    case NumericAttribute::kTotalMaxEnergyKwh:
      return offer.total_max_energy_kwh();
    case NumericAttribute::kEnergyFlexibilityKwh:
      return offer.energy_flexibility_kwh();
    case NumericAttribute::kTimeFlexibilityMinutes:
      return static_cast<double>(offer.time_flexibility_minutes());
    case NumericAttribute::kProfileDurationSlices:
      return static_cast<double>(offer.profile_duration_slices());
    case NumericAttribute::kScheduledEnergyKwh:
      return offer.total_scheduled_energy_kwh();
  }
  return 0.0;
}

AttributeStats Summarize(const std::vector<FlexOffer>& offers, NumericAttribute attribute) {
  AttributeStats stats;
  for (const FlexOffer& o : offers) {
    double v = AttributeValue(o, attribute);
    if (stats.count == 0) {
      stats.min = v;
      stats.max = v;
    } else {
      stats.min = std::min(stats.min, v);
      stats.max = std::max(stats.max, v);
    }
    stats.sum += v;
    ++stats.count;
  }
  return stats;
}

AttributeStats Summarize(const ProfileColumns& cols, NumericAttribute attribute) {
  AttributeStats stats;
  const size_t n = cols.num_offers();
  if (n == 0) return stats;
  stats.count = static_cast<int64_t>(n);

  // Direct double columns: ordered scalar sum (the determinism contract
  // fixes the addition order) plus an order-independent vector min/max pass.
  auto column_sweep = [&](const double* FLEXVIS_RESTRICT v) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += v[i];
    double mn = v[0], mx = v[0];
    simd::MinMaxDouble(v, n, &mn, &mx);
    stats.min = mn;
    stats.max = mx;
    stats.sum = sum;
  };
  // Derived values: one branch-free scalar sweep in index order.
  auto value_sweep = [&](auto value_at) {
    double mn = value_at(size_t{0}), mx = mn, sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double v = value_at(i);
      mn = v < mn ? v : mn;
      mx = v > mx ? v : mx;
      sum += v;
    }
    stats.min = mn;
    stats.max = mx;
    stats.sum = sum;
  };

  switch (attribute) {
    case NumericAttribute::kTotalMinEnergyKwh:
      column_sweep(cols.total_min_kwh());
      break;
    case NumericAttribute::kTotalMaxEnergyKwh:
      column_sweep(cols.total_max_kwh());
      break;
    case NumericAttribute::kScheduledEnergyKwh:
      column_sweep(cols.total_scheduled_kwh());
      break;
    case NumericAttribute::kEnergyFlexibilityKwh: {
      const double* FLEXVIS_RESTRICT mn = cols.total_min_kwh();
      const double* FLEXVIS_RESTRICT mx = cols.total_max_kwh();
      value_sweep([&](size_t i) { return mx[i] - mn[i]; });
      break;
    }
    case NumericAttribute::kTimeFlexibilityMinutes: {
      const int64_t* FLEXVIS_RESTRICT tf = cols.time_flex_min();
      value_sweep([&](size_t i) { return static_cast<double>(tf[i]); });
      break;
    }
    case NumericAttribute::kProfileDurationSlices: {
      const int32_t* FLEXVIS_RESTRICT d = cols.duration_slices();
      value_sweep([&](size_t i) { return static_cast<double>(d[i]); });
      break;
    }
  }
  return stats;
}

double TotalScheduledEnergyKwh(const std::vector<FlexOffer>& offers) {
  double total = 0.0;
  for (const FlexOffer& o : offers) total += o.total_scheduled_energy_kwh();
  return total;
}

double TotalScheduledEnergyKwh(const ProfileColumns& cols) {
  const double* FLEXVIS_RESTRICT sched = cols.total_scheduled_kwh();
  const size_t n = cols.num_offers();
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += sched[i];
  return total;
}

TimeSeries PlannedLoad(const std::vector<FlexOffer>& offers) {
  timeutil::TimeInterval extent;
  bool any = false;
  for (const FlexOffer& o : offers) {
    if (!o.schedule.has_value()) continue;
    timeutil::TimeInterval occupied(
        o.schedule->start,
        o.schedule->start + static_cast<int64_t>(o.schedule->energy_kwh.size()) *
                                kMinutesPerSlice);
    extent = any ? extent.Span(occupied) : occupied;
    any = true;
  }
  if (!any) return TimeSeries();
  TimeSeries load(extent.start,
                  static_cast<size_t>(extent.duration_minutes() / kMinutesPerSlice));
  for (const FlexOffer& o : offers) {
    if (!o.schedule.has_value()) continue;
    const double sign = o.direction == Direction::kConsumption ? 1.0 : -1.0;
    for (size_t i = 0; i < o.schedule->energy_kwh.size(); ++i) {
      load.AddAt(o.schedule->start + static_cast<int64_t>(i) * kMinutesPerSlice,
                 sign * o.schedule->energy_kwh[i]);
    }
  }
  return load;
}

TimeSeries PlannedLoad(const ProfileColumns& cols) {
  const size_t n = cols.num_offers();
  const int64_t* FLEXVIS_RESTRICT start_min = cols.schedule_start_min();
  const size_t* FLEXVIS_RESTRICT sched_off = cols.scheduled_offset();
  const double* FLEXVIS_RESTRICT sched_kwh = cols.scheduled_kwh();
  const uint8_t* FLEXVIS_RESTRICT direction = cols.direction();

  timeutil::TimeInterval extent;
  bool any = false;
  for (size_t i = 0; i < n; ++i) {
    if (start_min[i] == ProfileColumns::kNoScheduleStart) continue;
    const int64_t units = static_cast<int64_t>(sched_off[i + 1] - sched_off[i]);
    timeutil::TimeInterval occupied(
        timeutil::TimePoint::FromMinutes(start_min[i]),
        timeutil::TimePoint::FromMinutes(start_min[i] + units * kMinutesPerSlice));
    extent = any ? extent.Span(occupied) : occupied;
    any = true;
  }
  if (!any) return TimeSeries();
  TimeSeries load(extent.start,
                  static_cast<size_t>(extent.duration_minutes() / kMinutesPerSlice));
  for (size_t i = 0; i < n; ++i) {
    if (start_min[i] == ProfileColumns::kNoScheduleStart) continue;
    const double sign =
        direction[i] == static_cast<uint8_t>(Direction::kConsumption) ? 1.0 : -1.0;
    const timeutil::TimePoint start = timeutil::TimePoint::FromMinutes(start_min[i]);
    const size_t units = sched_off[i + 1] - sched_off[i];
    const double* FLEXVIS_RESTRICT energies = sched_kwh + sched_off[i];
    for (size_t u = 0; u < units; ++u) {
      load.AddAt(start + static_cast<int64_t>(u) * kMinutesPerSlice, sign * energies[u]);
    }
  }
  return load;
}

PlanDeviation ComputePlanDeviation(const std::vector<FlexOffer>& offers,
                                   const TimeSeries& realized) {
  PlanDeviation dev;
  TimeSeries planned = PlannedLoad(offers);
  // deviation = realized - planned, over the union of both extents.
  timeutil::TimeInterval extent = planned.interval().Span(realized.interval());
  if (extent.empty()) return dev;
  dev.deviation = TimeSeries(extent.start,
                             static_cast<size_t>(extent.duration_minutes() / kMinutesPerSlice));
  dev.deviation.Add(realized);
  dev.deviation.Subtract(planned);
  dev.total_abs_kwh = dev.deviation.AbsTotal();
  for (double v : dev.deviation.values()) {
    dev.max_abs_kwh = std::max(dev.max_abs_kwh, std::abs(v));
  }
  return dev;
}

BalancingPotential ComputeBalancingPotential(const std::vector<FlexOffer>& offers) {
  BalancingPotential bp;
  double sum_shift_ratio = 0.0;
  int64_t n = 0;
  for (const FlexOffer& o : offers) {
    bp.total_max_energy_kwh += o.total_max_energy_kwh();
    bp.total_flexible_energy_kwh += o.energy_flexibility_kwh();
    const double tf = static_cast<double>(o.time_flexibility_minutes());
    const double dur = static_cast<double>(o.profile_duration_minutes());
    if (tf + dur > 0.0) {
      sum_shift_ratio += tf / (tf + dur);
      ++n;
    }
  }
  if (bp.total_max_energy_kwh > 0.0) {
    bp.energy_slack_ratio = bp.total_flexible_energy_kwh / bp.total_max_energy_kwh;
  }
  if (n > 0) bp.time_shift_ratio = sum_shift_ratio / static_cast<double>(n);
  bp.potential = bp.energy_slack_ratio * bp.time_shift_ratio;
  return bp;
}

BalancingPotential ComputeBalancingPotential(const ProfileColumns& cols) {
  BalancingPotential bp;
  const size_t count = cols.num_offers();
  const double* FLEXVIS_RESTRICT total_min = cols.total_min_kwh();
  const double* FLEXVIS_RESTRICT total_max = cols.total_max_kwh();
  const int64_t* FLEXVIS_RESTRICT tf_min = cols.time_flex_min();
  const int32_t* FLEXVIS_RESTRICT slices = cols.duration_slices();
  double sum_shift_ratio = 0.0;
  int64_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    bp.total_max_energy_kwh += total_max[i];
    bp.total_flexible_energy_kwh += total_max[i] - total_min[i];
    const double tf = static_cast<double>(tf_min[i]);
    const double dur = static_cast<double>(slices[i] * kMinutesPerSlice);
    if (tf + dur > 0.0) {
      sum_shift_ratio += tf / (tf + dur);
      ++n;
    }
  }
  if (bp.total_max_energy_kwh > 0.0) {
    bp.energy_slack_ratio = bp.total_flexible_energy_kwh / bp.total_max_energy_kwh;
  }
  if (n > 0) bp.time_shift_ratio = sum_shift_ratio / static_cast<double>(n);
  bp.potential = bp.energy_slack_ratio * bp.time_shift_ratio;
  return bp;
}

}  // namespace flexvis::core
