#include "core/measures.h"

#include <algorithm>
#include <cmath>

namespace flexvis::core {

using timeutil::kMinutesPerSlice;

int64_t StateCounts::total() const {
  int64_t t = 0;
  for (int64_t c : by_state) t += c;
  return t;
}

double StateCounts::Fraction(FlexOfferState s) const {
  int64_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>((*this)[s]) / static_cast<double>(t);
}

StateCounts CountByState(const std::vector<FlexOffer>& offers) {
  StateCounts counts;
  for (const FlexOffer& o : offers) ++counts.by_state[static_cast<size_t>(o.state)];
  return counts;
}

std::string_view NumericAttributeName(NumericAttribute attribute) {
  switch (attribute) {
    case NumericAttribute::kTotalMinEnergyKwh: return "TotalMinEnergyKwh";
    case NumericAttribute::kTotalMaxEnergyKwh: return "TotalMaxEnergyKwh";
    case NumericAttribute::kEnergyFlexibilityKwh: return "EnergyFlexibilityKwh";
    case NumericAttribute::kTimeFlexibilityMinutes: return "TimeFlexibilityMinutes";
    case NumericAttribute::kProfileDurationSlices: return "ProfileDurationSlices";
    case NumericAttribute::kScheduledEnergyKwh: return "ScheduledEnergyKwh";
  }
  return "Unknown";
}

double AttributeValue(const FlexOffer& offer, NumericAttribute attribute) {
  switch (attribute) {
    case NumericAttribute::kTotalMinEnergyKwh:
      return offer.total_min_energy_kwh();
    case NumericAttribute::kTotalMaxEnergyKwh:
      return offer.total_max_energy_kwh();
    case NumericAttribute::kEnergyFlexibilityKwh:
      return offer.energy_flexibility_kwh();
    case NumericAttribute::kTimeFlexibilityMinutes:
      return static_cast<double>(offer.time_flexibility_minutes());
    case NumericAttribute::kProfileDurationSlices:
      return static_cast<double>(offer.profile_duration_slices());
    case NumericAttribute::kScheduledEnergyKwh:
      return offer.total_scheduled_energy_kwh();
  }
  return 0.0;
}

AttributeStats Summarize(const std::vector<FlexOffer>& offers, NumericAttribute attribute) {
  AttributeStats stats;
  for (const FlexOffer& o : offers) {
    double v = AttributeValue(o, attribute);
    if (stats.count == 0) {
      stats.min = v;
      stats.max = v;
    } else {
      stats.min = std::min(stats.min, v);
      stats.max = std::max(stats.max, v);
    }
    stats.sum += v;
    ++stats.count;
  }
  return stats;
}

double TotalScheduledEnergyKwh(const std::vector<FlexOffer>& offers) {
  double total = 0.0;
  for (const FlexOffer& o : offers) total += o.total_scheduled_energy_kwh();
  return total;
}

TimeSeries PlannedLoad(const std::vector<FlexOffer>& offers) {
  timeutil::TimeInterval extent;
  bool any = false;
  for (const FlexOffer& o : offers) {
    if (!o.schedule.has_value()) continue;
    timeutil::TimeInterval occupied(
        o.schedule->start,
        o.schedule->start + static_cast<int64_t>(o.schedule->energy_kwh.size()) *
                                kMinutesPerSlice);
    extent = any ? extent.Span(occupied) : occupied;
    any = true;
  }
  if (!any) return TimeSeries();
  TimeSeries load(extent.start,
                  static_cast<size_t>(extent.duration_minutes() / kMinutesPerSlice));
  for (const FlexOffer& o : offers) {
    if (!o.schedule.has_value()) continue;
    const double sign = o.direction == Direction::kConsumption ? 1.0 : -1.0;
    for (size_t i = 0; i < o.schedule->energy_kwh.size(); ++i) {
      load.AddAt(o.schedule->start + static_cast<int64_t>(i) * kMinutesPerSlice,
                 sign * o.schedule->energy_kwh[i]);
    }
  }
  return load;
}

PlanDeviation ComputePlanDeviation(const std::vector<FlexOffer>& offers,
                                   const TimeSeries& realized) {
  PlanDeviation dev;
  TimeSeries planned = PlannedLoad(offers);
  // deviation = realized - planned, over the union of both extents.
  timeutil::TimeInterval extent = planned.interval().Span(realized.interval());
  if (extent.empty()) return dev;
  dev.deviation = TimeSeries(extent.start,
                             static_cast<size_t>(extent.duration_minutes() / kMinutesPerSlice));
  dev.deviation.Add(realized);
  dev.deviation.Subtract(planned);
  dev.total_abs_kwh = dev.deviation.AbsTotal();
  for (double v : dev.deviation.values()) {
    dev.max_abs_kwh = std::max(dev.max_abs_kwh, std::abs(v));
  }
  return dev;
}

BalancingPotential ComputeBalancingPotential(const std::vector<FlexOffer>& offers) {
  BalancingPotential bp;
  double sum_shift_ratio = 0.0;
  int64_t n = 0;
  for (const FlexOffer& o : offers) {
    bp.total_max_energy_kwh += o.total_max_energy_kwh();
    bp.total_flexible_energy_kwh += o.energy_flexibility_kwh();
    const double tf = static_cast<double>(o.time_flexibility_minutes());
    const double dur = static_cast<double>(o.profile_duration_minutes());
    if (tf + dur > 0.0) {
      sum_shift_ratio += tf / (tf + dur);
      ++n;
    }
  }
  if (bp.total_max_energy_kwh > 0.0) {
    bp.energy_slack_ratio = bp.total_flexible_energy_kwh / bp.total_max_energy_kwh;
  }
  if (n > 0) bp.time_shift_ratio = sum_shift_ratio / static_cast<double>(n);
  bp.potential = bp.energy_slack_ratio * bp.time_shift_ratio;
  return bp;
}

}  // namespace flexvis::core
