#ifndef FLEXVIS_CORE_LOCAL_SEARCH_H_
#define FLEXVIS_CORE_LOCAL_SEARCH_H_

#include <vector>

#include "core/scheduler.h"
#include "util/rng.h"
#include "util/status.h"

namespace flexvis::core {

/// Parameters of the local-search improvement pass.
struct LocalSearchParams {
  /// Candidate moves to try. Each move re-places one scheduled offer at a
  /// different feasible start (re-chasing the residual) and keeps the move
  /// iff total |residual| does not increase.
  int iterations = 2000;
  uint64_t seed = 1;
  /// Stop early when this many consecutive moves brought no improvement.
  int patience = 500;
};

/// Result of an improvement run.
struct LocalSearchResult {
  std::vector<FlexOffer> offers;
  double imbalance_before_kwh = 0.0;  // of the incoming plan
  double imbalance_after_kwh = 0.0;   // after improvement
  int moves_tried = 0;
  int moves_accepted = 0;
};

/// Stochastic local search over start times, standing in for the
/// evolutionary scheduler of Tušar et al. (BIOMA 2012) the paper cites: it
/// takes a feasible plan (typically the greedy Scheduler's output) and
/// iteratively relocates single offers within their flexibility windows,
/// accepting only non-worsening moves — so the result is never worse than
/// the input and every schedule stays feasible.
class LocalSearchImprover {
 public:
  explicit LocalSearchImprover(LocalSearchParams params) : params_(params) {}
  LocalSearchImprover() : LocalSearchImprover(LocalSearchParams{}) {}

  const LocalSearchParams& params() const { return params_; }

  /// Improves `plan` against `target`. Offers without schedules pass through
  /// untouched.
  LocalSearchResult Improve(const std::vector<FlexOffer>& plan,
                            const TimeSeries& target) const;

 private:
  LocalSearchParams params_;
};

}  // namespace flexvis::core

#endif  // FLEXVIS_CORE_LOCAL_SEARCH_H_
