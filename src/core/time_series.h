#ifndef FLEXVIS_CORE_TIME_SERIES_H_
#define FLEXVIS_CORE_TIME_SERIES_H_

#include <vector>

#include "time/time_point.h"
#include "util/status.h"

namespace flexvis::core {

/// A fixed-resolution time series on the 15-minute market grid: `values[i]`
/// covers [start + i*15min, start + (i+1)*15min). Used for demand/production
/// curves, forecasts, plans, and prices. Out-of-range reads return 0, which
/// matches "no load outside the horizon" semantics everywhere the library
/// uses series.
class TimeSeries {
 public:
  /// Empty series anchored at the epoch.
  TimeSeries() = default;

  /// `count` zero slices starting at `start` (must be slice-aligned; a
  /// non-aligned start is truncated down to the grid).
  TimeSeries(timeutil::TimePoint start, size_t count);

  /// Series with explicit values.
  TimeSeries(timeutil::TimePoint start, std::vector<double> values);

  timeutil::TimePoint start() const { return start_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const std::vector<double>& values() const { return values_; }

  /// End of the covered interval (exclusive).
  timeutil::TimePoint end() const {
    return start_ + static_cast<int64_t>(values_.size()) * timeutil::kMinutesPerSlice;
  }

  /// The covered half-open interval.
  timeutil::TimeInterval interval() const { return {start_, end()}; }

  /// Value of the slice containing `t`; 0 outside the series.
  double At(timeutil::TimePoint t) const;

  /// Value by slice index; 0 outside the series.
  double AtIndex(int64_t index) const;

  /// Mutable access by index; the series is extended with zeros as needed
  /// (indices before `start` are not supported and abort).
  void Set(int64_t index, double value);

  /// Adds `value` to the slice containing `t`, extending the series forward
  /// if necessary. Times before start() are ignored (and reported false).
  bool AddAt(timeutil::TimePoint t, double value);

  /// Index of the slice containing `t` (may be negative or past the end).
  int64_t IndexOf(timeutil::TimePoint t) const;

  /// Element-wise addition of `other` (aligned by absolute time). The
  /// receiver is extended to cover `other` if needed; slices of `other`
  /// before this->start() are ignored.
  void Add(const TimeSeries& other);

  /// Element-wise subtraction, same alignment rules as Add.
  void Subtract(const TimeSeries& other);

  /// Multiplies every value by `factor`.
  void Scale(double factor);

  /// Clamps every value into [lo, hi].
  void Clamp(double lo, double hi);

  /// Sum of all values (kWh if values are per-slice kWh).
  double Total() const;

  /// Smallest / largest value; 0 for an empty series.
  double Min() const;
  double Max() const;

  /// Mean value; 0 for an empty series.
  double Mean() const;

  /// Sum of |values|.
  double AbsTotal() const;

  /// Returns the sub-series covering `window` (clipped to the series extent).
  TimeSeries Slice(const timeutil::TimeInterval& window) const;

  /// Re-buckets into coarser slices of `slices_per_bucket` unit slices,
  /// summing values. Requires slices_per_bucket >= 1.
  TimeSeries Downsample(int slices_per_bucket) const;

  friend bool operator==(const TimeSeries& a, const TimeSeries& b) {
    return a.start_ == b.start_ && a.values_ == b.values_;
  }

 private:
  timeutil::TimePoint start_;
  std::vector<double> values_;
};

}  // namespace flexvis::core

#endif  // FLEXVIS_CORE_TIME_SERIES_H_
