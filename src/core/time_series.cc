#include "core/time_series.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "time/granularity.h"

namespace flexvis::core {

using timeutil::Granularity;
using timeutil::kMinutesPerSlice;
using timeutil::TimeInterval;
using timeutil::TimePoint;

TimeSeries::TimeSeries(TimePoint start, size_t count)
    : start_(timeutil::TruncateTo(start, Granularity::kSlice)), values_(count, 0.0) {}

TimeSeries::TimeSeries(TimePoint start, std::vector<double> values)
    : start_(timeutil::TruncateTo(start, Granularity::kSlice)), values_(std::move(values)) {}

double TimeSeries::At(TimePoint t) const { return AtIndex(IndexOf(t)); }

double TimeSeries::AtIndex(int64_t index) const {
  if (index < 0 || index >= static_cast<int64_t>(values_.size())) return 0.0;
  return values_[static_cast<size_t>(index)];
}

void TimeSeries::Set(int64_t index, double value) {
  if (index < 0) std::abort();
  if (index >= static_cast<int64_t>(values_.size())) {
    values_.resize(static_cast<size_t>(index) + 1, 0.0);
  }
  values_[static_cast<size_t>(index)] = value;
}

bool TimeSeries::AddAt(TimePoint t, double value) {
  int64_t index = IndexOf(t);
  if (index < 0) return false;
  if (index >= static_cast<int64_t>(values_.size())) {
    values_.resize(static_cast<size_t>(index) + 1, 0.0);
  }
  values_[static_cast<size_t>(index)] += value;
  return true;
}

int64_t TimeSeries::IndexOf(TimePoint t) const {
  int64_t delta = t - start_;
  // Floor division for pre-start times.
  int64_t idx = delta / kMinutesPerSlice;
  if (delta % kMinutesPerSlice != 0 && delta < 0) --idx;
  return idx;
}

void TimeSeries::Add(const TimeSeries& other) {
  for (size_t i = 0; i < other.values_.size(); ++i) {
    TimePoint t = other.start_ + static_cast<int64_t>(i) * kMinutesPerSlice;
    AddAt(t, other.values_[i]);
  }
}

void TimeSeries::Subtract(const TimeSeries& other) {
  for (size_t i = 0; i < other.values_.size(); ++i) {
    TimePoint t = other.start_ + static_cast<int64_t>(i) * kMinutesPerSlice;
    AddAt(t, -other.values_[i]);
  }
}

void TimeSeries::Scale(double factor) {
  for (double& v : values_) v *= factor;
}

void TimeSeries::Clamp(double lo, double hi) {
  for (double& v : values_) v = std::clamp(v, lo, hi);
}

double TimeSeries::Total() const {
  double total = 0.0;
  for (double v : values_) total += v;
  return total;
}

double TimeSeries::Min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::Max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double TimeSeries::Mean() const {
  if (values_.empty()) return 0.0;
  return Total() / static_cast<double>(values_.size());
}

double TimeSeries::AbsTotal() const {
  double total = 0.0;
  for (double v : values_) total += std::abs(v);
  return total;
}

TimeSeries TimeSeries::Slice(const TimeInterval& window) const {
  TimeInterval clipped = interval().Intersect(window);
  if (clipped.empty()) return TimeSeries();
  int64_t first = IndexOf(clipped.start);
  int64_t last = IndexOf(clipped.end - 1);
  std::vector<double> out(values_.begin() + first, values_.begin() + last + 1);
  return TimeSeries(start_ + first * kMinutesPerSlice, std::move(out));
}

TimeSeries TimeSeries::Downsample(int slices_per_bucket) const {
  if (slices_per_bucket <= 1) return *this;
  size_t buckets = (values_.size() + slices_per_bucket - 1) / slices_per_bucket;
  std::vector<double> out(buckets, 0.0);
  for (size_t i = 0; i < values_.size(); ++i) {
    out[i / static_cast<size_t>(slices_per_bucket)] += values_[i];
  }
  // NOTE: the bucketing is relative to start_, which is slice-aligned but not
  // necessarily aligned to the coarser bucket; callers that need calendar
  // alignment should Slice() to an aligned window first.
  return TimeSeries(start_, std::move(out));
}

}  // namespace flexvis::core
