#ifndef FLEXVIS_CORE_FLEX_OFFER_H_
#define FLEXVIS_CORE_FLEX_OFFER_H_

#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "time/time_point.h"
#include "util/status.h"

namespace flexvis::core {

/// One interval of a flex-offer profile: for `duration_slices` consecutive
/// 15-minute market slices the prosumer requires (or offers) an energy amount
/// between `min_energy_kwh` and `max_energy_kwh` *per slice*. The spread
/// between the bounds is the offer's energy flexibility in that interval
/// (Fig. 2 of the paper).
struct ProfileSlice {
  int duration_slices = 1;
  double min_energy_kwh = 0.0;
  double max_energy_kwh = 0.0;

  friend bool operator==(const ProfileSlice& a, const ProfileSlice& b) {
    return a.duration_slices == b.duration_slices && a.min_energy_kwh == b.min_energy_kwh &&
           a.max_energy_kwh == b.max_energy_kwh;
  }
};

/// The schedule the enterprise attaches to an accepted flex-offer during
/// planning: a concrete start time within the offer's start-time flexibility
/// interval, and a per-profile-slice energy amount within the slice's
/// [min, max] bounds ("Scheduled Energy and Start Time", Req. 1).
struct Schedule {
  timeutil::TimePoint start;
  /// One value per 15-minute *unit* slice of the owning offer's profile
  /// (i.e. size == profile_duration_slices()). Unit resolution is required so
  /// disaggregation can distribute an aggregate's schedule exactly even when
  /// member profiles overlap the aggregate's slices at different offsets.
  std::vector<double> energy_kwh;

  friend bool operator==(const Schedule& a, const Schedule& b) {
    return a.start == b.start && a.energy_kwh == b.energy_kwh;
  }
};

/// A flex-offer (Fig. 2): a prosumer's intent or capability to consume or
/// produce energy within a fixed future time window, with explicit time and
/// energy flexibility. This is a passive data object; `Validate` checks the
/// structural invariants, and the derived quantities are provided as const
/// helpers.
struct FlexOffer {
  FlexOfferId id = kInvalidFlexOfferId;
  ProsumerId prosumer = kInvalidProsumerId;

  /// Dimension attributes used by filtering/grouping (Section 3).
  RegionId region = kInvalidRegionId;
  GridNodeId grid_node = kInvalidGridNodeId;
  EnergyType energy_type = EnergyType::kMixedGrid;
  ProsumerType prosumer_type = ProsumerType::kHousehold;
  ApplianceType appliance_type = ApplianceType::kWashingMachine;

  Direction direction = Direction::kConsumption;
  FlexOfferState state = FlexOfferState::kOffered;

  /// When the prosumer created the offer.
  timeutil::TimePoint creation_time;
  /// Latest moment for the enterprise to send the acceptance message.
  timeutil::TimePoint acceptance_deadline;
  /// Latest moment for the enterprise to send the assignment (schedule).
  timeutil::TimePoint assignment_deadline;

  /// Start-time flexibility interval: execution may begin anywhere in
  /// [earliest_start, latest_start].
  timeutil::TimePoint earliest_start;
  timeutil::TimePoint latest_start;

  /// The energy profile, executed contiguously from the chosen start.
  std::vector<ProfileSlice> profile;

  /// Present once the offer is assigned.
  std::optional<Schedule> schedule;

  /// For offers produced by the Aggregator: ids of the constituent offers
  /// ("indications on which flex-offers were aggregated to produce the
  /// pointed flex-offer", Fig. 10). Empty for raw prosumer offers.
  std::vector<FlexOfferId> aggregated_from;

  // ---- Derived quantities -------------------------------------------------

  /// True if this offer is the result of aggregation (drawn light red in the
  /// basic view; raw offers are light blue).
  bool is_aggregate() const { return !aggregated_from.empty(); }

  /// Total profile duration in 15-minute slices.
  int profile_duration_slices() const;

  /// Profile duration in minutes.
  int64_t profile_duration_minutes() const {
    return profile_duration_slices() * timeutil::kMinutesPerSlice;
  }

  /// Latest possible end of execution (latest_start + profile duration);
  /// "5am, latest end time" in Fig. 2.
  timeutil::TimePoint latest_end() const { return latest_start + profile_duration_minutes(); }

  /// Start-time flexibility in minutes (latest_start - earliest_start).
  int64_t time_flexibility_minutes() const { return latest_start - earliest_start; }

  /// Sum over the profile of the per-slice minimum energy (kWh), counting
  /// multi-unit slices once per unit.
  double total_min_energy_kwh() const;

  /// Sum over the profile of the per-slice maximum energy (kWh).
  double total_max_energy_kwh() const;

  /// total_max - total_min: the offer's total energy flexibility (kWh).
  double energy_flexibility_kwh() const { return total_max_energy_kwh() - total_min_energy_kwh(); }

  /// Total scheduled energy (kWh); 0 when unassigned.
  double total_scheduled_energy_kwh() const;

  /// The full temporal extent the offer can possibly occupy:
  /// [earliest_start, latest_end). This drives lane stacking in the views.
  timeutil::TimeInterval extent() const {
    return timeutil::TimeInterval(earliest_start, latest_end());
  }

  /// The largest per-unit-slice max energy; drives the ordinate scale of the
  /// profile view.
  double peak_energy_kwh() const;

  /// Expands the run-length-encoded profile to one entry per 15-minute unit
  /// slice (used by aggregation and scheduling, which work on the unit grid).
  std::vector<ProfileSlice> UnitProfile() const;
};

/// Checks the structural invariants of `offer`:
///  - profile non-empty, every slice has duration >= 1 and 0 <= min <= max;
///  - earliest_start <= latest_start;
///  - start times aligned to the 15-minute grid;
///  - creation <= acceptance deadline <= assignment deadline <= latest_start;
///  - if a schedule is present: one energy per unit slice, start within
///    [earliest_start, latest_start], slice-aligned, energies within bounds.
Status Validate(const FlexOffer& offer);

/// One-line description used by hover tooltips and diagnostics.
std::string Describe(const FlexOffer& offer);

}  // namespace flexvis::core

#endif  // FLEXVIS_CORE_FLEX_OFFER_H_
