#include "core/scheduler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace flexvis::core {

using timeutil::kMinutesPerSlice;
using timeutil::TimePoint;

namespace {

// Residual-chasing assignment: for a fixed start, pick per-unit energies
// within bounds that best absorb the remaining residual (target - planned).
// Returns the *change* in total squared residual caused by the hypothetical
// placement, Σ((r - s·e)² - r²) over the affected slices, and fills
// `energies`. Using the delta (not the absolute local cost) is what makes
// the greedy prefer eating a large surplus elsewhere over hiding in a
// zero-residual slot.
double EvaluatePlacement(const FlexOffer& offer, const std::vector<ProfileSlice>& units,
                         TimePoint start, const TimeSeries& residual,
                         std::vector<double>* energies) {
  const double sign = offer.direction == Direction::kConsumption ? 1.0 : -1.0;
  energies->resize(units.size());
  double delta = 0.0;
  for (size_t i = 0; i < units.size(); ++i) {
    TimePoint t = start + static_cast<int64_t>(i) * kMinutesPerSlice;
    const double r = residual.At(t);
    // Ideal signed load equals the residual; translate into the offer's
    // (non-negative) energy domain and clamp into the slice bounds.
    const double ideal = sign * r;
    const double e = std::clamp(ideal, units[i].min_energy_kwh, units[i].max_energy_kwh);
    (*energies)[i] = e;
    const double after = r - sign * e;
    delta += after * after - r * r;
  }
  return delta;
}

}  // namespace

ScheduleResult Scheduler::Plan(const std::vector<FlexOffer>& offers,
                               const TimeSeries& target) const {
  ScheduleResult result;
  result.offers = offers;

  // Residual starts as the full target; each placed offer eats its share.
  TimeSeries residual = target;
  result.imbalance_before_kwh = residual.AbsTotal();

  // Union of extents for the planned-load series.
  timeutil::TimeInterval extent = target.interval();
  for (const FlexOffer& o : result.offers) extent = extent.Span(o.extent());
  result.planned_load =
      TimeSeries(extent.start, static_cast<size_t>(extent.duration_minutes() / kMinutesPerSlice));

  // Greedy order.
  std::vector<size_t> order(result.offers.size());
  std::iota(order.begin(), order.end(), 0);
  switch (params_.order) {
    case SchedulerParams::Order::kLeastFlexibleFirst:
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return result.offers[a].time_flexibility_minutes() <
               result.offers[b].time_flexibility_minutes();
      });
      break;
    case SchedulerParams::Order::kLargestEnergyFirst:
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return result.offers[a].total_max_energy_kwh() > result.offers[b].total_max_energy_kwh();
      });
      break;
    case SchedulerParams::Order::kArrival:
      break;
  }

  for (size_t idx : order) {
    FlexOffer& offer = result.offers[idx];
    if (!Validate(offer).ok()) continue;
    const std::vector<ProfileSlice> units = offer.UnitProfile();
    const double sign = offer.direction == Direction::kConsumption ? 1.0 : -1.0;

    // Try every slice-aligned start within the flexibility window.
    TimePoint best_start = offer.earliest_start;
    std::vector<double> best_energy;
    double best_cost = 0.0;
    bool first = true;
    std::vector<double> scratch;
    for (TimePoint s = offer.earliest_start; s <= offer.latest_start;
         s = s + kMinutesPerSlice) {
      double cost = EvaluatePlacement(offer, units, s, residual, &scratch);
      if (first || cost < best_cost) {
        best_cost = cost;
        best_start = s;
        best_energy = scratch;
        first = false;
      }
    }

    // Rejection: best_cost is the squared-residual delta of the best
    // placement; a positive delta means even the best slot makes the plan
    // worse. Reject when that damage exceeds the tolerated fraction of the
    // offer's mandatory energy.
    if (params_.rejection_threshold >= 0.0) {
      double min_energy = offer.total_min_energy_kwh();
      if (min_energy > 0.0 &&
          best_cost > params_.rejection_threshold * min_energy * min_energy) {
        offer.state = FlexOfferState::kRejected;
        offer.schedule.reset();
        ++result.rejected;
        continue;
      }
    }

    // Commit the placement.
    Schedule sched;
    sched.start = best_start;
    sched.energy_kwh = best_energy;
    for (size_t i = 0; i < best_energy.size(); ++i) {
      TimePoint t = best_start + static_cast<int64_t>(i) * kMinutesPerSlice;
      residual.AddAt(t, -sign * best_energy[i]);
      result.planned_load.AddAt(t, sign * best_energy[i]);
    }
    offer.schedule = std::move(sched);
    offer.state = FlexOfferState::kAssigned;
    ++result.accepted;
  }

  result.imbalance_after_kwh = residual.AbsTotal();
  return result;
}

}  // namespace flexvis::core
