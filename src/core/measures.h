#ifndef FLEXVIS_CORE_MEASURES_H_
#define FLEXVIS_CORE_MEASURES_H_

#include <array>
#include <string_view>
#include <vector>

#include "core/flex_offer.h"
#include "core/profile_columns.h"
#include "core/time_series.h"
#include "util/status.h"

namespace flexvis::core {

/// The aggregate measures the framework must support over sets of flex-offers
/// (Req. 2, Section 3 of the paper): flex-offer count, attribute value
/// statistics, scheduled energy, plan deviations, and energy balancing
/// potential.

/// Per-state counts ("total number of accepted, assigned, or rejected
/// flex-offers in the plan").
struct StateCounts {
  std::array<int64_t, kNumFlexOfferStates> by_state{};

  int64_t total() const;
  int64_t operator[](FlexOfferState s) const { return by_state[static_cast<size_t>(s)]; }
  /// Fraction of `total()` in state `s`; 0 when empty.
  double Fraction(FlexOfferState s) const;
};

StateCounts CountByState(const std::vector<FlexOffer>& offers);

/// Columnar form: flat sweep over the state column. Byte-identical to the
/// AoS overload for columns built from the same offers.
StateCounts CountByState(const ProfileColumns& cols);

/// Min/max/mean/sum summary of one numeric flex-offer attribute ("the
/// minimum/maximum/average price, energy, or flexibility defined by
/// flex-offers").
struct AttributeStats {
  int64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// Numeric attributes a summary can be requested for.
enum class NumericAttribute {
  kTotalMinEnergyKwh,
  kTotalMaxEnergyKwh,
  kEnergyFlexibilityKwh,
  kTimeFlexibilityMinutes,
  kProfileDurationSlices,
  kScheduledEnergyKwh,
};

std::string_view NumericAttributeName(NumericAttribute attribute);

/// Extracts `attribute` from one offer.
double AttributeValue(const FlexOffer& offer, NumericAttribute attribute);

/// Summarizes `attribute` over `offers`.
AttributeStats Summarize(const std::vector<FlexOffer>& offers, NumericAttribute attribute);

/// Columnar form: flat sweeps over the per-offer derived columns (min/max
/// vectorize; the sum keeps the fixed left-to-right order). Byte-identical
/// to the AoS overload.
AttributeStats Summarize(const ProfileColumns& cols, NumericAttribute attribute);

/// Total scheduled energy over `offers` in kWh, and the signed planned load
/// series (consumption positive). Offers without schedules contribute 0.
double TotalScheduledEnergyKwh(const std::vector<FlexOffer>& offers);
TimeSeries PlannedLoad(const std::vector<FlexOffer>& offers);

/// Columnar forms, byte-identical to the AoS overloads.
double TotalScheduledEnergyKwh(const ProfileColumns& cols);
TimeSeries PlannedLoad(const ProfileColumns& cols);

/// Plan deviation: per-slice difference between the planned load of `offers`
/// and the physically realized load ("a difference between the amounts of
/// energy in the plan and in the physical realization of the plan").
struct PlanDeviation {
  TimeSeries deviation;         // realized - planned, per slice
  double total_abs_kwh = 0.0;   // Σ |deviation|
  double max_abs_kwh = 0.0;     // worst slice
};

PlanDeviation ComputePlanDeviation(const std::vector<FlexOffer>& offers,
                                   const TimeSeries& realized);

/// Energy balancing potential ("a measure on how well energy can be balanced
/// utilizing flex-offers. The measure is computed from the total amount of
/// energy and the flexibility prosumers offer with their flex-offers").
///
/// We define it as the product of two normalized factors, each in [0, 1]:
///  - energy slack ratio: Σ(max-min) / Σmax — how much of the offered energy
///    is adjustable in amount;
///  - time shift ratio: mean over offers of TF/(TF + profile duration) — how
///    far offers can be moved relative to their length.
/// The result is in [0, 1]; 0 means a completely rigid portfolio, values
/// toward 1 mean nearly all offered energy can be reshaped and shifted.
struct BalancingPotential {
  double energy_slack_ratio = 0.0;
  double time_shift_ratio = 0.0;
  double potential = 0.0;  // energy_slack_ratio * time_shift_ratio
  double total_max_energy_kwh = 0.0;
  double total_flexible_energy_kwh = 0.0;
};

BalancingPotential ComputeBalancingPotential(const std::vector<FlexOffer>& offers);

/// Columnar form, byte-identical to the AoS overload.
BalancingPotential ComputeBalancingPotential(const ProfileColumns& cols);

}  // namespace flexvis::core

#endif  // FLEXVIS_CORE_MEASURES_H_
