#include "core/messages.h"

#include "util/fault.h"
#include "util/strings.h"

namespace flexvis::core {

using timeutil::TimePoint;

JsonValue FlexOfferToJson(const FlexOffer& offer) {
  JsonValue json = JsonValue::Object();
  json.Set("id", JsonValue::Int(offer.id));
  json.Set("prosumer", JsonValue::Int(offer.prosumer));
  json.Set("region", JsonValue::Int(offer.region));
  json.Set("grid_node", JsonValue::Int(offer.grid_node));
  json.Set("energy_type", JsonValue::Str(std::string(EnergyTypeName(offer.energy_type))));
  json.Set("prosumer_type",
           JsonValue::Str(std::string(ProsumerTypeName(offer.prosumer_type))));
  json.Set("appliance_type",
           JsonValue::Str(std::string(ApplianceTypeName(offer.appliance_type))));
  json.Set("direction", JsonValue::Str(std::string(DirectionName(offer.direction))));
  json.Set("state", JsonValue::Str(std::string(FlexOfferStateName(offer.state))));
  json.Set("creation_min", JsonValue::Int(offer.creation_time.minutes()));
  json.Set("acceptance_min", JsonValue::Int(offer.acceptance_deadline.minutes()));
  json.Set("assignment_min", JsonValue::Int(offer.assignment_deadline.minutes()));
  json.Set("earliest_start_min", JsonValue::Int(offer.earliest_start.minutes()));
  json.Set("latest_start_min", JsonValue::Int(offer.latest_start.minutes()));

  JsonValue profile = JsonValue::Array();
  for (const ProfileSlice& s : offer.profile) {
    JsonValue slice = JsonValue::Object();
    slice.Set("slices", JsonValue::Int(s.duration_slices));
    slice.Set("min_kwh", JsonValue::Double(s.min_energy_kwh));
    slice.Set("max_kwh", JsonValue::Double(s.max_energy_kwh));
    profile.Append(std::move(slice));
  }
  json.Set("profile", std::move(profile));

  if (offer.schedule.has_value()) {
    JsonValue sched = JsonValue::Object();
    sched.Set("start_min", JsonValue::Int(offer.schedule->start.minutes()));
    JsonValue energies = JsonValue::Array();
    for (double e : offer.schedule->energy_kwh) energies.Append(JsonValue::Double(e));
    sched.Set("energy_kwh", std::move(energies));
    json.Set("schedule", std::move(sched));
  }
  if (!offer.aggregated_from.empty()) {
    JsonValue members = JsonValue::Array();
    for (FlexOfferId id : offer.aggregated_from) members.Append(JsonValue::Int(id));
    json.Set("aggregated_from", std::move(members));
  }
  return json;
}

Result<FlexOffer> FlexOfferFromJson(const JsonValue& json) {
  if (!json.is_object()) return InvalidArgumentError("flex-offer JSON must be an object");
  FlexOffer offer;
  {
    Result<int64_t> v = json.GetInt("id");
    if (!v.ok()) return v.status();
    offer.id = *v;
  }
  {
    Result<int64_t> v = json.GetInt("prosumer");
    if (!v.ok()) return v.status();
    offer.prosumer = *v;
  }
  offer.region = json.Get("region").is_number() ? json.Get("region").AsInt()
                                                : kInvalidRegionId;
  offer.grid_node = json.Get("grid_node").is_number() ? json.Get("grid_node").AsInt()
                                                      : kInvalidGridNodeId;
  {
    Result<std::string> s = json.GetString("energy_type");
    if (!s.ok()) return s.status();
    Result<EnergyType> parsed = ParseEnergyType(*s);
    if (!parsed.ok()) return parsed.status();
    offer.energy_type = *parsed;
  }
  {
    Result<std::string> s = json.GetString("prosumer_type");
    if (!s.ok()) return s.status();
    Result<ProsumerType> parsed = ParseProsumerType(*s);
    if (!parsed.ok()) return parsed.status();
    offer.prosumer_type = *parsed;
  }
  {
    Result<std::string> s = json.GetString("appliance_type");
    if (!s.ok()) return s.status();
    Result<ApplianceType> parsed = ParseApplianceType(*s);
    if (!parsed.ok()) return parsed.status();
    offer.appliance_type = *parsed;
  }
  {
    Result<std::string> s = json.GetString("direction");
    if (!s.ok()) return s.status();
    offer.direction = EqualsIgnoreCase(*s, "Production") ? Direction::kProduction
                                                         : Direction::kConsumption;
  }
  {
    Result<std::string> s = json.GetString("state");
    if (!s.ok()) return s.status();
    Result<FlexOfferState> parsed = ParseFlexOfferState(*s);
    if (!parsed.ok()) return parsed.status();
    offer.state = *parsed;
  }
  struct TimeField {
    const char* key;
    TimePoint* target;
  };
  TimeField fields[] = {
      {"creation_min", &offer.creation_time},
      {"acceptance_min", &offer.acceptance_deadline},
      {"assignment_min", &offer.assignment_deadline},
      {"earliest_start_min", &offer.earliest_start},
      {"latest_start_min", &offer.latest_start},
  };
  for (const TimeField& f : fields) {
    Result<int64_t> v = json.GetInt(f.key);
    if (!v.ok()) return v.status();
    *f.target = TimePoint::FromMinutes(*v);
  }

  const JsonValue& profile = json.Get("profile");
  if (!profile.is_array()) return InvalidArgumentError("flex-offer JSON: missing profile");
  for (size_t i = 0; i < profile.size(); ++i) {
    const JsonValue& slice = profile[i];
    Result<int64_t> slices = slice.GetInt("slices");
    Result<double> min_kwh = slice.GetDouble("min_kwh");
    Result<double> max_kwh = slice.GetDouble("max_kwh");
    if (!slices.ok()) return slices.status();
    if (!min_kwh.ok()) return min_kwh.status();
    if (!max_kwh.ok()) return max_kwh.status();
    offer.profile.push_back(
        ProfileSlice{static_cast<int>(*slices), *min_kwh, *max_kwh});
  }

  if (json.Has("schedule")) {
    const JsonValue& sched = json.Get("schedule");
    Result<int64_t> start = sched.GetInt("start_min");
    if (!start.ok()) return start.status();
    Schedule schedule;
    schedule.start = TimePoint::FromMinutes(*start);
    const JsonValue& energies = sched.Get("energy_kwh");
    if (!energies.is_array()) {
      return InvalidArgumentError("flex-offer JSON: schedule without energy_kwh");
    }
    for (size_t i = 0; i < energies.size(); ++i) {
      if (!energies[i].is_number()) {
        return InvalidArgumentError("flex-offer JSON: non-numeric scheduled energy");
      }
      schedule.energy_kwh.push_back(energies[i].AsDouble());
    }
    offer.schedule = std::move(schedule);
  }
  if (json.Has("aggregated_from")) {
    const JsonValue& members = json.Get("aggregated_from");
    if (!members.is_array()) {
      return InvalidArgumentError("flex-offer JSON: aggregated_from must be an array");
    }
    for (size_t i = 0; i < members.size(); ++i) {
      if (!members[i].is_number()) {
        return InvalidArgumentError("flex-offer JSON: non-numeric member id");
      }
      offer.aggregated_from.push_back(members[i].AsInt());
    }
  }
  return offer;
}

namespace {

constexpr const char* kTypeFlexOffer = "flex_offer";
constexpr const char* kTypeAcceptance = "acceptance";
constexpr const char* kTypeAssignment = "assignment";

}  // namespace

std::string EncodeMessage(const Message& message) {
  JsonValue envelope = JsonValue::Object();
  if (const FlexOffer* offer = std::get_if<FlexOffer>(&message)) {
    envelope.Set("type", JsonValue::Str(kTypeFlexOffer));
    envelope.Set("payload", FlexOfferToJson(*offer));
  } else if (const AcceptanceMessage* acc = std::get_if<AcceptanceMessage>(&message)) {
    envelope.Set("type", JsonValue::Str(kTypeAcceptance));
    JsonValue payload = JsonValue::Object();
    payload.Set("offer", JsonValue::Int(acc->offer));
    payload.Set("accepted", JsonValue::Bool(acc->accepted));
    payload.Set("sent_at_min", JsonValue::Int(acc->sent_at.minutes()));
    envelope.Set("payload", std::move(payload));
  } else if (const AssignmentMessage* assign = std::get_if<AssignmentMessage>(&message)) {
    envelope.Set("type", JsonValue::Str(kTypeAssignment));
    JsonValue payload = JsonValue::Object();
    payload.Set("offer", JsonValue::Int(assign->offer));
    payload.Set("start_min", JsonValue::Int(assign->schedule.start.minutes()));
    JsonValue energies = JsonValue::Array();
    for (double e : assign->schedule.energy_kwh) energies.Append(JsonValue::Double(e));
    payload.Set("energy_kwh", std::move(energies));
    payload.Set("sent_at_min", JsonValue::Int(assign->sent_at.minutes()));
    envelope.Set("payload", std::move(payload));
  }
  return envelope.Dump();
}

Result<Message> DecodeMessage(std::string_view text) {
  // A lossy gateway link: an armed fault here models an envelope lost or
  // garbled in transit. Typed, not retried — redelivery is the sender's job.
  FLEXVIS_FAULT_CHECK("core.messages.decode");
  Result<JsonValue> parsed = JsonValue::Parse(text);
  if (!parsed.ok()) return parsed.status();
  Result<std::string> type = parsed->GetString("type");
  if (!type.ok()) return type.status();
  const JsonValue& payload = parsed->Get("payload");
  if (!payload.is_object()) return InvalidArgumentError("message: missing payload");

  if (*type == kTypeFlexOffer) {
    Result<FlexOffer> offer = FlexOfferFromJson(payload);
    if (!offer.ok()) return offer.status();
    FLEXVIS_RETURN_IF_ERROR(Validate(*offer));
    return Message(*std::move(offer));
  }
  if (*type == kTypeAcceptance) {
    AcceptanceMessage msg;
    Result<int64_t> offer = payload.GetInt("offer");
    if (!offer.ok()) return offer.status();
    msg.offer = *offer;
    Result<bool> accepted = payload.GetBool("accepted");
    if (!accepted.ok()) return accepted.status();
    msg.accepted = *accepted;
    Result<int64_t> sent = payload.GetInt("sent_at_min");
    if (!sent.ok()) return sent.status();
    msg.sent_at = TimePoint::FromMinutes(*sent);
    return Message(std::move(msg));
  }
  if (*type == kTypeAssignment) {
    AssignmentMessage msg;
    Result<int64_t> offer = payload.GetInt("offer");
    if (!offer.ok()) return offer.status();
    msg.offer = *offer;
    Result<int64_t> start = payload.GetInt("start_min");
    if (!start.ok()) return start.status();
    msg.schedule.start = TimePoint::FromMinutes(*start);
    const JsonValue& energies = payload.Get("energy_kwh");
    if (!energies.is_array()) return InvalidArgumentError("assignment: missing energy_kwh");
    for (size_t i = 0; i < energies.size(); ++i) {
      if (!energies[i].is_number()) {
        return InvalidArgumentError("assignment: non-numeric energy");
      }
      msg.schedule.energy_kwh.push_back(energies[i].AsDouble());
    }
    Result<int64_t> sent = payload.GetInt("sent_at_min");
    if (!sent.ok()) return sent.status();
    msg.sent_at = TimePoint::FromMinutes(*sent);
    return Message(std::move(msg));
  }
  return InvalidArgumentError(StrFormat("message: unknown type '%s'", type->c_str()));
}

std::string EncodeFlexOffer(const FlexOffer& offer) { return FlexOfferToJson(offer).Dump(); }

Result<FlexOffer> DecodeFlexOffer(std::string_view text) {
  Result<JsonValue> parsed = JsonValue::Parse(text);
  if (!parsed.ok()) return parsed.status();
  return FlexOfferFromJson(*parsed);
}

}  // namespace flexvis::core
