#ifndef FLEXVIS_CORE_MESSAGES_H_
#define FLEXVIS_CORE_MESSAGES_H_

#include <string>
#include <variant>

#include "core/flex_offer.h"
#include "util/json.h"
#include "util/status.h"

namespace flexvis::core {

/// The message protocol of the MIRABEL ICT infrastructure (Section 2 of the
/// paper): prosumers submit flex-offer messages; the enterprise answers with
/// acceptance messages before the acceptance deadline and assignment
/// messages (carrying the schedule) before the assignment deadline. Encoded
/// as JSON envelopes {"type": ..., "sent_at": ..., "payload": {...}}.

/// "We accept/reject your offer" — sent before acceptance_deadline.
struct AcceptanceMessage {
  FlexOfferId offer = kInvalidFlexOfferId;
  bool accepted = false;
  timeutil::TimePoint sent_at;

  friend bool operator==(const AcceptanceMessage& a, const AcceptanceMessage& b) {
    return a.offer == b.offer && a.accepted == b.accepted && a.sent_at == b.sent_at;
  }
};

/// "Run your appliance like this" — sent before assignment_deadline.
struct AssignmentMessage {
  FlexOfferId offer = kInvalidFlexOfferId;
  Schedule schedule;
  timeutil::TimePoint sent_at;

  friend bool operator==(const AssignmentMessage& a, const AssignmentMessage& b) {
    return a.offer == b.offer && a.schedule == b.schedule && a.sent_at == b.sent_at;
  }
};

/// Any message on the bus.
using Message = std::variant<FlexOffer, AcceptanceMessage, AssignmentMessage>;

/// Flex-offer <-> JSON. The JSON form carries every field including profile
/// slices (RLE), schedule, and aggregation provenance, so
/// FlexOfferFromJson(FlexOfferToJson(o)) == o for valid offers.
JsonValue FlexOfferToJson(const FlexOffer& offer);
Result<FlexOffer> FlexOfferFromJson(const JsonValue& json);

/// Message envelope <-> JSON text. Decoding validates the payload (a
/// flex-offer payload must pass core::Validate).
std::string EncodeMessage(const Message& message);
Result<Message> DecodeMessage(std::string_view text);

/// Convenience single-offer codec (the common case for storage files).
std::string EncodeFlexOffer(const FlexOffer& offer);
Result<FlexOffer> DecodeFlexOffer(std::string_view text);

}  // namespace flexvis::core

#endif  // FLEXVIS_CORE_MESSAGES_H_
