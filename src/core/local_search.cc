#include "core/local_search.h"

#include <algorithm>
#include <cmath>

namespace flexvis::core {

using timeutil::kMinutesPerSlice;
using timeutil::TimeInterval;
using timeutil::TimePoint;

namespace {

// Signed plan contribution of `schedule` at time t (0 outside its slices).
double ContributionAt(const Schedule& schedule, double sign, TimePoint t) {
  int64_t index = (t - schedule.start) / kMinutesPerSlice;
  if (t < schedule.start || index < 0 ||
      index >= static_cast<int64_t>(schedule.energy_kwh.size())) {
    return 0.0;
  }
  return sign * schedule.energy_kwh[static_cast<size_t>(index)];
}

// Adds (direction * factor) of `schedule` into `residual`. factor = -1
// commits (consumes residual), +1 un-commits.
void Apply(const Schedule& schedule, double sign, double factor, TimeSeries* residual) {
  for (size_t i = 0; i < schedule.energy_kwh.size(); ++i) {
    residual->AddAt(schedule.start + static_cast<int64_t>(i) * kMinutesPerSlice,
                    factor * sign * schedule.energy_kwh[i]);
  }
}

// Σ |base(t) - contribution(schedule, t)| over `window`. `base` must not
// include the offer's own commitment.
double ScoreOver(const TimeSeries& base, const Schedule& schedule, double sign,
                 const TimeInterval& window) {
  double total = 0.0;
  for (TimePoint t = window.start; t < window.end; t = t + kMinutesPerSlice) {
    total += std::abs(base.At(t) - ContributionAt(schedule, sign, t));
  }
  return total;
}

TimeInterval ScheduleWindow(const Schedule& schedule) {
  return TimeInterval(schedule.start,
                      schedule.start + static_cast<int64_t>(schedule.energy_kwh.size()) *
                                           kMinutesPerSlice);
}

}  // namespace

LocalSearchResult LocalSearchImprover::Improve(const std::vector<FlexOffer>& plan,
                                               const TimeSeries& target) const {
  LocalSearchResult result;
  result.offers = plan;

  // Build the residual (target minus all committed schedules).
  TimeSeries residual = target;
  std::vector<size_t> movable;
  for (size_t i = 0; i < result.offers.size(); ++i) {
    const FlexOffer& o = result.offers[i];
    if (!o.schedule.has_value()) continue;
    const double sign = o.direction == Direction::kConsumption ? 1.0 : -1.0;
    Apply(*o.schedule, sign, -1.0, &residual);
    if (o.time_flexibility_minutes() > 0) movable.push_back(i);
  }
  result.imbalance_before_kwh = residual.AbsTotal();
  result.imbalance_after_kwh = result.imbalance_before_kwh;
  if (movable.empty()) return result;

  Rng rng(params_.seed);
  int since_improvement = 0;
  for (int iter = 0; iter < params_.iterations && since_improvement < params_.patience;
       ++iter) {
    ++result.moves_tried;
    ++since_improvement;

    FlexOffer& offer =
        result.offers[movable[rng.UniformInt(0, static_cast<int64_t>(movable.size()) - 1)]];
    const double sign = offer.direction == Direction::kConsumption ? 1.0 : -1.0;
    const std::vector<ProfileSlice> units = offer.UnitProfile();

    // Work against the residual *without* this offer's commitment.
    Apply(*offer.schedule, sign, +1.0, &residual);

    // Candidate: a random feasible start, residual-chasing energies.
    int64_t steps = offer.time_flexibility_minutes() / kMinutesPerSlice;
    Schedule candidate;
    candidate.start = offer.earliest_start + rng.UniformInt(0, steps) * kMinutesPerSlice;
    candidate.energy_kwh.resize(units.size());
    for (size_t i = 0; i < units.size(); ++i) {
      double r = residual.At(candidate.start + static_cast<int64_t>(i) * kMinutesPerSlice);
      candidate.energy_kwh[i] =
          std::clamp(sign * r, units[i].min_energy_kwh, units[i].max_energy_kwh);
    }

    // Exact comparison over the union of both footprints: outside it the
    // residual is identical under either placement.
    TimeInterval window = ScheduleWindow(*offer.schedule).Span(ScheduleWindow(candidate));
    double score_old = ScoreOver(residual, *offer.schedule, sign, window);
    double score_new = ScoreOver(residual, candidate, sign, window);

    if (score_new + 1e-9 < score_old) {
      offer.schedule = candidate;
      ++result.moves_accepted;
      since_improvement = 0;
    }
    // Re-commit whichever schedule the offer now holds.
    Apply(*offer.schedule, sign, -1.0, &residual);
  }
  result.imbalance_after_kwh = residual.AbsTotal();
  return result;
}

}  // namespace flexvis::core
