#ifndef FLEXVIS_CORE_AGGREGATION_H_
#define FLEXVIS_CORE_AGGREGATION_H_

#include <vector>

#include "core/flex_offer.h"
#include "util/status.h"

namespace flexvis::core {

/// Parameters of the grid-based flex-offer aggregation of Šikšnys et al.
/// (SSDBM 2012), the algorithm integrated into the visualization tool
/// (Fig. 11: "interactive tuning values of the aggregation parameters").
///
/// Offers are partitioned into grid cells; one aggregate is built per cell.
/// Two offers land in the same cell only when their earliest start times lie
/// in the same `est_tolerance_minutes`-wide bucket and their time
/// flexibilities lie in the same `tft_tolerance_minutes`-wide bucket, so the
/// time flexibility lost by a member is bounded by the two tolerances.
struct AggregationParams {
  /// Width of the earliest-start-time grid (minutes). 0 means members must
  /// share the exact earliest start.
  int64_t est_tolerance_minutes = 60;

  /// Width of the time-flexibility grid (minutes). 0 means members must have
  /// identical time flexibility.
  int64_t tft_tolerance_minutes = 60;

  /// Maximum members per aggregate; 0 = unlimited. Groups larger than the
  /// cap are split in arrival order.
  int max_group_size = 0;

  /// When set, offers with different values of the attribute never share an
  /// aggregate. Direction is always a hard partition (consumption and
  /// production cannot be summed into one profile).
  bool partition_by_region = false;
  bool partition_by_energy_type = false;
  bool partition_by_prosumer_type = false;
  bool partition_by_appliance_type = false;
  bool partition_by_grid_node = false;
};

/// Result of one aggregation run.
struct AggregationResult {
  /// The aggregated offers. Singleton cells still yield an aggregate (with
  /// one constituent) so downstream code can treat the result uniformly.
  std::vector<FlexOffer> aggregates;

  /// Offers that could not be aggregated (failed validation); passed through
  /// untouched so no data silently disappears from a view.
  std::vector<FlexOffer> passthrough;
};

/// Grid-based start-alignment aggregator. Stateless apart from the id
/// counter used to number produced aggregates.
class Aggregator {
 public:
  explicit Aggregator(AggregationParams params) : params_(params) {}

  const AggregationParams& params() const { return params_; }

  /// Aggregates `offers`. `next_id` numbers the produced aggregates and is
  /// advanced past the ids consumed (in/out so repeated calls keep ids
  /// unique).
  ///
  /// Aggregate construction per cell (start alignment):
  ///  - aggregate earliest start = min of member earliest starts;
  ///  - member profiles are placed at their own earliest-start offsets and
  ///    min/max energies are summed per 15-minute unit slice;
  ///  - aggregate time flexibility = min of member time flexibilities, so any
  ///    start shift of the aggregate is feasible for every member;
  ///  - deadlines are the most restrictive member deadlines (clamped so the
  ///    aggregate still validates).
  AggregationResult Aggregate(const std::vector<FlexOffer>& offers, FlexOfferId* next_id) const;

 private:
  AggregationParams params_;
};

/// Reverses aggregation for one scheduled aggregate: distributes its start
/// shift and per-unit-slice energies onto copies of the member offers.
///
/// `members` must be exactly the offers listed in `aggregate.aggregated_from`
/// (same order not required). Each returned member carries a schedule with
///  - start = member earliest start + (aggregate scheduled start - aggregate
///    earliest start), and
///  - per-unit energies that distribute each aggregate slice's scheduled
///    energy proportionally to the member's share of the slice's energy
///    flexibility.
/// The distribution is exact: summing member schedules over absolute time
/// reproduces the aggregate schedule (up to floating-point rounding).
Result<std::vector<FlexOffer>> Disaggregate(const FlexOffer& aggregate,
                                            const std::vector<FlexOffer>& members);

/// Compresses consecutive unit slices with identical bounds back into
/// run-length-encoded profile slices.
std::vector<ProfileSlice> CompressProfile(const std::vector<ProfileSlice>& units);

/// Column form of CompressProfile: compresses parallel per-unit min/max
/// energy arrays of length `n` into run-length-encoded profile slices.
/// Byte-identical to CompressProfile over the equivalent unit slices.
std::vector<ProfileSlice> CompressColumns(const double* unit_min_kwh,
                                          const double* unit_max_kwh, size_t n);

}  // namespace flexvis::core

#endif  // FLEXVIS_CORE_AGGREGATION_H_
