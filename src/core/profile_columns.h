#ifndef FLEXVIS_CORE_PROFILE_COLUMNS_H_
#define FLEXVIS_CORE_PROFILE_COLUMNS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/flex_offer.h"

namespace flexvis::core {

/// Bump arena backing the columns: one contiguous allocation, every array
/// carved out of it at cache-line alignment. Building a column set touches
/// the allocator exactly once no matter how many offers it covers.
class ColumnArena {
 public:
  ColumnArena() = default;

  /// Discards all carved arrays and guarantees `bytes` of capacity.
  void Reset(size_t bytes);

  /// Carves a 64-byte-aligned array of `count` Ts (uninitialized).
  /// Precondition: the Reset() budget covers it.
  template <typename T>
  T* AllocateArray(size_t count) {
    return static_cast<T*>(AllocateBytes(count * sizeof(T)));
  }

  /// Rounds one array's byte size up to the arena's carve granularity; the
  /// Reset() budget is the sum of aligned sizes.
  static size_t AlignedSize(size_t bytes) { return (bytes + kAlign - 1) & ~(kAlign - 1); }

  size_t capacity() const { return capacity_; }

 private:
  static constexpr size_t kAlign = 64;

  void* AllocateBytes(size_t bytes);

  std::unique_ptr<std::byte[]> block_;
  size_t capacity_ = 0;
  size_t used_ = 0;
};

/// Structure-of-arrays view over a set of flex-offers' profiles and
/// schedules, plus the per-offer derived scalars the analytical roll-ups
/// consume. All arrays live in one arena allocation and are contiguous, so
/// the hot loops in aggregation, measures, and the OLAP feed are flat
/// restrict-qualified column sweeps instead of pointer-chasing per offer.
///
/// Layout:
///  - RLE slice columns `slice_duration/min/max` indexed by
///    [slice_offset(i), slice_offset(i+1)): a lossless image of
///    `FlexOffer::profile`, preserved so AoS -> SoA -> AoS round-trips
///    bit-exactly (unit expansion alone would erase the run-length
///    grouping).
///  - Unit-expanded envelope columns `unit_min/max_kwh` indexed by
///    [unit_offset(i), unit_offset(i+1)): the 15-minute grid aggregation
///    and scheduling operate on.
///  - Schedule columns `scheduled_kwh` (unit resolution, empty range when
///    the offer has no schedule) and `schedule_start_min`.
///  - Per-offer derived scalars (total_min/max/scheduled energy, duration,
///    time flexibility, earliest start, state, direction) computed during
///    the build in the exact floating-point order of the corresponding
///    `FlexOffer` helpers, so a column sweep and the AoS loop produce
///    byte-identical aggregates.
///
/// Malformed offers (negative durations, schedule size mismatches) are
/// stored as-is in the RLE/schedule columns — losslessness does not depend
/// on validity — while unit expansion clamps negative durations to zero.
class ProfileColumns {
 public:
  ProfileColumns() = default;
  ProfileColumns(ProfileColumns&&) = default;
  ProfileColumns& operator=(ProfileColumns&&) = default;

  /// Builds the columns for `offers` (arena-backed, chunk-deterministic).
  static ProfileColumns FromOffers(const std::vector<FlexOffer>& offers);

  /// Same over an indirection table (the aggregation grid holds pointers).
  static ProfileColumns FromPointers(const FlexOffer* const* offers, size_t count);

  size_t num_offers() const { return num_offers_; }
  size_t num_slices() const { return num_slices_; }
  size_t num_units() const { return num_units_; }
  size_t num_scheduled_units() const { return num_scheduled_units_; }

  // ---- RLE slice columns (lossless profile image) -------------------------
  const int32_t* slice_duration() const { return slice_duration_; }
  const double* slice_min_kwh() const { return slice_min_kwh_; }
  const double* slice_max_kwh() const { return slice_max_kwh_; }
  /// num_offers()+1 entries; offer i owns [slice_offset()[i], slice_offset()[i+1]).
  const size_t* slice_offset() const { return slice_offset_; }

  // ---- Unit-expanded envelope columns -------------------------------------
  const double* unit_min_kwh() const { return unit_min_kwh_; }
  const double* unit_max_kwh() const { return unit_max_kwh_; }
  const size_t* unit_offset() const { return unit_offset_; }

  // ---- Schedule columns ----------------------------------------------------
  const double* scheduled_kwh() const { return scheduled_kwh_; }
  const size_t* scheduled_offset() const { return scheduled_offset_; }
  /// kNoScheduleStart for offers without a schedule.
  const int64_t* schedule_start_min() const { return schedule_start_min_; }
  static constexpr int64_t kNoScheduleStart = INT64_MIN;

  // ---- Per-offer derived scalar columns -----------------------------------
  const double* total_min_kwh() const { return total_min_kwh_; }
  const double* total_max_kwh() const { return total_max_kwh_; }
  const double* total_scheduled_kwh() const { return total_scheduled_kwh_; }
  const int32_t* duration_slices() const { return duration_slices_; }
  const int64_t* time_flex_min() const { return time_flex_min_; }
  const int64_t* earliest_start_min() const { return earliest_start_min_; }
  const int64_t* creation_min() const { return creation_min_; }
  const int64_t* acceptance_min() const { return acceptance_min_; }
  const int64_t* assignment_min() const { return assignment_min_; }
  const int64_t* offer_id() const { return offer_id_; }
  const uint8_t* state() const { return state_; }
  const uint8_t* direction() const { return direction_; }
  /// 1 iff `Validate(offer).ok()`. Computed during the build, where every
  /// operand the checks need is already in registers.
  const uint8_t* valid() const { return valid_; }

  // ---- Lossless conversion back to the AoS form ---------------------------
  /// Reconstructs `FlexOffer::profile` for offer i, bit-exact.
  std::vector<ProfileSlice> ProfileOf(size_t i) const;
  /// Reconstructs the schedule for offer i (nullopt when it had none).
  std::optional<Schedule> ScheduleOf(size_t i) const;
  /// Restores profile + schedule of offer i into `offer`.
  void RestoreInto(FlexOffer& offer, size_t i) const;

 private:
  template <typename OfferAt>
  static ProfileColumns Build(size_t count, const OfferAt& at);

  ColumnArena arena_;
  // Unit columns live in their own arena because their extent is only known
  // after the fill pass; when every slice has duration 1 this arena stays
  // empty and the unit pointers alias the slice columns in `arena_`.
  ColumnArena unit_arena_;
  size_t num_offers_ = 0;
  size_t num_slices_ = 0;
  size_t num_units_ = 0;
  size_t num_scheduled_units_ = 0;

  int32_t* slice_duration_ = nullptr;
  double* slice_min_kwh_ = nullptr;
  double* slice_max_kwh_ = nullptr;
  size_t* slice_offset_ = nullptr;
  double* unit_min_kwh_ = nullptr;
  double* unit_max_kwh_ = nullptr;
  size_t* unit_offset_ = nullptr;
  double* scheduled_kwh_ = nullptr;
  size_t* scheduled_offset_ = nullptr;
  int64_t* schedule_start_min_ = nullptr;
  double* total_min_kwh_ = nullptr;
  double* total_max_kwh_ = nullptr;
  double* total_scheduled_kwh_ = nullptr;
  int32_t* duration_slices_ = nullptr;
  int64_t* time_flex_min_ = nullptr;
  int64_t* earliest_start_min_ = nullptr;
  int64_t* creation_min_ = nullptr;
  int64_t* acceptance_min_ = nullptr;
  int64_t* assignment_min_ = nullptr;
  int64_t* offer_id_ = nullptr;
  uint8_t* state_ = nullptr;
  uint8_t* direction_ = nullptr;
  uint8_t* valid_ = nullptr;
};

/// Writes 1/0 into valid[0..cols.num_offers()) — exactly `Validate(offer).ok()`
/// for each offer. The verdicts are precomputed by the column build (see
/// `ProfileColumns::valid()`), so this is a flat copy.
void ValidMask(const ProfileColumns& cols, uint8_t* valid);

}  // namespace flexvis::core

#endif  // FLEXVIS_CORE_PROFILE_COLUMNS_H_
