#ifndef FLEXVIS_CORE_TYPES_H_
#define FLEXVIS_CORE_TYPES_H_

#include <cstdint>
#include <string_view>

#include "util/status.h"

namespace flexvis::core {

/// Entity identifiers. 64-bit so synthetic workloads can use dense ids
/// without coordination.
using FlexOfferId = int64_t;
using ProsumerId = int64_t;
using GridNodeId = int64_t;
using RegionId = int64_t;

inline constexpr FlexOfferId kInvalidFlexOfferId = -1;
inline constexpr ProsumerId kInvalidProsumerId = -1;
inline constexpr GridNodeId kInvalidGridNodeId = -1;
inline constexpr RegionId kInvalidRegionId = -1;

/// Lifecycle of a flex-offer within the MIRABEL enterprise (Section 2 of the
/// paper): a prosumer issues the offer (kOffered); the enterprise either
/// rejects it or accepts it before the acceptance deadline; accepted offers
/// get a concrete schedule (start time + energy) before the assignment
/// deadline, becoming kAssigned.
enum class FlexOfferState {
  kOffered = 0,
  kAccepted,
  kAssigned,
  kRejected,
};

/// Whether the offer consumes energy from the grid or produces into it.
/// Energy amounts are stored non-negative; the direction supplies the sign
/// when offers enter a balance computation.
enum class Direction {
  kConsumption = 0,
  kProduction,
};

/// Energy-type dimension members ("to select data associated with a
/// particular energy type, e.g., renewable energy from hydro power plants").
enum class EnergyType {
  kWind = 0,
  kSolar,
  kHydro,
  kBiomass,
  kNuclear,
  kCoal,
  kGas,
  kMixedGrid,  // unspecified consumption mix
};

/// Prosumer-type dimension members ("e.g., small industrial power plants").
enum class ProsumerType {
  kHousehold = 0,
  kCommercial,
  kSmallIndustry,
  kLargeIndustry,
  kSmallPowerPlant,
  kLargePowerPlant,
};

/// Appliance-type dimension members ("e.g., electric vehicles").
enum class ApplianceType {
  kElectricVehicle = 0,
  kHeatPump,
  kWashingMachine,
  kDishwasher,
  kWaterHeater,
  kBatteryStorage,
  kIndustrialProcess,
  kGenerator,
};

/// True for energy types counted as renewable when computing RES utilization.
bool IsRenewable(EnergyType type);

/// True for prosumer types that primarily produce.
bool IsProducerType(ProsumerType type);

/// Stable display names, used for dimension member labels and legends.
std::string_view FlexOfferStateName(FlexOfferState s);
std::string_view DirectionName(Direction d);
std::string_view EnergyTypeName(EnergyType t);
std::string_view ProsumerTypeName(ProsumerType t);
std::string_view ApplianceTypeName(ApplianceType t);

/// Enum domain sizes, for iterating dimension members.
inline constexpr int kNumFlexOfferStates = 4;
inline constexpr int kNumEnergyTypes = 8;
inline constexpr int kNumProsumerTypes = 6;
inline constexpr int kNumApplianceTypes = 8;

/// Case-insensitive parsers for the display names.
Result<FlexOfferState> ParseFlexOfferState(std::string_view name);
Result<EnergyType> ParseEnergyType(std::string_view name);
Result<ProsumerType> ParseProsumerType(std::string_view name);
Result<ApplianceType> ParseApplianceType(std::string_view name);

}  // namespace flexvis::core

#endif  // FLEXVIS_CORE_TYPES_H_
