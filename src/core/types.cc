#include "core/types.h"

#include "util/strings.h"

namespace flexvis::core {

bool IsRenewable(EnergyType type) {
  switch (type) {
    case EnergyType::kWind:
    case EnergyType::kSolar:
    case EnergyType::kHydro:
    case EnergyType::kBiomass:
      return true;
    default:
      return false;
  }
}

bool IsProducerType(ProsumerType type) {
  return type == ProsumerType::kSmallPowerPlant || type == ProsumerType::kLargePowerPlant;
}

std::string_view FlexOfferStateName(FlexOfferState s) {
  switch (s) {
    case FlexOfferState::kOffered: return "Offered";
    case FlexOfferState::kAccepted: return "Accepted";
    case FlexOfferState::kAssigned: return "Assigned";
    case FlexOfferState::kRejected: return "Rejected";
  }
  return "Unknown";
}

std::string_view DirectionName(Direction d) {
  switch (d) {
    case Direction::kConsumption: return "Consumption";
    case Direction::kProduction: return "Production";
  }
  return "Unknown";
}

std::string_view EnergyTypeName(EnergyType t) {
  switch (t) {
    case EnergyType::kWind: return "Wind";
    case EnergyType::kSolar: return "Solar";
    case EnergyType::kHydro: return "Hydro";
    case EnergyType::kBiomass: return "Biomass";
    case EnergyType::kNuclear: return "Nuclear";
    case EnergyType::kCoal: return "Coal";
    case EnergyType::kGas: return "Gas";
    case EnergyType::kMixedGrid: return "MixedGrid";
  }
  return "Unknown";
}

std::string_view ProsumerTypeName(ProsumerType t) {
  switch (t) {
    case ProsumerType::kHousehold: return "Household";
    case ProsumerType::kCommercial: return "Commercial";
    case ProsumerType::kSmallIndustry: return "SmallIndustry";
    case ProsumerType::kLargeIndustry: return "LargeIndustry";
    case ProsumerType::kSmallPowerPlant: return "SmallPowerPlant";
    case ProsumerType::kLargePowerPlant: return "LargePowerPlant";
  }
  return "Unknown";
}

std::string_view ApplianceTypeName(ApplianceType t) {
  switch (t) {
    case ApplianceType::kElectricVehicle: return "ElectricVehicle";
    case ApplianceType::kHeatPump: return "HeatPump";
    case ApplianceType::kWashingMachine: return "WashingMachine";
    case ApplianceType::kDishwasher: return "Dishwasher";
    case ApplianceType::kWaterHeater: return "WaterHeater";
    case ApplianceType::kBatteryStorage: return "BatteryStorage";
    case ApplianceType::kIndustrialProcess: return "IndustrialProcess";
    case ApplianceType::kGenerator: return "Generator";
  }
  return "Unknown";
}

namespace {

template <typename E, int N, std::string_view (*NameFn)(E)>
Result<E> ParseEnum(std::string_view name, const char* what) {
  for (int i = 0; i < N; ++i) {
    E e = static_cast<E>(i);
    if (EqualsIgnoreCase(name, NameFn(e))) return e;
  }
  return InvalidArgumentError(StrFormat("unknown %s: %.*s", what,
                                        static_cast<int>(name.size()), name.data()));
}

}  // namespace

Result<FlexOfferState> ParseFlexOfferState(std::string_view name) {
  return ParseEnum<FlexOfferState, kNumFlexOfferStates, FlexOfferStateName>(name, "state");
}

Result<EnergyType> ParseEnergyType(std::string_view name) {
  return ParseEnum<EnergyType, kNumEnergyTypes, EnergyTypeName>(name, "energy type");
}

Result<ProsumerType> ParseProsumerType(std::string_view name) {
  return ParseEnum<ProsumerType, kNumProsumerTypes, ProsumerTypeName>(name, "prosumer type");
}

Result<ApplianceType> ParseApplianceType(std::string_view name) {
  return ParseEnum<ApplianceType, kNumApplianceTypes, ApplianceTypeName>(name, "appliance type");
}

}  // namespace flexvis::core
