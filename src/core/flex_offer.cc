#include "core/flex_offer.h"

#include "util/strings.h"

namespace flexvis::core {

using timeutil::kMinutesPerSlice;

int FlexOffer::profile_duration_slices() const {
  int total = 0;
  for (const ProfileSlice& s : profile) total += s.duration_slices;
  return total;
}

double FlexOffer::total_min_energy_kwh() const {
  double total = 0.0;
  for (const ProfileSlice& s : profile) total += s.min_energy_kwh * s.duration_slices;
  return total;
}

double FlexOffer::total_max_energy_kwh() const {
  double total = 0.0;
  for (const ProfileSlice& s : profile) total += s.max_energy_kwh * s.duration_slices;
  return total;
}

double FlexOffer::total_scheduled_energy_kwh() const {
  if (!schedule.has_value()) return 0.0;
  double total = 0.0;
  for (double e : schedule->energy_kwh) total += e;
  return total;
}

double FlexOffer::peak_energy_kwh() const {
  double peak = 0.0;
  for (const ProfileSlice& s : profile) {
    if (s.max_energy_kwh > peak) peak = s.max_energy_kwh;
  }
  return peak;
}

std::vector<ProfileSlice> FlexOffer::UnitProfile() const {
  std::vector<ProfileSlice> units;
  units.reserve(static_cast<size_t>(profile_duration_slices()));
  for (const ProfileSlice& s : profile) {
    for (int i = 0; i < s.duration_slices; ++i) {
      units.push_back(ProfileSlice{1, s.min_energy_kwh, s.max_energy_kwh});
    }
  }
  return units;
}

namespace {

bool SliceAligned(timeutil::TimePoint t) { return t.minutes() % kMinutesPerSlice == 0; }

}  // namespace

Status Validate(const FlexOffer& offer) {
  if (offer.profile.empty()) {
    return InvalidArgumentError(StrFormat("flex-offer %lld: empty profile",
                                          static_cast<long long>(offer.id)));
  }
  for (size_t i = 0; i < offer.profile.size(); ++i) {
    const ProfileSlice& s = offer.profile[i];
    if (s.duration_slices < 1) {
      return InvalidArgumentError(StrFormat("flex-offer %lld: slice %zu has duration %d",
                                            static_cast<long long>(offer.id), i,
                                            s.duration_slices));
    }
    if (s.min_energy_kwh < 0.0 || s.min_energy_kwh > s.max_energy_kwh) {
      return InvalidArgumentError(
          StrFormat("flex-offer %lld: slice %zu has invalid bounds [%g, %g]",
                    static_cast<long long>(offer.id), i, s.min_energy_kwh, s.max_energy_kwh));
    }
  }
  if (offer.latest_start < offer.earliest_start) {
    return InvalidArgumentError(StrFormat("flex-offer %lld: latest_start before earliest_start",
                                          static_cast<long long>(offer.id)));
  }
  if (!SliceAligned(offer.earliest_start) || !SliceAligned(offer.latest_start)) {
    return InvalidArgumentError(StrFormat("flex-offer %lld: start bounds not slice-aligned",
                                          static_cast<long long>(offer.id)));
  }
  if (offer.acceptance_deadline < offer.creation_time) {
    return InvalidArgumentError(StrFormat("flex-offer %lld: acceptance before creation",
                                          static_cast<long long>(offer.id)));
  }
  if (offer.assignment_deadline < offer.acceptance_deadline) {
    return InvalidArgumentError(StrFormat("flex-offer %lld: assignment before acceptance",
                                          static_cast<long long>(offer.id)));
  }
  if (offer.latest_start < offer.assignment_deadline) {
    return InvalidArgumentError(
        StrFormat("flex-offer %lld: assignment deadline after latest start",
                  static_cast<long long>(offer.id)));
  }
  if (offer.schedule.has_value()) {
    const Schedule& sched = *offer.schedule;
    // Walk the RLE profile directly instead of materializing UnitProfile():
    // validation runs on every offer of every aggregation pass, and the
    // allocation dominated its cost.
    const size_t num_units = static_cast<size_t>(offer.profile_duration_slices());
    if (sched.energy_kwh.size() != num_units) {
      return InvalidArgumentError(
          StrFormat("flex-offer %lld: schedule has %zu energies for %zu unit slices",
                    static_cast<long long>(offer.id), sched.energy_kwh.size(), num_units));
    }
    if (sched.start < offer.earliest_start || offer.latest_start < sched.start) {
      return InvalidArgumentError(StrFormat("flex-offer %lld: scheduled start outside flexibility",
                                            static_cast<long long>(offer.id)));
    }
    if (!SliceAligned(sched.start)) {
      return InvalidArgumentError(StrFormat("flex-offer %lld: scheduled start not slice-aligned",
                                            static_cast<long long>(offer.id)));
    }
    constexpr double kEnergyTolerance = 1e-6;
    size_t unit = 0;
    for (const ProfileSlice& s : offer.profile) {
      for (int k = 0; k < s.duration_slices; ++k, ++unit) {
        double e = sched.energy_kwh[unit];
        if (e < s.min_energy_kwh - kEnergyTolerance || e > s.max_energy_kwh + kEnergyTolerance) {
          return InvalidArgumentError(
              StrFormat("flex-offer %lld: scheduled energy %g outside [%g, %g] at unit slice %zu",
                        static_cast<long long>(offer.id), e, s.min_energy_kwh, s.max_energy_kwh,
                        unit));
        }
      }
    }
  }
  return OkStatus();
}

std::string Describe(const FlexOffer& offer) {
  std::string out = StrFormat(
      "FlexOffer %lld [%s, %s] %s %s: profile %d slices, E=[%s, %s] kWh, "
      "time flex %lld min, start in [%s, %s]",
      static_cast<long long>(offer.id), std::string(DirectionName(offer.direction)).c_str(),
      std::string(FlexOfferStateName(offer.state)).c_str(),
      std::string(ProsumerTypeName(offer.prosumer_type)).c_str(),
      std::string(ApplianceTypeName(offer.appliance_type)).c_str(),
      offer.profile_duration_slices(), FormatDouble(offer.total_min_energy_kwh(), 2).c_str(),
      FormatDouble(offer.total_max_energy_kwh(), 2).c_str(),
      static_cast<long long>(offer.time_flexibility_minutes()),
      offer.earliest_start.ToString().c_str(), offer.latest_start.ToString().c_str());
  if (offer.schedule.has_value()) {
    out += StrFormat("; scheduled %s kWh from %s",
                     FormatDouble(offer.total_scheduled_energy_kwh(), 2).c_str(),
                     offer.schedule->start.ToString().c_str());
  }
  if (offer.is_aggregate()) {
    out += StrFormat("; aggregate of %zu offers", offer.aggregated_from.size());
  }
  return out;
}

}  // namespace flexvis::core
