#ifndef FLEXVIS_CORE_SCHEDULER_H_
#define FLEXVIS_CORE_SCHEDULER_H_

#include <vector>

#include "core/flex_offer.h"
#include "core/time_series.h"
#include "util/status.h"

namespace flexvis::core {

/// Configuration of the planning heuristic.
struct SchedulerParams {
  /// Offers whose placement would increase total imbalance by more than this
  /// fraction of their minimum energy are rejected instead of accepted.
  /// Negative disables rejection (everything is accepted).
  double rejection_threshold = -1.0;

  /// Orders the greedy pass. Offers with less flexibility are placed first by
  /// default, since they have the fewest alternatives.
  enum class Order { kLeastFlexibleFirst, kLargestEnergyFirst, kArrival } order =
      Order::kLeastFlexibleFirst;
};

/// Outcome of a scheduling run.
struct ScheduleResult {
  /// Input offers with states updated (kAssigned offers carry schedules,
  /// kRejected offers none).
  std::vector<FlexOffer> offers;

  /// The planned flexible load per slice (signed: consumption positive,
  /// production negative), covering the union of offer extents.
  TimeSeries planned_load;

  /// Sum over slices of |target - planned| before and after placing the
  /// flexible offers, in kWh. The improvement ratio is the headline number
  /// of Fig. 1 ("loads before and after the MIRABEL system balances demand
  /// and supply").
  double imbalance_before_kwh = 0.0;
  double imbalance_after_kwh = 0.0;

  int accepted = 0;
  int rejected = 0;
};

/// Greedy imbalance-minimizing scheduler, standing in for the evolutionary
/// scheduler of Tušar et al. (BIOMA 2012) cited by the paper. For each offer
/// it tries every slice-aligned start in [earliest_start, latest_start],
/// assigns per-unit energies that chase the remaining target, and keeps the
/// start with the lowest residual imbalance.
///
/// `target` is the load curve the flexible offers should reproduce (e.g. RES
/// surplus after subtracting inflexible demand), signed with consumption
/// positive. The scheduler treats a production offer's energy as negative
/// load.
class Scheduler {
 public:
  explicit Scheduler(SchedulerParams params) : params_(params) {}
  Scheduler() : Scheduler(SchedulerParams{}) {}

  const SchedulerParams& params() const { return params_; }

  /// Plans all (valid) offers against `target`. Invalid offers are passed
  /// through with their state unchanged.
  ScheduleResult Plan(const std::vector<FlexOffer>& offers, const TimeSeries& target) const;

 private:
  SchedulerParams params_;
};

}  // namespace flexvis::core

#endif  // FLEXVIS_CORE_SCHEDULER_H_
