#include "core/aggregation.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <tuple>

#include "util/parallel.h"
#include "util/strings.h"

namespace flexvis::core {

using timeutil::kMinutesPerSlice;
using timeutil::TimePoint;

namespace {

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

// Grid-cell key; offers sharing a key may be aggregated together.
struct CellKey {
  int direction;
  int64_t est_bucket;
  int64_t tft_bucket;
  int64_t region;
  int energy;
  int prosumer;
  int appliance;
  int64_t grid_node;

  auto Tie() const {
    return std::tie(direction, est_bucket, tft_bucket, region, energy, prosumer, appliance,
                    grid_node);
  }
  friend bool operator<(const CellKey& a, const CellKey& b) { return a.Tie() < b.Tie(); }
};

CellKey MakeKey(const FlexOffer& offer, const AggregationParams& p) {
  CellKey key{};
  key.direction = static_cast<int>(offer.direction);
  key.est_bucket = p.est_tolerance_minutes > 0
                       ? FloorDiv(offer.earliest_start.minutes(), p.est_tolerance_minutes)
                       : offer.earliest_start.minutes();
  key.tft_bucket = p.tft_tolerance_minutes > 0
                       ? FloorDiv(offer.time_flexibility_minutes(), p.tft_tolerance_minutes)
                       : offer.time_flexibility_minutes();
  key.region = p.partition_by_region ? offer.region : 0;
  key.energy = p.partition_by_energy_type ? static_cast<int>(offer.energy_type) : 0;
  key.prosumer = p.partition_by_prosumer_type ? static_cast<int>(offer.prosumer_type) : 0;
  key.appliance = p.partition_by_appliance_type ? static_cast<int>(offer.appliance_type) : 0;
  key.grid_node = p.partition_by_grid_node ? offer.grid_node : 0;
  return key;
}

// Builds the aggregate for one cell of member offers (non-empty).
FlexOffer BuildAggregate(const std::vector<const FlexOffer*>& members, FlexOfferId id) {
  TimePoint min_est = members[0]->earliest_start;
  int64_t min_tft = members[0]->time_flexibility_minutes();
  TimePoint min_acceptance = members[0]->acceptance_deadline;
  TimePoint min_assignment = members[0]->assignment_deadline;
  TimePoint min_creation = members[0]->creation_time;
  for (const FlexOffer* m : members) {
    min_est = std::min(min_est, m->earliest_start);
    min_tft = std::min(min_tft, m->time_flexibility_minutes());
    min_acceptance = std::min(min_acceptance, m->acceptance_deadline);
    min_assignment = std::min(min_assignment, m->assignment_deadline);
    min_creation = std::min(min_creation, m->creation_time);
  }

  // Sum min/max bounds per unit slice, aligning each member at its own
  // earliest start relative to the aggregate's earliest start.
  int total_units = 0;
  for (const FlexOffer* m : members) {
    int64_t offset = (m->earliest_start - min_est) / kMinutesPerSlice;
    total_units = std::max(total_units,
                           static_cast<int>(offset) + m->profile_duration_slices());
  }
  std::vector<ProfileSlice> units(static_cast<size_t>(total_units), ProfileSlice{1, 0.0, 0.0});
  for (const FlexOffer* m : members) {
    size_t offset = static_cast<size_t>((m->earliest_start - min_est) / kMinutesPerSlice);
    std::vector<ProfileSlice> member_units = m->UnitProfile();
    for (size_t i = 0; i < member_units.size(); ++i) {
      units[offset + i].min_energy_kwh += member_units[i].min_energy_kwh;
      units[offset + i].max_energy_kwh += member_units[i].max_energy_kwh;
    }
  }

  FlexOffer agg;
  agg.id = id;
  agg.prosumer = kInvalidProsumerId;  // an aggregate spans prosumers
  // Attribute values are taken from the first member; when the corresponding
  // partition flag is on they are uniform across the cell by construction.
  agg.region = members[0]->region;
  agg.grid_node = members[0]->grid_node;
  agg.energy_type = members[0]->energy_type;
  agg.prosumer_type = members[0]->prosumer_type;
  agg.appliance_type = members[0]->appliance_type;
  agg.direction = members[0]->direction;
  agg.state = FlexOfferState::kOffered;
  agg.earliest_start = min_est;
  agg.latest_start = min_est + min_tft;
  // The most restrictive member deadlines, clamped into validity.
  agg.assignment_deadline = std::min(min_assignment, agg.latest_start);
  agg.acceptance_deadline = std::min(min_acceptance, agg.assignment_deadline);
  agg.creation_time = std::min(min_creation, agg.acceptance_deadline);
  agg.profile = CompressProfile(units);
  agg.aggregated_from.reserve(members.size());
  for (const FlexOffer* m : members) agg.aggregated_from.push_back(m->id);
  return agg;
}

}  // namespace

std::vector<ProfileSlice> CompressProfile(const std::vector<ProfileSlice>& units) {
  std::vector<ProfileSlice> out;
  for (const ProfileSlice& u : units) {
    for (int i = 0; i < u.duration_slices; ++i) {
      if (!out.empty() && out.back().min_energy_kwh == u.min_energy_kwh &&
          out.back().max_energy_kwh == u.max_energy_kwh) {
        ++out.back().duration_slices;
      } else {
        out.push_back(ProfileSlice{1, u.min_energy_kwh, u.max_energy_kwh});
      }
    }
  }
  return out;
}

AggregationResult Aggregator::Aggregate(const std::vector<FlexOffer>& offers,
                                        FlexOfferId* next_id) const {
  // Fixed chunk width for validation and grouping; chunk boundaries must not
  // depend on the thread count or the grouped order (and hence the output)
  // would change between serial and threaded runs.
  constexpr size_t kGrain = 2048;

  AggregationResult result;
  std::vector<uint8_t> valid(offers.size(), 0);
  ParallelFor(0, offers.size(), kGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) valid[i] = Validate(offers[i]).ok() ? 1 : 0;
  });

  // Per-chunk ordered maps, merged in chunk order: within a cell, members
  // stay in arrival order exactly as the serial single-pass insert produced.
  using CellMap = std::map<CellKey, std::vector<const FlexOffer*>>;
  CellMap cells = ParallelReduce<CellMap>(
      0, offers.size(), kGrain, CellMap{},
      [&](size_t begin, size_t end) {
        CellMap local;
        for (size_t i = begin; i < end; ++i) {
          if (valid[i]) local[MakeKey(offers[i], params_)].push_back(&offers[i]);
        }
        return local;
      },
      [](CellMap acc, CellMap chunk) {
        for (auto& [key, members] : chunk) {
          std::vector<const FlexOffer*>& dst = acc[key];
          dst.insert(dst.end(), members.begin(), members.end());
        }
        return acc;
      });

  for (size_t i = 0; i < offers.size(); ++i) {
    if (!valid[i]) result.passthrough.push_back(offers[i]);
  }

  // Split cells into capped groups in (cell key, arrival) order, then build
  // the aggregates in parallel. Ids are assigned by group index up front so
  // numbering matches the serial order no matter which worker runs a group.
  std::vector<std::vector<const FlexOffer*>> groups;
  for (auto& [key, members] : cells) {
    (void)key;
    size_t cap = params_.max_group_size > 0 ? static_cast<size_t>(params_.max_group_size)
                                            : members.size();
    if (cap == 0) cap = 1;
    for (size_t begin = 0; begin < members.size(); begin += cap) {
      size_t end = std::min(begin + cap, members.size());
      groups.emplace_back(members.begin() + begin, members.begin() + end);
    }
  }
  const FlexOfferId base_id = *next_id;
  *next_id += static_cast<FlexOfferId>(groups.size());
  result.aggregates.resize(groups.size());
  ParallelFor(0, groups.size(), 16, [&](size_t begin, size_t end) {
    for (size_t g = begin; g < end; ++g) {
      result.aggregates[g] = BuildAggregate(groups[g], base_id + static_cast<FlexOfferId>(g));
    }
  });
  return result;
}

Result<std::vector<FlexOffer>> Disaggregate(const FlexOffer& aggregate,
                                            const std::vector<FlexOffer>& members) {
  if (!aggregate.is_aggregate()) {
    return InvalidArgumentError(StrFormat("flex-offer %lld is not an aggregate",
                                          static_cast<long long>(aggregate.id)));
  }
  if (!aggregate.schedule.has_value()) {
    return FailedPreconditionError(StrFormat("aggregate %lld has no schedule to disaggregate",
                                             static_cast<long long>(aggregate.id)));
  }
  if (members.size() != aggregate.aggregated_from.size()) {
    return InvalidArgumentError(
        StrFormat("aggregate %lld lists %zu members but %zu were supplied",
                  static_cast<long long>(aggregate.id), aggregate.aggregated_from.size(),
                  members.size()));
  }
  for (const FlexOffer& m : members) {
    if (std::find(aggregate.aggregated_from.begin(), aggregate.aggregated_from.end(), m.id) ==
        aggregate.aggregated_from.end()) {
      return InvalidArgumentError(StrFormat("offer %lld is not a member of aggregate %lld",
                                            static_cast<long long>(m.id),
                                            static_cast<long long>(aggregate.id)));
    }
  }

  const int64_t shift = aggregate.schedule->start - aggregate.earliest_start;
  if (shift < 0 || shift > aggregate.time_flexibility_minutes()) {
    return InvalidArgumentError(StrFormat("aggregate %lld schedule start outside flexibility",
                                          static_cast<long long>(aggregate.id)));
  }

  const std::vector<ProfileSlice> agg_units = aggregate.UnitProfile();
  const std::vector<double>& agg_energy = aggregate.schedule->energy_kwh;
  if (agg_energy.size() != agg_units.size()) {
    return InvalidArgumentError(StrFormat("aggregate %lld schedule/profile size mismatch",
                                          static_cast<long long>(aggregate.id)));
  }

  std::vector<FlexOffer> out;
  out.reserve(members.size());
  for (const FlexOffer& member : members) {
    FlexOffer scheduled = member;
    const int64_t offset_minutes = member.earliest_start - aggregate.earliest_start;
    if (offset_minutes < 0 || offset_minutes % kMinutesPerSlice != 0) {
      return InternalError(StrFormat("member %lld misaligned with aggregate %lld",
                                     static_cast<long long>(member.id),
                                     static_cast<long long>(aggregate.id)));
    }
    const size_t offset = static_cast<size_t>(offset_minutes / kMinutesPerSlice);
    std::vector<ProfileSlice> member_units = member.UnitProfile();
    Schedule sched;
    sched.start = member.earliest_start + shift;
    sched.energy_kwh.resize(member_units.size(), 0.0);
    for (size_t i = 0; i < member_units.size(); ++i) {
      const size_t s = offset + i;
      if (s >= agg_units.size()) {
        return InternalError(StrFormat("member %lld extends past aggregate %lld profile",
                                       static_cast<long long>(member.id),
                                       static_cast<long long>(aggregate.id)));
      }
      const double slack = agg_units[s].max_energy_kwh - agg_units[s].min_energy_kwh;
      double fraction = 0.0;
      if (slack > 0.0) {
        fraction = (agg_energy[s] - agg_units[s].min_energy_kwh) / slack;
        fraction = std::clamp(fraction, 0.0, 1.0);
      }
      sched.energy_kwh[i] =
          member_units[i].min_energy_kwh +
          fraction * (member_units[i].max_energy_kwh - member_units[i].min_energy_kwh);
    }
    scheduled.schedule = std::move(sched);
    scheduled.state = FlexOfferState::kAssigned;
    out.push_back(std::move(scheduled));
  }
  return out;
}

}  // namespace flexvis::core
