#include "core/aggregation.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <tuple>

#include "core/profile_columns.h"
#include "util/parallel.h"
#include "util/simd.h"
#include "util/strings.h"

namespace flexvis::core {

using timeutil::kMinutesPerSlice;
using timeutil::TimePoint;

namespace {

// Exact floor division by a positive call-constant divisor without the
// hardware divide (which dominates the key sweep): a double estimate is
// corrected to the true floor quotient, so the result is exact for every
// |a| < 2^52.
int64_t FastFloorDiv(int64_t a, int64_t b, double inv_b) {
  int64_t q = static_cast<int64_t>(std::floor(static_cast<double>(a) * inv_b));
  int64_t r = a - q * b;
  while (r < 0) {
    --q;
    r += b;
  }
  while (r >= b) {
    ++q;
    r -= b;
  }
  return q;
}

// Grid-cell key; offers sharing a key may be aggregated together.
struct CellKey {
  int direction;
  int64_t est_bucket;
  int64_t tft_bucket;
  int64_t region;
  int energy;
  int prosumer;
  int appliance;
  int64_t grid_node;

  auto Tie() const {
    return std::tie(direction, est_bucket, tft_bucket, region, energy, prosumer, appliance,
                    grid_node);
  }
  friend bool operator<(const CellKey& a, const CellKey& b) { return a.Tie() < b.Tie(); }
  friend bool operator==(const CellKey& a, const CellKey& b) { return a.Tie() == b.Tie(); }
};

// Field-wise odd-constant multiplies folded by a splitmix64 finisher. The
// eight multiplies are independent (no xor-multiply dependency chain like
// FNV), so the hash pipelines well in the grouping sweep; the final groups
// are re-sorted by the full CellKey ordering, so hash quality only affects
// probe lengths, never the output.
struct CellKeyHash {
  size_t operator()(const CellKey& k) const {
    uint64_t h = static_cast<uint64_t>(k.direction) * 0x9E3779B97F4A7C15ull ^
                 static_cast<uint64_t>(k.est_bucket) * 0xC2B2AE3D27D4EB4Full ^
                 static_cast<uint64_t>(k.tft_bucket) * 0x165667B19E3779F9ull ^
                 static_cast<uint64_t>(k.region) * 0x27D4EB2F165667C5ull ^
                 static_cast<uint64_t>(k.energy) * 0x85EBCA77C2B2AE63ull ^
                 static_cast<uint64_t>(k.prosumer) * 0xFF51AFD7ED558CCDull ^
                 static_cast<uint64_t>(k.appliance) * 0xC4CEB9FE1A85EC53ull ^
                 static_cast<uint64_t>(k.grid_node) * 0x2545F4914F6CDD1Dull;
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }
};

// Grid key from the scalar columns; the AoS record is only touched for the
// partition attributes, and only when the corresponding flag is on (they all
// default to off, so the common sweep reads columns alone).
CellKey MakeKey(const ProfileColumns& cols, size_t i, const FlexOffer& offer,
                const AggregationParams& p, double inv_est_tol, double inv_tft_tol) {
  const int64_t est = cols.earliest_start_min()[i];
  const int64_t tft = cols.time_flex_min()[i];
  CellKey key{};
  key.direction = static_cast<int>(cols.direction()[i]);
  key.est_bucket = p.est_tolerance_minutes > 0
                       ? FastFloorDiv(est, p.est_tolerance_minutes, inv_est_tol)
                       : est;
  key.tft_bucket = p.tft_tolerance_minutes > 0
                       ? FastFloorDiv(tft, p.tft_tolerance_minutes, inv_tft_tol)
                       : tft;
  key.region = p.partition_by_region ? offer.region : 0;
  key.energy = p.partition_by_energy_type ? static_cast<int>(offer.energy_type) : 0;
  key.prosumer = p.partition_by_prosumer_type ? static_cast<int>(offer.prosumer_type) : 0;
  key.appliance = p.partition_by_appliance_type ? static_cast<int>(offer.appliance_type) : 0;
  key.grid_node = p.partition_by_grid_node ? offer.grid_node : 0;
  return key;
}

// Insertion-ordered open-addressed cell-key interner: keys in first-seen
// order plus a power-of-two probe array mapping hash slots to entry index + 1
// (0 = empty). Compared to an unordered_map, find-or-insert touches no heap
// nodes; memberships are kept out of the table entirely (the grouping pass
// records a flat entry id per offer and builds CSR ranges from counts).
struct GroupTable {
  std::vector<CellKey> keys;
  std::vector<uint32_t> slots;
  size_t mask = 0;

  int32_t FindOrInsert(const CellKey& k) {
    if ((keys.size() + 1) * 2 > slots.size()) Grow();
    size_t s = CellKeyHash{}(k) & mask;
    while (true) {
      const uint32_t v = slots[s];
      if (v == 0) {
        slots[s] = static_cast<uint32_t>(keys.size()) + 1;
        keys.push_back(k);
        return static_cast<int32_t>(keys.size()) - 1;
      }
      if (keys[v - 1] == k) return static_cast<int32_t>(v) - 1;
      s = (s + 1) & mask;
    }
  }

  // Lookup of a key known to be present (read-only, safe to call from
  // multiple threads once the table is built).
  int32_t Find(const CellKey& k) const {
    size_t s = CellKeyHash{}(k) & mask;
    while (true) {
      const uint32_t v = slots[s];
      if (v != 0 && keys[v - 1] == k) return static_cast<int32_t>(v) - 1;
      s = (s + 1) & mask;
    }
  }

  void Grow() {
    const size_t cap = slots.empty() ? 64 : slots.size() * 4;
    slots.assign(cap, 0);
    mask = cap - 1;
    for (size_t e = 0; e < keys.size(); ++e) {
      size_t s = CellKeyHash{}(keys[e]) & mask;
      while (slots[s] != 0) s = (s + 1) & mask;
      slots[s] = static_cast<uint32_t>(e) + 1;
    }
  }
};

// Per-group scalar minima over the compact int64 columns; TimePoint ordering
// is its minute value, so these match the AoS TimePoint minima. Min is
// order-independent, so a single sequential sweep over the offer columns
// produces exactly what a per-group gather would.
struct GroupMins {
  int64_t est = INT64_MAX;
  int64_t tft = INT64_MAX;
  int64_t acceptance = INT64_MAX;
  int64_t assignment = INT64_MAX;
  int64_t creation = INT64_MAX;
  // Latest minute any member's profile reaches; the group's unit extent is
  // (end_max - est) / kMinutesPerSlice (members are slice-aligned, so the
  // difference divides exactly).
  int64_t end_max = INT64_MIN;
};

// Assembles one aggregate offer from its precomputed minima and summed
// envelope. `members` points at `num_members` indexes into `offers`/`cols`.
FlexOffer FinishAggregate(const uint32_t* members, size_t num_members, FlexOfferId id,
                          const std::vector<FlexOffer>& offers, const ProfileColumns& cols,
                          const GroupMins& m, const double* sum_min, const double* sum_max,
                          size_t total_units) {
  FlexOffer agg;
  agg.id = id;
  agg.prosumer = kInvalidProsumerId;  // an aggregate spans prosumers
  // Attribute values are taken from the first member; when the corresponding
  // partition flag is on they are uniform across the cell by construction.
  const FlexOffer& head = offers[members[0]];
  agg.region = head.region;
  agg.grid_node = head.grid_node;
  agg.energy_type = head.energy_type;
  agg.prosumer_type = head.prosumer_type;
  agg.appliance_type = head.appliance_type;
  agg.direction = head.direction;
  agg.state = FlexOfferState::kOffered;
  agg.earliest_start = TimePoint::FromMinutes(m.est);
  agg.latest_start = TimePoint::FromMinutes(m.est + m.tft);
  // The most restrictive member deadlines, clamped into validity.
  agg.assignment_deadline = TimePoint::FromMinutes(std::min(m.assignment, m.est + m.tft));
  agg.acceptance_deadline =
      TimePoint::FromMinutes(std::min(m.acceptance, agg.assignment_deadline.minutes()));
  agg.creation_time =
      TimePoint::FromMinutes(std::min(m.creation, agg.acceptance_deadline.minutes()));
  agg.profile = CompressColumns(sum_min, sum_max, total_units);
  const int64_t* FLEXVIS_RESTRICT ids = cols.offer_id();
  agg.aggregated_from.reserve(num_members);
  for (size_t k = 0; k < num_members; ++k) {
    agg.aggregated_from.push_back(static_cast<FlexOfferId>(ids[members[k]]));
  }
  return agg;
}

}  // namespace

std::vector<ProfileSlice> CompressProfile(const std::vector<ProfileSlice>& units) {
  std::vector<ProfileSlice> out;
  for (const ProfileSlice& u : units) {
    for (int i = 0; i < u.duration_slices; ++i) {
      if (!out.empty() && out.back().min_energy_kwh == u.min_energy_kwh &&
          out.back().max_energy_kwh == u.max_energy_kwh) {
        ++out.back().duration_slices;
      } else {
        out.push_back(ProfileSlice{1, u.min_energy_kwh, u.max_energy_kwh});
      }
    }
  }
  return out;
}

std::vector<ProfileSlice> CompressColumns(const double* unit_min_kwh,
                                          const double* unit_max_kwh, size_t n) {
  std::vector<ProfileSlice> out;
  for (size_t i = 0; i < n; ++i) {
    if (!out.empty() && out.back().min_energy_kwh == unit_min_kwh[i] &&
        out.back().max_energy_kwh == unit_max_kwh[i]) {
      ++out.back().duration_slices;
    } else {
      out.push_back(ProfileSlice{1, unit_min_kwh[i], unit_max_kwh[i]});
    }
  }
  return out;
}

AggregationResult Aggregator::Aggregate(const std::vector<FlexOffer>& offers,
                                        FlexOfferId* next_id) const {
  // Fixed chunk width for validation and grouping; chunk boundaries must not
  // depend on the thread count or the grouped order (and hence the output)
  // would change between serial and threaded runs.
  constexpr size_t kGrain = 2048;

  AggregationResult result;

  // One SoA build for the whole call: the grid build reads the per-offer
  // scalar columns and the envelope summation streams the unit columns, so
  // the hot loops below never chase per-offer profile vectors.
  const ProfileColumns cols = ProfileColumns::FromOffers(offers);

  // Validity was accumulated by the column build itself.
  const uint8_t* FLEXVIS_RESTRICT valid = cols.valid();

  // Grid keys are computed and interned in one pass, producing a flat
  // entry-id column; memberships then materialize as CSR ranges over one
  // flat index array (counts -> prefix -> ascending scatter), so within a
  // cell the members are in arrival order exactly as a serial single-pass
  // insert would produce. Hash interning leaves the cells unordered, so the
  // ranges are laid out in sorted full-CellKey order — the resulting group
  // sequence is identical to the ordered-map build this replaces.
  const double inv_est_tol =
      params_.est_tolerance_minutes > 0 ? 1.0 / params_.est_tolerance_minutes : 0.0;
  const double inv_tft_tol =
      params_.tft_tolerance_minutes > 0 ? 1.0 / params_.tft_tolerance_minutes : 0.0;
  std::vector<int32_t> entry(offers.size(), -1);
  GroupTable cells;
  if (ParallelThreadCount() <= 1) {
    for (size_t i = 0; i < offers.size(); ++i) {
      if (valid[i]) {
        entry[i] = cells.FindOrInsert(
            MakeKey(cols, i, offers[i], params_, inv_est_tol, inv_tft_tol));
      }
    }
  } else {
    // Threaded: intern the keys chunk-wise (merged in chunk order), then
    // resolve every offer's entry id against the final table. Entry ids only
    // feed the sorted layout below, so the merge order cannot leak into the
    // output.
    cells = ParallelReduce<GroupTable>(
        0, offers.size(), kGrain, GroupTable{},
        [&](size_t begin, size_t end) {
          GroupTable local;
          for (size_t i = begin; i < end; ++i) {
            if (valid[i]) {
              local.FindOrInsert(MakeKey(cols, i, offers[i], params_, inv_est_tol, inv_tft_tol));
            }
          }
          return local;
        },
        [](GroupTable acc, GroupTable chunk) {
          if (acc.keys.empty()) return chunk;
          for (const CellKey& k : chunk.keys) acc.FindOrInsert(k);
          return acc;
        });
    ParallelFor(0, offers.size(), kGrain, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        if (valid[i]) {
          entry[i] = cells.Find(MakeKey(cols, i, offers[i], params_, inv_est_tol, inv_tft_tol));
        }
      }
    });
  }

  for (size_t i = 0; i < offers.size(); ++i) {
    if (!valid[i]) result.passthrough.push_back(offers[i]);
  }

  // CSR layout: per-cell counts, cell ranges in sorted key order, then one
  // ascending scatter of the member indexes — arrival order within each cell.
  const size_t num_cells = cells.keys.size();
  std::vector<uint32_t> cell_count(num_cells, 0);
  for (size_t i = 0; i < offers.size(); ++i) {
    if (entry[i] >= 0) ++cell_count[entry[i]];
  }
  std::vector<uint32_t> ordered(num_cells);
  for (size_t e = 0; e < num_cells; ++e) ordered[e] = static_cast<uint32_t>(e);
  std::sort(ordered.begin(), ordered.end(),
            [&](uint32_t a, uint32_t b) { return cells.keys[a] < cells.keys[b]; });
  std::vector<uint32_t> cell_begin(num_cells, 0);  // indexed by entry id
  uint32_t at = 0;
  for (const uint32_t e : ordered) {
    cell_begin[e] = at;
    at += cell_count[e];
  }
  std::vector<uint32_t> flat(at);
  std::vector<uint32_t> cursor = cell_begin;
  for (size_t i = 0; i < offers.size(); ++i) {
    if (entry[i] >= 0) flat[cursor[entry[i]]++] = static_cast<uint32_t>(i);
  }

  // Split each cell range into capped groups in (cell key, arrival) order.
  // Ids are assigned by group index up front so numbering matches the serial
  // order no matter which worker runs a group.
  struct GroupSpan {
    uint32_t begin;
    uint32_t end;
  };
  std::vector<GroupSpan> groups;
  groups.reserve(num_cells);
  for (const uint32_t e : ordered) {
    const uint32_t begin = cell_begin[e];
    const uint32_t end = begin + cell_count[e];
    uint32_t cap = params_.max_group_size > 0 ? static_cast<uint32_t>(params_.max_group_size)
                                              : cell_count[e];
    if (cap == 0) cap = 1;
    for (uint32_t b = begin; b < end; b += cap) {
      groups.push_back(GroupSpan{b, std::min(b + cap, end)});
    }
  }
  const FlexOfferId base_id = *next_id;
  *next_id += static_cast<FlexOfferId>(groups.size());
  result.aggregates.resize(groups.size());

  // Envelope summation runs over the offer columns instead of per-group
  // gathers: group_of[] inverts the grouping, the minima and unit extents
  // fold in flat sweeps, and the per-unit sums land in one packed buffer.
  // Members of every group are visited in ascending offer index on both the
  // serial and the threaded path, so the floating-point add order — and hence
  // the output bits — cannot depend on the thread count.
  const int64_t* FLEXVIS_RESTRICT est = cols.earliest_start_min();
  const int64_t* FLEXVIS_RESTRICT tft = cols.time_flex_min();
  const int64_t* FLEXVIS_RESTRICT acceptance = cols.acceptance_min();
  const int64_t* FLEXVIS_RESTRICT assignment = cols.assignment_min();
  const int64_t* FLEXVIS_RESTRICT creation = cols.creation_min();
  const size_t* FLEXVIS_RESTRICT unit_offset = cols.unit_offset();
  std::vector<int32_t> group_of(offers.size(), -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (uint32_t k = groups[g].begin; k < groups[g].end; ++k) {
      group_of[flat[k]] = static_cast<int32_t>(g);
    }
  }
  // Scalar minima/maxima are int64 folds (order-independent), so one sweep
  // over the compact columns matches the per-group reduction exactly.
  std::vector<GroupMins> mins(groups.size());
  for (size_t i = 0; i < offers.size(); ++i) {
    const int32_t g = group_of[i];
    if (g < 0) continue;
    GroupMins& m = mins[g];
    m.est = std::min(m.est, est[i]);
    m.tft = std::min(m.tft, tft[i]);
    m.acceptance = std::min(m.acceptance, acceptance[i]);
    m.assignment = std::min(m.assignment, assignment[i]);
    m.creation = std::min(m.creation, creation[i]);
    m.end_max = std::max(
        m.end_max,
        est[i] + kMinutesPerSlice * static_cast<int64_t>(unit_offset[i + 1] - unit_offset[i]));
  }
  std::vector<size_t> total_units(groups.size(), 0);
  for (size_t g = 0; g < groups.size(); ++g) {
    total_units[g] = static_cast<size_t>((mins[g].end_max - mins[g].est) / kMinutesPerSlice);
  }
  std::vector<size_t> buf_off(groups.size() + 1, 0);
  for (size_t g = 0; g < groups.size(); ++g) buf_off[g + 1] = buf_off[g] + total_units[g];
  std::vector<double> sum_min(buf_off.back(), 0.0);
  std::vector<double> sum_max(buf_off.back(), 0.0);
  auto accumulate_member = [&](size_t i, int32_t g) {
    const size_t offset = static_cast<size_t>((est[i] - mins[g].est) / kMinutesPerSlice);
    const size_t n = unit_offset[i + 1] - unit_offset[i];
    const double* FLEXVIS_RESTRICT src_min = cols.unit_min_kwh() + unit_offset[i];
    const double* FLEXVIS_RESTRICT src_max = cols.unit_max_kwh() + unit_offset[i];
    double* FLEXVIS_RESTRICT dst_min = sum_min.data() + buf_off[g] + offset;
    double* FLEXVIS_RESTRICT dst_max = sum_max.data() + buf_off[g] + offset;
    for (size_t u = 0; u < n; ++u) dst_min[u] += src_min[u];
    for (size_t u = 0; u < n; ++u) dst_max[u] += src_max[u];
  };
  if (ParallelThreadCount() <= 1) {
    // Serial: one ascending scatter sweep — the unit columns are streamed
    // front to back exactly once.
    for (size_t i = 0; i < offers.size(); ++i) {
      if (group_of[i] >= 0) accumulate_member(i, group_of[i]);
    }
  } else {
    // Threaded: groups are independent work items, each visiting its members
    // in ascending index — the same per-group add order as the serial sweep.
    ParallelFor(0, groups.size(), 1, [&](size_t begin, size_t end) {
      for (size_t g = begin; g < end; ++g) {
        for (uint32_t k = groups[g].begin; k < groups[g].end; ++k) {
          accumulate_member(flat[k], static_cast<int32_t>(g));
        }
      }
    });
  }
  // Grain 1: group counts are small (tens) while compressing and assembling
  // an aggregate is comparatively heavy. Ids were preassigned above, so the
  // schedule cannot affect the output.
  ParallelFor(0, groups.size(), 1, [&](size_t begin, size_t end) {
    for (size_t g = begin; g < end; ++g) {
      result.aggregates[g] =
          FinishAggregate(flat.data() + groups[g].begin, groups[g].end - groups[g].begin,
                          base_id + static_cast<FlexOfferId>(g), offers, cols, mins[g],
                          sum_min.data() + buf_off[g], sum_max.data() + buf_off[g],
                          total_units[g]);
    }
  });
  return result;
}

Result<std::vector<FlexOffer>> Disaggregate(const FlexOffer& aggregate,
                                            const std::vector<FlexOffer>& members) {
  if (!aggregate.is_aggregate()) {
    return InvalidArgumentError(StrFormat("flex-offer %lld is not an aggregate",
                                          static_cast<long long>(aggregate.id)));
  }
  if (!aggregate.schedule.has_value()) {
    return FailedPreconditionError(StrFormat("aggregate %lld has no schedule to disaggregate",
                                             static_cast<long long>(aggregate.id)));
  }
  if (members.size() != aggregate.aggregated_from.size()) {
    return InvalidArgumentError(
        StrFormat("aggregate %lld lists %zu members but %zu were supplied",
                  static_cast<long long>(aggregate.id), aggregate.aggregated_from.size(),
                  members.size()));
  }
  for (const FlexOffer& m : members) {
    if (std::find(aggregate.aggregated_from.begin(), aggregate.aggregated_from.end(), m.id) ==
        aggregate.aggregated_from.end()) {
      return InvalidArgumentError(StrFormat("offer %lld is not a member of aggregate %lld",
                                            static_cast<long long>(m.id),
                                            static_cast<long long>(aggregate.id)));
    }
  }

  const int64_t shift = aggregate.schedule->start - aggregate.earliest_start;
  if (shift < 0 || shift > aggregate.time_flexibility_minutes()) {
    return InvalidArgumentError(StrFormat("aggregate %lld schedule start outside flexibility",
                                          static_cast<long long>(aggregate.id)));
  }

  const std::vector<ProfileSlice> agg_units = aggregate.UnitProfile();
  const std::vector<double>& agg_energy = aggregate.schedule->energy_kwh;
  if (agg_energy.size() != agg_units.size()) {
    return InvalidArgumentError(StrFormat("aggregate %lld schedule/profile size mismatch",
                                          static_cast<long long>(aggregate.id)));
  }

  std::vector<FlexOffer> out;
  out.reserve(members.size());
  for (const FlexOffer& member : members) {
    FlexOffer scheduled = member;
    const int64_t offset_minutes = member.earliest_start - aggregate.earliest_start;
    if (offset_minutes < 0 || offset_minutes % kMinutesPerSlice != 0) {
      return InternalError(StrFormat("member %lld misaligned with aggregate %lld",
                                     static_cast<long long>(member.id),
                                     static_cast<long long>(aggregate.id)));
    }
    const size_t offset = static_cast<size_t>(offset_minutes / kMinutesPerSlice);
    std::vector<ProfileSlice> member_units = member.UnitProfile();
    Schedule sched;
    sched.start = member.earliest_start + shift;
    sched.energy_kwh.resize(member_units.size(), 0.0);
    for (size_t i = 0; i < member_units.size(); ++i) {
      const size_t s = offset + i;
      if (s >= agg_units.size()) {
        return InternalError(StrFormat("member %lld extends past aggregate %lld profile",
                                       static_cast<long long>(member.id),
                                       static_cast<long long>(aggregate.id)));
      }
      const double slack = agg_units[s].max_energy_kwh - agg_units[s].min_energy_kwh;
      double fraction = 0.0;
      if (slack > 0.0) {
        fraction = (agg_energy[s] - agg_units[s].min_energy_kwh) / slack;
        fraction = std::clamp(fraction, 0.0, 1.0);
      }
      sched.energy_kwh[i] =
          member_units[i].min_energy_kwh +
          fraction * (member_units[i].max_energy_kwh - member_units[i].min_energy_kwh);
    }
    scheduled.schedule = std::move(sched);
    scheduled.state = FlexOfferState::kAssigned;
    out.push_back(std::move(scheduled));
  }
  return out;
}

}  // namespace flexvis::core
