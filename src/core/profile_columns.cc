#include "core/profile_columns.h"

#include <cassert>
#include <cstring>

#include "util/parallel.h"
#include "util/simd.h"

namespace flexvis::core {

void ColumnArena::Reset(size_t bytes) {
  used_ = 0;
  if (bytes <= capacity_) return;
  // Over-allocate by one line so the first carve can align its base. Plain
  // array new, NOT make_unique: the arena is carved into fully-written
  // columns, and value-initializing megabytes here would memset them twice.
  block_.reset(new std::byte[bytes + kAlign]);
  capacity_ = bytes + kAlign;
}

void* ColumnArena::AllocateBytes(size_t bytes) {
  size_t base = reinterpret_cast<size_t>(block_.get());
  size_t aligned = (base + used_ + kAlign - 1) & ~(kAlign - 1);
  size_t next_used = aligned - base + bytes;
  assert(next_used <= capacity_);
  used_ = next_used;
  return reinterpret_cast<void*>(aligned);
}

namespace {

/// Column extents contributed by one chunk of offers.
struct ChunkExtents {
  size_t slices = 0;
  size_t units = 0;
  size_t sched_units = 0;
  bool all_unit = true;  // every slice in the chunk has duration 1
};

constexpr size_t kBuildGrain = 1024;

}  // namespace

template <typename OfferAt>
ProfileColumns ProfileColumns::Build(size_t count, const OfferAt& at) {
  ProfileColumns cols;
  cols.num_offers_ = count;

  // Pass 1 (chunk-parallel): slice/schedule counts per chunk — vector sizes
  // only, no per-slice reads — then a serial prefix over the handful of
  // chunk totals. Chunking is by kBuildGrain only, so the resulting layout
  // is identical at every thread count. Unit extents are NOT known yet
  // (they need every duration); pass 2 computes them while it fills, and
  // the unit columns are expanded afterwards from the then-contiguous slice
  // columns instead of a third walk over the scattered AoS vectors.
  const size_t num_chunks = (count + kBuildGrain - 1) / kBuildGrain;
  std::vector<ChunkExtents> chunk(num_chunks);
  ParallelFor(0, num_chunks, 1, [&](size_t chunk_begin, size_t chunk_end) {
    for (size_t c = chunk_begin; c < chunk_end; ++c) {
      ChunkExtents& e = chunk[c];
      const size_t end = std::min(count, (c + 1) * kBuildGrain);
      for (size_t i = c * kBuildGrain; i < end; ++i) {
        const FlexOffer& o = at(i);
        e.slices += o.profile.size();
        if (o.schedule.has_value()) e.sched_units += o.schedule->energy_kwh.size();
      }
    }
  });
  size_t slices = 0, sched_units = 0;
  std::vector<ChunkExtents> chunk_base(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    chunk_base[c] = ChunkExtents{slices, 0, sched_units, true};
    slices += chunk[c].slices;
    sched_units += chunk[c].sched_units;
  }
  cols.num_slices_ = slices;
  cols.num_scheduled_units_ = sched_units;

  const size_t offsets = count + 1;
  size_t bytes = 0;
  bytes += ColumnArena::AlignedSize(slices * sizeof(int32_t));     // slice_duration
  bytes += 2 * ColumnArena::AlignedSize(slices * sizeof(double));  // slice min/max
  bytes += ColumnArena::AlignedSize(offsets * sizeof(size_t));     // slice_offset
  bytes += ColumnArena::AlignedSize(sched_units * sizeof(double));  // scheduled_kwh
  bytes += ColumnArena::AlignedSize(offsets * sizeof(size_t));      // scheduled_offset
  bytes += ColumnArena::AlignedSize(count * sizeof(int64_t));       // schedule_start_min
  bytes += 3 * ColumnArena::AlignedSize(count * sizeof(double));    // totals
  bytes += ColumnArena::AlignedSize(count * sizeof(int32_t));       // duration_slices
  bytes += 6 * ColumnArena::AlignedSize(count * sizeof(int64_t));   // tf, est, deadlines, id
  bytes += 3 * ColumnArena::AlignedSize(count * sizeof(uint8_t));  // state, direction, valid
  cols.arena_.Reset(bytes);

  cols.slice_duration_ = cols.arena_.AllocateArray<int32_t>(slices);
  cols.slice_min_kwh_ = cols.arena_.AllocateArray<double>(slices);
  cols.slice_max_kwh_ = cols.arena_.AllocateArray<double>(slices);
  cols.slice_offset_ = cols.arena_.AllocateArray<size_t>(offsets);
  cols.scheduled_kwh_ = cols.arena_.AllocateArray<double>(sched_units);
  cols.scheduled_offset_ = cols.arena_.AllocateArray<size_t>(offsets);
  cols.schedule_start_min_ = cols.arena_.AllocateArray<int64_t>(count);
  cols.total_min_kwh_ = cols.arena_.AllocateArray<double>(count);
  cols.total_max_kwh_ = cols.arena_.AllocateArray<double>(count);
  cols.total_scheduled_kwh_ = cols.arena_.AllocateArray<double>(count);
  cols.duration_slices_ = cols.arena_.AllocateArray<int32_t>(count);
  cols.time_flex_min_ = cols.arena_.AllocateArray<int64_t>(count);
  cols.earliest_start_min_ = cols.arena_.AllocateArray<int64_t>(count);
  cols.creation_min_ = cols.arena_.AllocateArray<int64_t>(count);
  cols.acceptance_min_ = cols.arena_.AllocateArray<int64_t>(count);
  cols.assignment_min_ = cols.arena_.AllocateArray<int64_t>(count);
  cols.offer_id_ = cols.arena_.AllocateArray<int64_t>(count);
  cols.state_ = cols.arena_.AllocateArray<uint8_t>(count);
  cols.direction_ = cols.arena_.AllocateArray<uint8_t>(count);
  cols.valid_ = cols.arena_.AllocateArray<uint8_t>(count);

  // Pass 2 (chunk-parallel): fill. Each chunk starts at its prefix offsets
  // and walks its offers serially, so every array element is written exactly
  // once and the contents never depend on the thread count. The per-offer
  // derived scalars repeat the exact operation order of the FlexOffer
  // helpers (min*dur per RLE slice, schedule energies in sequence) so
  // downstream column sweeps are byte-identical to the AoS loops they
  // replace. The chunk's unit extent falls out of the same duration reads.
  ParallelFor(0, num_chunks, 1, [&](size_t chunk_begin, size_t chunk_end) {
    for (size_t c = chunk_begin; c < chunk_end; ++c) {
      size_t s_at = chunk_base[c].slices;
      size_t e_at = chunk_base[c].sched_units;
      size_t chunk_units = 0;
      bool chunk_all_unit = true;
      const size_t end = std::min(count, (c + 1) * kBuildGrain);
      for (size_t i = c * kBuildGrain; i < end; ++i) {
        const FlexOffer& o = at(i);
        cols.slice_offset_[i] = s_at;
        cols.scheduled_offset_[i] = e_at;

        // The validity verdict accumulates branch-free alongside the fill:
        // every operand Validate() inspects passes through this loop anyway,
        // and the comparison forms below are Validate()'s own, so NaN bounds
        // pass or fail identically.
        double total_min = 0.0, total_max = 0.0;
        int duration = 0;
        unsigned bad = o.profile.empty() ? 1u : 0u;
        for (const ProfileSlice& s : o.profile) {
          cols.slice_duration_[s_at] = s.duration_slices;
          cols.slice_min_kwh_[s_at] = s.min_energy_kwh;
          cols.slice_max_kwh_[s_at] = s.max_energy_kwh;
          ++s_at;
          total_min += s.min_energy_kwh * s.duration_slices;
          total_max += s.max_energy_kwh * s.duration_slices;
          duration += s.duration_slices;
          bad |= static_cast<unsigned>(s.duration_slices < 1) |
                 static_cast<unsigned>(s.min_energy_kwh < 0.0) |
                 static_cast<unsigned>(s.min_energy_kwh > s.max_energy_kwh);
          if (s.duration_slices != 1) chunk_all_unit = false;
          if (s.duration_slices > 0) chunk_units += static_cast<size_t>(s.duration_slices);
        }
        cols.total_min_kwh_[i] = total_min;
        cols.total_max_kwh_[i] = total_max;
        cols.duration_slices_[i] = duration;

        double total_sched = 0.0;
        if (o.schedule.has_value()) {
          cols.schedule_start_min_[i] = o.schedule->start.minutes();
          for (double e : o.schedule->energy_kwh) {
            cols.scheduled_kwh_[e_at++] = e;
            total_sched += e;
          }
        } else {
          cols.schedule_start_min_[i] = kNoScheduleStart;
        }
        cols.total_scheduled_kwh_[i] = total_sched;

        cols.time_flex_min_[i] = o.latest_start - o.earliest_start;
        cols.earliest_start_min_[i] = o.earliest_start.minutes();
        cols.creation_min_[i] = o.creation_time.minutes();
        cols.acceptance_min_[i] = o.acceptance_deadline.minutes();
        cols.assignment_min_[i] = o.assignment_deadline.minutes();
        cols.offer_id_[i] = static_cast<int64_t>(o.id);
        cols.state_[i] = static_cast<uint8_t>(o.state);
        cols.direction_[i] = static_cast<uint8_t>(o.direction);

        constexpr int64_t kStep = timeutil::kMinutesPerSlice;
        const int64_t est_min = o.earliest_start.minutes();
        const int64_t latest_min = o.latest_start.minutes();
        bad |= static_cast<unsigned>(latest_min < est_min);
        bad |= static_cast<unsigned>(est_min % kStep != 0) |
               static_cast<unsigned>(latest_min % kStep != 0);
        bad |= static_cast<unsigned>(o.acceptance_deadline < o.creation_time) |
               static_cast<unsigned>(o.assignment_deadline < o.acceptance_deadline) |
               static_cast<unsigned>(latest_min < o.assignment_deadline.minutes());
        if (bad == 0 && o.schedule.has_value()) {
          const std::vector<double>& energy = o.schedule->energy_kwh;
          // The size check gates the energy walk: on a mismatch the walk
          // would run past the offer's scheduled range.
          if (energy.size() != static_cast<size_t>(duration)) {
            bad = 1;
          } else {
            const int64_t start_min = o.schedule->start.minutes();
            bad |= static_cast<unsigned>(start_min < est_min) |
                   static_cast<unsigned>(latest_min < start_min) |
                   static_cast<unsigned>(start_min % kStep != 0);
            constexpr double kEnergyTolerance = 1e-6;  // Validate()'s tolerance
            size_t unit = 0;
            for (const ProfileSlice& s : o.profile) {
              const double lo = s.min_energy_kwh - kEnergyTolerance;
              const double hi = s.max_energy_kwh + kEnergyTolerance;
              for (int32_t k = 0; k < s.duration_slices; ++k, ++unit) {
                bad |= static_cast<unsigned>(energy[unit] < lo) |
                       static_cast<unsigned>(energy[unit] > hi);
              }
            }
          }
        }
        cols.valid_[i] = bad == 0 ? 1 : 0;
      }
      chunk[c].units = chunk_units;
      chunk[c].all_unit = chunk_all_unit;
    }
  });
  cols.slice_offset_[count] = slices;
  cols.scheduled_offset_[count] = sched_units;

  size_t units = 0;
  bool all_unit = true;
  std::vector<size_t> unit_base(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    unit_base[c] = units;
    units += chunk[c].units;
    all_unit = all_unit && chunk[c].all_unit;
  }
  cols.num_units_ = units;

  if (all_unit) {
    // Every slice already has duration 1 (the common unit-resolution case):
    // the unit columns are bit-identical to the slice columns, so alias them
    // instead of materializing a copy.
    cols.unit_min_kwh_ = cols.slice_min_kwh_;
    cols.unit_max_kwh_ = cols.slice_max_kwh_;
    cols.unit_offset_ = cols.slice_offset_;
    return cols;
  }

  // Pass 3 (chunk-parallel, ragged profiles only): expand the unit columns
  // from the now-contiguous slice columns — no AoS reads at all.
  const size_t unit_bytes = 2 * ColumnArena::AlignedSize(units * sizeof(double)) +
                            ColumnArena::AlignedSize(offsets * sizeof(size_t));
  cols.unit_arena_.Reset(unit_bytes);
  cols.unit_min_kwh_ = cols.unit_arena_.AllocateArray<double>(units);
  cols.unit_max_kwh_ = cols.unit_arena_.AllocateArray<double>(units);
  cols.unit_offset_ = cols.unit_arena_.AllocateArray<size_t>(offsets);
  ParallelFor(0, num_chunks, 1, [&](size_t chunk_begin, size_t chunk_end) {
    for (size_t c = chunk_begin; c < chunk_end; ++c) {
      size_t u_at = unit_base[c];
      const size_t end = std::min(count, (c + 1) * kBuildGrain);
      for (size_t i = c * kBuildGrain; i < end; ++i) {
        cols.unit_offset_[i] = u_at;
        const size_t s_end = cols.slice_offset_[i + 1];
        for (size_t s = cols.slice_offset_[i]; s < s_end; ++s) {
          const double lo = cols.slice_min_kwh_[s];
          const double hi = cols.slice_max_kwh_[s];
          for (int32_t u = 0; u < cols.slice_duration_[s]; ++u) {
            cols.unit_min_kwh_[u_at] = lo;
            cols.unit_max_kwh_[u_at] = hi;
            ++u_at;
          }
        }
      }
    }
  });
  cols.unit_offset_[count] = units;
  return cols;
}

ProfileColumns ProfileColumns::FromOffers(const std::vector<FlexOffer>& offers) {
  return Build(offers.size(), [&](size_t i) -> const FlexOffer& { return offers[i]; });
}

ProfileColumns ProfileColumns::FromPointers(const FlexOffer* const* offers, size_t count) {
  return Build(count, [&](size_t i) -> const FlexOffer& { return *offers[i]; });
}

std::vector<ProfileSlice> ProfileColumns::ProfileOf(size_t i) const {
  std::vector<ProfileSlice> out;
  const size_t begin = slice_offset_[i], end = slice_offset_[i + 1];
  out.reserve(end - begin);
  for (size_t s = begin; s < end; ++s) {
    out.push_back(ProfileSlice{slice_duration_[s], slice_min_kwh_[s], slice_max_kwh_[s]});
  }
  return out;
}

std::optional<Schedule> ProfileColumns::ScheduleOf(size_t i) const {
  if (schedule_start_min_[i] == kNoScheduleStart) return std::nullopt;
  Schedule sched;
  sched.start = timeutil::TimePoint::FromMinutes(schedule_start_min_[i]);
  const size_t begin = scheduled_offset_[i], end = scheduled_offset_[i + 1];
  sched.energy_kwh.assign(scheduled_kwh_ + begin, scheduled_kwh_ + end);
  return sched;
}

void ProfileColumns::RestoreInto(FlexOffer& offer, size_t i) const {
  offer.profile = ProfileOf(i);
  offer.schedule = ScheduleOf(i);
}

void ValidMask(const ProfileColumns& cols, uint8_t* valid) {
  // Verdicts were accumulated while the columns were built (every operand the
  // checks need passes through the fill loops anyway), so this is a copy.
  if (cols.num_offers() == 0) return;
  std::memcpy(valid, cols.valid(), cols.num_offers());
}

}  // namespace flexvis::core
