#include "sim/forecaster.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/strings.h"

namespace flexvis::sim {

using core::TimeSeries;
using timeutil::kMinutesPerSlice;

ForecastError EvaluateForecast(const TimeSeries& forecast, const TimeSeries& actual) {
  ForecastError err;
  timeutil::TimeInterval overlap = forecast.interval().Intersect(actual.interval());
  if (overlap.empty()) return err;
  int64_t slices = overlap.duration_minutes() / kMinutesPerSlice;
  // A non-empty overlap shorter than one slice compares nothing on the
  // market grid; bail out before dividing by a zero slice count.
  if (slices <= 0) return err;
  double sum_abs = 0.0, sum_sq = 0.0, sum_pct = 0.0;
  int64_t pct_count = 0;
  for (int64_t i = 0; i < slices; ++i) {
    timeutil::TimePoint t = overlap.start + i * kMinutesPerSlice;
    double f = forecast.At(t);
    double a = actual.At(t);
    double e = f - a;
    sum_abs += std::abs(e);
    sum_sq += e * e;
    if (std::abs(a) > 1e-9) {
      sum_pct += std::abs(e / a);
      ++pct_count;
    }
  }
  double n = static_cast<double>(slices);
  err.mae = sum_abs / n;
  err.rmse = std::sqrt(sum_sq / n);
  err.mape = pct_count > 0 ? sum_pct / static_cast<double>(pct_count) : 0.0;
  err.slices = slices;
  return err;
}

TimeSeries SeasonalNaiveForecaster::Forecast(const TimeSeries& history,
                                             size_t horizon_slices) const {
  TimeSeries out(history.end(), horizon_slices);
  const size_t n = history.size();
  for (size_t i = 0; i < horizon_slices; ++i) {
    double v = 0.0;
    if (n >= season_) {
      v = history.AtIndex(static_cast<int64_t>(n - season_ + (i % season_)));
    } else if (n > 0) {
      v = history.AtIndex(static_cast<int64_t>(i % n));
    }
    out.Set(static_cast<int64_t>(i), v);
  }
  return out;
}

TimeSeries HoltWintersForecaster::Forecast(const TimeSeries& history,
                                           size_t horizon_slices) const {
  const size_t n = history.size();
  if (n < 2 * season_) {
    // Not enough history to initialize the season; fall back to the naive
    // baseline rather than extrapolating garbage.
    return SeasonalNaiveForecaster(season_).Forecast(history, horizon_slices);
  }

  // Initialization: level = mean of season 1, trend = average per-slice
  // change between season 1 and season 2, seasonals = season-1 deviations.
  double mean1 = 0.0, mean2 = 0.0;
  for (size_t i = 0; i < season_; ++i) {
    mean1 += history.AtIndex(static_cast<int64_t>(i));
    mean2 += history.AtIndex(static_cast<int64_t>(season_ + i));
  }
  mean1 /= static_cast<double>(season_);
  mean2 /= static_cast<double>(season_);
  double level = mean1;
  double trend = (mean2 - mean1) / static_cast<double>(season_);
  std::vector<double> season(season_);
  for (size_t i = 0; i < season_; ++i) {
    season[i] = history.AtIndex(static_cast<int64_t>(i)) - mean1;
  }

  for (size_t t = 0; t < n; ++t) {
    double value = history.AtIndex(static_cast<int64_t>(t));
    size_t s = t % season_;
    double last_level = level;
    level = alpha_ * (value - season[s]) + (1.0 - alpha_) * (level + trend);
    trend = beta_ * (level - last_level) + (1.0 - beta_) * trend;
    season[s] = gamma_ * (value - level) + (1.0 - gamma_) * season[s];
  }

  TimeSeries out(history.end(), horizon_slices);
  for (size_t h = 0; h < horizon_slices; ++h) {
    size_t s = (n + h) % season_;
    double v = level + trend * static_cast<double>(h + 1) + season[s];
    out.Set(static_cast<int64_t>(h), std::max(0.0, v));
  }
  return out;
}

TimeSeries LinearArForecaster::Forecast(const TimeSeries& history,
                                        size_t horizon_slices) const {
  const size_t n = history.size();
  if (n < season_ + 2) {
    // Fewer than two season-lagged pairs: nothing to regress on.
    return SeasonalNaiveForecaster(season_).Forecast(history, horizon_slices);
  }

  // OLS fit of y_t = a + b * y_{t-season} over the lagged pairs.
  const size_t m = n - season_;
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = season_; i < n; ++i) {
    double x = history.AtIndex(static_cast<int64_t>(i - season_));
    double y = history.AtIndex(static_cast<int64_t>(i));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double dm = static_cast<double>(m);
  double denom = dm * sxx - sx * sx;
  // A flat (zero-variance) season degenerates to persisting the mean.
  double b = std::abs(denom) > 1e-12 ? (dm * sxy - sx * sy) / denom : 0.0;
  double a = (sy - b * sx) / dm;

  // Iterate the recurrence forward so horizons longer than one season feed
  // on their own predictions, exactly like the training recurrence.
  std::vector<double> extended;
  extended.reserve(n + horizon_slices);
  for (size_t i = 0; i < n; ++i) extended.push_back(history.AtIndex(static_cast<int64_t>(i)));
  TimeSeries out(history.end(), horizon_slices);
  for (size_t h = 0; h < horizon_slices; ++h) {
    double x = extended[extended.size() - season_];
    double v = std::max(0.0, a + b * x);
    extended.push_back(v);
    out.Set(static_cast<int64_t>(h), v);
  }
  return out;
}

TimeSeries EnsembleForecaster::Forecast(const TimeSeries& history,
                                        size_t horizon_slices) const {
  const SeasonalNaiveForecaster naive(season_);
  const HoltWintersForecaster hw(season_);
  const LinearArForecaster ar(season_);
  const Forecaster* members[] = {&naive, &hw, &ar};
  constexpr size_t kMembers = 3;

  const size_t n = history.size();
  double weights[kMembers] = {1.0, 1.0, 1.0};
  if (n >= 2 * season_) {
    // Score each member on the held-out last season.
    timeutil::TimeInterval train_window(
        history.start(),
        history.start() + static_cast<int64_t>(n - season_) * kMinutesPerSlice);
    TimeSeries train = history.Slice(train_window);
    TimeSeries holdout = history.Slice(
        timeutil::TimeInterval(train_window.end, history.end()));
    for (size_t i = 0; i < kMembers; ++i) {
      ForecastError err = EvaluateForecast(members[i]->Forecast(train, season_), holdout);
      weights[i] = 1.0 / (err.rmse + 1e-6);
    }
  }
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;

  TimeSeries out(history.end(), horizon_slices);
  for (size_t i = 0; i < kMembers; ++i) {
    TimeSeries member = members[i]->Forecast(history, horizon_slices);
    double w = weights[i] / total_weight;
    for (size_t h = 0; h < horizon_slices; ++h) {
      out.Set(static_cast<int64_t>(h),
              out.AtIndex(static_cast<int64_t>(h)) +
                  w * member.AtIndex(static_cast<int64_t>(h)));
    }
  }
  return out;
}

std::string EffectiveForecasterName(const std::string& configured) {
  const char* env = std::getenv(kForecasterEnvVar);
  if (env != nullptr && env[0] != '\0') return env;
  if (!configured.empty()) return configured;
  return kDefaultForecasterName;
}

ForecasterRegistry& ForecasterRegistry::Global() {
  static ForecasterRegistry* registry = [] {
    auto* r = new ForecasterRegistry();
    (void)r->Register("seasonal-naive", [] {
      return std::unique_ptr<Forecaster>(new SeasonalNaiveForecaster());
    });
    (void)r->Register("holt-winters", [] {
      return std::unique_ptr<Forecaster>(new HoltWintersForecaster());
    });
    (void)r->Register("linear-ar", [] {
      return std::unique_ptr<Forecaster>(new LinearArForecaster());
    });
    (void)r->Register("weighted-ensemble", [] {
      return std::unique_ptr<Forecaster>(new EnsembleForecaster());
    });
    return r;
  }();
  return *registry;
}

Status ForecasterRegistry::Register(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = factories_.emplace(name, std::move(factory));
  if (!inserted) {
    return AlreadyExistsError(StrFormat("forecaster '%s' is already registered", name.c_str()));
  }
  return OkStatus();
}

std::vector<std::string> ForecasterRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

bool ForecasterRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) > 0;
}

Result<std::unique_ptr<Forecaster>> ForecasterRegistry::Make(const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = factories_.find(name);
    if (it != factories_.end()) factory = it->second;
  }
  if (!factory) {
    std::string options;
    for (const std::string& n : Names()) {
      if (!options.empty()) options += ", ";
      options += n;
    }
    return InvalidArgumentError(StrFormat("unknown forecaster '%s'; registered: %s",
                                          name.c_str(), options.c_str()));
  }
  return factory();
}

}  // namespace flexvis::sim
