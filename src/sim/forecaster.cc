#include "sim/forecaster.h"

#include <algorithm>
#include <cmath>

namespace flexvis::sim {

using core::TimeSeries;
using timeutil::kMinutesPerSlice;

ForecastError EvaluateForecast(const TimeSeries& forecast, const TimeSeries& actual) {
  ForecastError err;
  timeutil::TimeInterval overlap = forecast.interval().Intersect(actual.interval());
  if (overlap.empty()) return err;
  int64_t slices = overlap.duration_minutes() / kMinutesPerSlice;
  double sum_abs = 0.0, sum_sq = 0.0, sum_pct = 0.0;
  int64_t pct_count = 0;
  for (int64_t i = 0; i < slices; ++i) {
    timeutil::TimePoint t = overlap.start + i * kMinutesPerSlice;
    double f = forecast.At(t);
    double a = actual.At(t);
    double e = f - a;
    sum_abs += std::abs(e);
    sum_sq += e * e;
    if (std::abs(a) > 1e-9) {
      sum_pct += std::abs(e / a);
      ++pct_count;
    }
  }
  double n = static_cast<double>(slices);
  err.mae = sum_abs / n;
  err.rmse = std::sqrt(sum_sq / n);
  err.mape = pct_count > 0 ? sum_pct / static_cast<double>(pct_count) : 0.0;
  return err;
}

TimeSeries SeasonalNaiveForecaster::Forecast(const TimeSeries& history,
                                             size_t horizon_slices) const {
  TimeSeries out(history.end(), horizon_slices);
  const size_t n = history.size();
  for (size_t i = 0; i < horizon_slices; ++i) {
    double v = 0.0;
    if (n >= season_) {
      v = history.AtIndex(static_cast<int64_t>(n - season_ + (i % season_)));
    } else if (n > 0) {
      v = history.AtIndex(static_cast<int64_t>(i % n));
    }
    out.Set(static_cast<int64_t>(i), v);
  }
  return out;
}

TimeSeries HoltWintersForecaster::Forecast(const TimeSeries& history,
                                           size_t horizon_slices) const {
  const size_t n = history.size();
  if (n < 2 * season_) {
    // Not enough history to initialize the season; fall back to the naive
    // baseline rather than extrapolating garbage.
    return SeasonalNaiveForecaster(season_).Forecast(history, horizon_slices);
  }

  // Initialization: level = mean of season 1, trend = average per-slice
  // change between season 1 and season 2, seasonals = season-1 deviations.
  double mean1 = 0.0, mean2 = 0.0;
  for (size_t i = 0; i < season_; ++i) {
    mean1 += history.AtIndex(static_cast<int64_t>(i));
    mean2 += history.AtIndex(static_cast<int64_t>(season_ + i));
  }
  mean1 /= static_cast<double>(season_);
  mean2 /= static_cast<double>(season_);
  double level = mean1;
  double trend = (mean2 - mean1) / static_cast<double>(season_);
  std::vector<double> season(season_);
  for (size_t i = 0; i < season_; ++i) {
    season[i] = history.AtIndex(static_cast<int64_t>(i)) - mean1;
  }

  for (size_t t = 0; t < n; ++t) {
    double value = history.AtIndex(static_cast<int64_t>(t));
    size_t s = t % season_;
    double last_level = level;
    level = alpha_ * (value - season[s]) + (1.0 - alpha_) * (level + trend);
    trend = beta_ * (level - last_level) + (1.0 - beta_) * trend;
    season[s] = gamma_ * (value - level) + (1.0 - gamma_) * season[s];
  }

  TimeSeries out(history.end(), horizon_slices);
  for (size_t h = 0; h < horizon_slices; ++h) {
    size_t s = (n + h) % season_;
    double v = level + trend * static_cast<double>(h + 1) + season[s];
    out.Set(static_cast<int64_t>(h), std::max(0.0, v));
  }
  return out;
}

}  // namespace flexvis::sim
