#ifndef FLEXVIS_SIM_FORECASTER_H_
#define FLEXVIS_SIM_FORECASTER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/time_series.h"
#include "util/status.h"

namespace flexvis::sim {

/// Forecast accuracy summary.
struct ForecastError {
  double mae = 0.0;    // mean absolute error per slice
  double mape = 0.0;   // mean absolute percentage error (ignoring ~0 actuals)
  double rmse = 0.0;
  /// Number of slices actually compared. 0 means the two series had no
  /// whole-slice overlap — the zero errors then mean "nothing compared",
  /// not "perfect forecast"; callers must check this before trusting mae/
  /// rmse/mape.
  int64_t slices = 0;
};

/// Compares `forecast` against `actual` over their whole-slice overlap.
/// Edge cases (all return errors of 0 with the stated `slices`):
///  - disjoint or empty intervals: slices = 0;
///  - an overlap shorter than one 15-minute slice: slices = 0 (nothing to
///    compare on the market grid — never a 0/0 NaN);
///  - zero-length history upstream typically yields an all-zero forecast;
///    that compares normally (slices > 0, mae = mean |actual|).
/// Series are compared on the slice grid (TimeSeries construction truncates
/// starts to the grid, so both series are always slice-aligned).
ForecastError EvaluateForecast(const core::TimeSeries& forecast,
                               const core::TimeSeries& actual);

/// Interface of the demand/production forecasters the EDMS plugs into the
/// planning loop (standing in for Fischer et al.'s subscription-based
/// forecasting cited by the paper).
class Forecaster {
 public:
  virtual ~Forecaster() = default;
  virtual std::string name() const = 0;

  /// Predicts `horizon_slices` values following `history`. The result starts
  /// at history.end().
  virtual core::TimeSeries Forecast(const core::TimeSeries& history,
                                    size_t horizon_slices) const = 0;
};

/// Seasonal-naive baseline: tomorrow repeats the most recent full season
/// (default: one day = 96 slices).
class SeasonalNaiveForecaster : public Forecaster {
 public:
  explicit SeasonalNaiveForecaster(size_t season_slices = 96) : season_(season_slices) {}

  std::string name() const override { return "seasonal-naive"; }
  core::TimeSeries Forecast(const core::TimeSeries& history,
                            size_t horizon_slices) const override;

 private:
  size_t season_;
};

/// Additive Holt-Winters (triple exponential smoothing) with a daily season.
class HoltWintersForecaster : public Forecaster {
 public:
  /// `alpha`/`beta`/`gamma` are the level/trend/season smoothing factors.
  HoltWintersForecaster(size_t season_slices = 96, double alpha = 0.25, double beta = 0.02,
                        double gamma = 0.25)
      : season_(season_slices), alpha_(alpha), beta_(beta), gamma_(gamma) {}

  std::string name() const override { return "holt-winters"; }
  core::TimeSeries Forecast(const core::TimeSeries& history,
                            size_t horizon_slices) const override;

 private:
  size_t season_;
  double alpha_;
  double beta_;
  double gamma_;
};

/// Season-lagged linear autoregression: fits y_t = a + b * y_{t-season} by
/// ordinary least squares over the history and iterates the recurrence
/// forward, so trends across days are captured as a multiplicative/additive
/// drift on the daily shape. Falls back to seasonal-naive when the history
/// is shorter than one season plus two points (nothing to regress on).
class LinearArForecaster : public Forecaster {
 public:
  explicit LinearArForecaster(size_t season_slices = 96) : season_(season_slices) {}

  std::string name() const override { return "linear-ar"; }
  core::TimeSeries Forecast(const core::TimeSeries& history,
                            size_t horizon_slices) const override;

 private:
  size_t season_;
};

/// Inverse-error weighted blend of seasonal-naive, Holt-Winters, and
/// linear-AR (the registry's other members). Each member is trained on the
/// history minus its last season and scored on that held-out season; member
/// weights are 1/(rmse + eps), renormalized. With less than two seasons of
/// history (no holdout possible) the members blend with equal weights.
class EnsembleForecaster : public Forecaster {
 public:
  explicit EnsembleForecaster(size_t season_slices = 96) : season_(season_slices) {}

  std::string name() const override { return "weighted-ensemble"; }
  core::TimeSeries Forecast(const core::TimeSeries& history,
                            size_t horizon_slices) const override;

 private:
  size_t season_;
};

/// Name the planning loop uses when EnterpriseParams::forecaster is empty —
/// the pre-registry hardwired model, so defaults stay byte-identical.
inline constexpr char kDefaultForecasterName[] = "holt-winters";

/// Environment override consulted by EffectiveForecasterName.
inline constexpr char kForecasterEnvVar[] = "FLEXVIS_FORECASTER";

/// Resolves the forecaster name a run should use: $FLEXVIS_FORECASTER when
/// set and non-empty, else `configured`, else kDefaultForecasterName.
/// Resolution only — the name is validated by ForecasterRegistry::Make.
std::string EffectiveForecasterName(const std::string& configured);

/// Registry of named forecaster factories. The global instance carries the
/// four built-ins (seasonal-naive, holt-winters, linear-ar,
/// weighted-ensemble); tests and extensions may Register more. Thread-safe.
class ForecasterRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Forecaster>()>;

  /// The process-wide registry, pre-populated with the built-ins.
  static ForecasterRegistry& Global();

  /// Registers `factory` under `name`; kAlreadyExists on a duplicate name.
  Status Register(const std::string& name, Factory factory);

  /// Registered names, sorted (the order error messages cite them in).
  std::vector<std::string> Names() const;

  /// True iff `name` is registered.
  bool Has(const std::string& name) const;

  /// Instantiates the forecaster registered under `name`. An unknown name is
  /// a typed kInvalidArgument naming the registered options.
  Result<std::unique_ptr<Forecaster>> Make(const std::string& name) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

}  // namespace flexvis::sim

#endif  // FLEXVIS_SIM_FORECASTER_H_
