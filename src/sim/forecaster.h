#ifndef FLEXVIS_SIM_FORECASTER_H_
#define FLEXVIS_SIM_FORECASTER_H_

#include <string>
#include <vector>

#include "core/time_series.h"
#include "util/status.h"

namespace flexvis::sim {

/// Forecast accuracy summary.
struct ForecastError {
  double mae = 0.0;    // mean absolute error per slice
  double mape = 0.0;   // mean absolute percentage error (ignoring ~0 actuals)
  double rmse = 0.0;
};

/// Compares `forecast` against `actual` over the overlap.
ForecastError EvaluateForecast(const core::TimeSeries& forecast,
                               const core::TimeSeries& actual);

/// Interface of the demand/production forecasters the EDMS plugs into the
/// planning loop (standing in for Fischer et al.'s subscription-based
/// forecasting cited by the paper).
class Forecaster {
 public:
  virtual ~Forecaster() = default;
  virtual std::string name() const = 0;

  /// Predicts `horizon_slices` values following `history`. The result starts
  /// at history.end().
  virtual core::TimeSeries Forecast(const core::TimeSeries& history,
                                    size_t horizon_slices) const = 0;
};

/// Seasonal-naive baseline: tomorrow repeats the most recent full season
/// (default: one day = 96 slices).
class SeasonalNaiveForecaster : public Forecaster {
 public:
  explicit SeasonalNaiveForecaster(size_t season_slices = 96) : season_(season_slices) {}

  std::string name() const override { return "seasonal-naive"; }
  core::TimeSeries Forecast(const core::TimeSeries& history,
                            size_t horizon_slices) const override;

 private:
  size_t season_;
};

/// Additive Holt-Winters (triple exponential smoothing) with a daily season.
class HoltWintersForecaster : public Forecaster {
 public:
  /// `alpha`/`beta`/`gamma` are the level/trend/season smoothing factors.
  HoltWintersForecaster(size_t season_slices = 96, double alpha = 0.25, double beta = 0.02,
                        double gamma = 0.25)
      : season_(season_slices), alpha_(alpha), beta_(beta), gamma_(gamma) {}

  std::string name() const override { return "holt-winters"; }
  core::TimeSeries Forecast(const core::TimeSeries& history,
                            size_t horizon_slices) const override;

 private:
  size_t season_;
  double alpha_;
  double beta_;
  double gamma_;
};

}  // namespace flexvis::sim

#endif  // FLEXVIS_SIM_FORECASTER_H_
