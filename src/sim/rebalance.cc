#include "sim/rebalance.h"

#include <algorithm>
#include <initializer_list>

#include "sim/alerts.h"
#include "sim/online.h"
#include "util/strings.h"

namespace flexvis::sim {

namespace {

Status FirstError(std::initializer_list<const Status*> statuses, const char* what) {
  for (const Status* status : statuses) {
    if (!status->ok()) {
      return DataLossError(StrFormat("%s is incomplete: %s", what, status->message().c_str()));
    }
  }
  return OkStatus();
}

}  // namespace

JsonValue EncodeRebalanceParams(const RebalanceParams& params) {
  JsonValue out = JsonValue::Object();
  out.Set("window_ticks", JsonValue::Int(params.window_ticks));
  out.Set("queue_depth_threshold", JsonValue::Int(params.queue_depth_threshold));
  out.Set("cooldown_ticks", JsonValue::Int(params.cooldown_ticks));
  out.Set("max_moves", JsonValue::Int(params.max_moves));
  out.Set("allow_resize", JsonValue::Bool(params.allow_resize));
  out.Set("min_shards", JsonValue::Int(params.min_shards));
  out.Set("max_shards", JsonValue::Int(params.max_shards));
  out.Set("merge_window_ticks", JsonValue::Int(params.merge_window_ticks));
  return out;
}

Result<RebalanceParams> DecodeRebalanceParams(const JsonValue& value) {
  if (!value.is_object()) return DataLossError("rebalance params are not an object");
  Result<int64_t> window = value.GetInt("window_ticks");
  Result<int64_t> depth = value.GetInt("queue_depth_threshold");
  Result<int64_t> cooldown = value.GetInt("cooldown_ticks");
  Result<int64_t> max_moves = value.GetInt("max_moves");
  Result<bool> allow_resize = value.GetBool("allow_resize");
  Result<int64_t> min_shards = value.GetInt("min_shards");
  Result<int64_t> max_shards = value.GetInt("max_shards");
  Result<int64_t> merge_window = value.GetInt("merge_window_ticks");
  FLEXVIS_RETURN_IF_ERROR(FirstError(
      {&window.status(), &depth.status(), &cooldown.status(), &max_moves.status(),
       &allow_resize.status(), &min_shards.status(), &max_shards.status(),
       &merge_window.status()},
      "rebalance params"));
  RebalanceParams params;
  params.window_ticks = static_cast<int>(*window);
  params.queue_depth_threshold = static_cast<int>(*depth);
  params.cooldown_ticks = static_cast<int>(*cooldown);
  params.max_moves = static_cast<int>(*max_moves);
  params.allow_resize = *allow_resize;
  params.min_shards = static_cast<int>(*min_shards);
  params.max_shards = static_cast<int>(*max_shards);
  params.merge_window_ticks = static_cast<int>(*merge_window);
  return params;
}

std::string_view RebalanceActionName(RebalancePlan::Action action) {
  switch (action) {
    case RebalancePlan::Action::kMove:
      return "move";
    case RebalancePlan::Action::kSplit:
      return "split";
    case RebalancePlan::Action::kMerge:
      return "merge";
  }
  return "move";
}

Result<RebalancePlan::Action> ParseRebalanceAction(std::string_view name) {
  if (name == "move") return RebalancePlan::Action::kMove;
  if (name == "split") return RebalancePlan::Action::kSplit;
  if (name == "merge") return RebalancePlan::Action::kMerge;
  return InvalidArgumentError(StrFormat("unknown rebalance action '%.*s'",
                                        static_cast<int>(name.size()), name.data()));
}

JsonValue EncodeRebalancePlan(const RebalancePlan& plan) {
  JsonValue out = JsonValue::Object();
  out.Set("kind", JsonValue::Str("plan"));
  out.Set("id", JsonValue::Int(plan.id));
  out.Set("tick", JsonValue::Int(plan.tick));
  out.Set("action", JsonValue::Str(std::string(RebalanceActionName(plan.action))));
  out.Set("new_num_shards", JsonValue::Int(plan.new_num_shards));
  JsonValue moves = JsonValue::Array();
  for (const RebalanceMove& move : plan.moves) {
    JsonValue entry = JsonValue::Object();
    entry.Set("prosumer", JsonValue::Int(move.prosumer));
    entry.Set("from", JsonValue::Int(move.from));
    entry.Set("to", JsonValue::Int(move.to));
    moves.Append(std::move(entry));
  }
  out.Set("moves", std::move(moves));
  return out;
}

Result<RebalancePlan> DecodeRebalancePlan(const JsonValue& value) {
  if (!value.is_object()) return DataLossError("rebalance plan is not an object");
  Result<int64_t> id = value.GetInt("id");
  Result<int64_t> tick = value.GetInt("tick");
  Result<std::string> action_name = value.GetString("action");
  Result<int64_t> new_num_shards = value.GetInt("new_num_shards");
  FLEXVIS_RETURN_IF_ERROR(FirstError({&id.status(), &tick.status(), &action_name.status(),
                                      &new_num_shards.status()},
                                     "rebalance plan"));
  Result<RebalancePlan::Action> action = ParseRebalanceAction(*action_name);
  if (!action.ok()) return action.status();
  RebalancePlan plan;
  plan.id = *id;
  plan.tick = *tick;
  plan.action = *action;
  plan.new_num_shards = static_cast<int>(*new_num_shards);
  const JsonValue& moves = value.Get("moves");
  if (!moves.is_array()) return DataLossError("rebalance plan 'moves' is not an array");
  for (size_t i = 0; i < moves.size(); ++i) {
    const JsonValue& entry = moves[i];
    if (!entry.is_object()) return DataLossError("rebalance move is not an object");
    Result<int64_t> prosumer = entry.GetInt("prosumer");
    Result<int64_t> from = entry.GetInt("from");
    Result<int64_t> to = entry.GetInt("to");
    FLEXVIS_RETURN_IF_ERROR(
        FirstError({&prosumer.status(), &from.status(), &to.status()}, "rebalance move"));
    RebalanceMove move;
    move.prosumer = *prosumer;
    move.from = static_cast<int>(*from);
    move.to = static_cast<int>(*to);
    plan.moves.push_back(move);
  }
  return plan;
}

std::vector<core::ProsumerId> PickMoveSet(std::vector<ProsumerLoad> candidates, int max_moves,
                                          int64_t target_load) {
  std::sort(candidates.begin(), candidates.end(),
            [](const ProsumerLoad& a, const ProsumerLoad& b) {
              if (a.pending_offers != b.pending_offers) {
                return a.pending_offers > b.pending_offers;
              }
              return a.prosumer < b.prosumer;
            });
  std::vector<core::ProsumerId> picked;
  int64_t moved = 0;
  for (const ProsumerLoad& candidate : candidates) {
    if (static_cast<int>(picked.size()) >= max_moves || moved >= target_load) break;
    // Sorted descending: once loads hit zero nothing further can help.
    if (candidate.pending_offers <= 0) break;
    picked.push_back(candidate.prosumer);
    moved += candidate.pending_offers;
  }
  return picked;
}

RebalanceController::RebalanceController(RebalanceParams params, int num_shards,
                                         timeutil::TimeInterval window)
    : params_(params), num_shards_(num_shards), window_(window) {
  streak_.assign(static_cast<size_t>(num_shards_), 0);
  prev_shed_.assign(static_cast<size_t>(num_shards_), 0);
}

void RebalanceController::ResetShards(int num_shards, const std::vector<int64_t>& prev_shed) {
  num_shards_ = num_shards;
  streak_.assign(static_cast<size_t>(num_shards_), 0);
  if (prev_shed.size() == static_cast<size_t>(num_shards_)) {
    prev_shed_ = prev_shed;
  } else {
    prev_shed_.assign(static_cast<size_t>(num_shards_), 0);
  }
  idle_streak_ = 0;
}

std::optional<RebalanceDecision> RebalanceController::Observe(
    int64_t tick, const std::vector<ShardLoadSample>& samples) {
  if (static_cast<int>(samples.size()) != num_shards_) {
    ResetShards(static_cast<int>(samples.size()));
  }
  last_observed_tick_ = tick;

  // One synthetic per-tick overload report per shard: shed counters are
  // differenced so a shard that shed once long ago does not alert forever,
  // and the current queue depth stands in for the watermark (the cumulative
  // watermark never recedes, the depth does).
  std::vector<OnlineReport> reports(static_cast<size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    reports[s].shed_offers = static_cast<int>(samples[s].shed_offers - prev_shed_[s]);
    reports[s].queue_high_watermark = samples[s].queue_depth;
  }
  const std::vector<Alert> alerts = ScanOverload(reports, window_, params_.queue_depth_threshold);
  std::vector<bool> overloaded(static_cast<size_t>(num_shards_), false);
  for (const Alert& alert : alerts) {
    if (alert.shard >= 0 && alert.shard < num_shards_) overloaded[alert.shard] = true;
  }

  bool all_idle = true;
  for (int s = 0; s < num_shards_; ++s) {
    streak_[s] = overloaded[s] ? streak_[s] + 1 : 0;
    if (reports[s].shed_offers != 0 || samples[s].queue_depth != 0 || samples[s].backlog != 0) {
      all_idle = false;
    }
    prev_shed_[s] = samples[s].shed_offers;
  }
  idle_streak_ = all_idle ? idle_streak_ + 1 : 0;

  if (cooldown_ > 0) {
    --cooldown_;
    return std::nullopt;
  }

  int sustained = 0;
  int hot = -1;
  for (int s = 0; s < num_shards_; ++s) {
    if (streak_[s] < params_.window_ticks) continue;
    ++sustained;
    if (hot < 0 || streak_[s] > streak_[hot]) hot = s;
  }
  if (sustained > 0) {
    RebalanceDecision decision;
    decision.tick = tick;
    const int doubled = std::min(params_.max_shards, num_shards_ * 2);
    if (params_.allow_resize && sustained == num_shards_ && doubled > num_shards_) {
      decision.action = RebalancePlan::Action::kSplit;
      decision.new_num_shards = doubled;
    } else {
      if (num_shards_ < 2) return std::nullopt;  // nowhere to move, cannot split
      decision.action = RebalancePlan::Action::kMove;
      decision.hot_shard = hot;
      int cold = -1;
      auto load_of = [&](int s) { return samples[s].backlog + samples[s].queue_depth; };
      for (int s = 0; s < num_shards_; ++s) {
        if (s == hot) continue;
        if (cold < 0 || load_of(s) < load_of(cold) ||
            (load_of(s) == load_of(cold) && streak_[s] < streak_[cold])) {
          cold = s;
        }
      }
      decision.cold_shard = cold;
    }
    decision.plan_id = next_plan_id_++;
    cooldown_ = params_.cooldown_ticks;
    std::fill(streak_.begin(), streak_.end(), 0);
    idle_streak_ = 0;
    return decision;
  }

  if (params_.merge_window_ticks > 0 && params_.allow_resize &&
      idle_streak_ >= params_.merge_window_ticks && num_shards_ > params_.min_shards) {
    RebalanceDecision decision;
    decision.tick = tick;
    decision.action = RebalancePlan::Action::kMerge;
    decision.new_num_shards = std::max(params_.min_shards, num_shards_ / 2);
    decision.plan_id = next_plan_id_++;
    cooldown_ = params_.cooldown_ticks;
    std::fill(streak_.begin(), streak_.end(), 0);
    idle_streak_ = 0;
    return decision;
  }
  return std::nullopt;
}

JsonValue RebalanceController::EncodeState() const {
  JsonValue out = JsonValue::Object();
  out.Set("next_plan_id", JsonValue::Int(next_plan_id_));
  out.Set("cooldown", JsonValue::Int(cooldown_));
  out.Set("idle_streak", JsonValue::Int(idle_streak_));
  out.Set("last_observed_tick", JsonValue::Int(last_observed_tick_));
  JsonValue streaks = JsonValue::Array();
  for (int s : streak_) streaks.Append(JsonValue::Int(s));
  out.Set("streak", std::move(streaks));
  JsonValue sheds = JsonValue::Array();
  for (int64_t s : prev_shed_) sheds.Append(JsonValue::Int(s));
  out.Set("prev_shed", std::move(sheds));
  return out;
}

Status RebalanceController::DecodeState(const JsonValue& state) {
  if (!state.is_object()) return DataLossError("controller state is not an object");
  Result<int64_t> next_plan_id = state.GetInt("next_plan_id");
  Result<int64_t> cooldown = state.GetInt("cooldown");
  Result<int64_t> idle_streak = state.GetInt("idle_streak");
  Result<int64_t> last_observed = state.GetInt("last_observed_tick");
  FLEXVIS_RETURN_IF_ERROR(FirstError({&next_plan_id.status(), &cooldown.status(),
                                      &idle_streak.status(), &last_observed.status()},
                                     "controller state"));
  next_plan_id_ = *next_plan_id;
  cooldown_ = static_cast<int>(*cooldown);
  idle_streak_ = static_cast<int>(*idle_streak);
  last_observed_tick_ = *last_observed;
  const JsonValue& streaks = state.Get("streak");
  const JsonValue& sheds = state.Get("prev_shed");
  if (!streaks.is_array() || !sheds.is_array() ||
      streaks.size() != static_cast<size_t>(num_shards_) ||
      sheds.size() != static_cast<size_t>(num_shards_)) {
    return DataLossError(StrFormat("controller state does not cover %d shard(s)", num_shards_));
  }
  for (int s = 0; s < num_shards_; ++s) {
    streak_[s] = static_cast<int>(streaks[s].AsInt());
    prev_shed_[s] = sheds[s].AsInt();
  }
  return OkStatus();
}

}  // namespace flexvis::sim
