#include "sim/enterprise.h"

#include <algorithm>
#include <unordered_map>

#include "core/local_search.h"
#include "core/measures.h"
#include "sim/forecaster.h"
#include "util/fault.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/strings.h"

namespace flexvis::sim {

using core::FlexOffer;
using core::TimeSeries;
using timeutil::kMinutesPerSlice;
using timeutil::TimeInterval;
using timeutil::TimePoint;

Result<PlanningReport> Enterprise::PlanHorizon(const std::vector<FlexOffer>& offers,
                                               const TimeInterval& window) const {
  if (window.empty()) {
    return InvalidArgumentError("planning window is empty");
  }
  PlanningReport report;
  report.window = window;
  report.offers_in = static_cast<int>(offers.size());
  FaultRegistry& faults =
      params_.faults != nullptr ? *params_.faults : FaultRegistry::Global();

  // 0. Resolve both strategy identities up front so a misconfigured name is
  //    a typed error before any planning work, never a degraded run.
  report.forecaster = EffectiveForecasterName(params_.forecaster);
  Result<std::unique_ptr<Forecaster>> forecaster =
      ForecasterRegistry::Global().Make(report.forecaster);
  if (!forecaster.ok()) return forecaster.status();
  report.bidding = EffectiveBiddingName(params_.market.bidding);
  {
    Result<std::unique_ptr<BiddingStrategy>> bidding =
        BiddingRegistry::Global().Make(report.bidding);
    if (!bidding.ok()) return bidding.status();
  }

  // 1. Forecast the uncontrollable sides. In forecast mode the plan targets
  //    the registry-selected forecaster's prediction of the inflexible
  //    demand built from synthetic history; otherwise it targets the actual
  //    curves directly. If the forecasting service is down
  //    (sim.enterprise.forecast), the plan degrades to targeting the actual
  //    demand curve — a worse plan on a real day-ahead horizon, never a
  //    failed one.
  report.res_production = MakeResProduction(window, params_.energy);
  report.inflexible_demand = MakeInflexibleDemand(window, params_.energy);
  report.planned_against_demand = report.inflexible_demand;
  if (params_.plan_on_forecast) {
    Status forecast_up =
        RetryFaultPointIn(faults, "sim.enterprise.forecast", DefaultRetryPolicy(),
                          []() -> Status { return OkStatus(); });
    if (forecast_up.ok()) {
      TimeInterval history_window(
          window.start - params_.forecast_history_days * timeutil::kMinutesPerDay,
          window.start);
      TimeSeries history = MakeInflexibleDemand(history_window, params_.energy);
      report.planned_against_demand = (*forecaster)->Forecast(
          history, static_cast<size_t>(window.duration_minutes() / kMinutesPerSlice));
      report.forecast_error =
          EvaluateForecast(report.planned_against_demand, report.inflexible_demand);
    } else {
      report.degraded_stages.push_back("sim.enterprise.forecast");
    }
  }
  report.target = MakeFlexibilityTarget(report.res_production, report.planned_against_demand);

  // 2. Reset lifecycle state; planning decides it anew.
  std::vector<FlexOffer> fresh = offers;
  for (FlexOffer& o : fresh) {
    o.state = core::FlexOfferState::kOffered;
    o.schedule.reset();
  }

  // 3. Aggregate. An aggregation-service outage (sim.enterprise.aggregate)
  //    degrades to scheduling the raw offers individually — more work for
  //    the scheduler and a worse reduction ratio, but the horizon still
  //    plans.
  core::FlexOfferId next_id = 0;
  for (const FlexOffer& o : fresh) next_id = std::max(next_id, o.id);
  ++next_id;
  core::AggregationResult agg;
  Status aggregate_up =
      RetryFaultPointIn(faults, "sim.enterprise.aggregate", DefaultRetryPolicy(),
                        []() -> Status { return OkStatus(); });
  if (aggregate_up.ok()) {
    core::Aggregator aggregator(params_.aggregation);
    agg = aggregator.Aggregate(fresh, &next_id);
  } else {
    agg.aggregates = fresh;  // every offer schedules as its own unit
    report.degraded_stages.push_back("sim.enterprise.aggregate");
  }
  report.aggregates_built = static_cast<int>(agg.aggregates.size());

  // 4. Schedule the aggregates against the RES surplus. A scheduler outage
  //    (sim.enterprise.schedule) falls back to the last accepted plan when
  //    one exists for this exact window and aggregate set, and to the empty
  //    plan otherwise; either way the unserved imbalance is settled at the
  //    penalty fee in step 8 instead of crashing the horizon.
  core::ScheduleResult plan;
  Status scheduler_up =
      RetryFaultPointIn(faults, "sim.enterprise.schedule", DefaultRetryPolicy(),
                        []() -> Status { return OkStatus(); });
  std::vector<core::FlexOfferId> aggregate_ids;
  aggregate_ids.reserve(agg.aggregates.size());
  for (const FlexOffer& a : agg.aggregates) aggregate_ids.push_back(a.id);
  if (scheduler_up.ok()) {
    core::Scheduler scheduler(params_.scheduler);
    plan = scheduler.Plan(agg.aggregates, report.target);
    std::lock_guard<std::mutex> lock(plan_mutex_);
    last_accepted_plan_ = CachedPlan{window, aggregate_ids, plan};
  } else {
    report.degraded_stages.push_back("sim.enterprise.schedule");
    bool reused = false;
    {
      std::lock_guard<std::mutex> lock(plan_mutex_);
      if (last_accepted_plan_.has_value() && last_accepted_plan_->window == window &&
          last_accepted_plan_->aggregate_ids == aggregate_ids) {
        plan = last_accepted_plan_->plan;
        reused = true;
      }
    }
    if (!reused) {
      // Empty plan: reject everything, use no flexibility. The full target
      // imbalance remains and is booked as the paper's imbalance fee.
      plan.offers = agg.aggregates;
      for (FlexOffer& o : plan.offers) {
        o.state = core::FlexOfferState::kRejected;
        o.schedule.reset();
      }
      plan.planned_load = TimeSeries(window.start,
                                     static_cast<size_t>(window.duration_minutes() /
                                                         kMinutesPerSlice));
      plan.imbalance_before_kwh = report.target.AbsTotal();
      plan.imbalance_after_kwh = plan.imbalance_before_kwh;
    }
  }
  report.imbalance_before_kwh = plan.imbalance_before_kwh;
  report.imbalance_after_kwh = plan.imbalance_after_kwh;
  report.aggregate_offers = plan.offers;

  // 4b. Optional local-search refinement of the aggregate plan.
  if (params_.local_search_iterations > 0) {
    core::LocalSearchParams ls;
    ls.iterations = params_.local_search_iterations;
    ls.seed = params_.seed ^ 0xA5A5A5A5ULL;
    core::LocalSearchResult refined =
        core::LocalSearchImprover(ls).Improve(report.aggregate_offers, report.target);
    report.aggregate_offers = std::move(refined.offers);
    report.imbalance_after_kwh = refined.imbalance_after_kwh;
  }

  // 5. Disaggregate each assigned aggregate back onto its members. A
  //    disaggregation fault (sim.enterprise.disaggregate) demotes only the
  //    affected aggregate to rejected — its members run nothing, the lost
  //    flexibility surfaces as imbalance — rather than failing the horizon.
  std::unordered_map<core::FlexOfferId, const FlexOffer*> by_id;
  for (const FlexOffer& o : fresh) by_id[o.id] = &o;

  bool disaggregate_degraded = false;
  for (const FlexOffer& aggregate : report.aggregate_offers) {
    std::vector<FlexOffer> members;
    members.reserve(aggregate.aggregated_from.size());
    for (core::FlexOfferId id : aggregate.aggregated_from) {
      auto it = by_id.find(id);
      if (it == by_id.end()) {
        return InternalError(StrFormat("aggregate member %lld not found",
                                       static_cast<long long>(id)));
      }
      members.push_back(*it->second);
    }
    bool assigned = aggregate.state == core::FlexOfferState::kAssigned &&
                    aggregate.schedule.has_value();
    if (assigned) {
      Status disaggregate_up = RetryFaultPointIn(
          faults, "sim.enterprise.disaggregate", DefaultRetryPolicy(),
          []() -> Status { return OkStatus(); });
      if (!disaggregate_up.ok()) {
        assigned = false;
        disaggregate_degraded = true;
      }
    }
    if (assigned) {
      ++report.aggregates_assigned;
      if (aggregate.aggregated_from.empty()) {
        // Raw pass-through unit (aggregation degraded): it is its own member.
        report.member_offers.push_back(aggregate);
        continue;
      }
      Result<std::vector<FlexOffer>> scheduled = core::Disaggregate(aggregate, members);
      if (!scheduled.ok()) return scheduled.status();
      for (FlexOffer& m : *scheduled) report.member_offers.push_back(std::move(m));
    } else {
      ++report.aggregates_rejected;
      if (aggregate.aggregated_from.empty()) {
        FlexOffer raw = aggregate;
        raw.state = core::FlexOfferState::kRejected;
        raw.schedule.reset();
        report.member_offers.push_back(std::move(raw));
        continue;
      }
      for (FlexOffer& m : members) {
        m.state = core::FlexOfferState::kRejected;
        m.schedule.reset();
        report.member_offers.push_back(std::move(m));
      }
    }
  }
  if (disaggregate_degraded) {
    report.degraded_stages.push_back("sim.enterprise.disaggregate");
  }

  // 6. Planned flexible load from member schedules (must equal the
  //    aggregate-level plan by the disaggregation invariant).
  report.planned_flexible_load = core::PlannedLoad(report.member_offers);

  // 7. Simulate the physical realization.
  Rng rng(params_.seed);
  TimeSeries realized(report.planned_flexible_load.start(),
                      report.planned_flexible_load.size());
  for (const FlexOffer& m : report.member_offers) {
    if (!m.schedule.has_value()) continue;
    const double sign = m.direction == core::Direction::kConsumption ? 1.0 : -1.0;
    // A non-compliant prosumer ignores the assigned start and runs at its
    // earliest start (with the assigned energies); everyone else executes
    // the schedule with multiplicative metering/behaviour noise.
    const bool compliant = !rng.Bernoulli(params_.non_compliance);
    TimePoint start = compliant ? m.schedule->start : m.earliest_start;
    for (size_t i = 0; i < m.schedule->energy_kwh.size(); ++i) {
      double e = m.schedule->energy_kwh[i] *
                 std::max(0.0, 1.0 + rng.Normal(0.0, params_.execution_noise));
      realized.AddAt(start + static_cast<int64_t>(i) * kMinutesPerSlice, sign * e);
    }
  }
  report.realized_flexible_load = realized;

  // 8. Deviation and settlement. The enterprise trades the slice-wise
  //    residual (inflexible + planned flexible - RES) on the spot market and
  //    pays the imbalance fee on deviations.
  report.deviation = realized;
  report.deviation.Subtract(report.planned_flexible_load);

  TimeSeries residual = report.inflexible_demand;
  residual.Add(report.planned_flexible_load.Slice(window));
  residual.Subtract(report.res_production);

  MarketParams market_params = params_.market;
  if (market_params.faults == nullptr) market_params.faults = params_.faults;
  Market market(market_params);
  TimeSeries scarcity = residual;
  scarcity.Clamp(0.0, 1e18);
  TimeSeries prices = market.MakePrices(window, scarcity);
  Result<Settlement> settled = market.TrySettle(residual, report.deviation, prices);
  if (settled.ok()) {
    report.settlement = *std::move(settled);
  } else {
    // Spot market unreachable: nothing trades, and the whole residual is
    // settled at the imbalance penalty — the fee the paper warns about.
    report.settlement = market.SettleAllAsImbalance(residual, report.deviation, prices);
    report.degraded_stages.push_back("sim.market.bid");
  }
  return report;
}

Result<PlanningReport> Enterprise::RunDayAhead(dw::Database& db,
                                               const TimeInterval& window) const {
  dw::FlexOfferFilter filter;
  filter.window = window;
  filter.aggregates = dw::FlexOfferFilter::AggregateFilter::kOnlyRaw;
  // Collection is the pipeline's entry: without offers there is nothing to
  // degrade to, so an exhausted sim.enterprise.collect surfaces typed.
  FaultRegistry& faults =
      params_.faults != nullptr ? *params_.faults : FaultRegistry::Global();
  std::vector<FlexOffer> collected;
  FLEXVIS_RETURN_IF_ERROR(RetryFaultPointIn(
      faults, "sim.enterprise.collect", DefaultRetryPolicy(), [&]() -> Status {
        Result<std::vector<FlexOffer>> offers = db.SelectFlexOffers(filter);
        if (!offers.ok()) return offers.status();
        collected = *std::move(offers);
        return OkStatus();
      }));
  Result<std::vector<FlexOffer>> offers(std::move(collected));

  Result<PlanningReport> report = PlanHorizon(*offers, window);
  if (!report.ok()) return report.status();

  for (const FlexOffer& m : report->member_offers) {
    FLEXVIS_RETURN_IF_ERROR(db.UpdateFlexOffer(m));
  }
  FLEXVIS_RETURN_IF_ERROR(db.LoadFlexOffers(report->aggregate_offers));
  return report;
}

}  // namespace flexvis::sim
