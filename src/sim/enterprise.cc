#include "sim/enterprise.h"

#include <algorithm>
#include <unordered_map>

#include "core/local_search.h"
#include "core/measures.h"
#include "sim/forecaster.h"
#include "util/rng.h"
#include "util/strings.h"

namespace flexvis::sim {

using core::FlexOffer;
using core::TimeSeries;
using timeutil::kMinutesPerSlice;
using timeutil::TimeInterval;
using timeutil::TimePoint;

Result<PlanningReport> Enterprise::PlanHorizon(const std::vector<FlexOffer>& offers,
                                               const TimeInterval& window) const {
  if (window.empty()) {
    return InvalidArgumentError("planning window is empty");
  }
  PlanningReport report;
  report.window = window;
  report.offers_in = static_cast<int>(offers.size());

  // 1. Forecast the uncontrollable sides. In forecast mode the plan targets
  //    a Holt-Winters prediction of the inflexible demand built from
  //    synthetic history; otherwise it targets the actual curves directly.
  report.res_production = MakeResProduction(window, params_.energy);
  report.inflexible_demand = MakeInflexibleDemand(window, params_.energy);
  report.planned_against_demand = report.inflexible_demand;
  if (params_.plan_on_forecast) {
    TimeInterval history_window(
        window.start - params_.forecast_history_days * timeutil::kMinutesPerDay,
        window.start);
    TimeSeries history = MakeInflexibleDemand(history_window, params_.energy);
    HoltWintersForecaster forecaster;
    report.planned_against_demand = forecaster.Forecast(
        history, static_cast<size_t>(window.duration_minutes() / kMinutesPerSlice));
  }
  report.target = MakeFlexibilityTarget(report.res_production, report.planned_against_demand);

  // 2. Reset lifecycle state; planning decides it anew.
  std::vector<FlexOffer> fresh = offers;
  for (FlexOffer& o : fresh) {
    o.state = core::FlexOfferState::kOffered;
    o.schedule.reset();
  }

  // 3. Aggregate.
  core::FlexOfferId next_id = 0;
  for (const FlexOffer& o : fresh) next_id = std::max(next_id, o.id);
  ++next_id;
  core::Aggregator aggregator(params_.aggregation);
  core::AggregationResult agg = aggregator.Aggregate(fresh, &next_id);
  report.aggregates_built = static_cast<int>(agg.aggregates.size());

  // 4. Schedule the aggregates against the RES surplus.
  core::Scheduler scheduler(params_.scheduler);
  core::ScheduleResult plan = scheduler.Plan(agg.aggregates, report.target);
  report.imbalance_before_kwh = plan.imbalance_before_kwh;
  report.imbalance_after_kwh = plan.imbalance_after_kwh;
  report.aggregate_offers = plan.offers;

  // 4b. Optional local-search refinement of the aggregate plan.
  if (params_.local_search_iterations > 0) {
    core::LocalSearchParams ls;
    ls.iterations = params_.local_search_iterations;
    ls.seed = params_.seed ^ 0xA5A5A5A5ULL;
    core::LocalSearchResult refined =
        core::LocalSearchImprover(ls).Improve(report.aggregate_offers, report.target);
    report.aggregate_offers = std::move(refined.offers);
    report.imbalance_after_kwh = refined.imbalance_after_kwh;
  }

  // 5. Disaggregate each assigned aggregate back onto its members.
  std::unordered_map<core::FlexOfferId, const FlexOffer*> by_id;
  for (const FlexOffer& o : fresh) by_id[o.id] = &o;

  for (const FlexOffer& aggregate : report.aggregate_offers) {
    std::vector<FlexOffer> members;
    members.reserve(aggregate.aggregated_from.size());
    for (core::FlexOfferId id : aggregate.aggregated_from) {
      auto it = by_id.find(id);
      if (it == by_id.end()) {
        return InternalError(StrFormat("aggregate member %lld not found",
                                       static_cast<long long>(id)));
      }
      members.push_back(*it->second);
    }
    if (aggregate.state == core::FlexOfferState::kAssigned &&
        aggregate.schedule.has_value()) {
      ++report.aggregates_assigned;
      Result<std::vector<FlexOffer>> scheduled = core::Disaggregate(aggregate, members);
      if (!scheduled.ok()) return scheduled.status();
      for (FlexOffer& m : *scheduled) report.member_offers.push_back(std::move(m));
    } else {
      ++report.aggregates_rejected;
      for (FlexOffer& m : members) {
        m.state = core::FlexOfferState::kRejected;
        m.schedule.reset();
        report.member_offers.push_back(std::move(m));
      }
    }
  }

  // 6. Planned flexible load from member schedules (must equal the
  //    aggregate-level plan by the disaggregation invariant).
  report.planned_flexible_load = core::PlannedLoad(report.member_offers);

  // 7. Simulate the physical realization.
  Rng rng(params_.seed);
  TimeSeries realized(report.planned_flexible_load.start(),
                      report.planned_flexible_load.size());
  for (const FlexOffer& m : report.member_offers) {
    if (!m.schedule.has_value()) continue;
    const double sign = m.direction == core::Direction::kConsumption ? 1.0 : -1.0;
    // A non-compliant prosumer ignores the assigned start and runs at its
    // earliest start (with the assigned energies); everyone else executes
    // the schedule with multiplicative metering/behaviour noise.
    const bool compliant = !rng.Bernoulli(params_.non_compliance);
    TimePoint start = compliant ? m.schedule->start : m.earliest_start;
    for (size_t i = 0; i < m.schedule->energy_kwh.size(); ++i) {
      double e = m.schedule->energy_kwh[i] *
                 std::max(0.0, 1.0 + rng.Normal(0.0, params_.execution_noise));
      realized.AddAt(start + static_cast<int64_t>(i) * kMinutesPerSlice, sign * e);
    }
  }
  report.realized_flexible_load = realized;

  // 8. Deviation and settlement. The enterprise trades the slice-wise
  //    residual (inflexible + planned flexible - RES) on the spot market and
  //    pays the imbalance fee on deviations.
  report.deviation = realized;
  report.deviation.Subtract(report.planned_flexible_load);

  TimeSeries residual = report.inflexible_demand;
  residual.Add(report.planned_flexible_load.Slice(window));
  residual.Subtract(report.res_production);

  Market market(params_.market);
  TimeSeries scarcity = residual;
  scarcity.Clamp(0.0, 1e18);
  TimeSeries prices = market.MakePrices(window, scarcity);
  report.settlement = market.Settle(residual, report.deviation, prices);
  return report;
}

Result<PlanningReport> Enterprise::RunDayAhead(dw::Database& db,
                                               const TimeInterval& window) const {
  dw::FlexOfferFilter filter;
  filter.window = window;
  filter.aggregates = dw::FlexOfferFilter::AggregateFilter::kOnlyRaw;
  Result<std::vector<FlexOffer>> offers = db.SelectFlexOffers(filter);
  if (!offers.ok()) return offers.status();

  Result<PlanningReport> report = PlanHorizon(*offers, window);
  if (!report.ok()) return report.status();

  for (const FlexOffer& m : report->member_offers) {
    FLEXVIS_RETURN_IF_ERROR(db.UpdateFlexOffer(m));
  }
  FLEXVIS_RETURN_IF_ERROR(db.LoadFlexOffers(report->aggregate_offers));
  return report;
}

}  // namespace flexvis::sim
