#ifndef FLEXVIS_SIM_ENERGY_MODELS_H_
#define FLEXVIS_SIM_ENERGY_MODELS_H_

#include "core/time_series.h"
#include "util/rng.h"

namespace flexvis::sim {

/// Synthetic renewable production and inflexible demand curves at 15-minute
/// resolution, standing in for the paper's real market-zone measurements
/// (DESIGN.md §2). Shapes follow the textbook patterns the MIRABEL scenario
/// assumes: solar is a daylight bell, wind is slowly varying (AR(1)),
/// inflexible demand has morning and evening peaks.
struct EnergyModelParams {
  uint64_t seed = 7;
  /// Average wind capacity factor contribution per slice (kWh per slice at
  /// portfolio scale).
  double wind_mean_kwh = 120.0;
  /// Peak solar contribution at noon (kWh per slice).
  double solar_peak_kwh = 90.0;
  /// Base inflexible demand (kWh per slice) before the diurnal shape.
  double demand_base_kwh = 160.0;
  /// Relative noise applied to each series.
  double noise = 0.08;
};

/// RES production over `window` (wind + solar), per-slice kWh.
core::TimeSeries MakeResProduction(const timeutil::TimeInterval& window,
                                   const EnergyModelParams& params);

/// Inflexible (non-shiftable) demand over `window`, per-slice kWh.
core::TimeSeries MakeInflexibleDemand(const timeutil::TimeInterval& window,
                                      const EnergyModelParams& params);

/// The balancing target for the flexible portfolio: RES production minus
/// inflexible demand, signed. Positive slices are surplus the scheduler
/// should fill with flexible consumption; negative slices are deficit that
/// flexible production should cover (Fig. 1's "after" picture).
core::TimeSeries MakeFlexibilityTarget(const core::TimeSeries& res,
                                       const core::TimeSeries& inflexible_demand);

}  // namespace flexvis::sim

#endif  // FLEXVIS_SIM_ENERGY_MODELS_H_
