#ifndef FLEXVIS_SIM_SHARD_H_
#define FLEXVIS_SIM_SHARD_H_

#include <map>
#include <string_view>
#include <vector>

#include "core/flex_offer.h"
#include "util/status.h"

namespace flexvis::sim {

/// How prosumers are assigned to enterprise shards. The MIRABEL platform is
/// "envisioned to be deployed at different distribution and transmission
/// system operators"; sharding the prosumer population across N enterprise
/// instances models exactly that federation.
enum class ShardPolicy {
  /// Stable hash of the prosumer id — the load-balancing default.
  kHash = 0,
  /// Geographic: prosumers of the same atlas region share a shard (an
  /// enterprise per market zone).
  kRegion,
  /// Electrical: prosumers on the same grid feeder share a shard (an
  /// enterprise per distribution operator).
  kFeeder,
};

/// Upper bound on the shard count everywhere a count is validated (the
/// coordinator's constructor, FLEXVIS_SHARDS parsing, resize plans). One
/// constant so elasticity cannot grow a fleet past what the lockstep
/// coordinator was tested at.
inline constexpr int kMaxShards = 64;

std::string_view ShardPolicyName(ShardPolicy policy);

/// Inverse of ShardPolicyName; InvalidArgument on unknown names.
Result<ShardPolicy> ParseShardPolicy(std::string_view name);

/// Deterministic prosumer -> shard routing. The base mapping is a pure
/// function of (policy, num_shards, prosumer attributes); migrations lay
/// explicit per-prosumer overrides on top. Two routers constructed alike and
/// given the same overrides route identically in every process.
class ShardRouter {
 public:
  ShardRouter(int num_shards, ShardPolicy policy);

  int num_shards() const { return num_shards_; }
  ShardPolicy policy() const { return policy_; }

  /// Shard owning `offer`'s prosumer (override first, then policy).
  int ShardOf(const core::FlexOffer& offer) const;

  /// Shard for a prosumer given its dimension attributes.
  int ShardOfProsumer(core::ProsumerId prosumer, core::RegionId region,
                      core::GridNodeId grid_node) const;

  /// Pins `prosumer` to `shard` (a migration), overriding the policy.
  /// InvalidArgument when the shard index is out of range.
  Status Assign(core::ProsumerId prosumer, int shard);

  /// The explicit overrides, ordered by prosumer id (the serialized form the
  /// coordinator manifest pins).
  const std::map<core::ProsumerId, int>& overrides() const { return overrides_; }

  /// Splits `offers` into per-shard index lists, preserving the input order
  /// within every shard: out[s] holds the positions (into `offers`) of the
  /// offers shard s owns, ascending. Order preservation is what makes an
  /// N-shard merge reproduce global input order exactly.
  std::vector<std::vector<size_t>> Partition(const std::vector<core::FlexOffer>& offers) const;

 private:
  int num_shards_;
  ShardPolicy policy_;
  std::map<core::ProsumerId, int> overrides_;
};

}  // namespace flexvis::sim

#endif  // FLEXVIS_SIM_SHARD_H_
