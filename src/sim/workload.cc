#include "sim/workload.h"

#include <algorithm>
#include <cmath>

#include "time/granularity.h"
#include "util/strings.h"

namespace flexvis::sim {

Status InstallFaultsFromEnv(uint64_t seed) {
  return InstallFaultsInto(FaultRegistry::Global(), seed);
}

Status InstallFaultsInto(FaultRegistry& registry, uint64_t seed) {
  registry.Seed(seed);
  return registry.ConfigureFromEnv();
}

using core::ApplianceType;
using core::Direction;
using core::EnergyType;
using core::FlexOffer;
using core::ProfileSlice;
using core::ProsumerType;
using timeutil::kMinutesPerSlice;
using timeutil::TimePoint;

namespace {

// Built-in prosumer mix: indexed by ProsumerType.
const std::vector<double>& DefaultProsumerWeights() {
  static const std::vector<double> kWeights = {0.62, 0.14, 0.10, 0.05, 0.06, 0.03};
  return kWeights;
}

// Appliance candidates (with weights) per prosumer type.
struct ApplianceChoice {
  ApplianceType appliance;
  double weight;
};

std::vector<ApplianceChoice> AppliancesFor(ProsumerType type) {
  switch (type) {
    case ProsumerType::kHousehold:
      return {{ApplianceType::kElectricVehicle, 0.30},
              {ApplianceType::kHeatPump, 0.25},
              {ApplianceType::kWashingMachine, 0.18},
              {ApplianceType::kDishwasher, 0.15},
              {ApplianceType::kWaterHeater, 0.12}};
    case ProsumerType::kCommercial:
      return {{ApplianceType::kHeatPump, 0.40},
              {ApplianceType::kBatteryStorage, 0.25},
              {ApplianceType::kElectricVehicle, 0.35}};
    case ProsumerType::kSmallIndustry:
    case ProsumerType::kLargeIndustry:
      return {{ApplianceType::kIndustrialProcess, 0.7},
              {ApplianceType::kBatteryStorage, 0.3}};
    case ProsumerType::kSmallPowerPlant:
    case ProsumerType::kLargePowerPlant:
      return {{ApplianceType::kGenerator, 0.85}, {ApplianceType::kBatteryStorage, 0.15}};
  }
  return {{ApplianceType::kWashingMachine, 1.0}};
}

EnergyType EnergyTypeFor(Rng& rng, ProsumerType prosumer, ApplianceType appliance) {
  if (appliance == ApplianceType::kGenerator) {
    // Plant portfolio: mostly renewables, some conventional.
    const std::vector<double> w = {0.35, 0.15, 0.15, 0.10, 0.05, 0.08, 0.12, 0.0};
    Rng& r = rng;
    return static_cast<EnergyType>(r.WeightedIndex(w));
  }
  (void)prosumer;
  return EnergyType::kMixedGrid;
}

// Scale factor of per-slice energies by prosumer type.
double EnergyScale(ProsumerType type) {
  switch (type) {
    case ProsumerType::kHousehold: return 1.0;
    case ProsumerType::kCommercial: return 4.0;
    case ProsumerType::kSmallIndustry: return 12.0;
    case ProsumerType::kLargeIndustry: return 40.0;
    case ProsumerType::kSmallPowerPlant: return 60.0;
    case ProsumerType::kLargePowerPlant: return 250.0;
  }
  return 1.0;
}

// Appliance-specific profile and flexibility synthesis. Durations in unit
// slices, energies in kWh per slice before prosumer scaling.
struct OfferShape {
  std::vector<ProfileSlice> profile;
  int64_t time_flex_minutes = 0;
  Direction direction = Direction::kConsumption;
};

OfferShape MakeShape(Rng& rng, ApplianceType appliance) {
  OfferShape shape;
  auto slice = [](double lo, double hi) { return ProfileSlice{1, lo, hi}; };
  switch (appliance) {
    case ApplianceType::kElectricVehicle: {
      // Constant-rate charging, 1-4 hours, amount fixed, start very flexible
      // (the "charge a battery at any time over a night" example).
      int slices = static_cast<int>(rng.UniformInt(4, 16));
      double rate = rng.Uniform(1.5, 2.8);
      for (int i = 0; i < slices; ++i) shape.profile.push_back(slice(rate * 0.8, rate));
      shape.time_flex_minutes = rng.UniformInt(8, 40) * kMinutesPerSlice;
      break;
    }
    case ApplianceType::kHeatPump: {
      // Ramp up/down; energy per slice adjustable within a comfort band.
      int slices = static_cast<int>(rng.UniformInt(2, 8));
      for (int i = 0; i < slices; ++i) {
        double mid = rng.Uniform(0.4, 1.2);
        shape.profile.push_back(slice(mid * 0.5, mid * 1.5));
      }
      shape.time_flex_minutes = rng.UniformInt(2, 12) * kMinutesPerSlice;
      break;
    }
    case ApplianceType::kWashingMachine:
    case ApplianceType::kDishwasher: {
      // Rigid program: min == max per slice; only the start shifts.
      int slices = static_cast<int>(rng.UniformInt(3, 8));
      for (int i = 0; i < slices; ++i) {
        double e = i == 0 ? rng.Uniform(0.4, 0.7) : rng.Uniform(0.15, 0.5);
        shape.profile.push_back(slice(e, e));
      }
      shape.time_flex_minutes = rng.UniformInt(4, 24) * kMinutesPerSlice;
      break;
    }
    case ApplianceType::kWaterHeater: {
      int slices = static_cast<int>(rng.UniformInt(2, 6));
      for (int i = 0; i < slices; ++i) shape.profile.push_back(slice(0.3, 1.0));
      shape.time_flex_minutes = rng.UniformInt(8, 32) * kMinutesPerSlice;
      break;
    }
    case ApplianceType::kBatteryStorage: {
      // Either absorbs or injects; fully modulating.
      int slices = static_cast<int>(rng.UniformInt(2, 10));
      for (int i = 0; i < slices; ++i) shape.profile.push_back(slice(0.0, rng.Uniform(1.0, 3.0)));
      shape.time_flex_minutes = rng.UniformInt(4, 48) * kMinutesPerSlice;
      shape.direction = rng.Bernoulli(0.5) ? Direction::kConsumption : Direction::kProduction;
      break;
    }
    case ApplianceType::kIndustrialProcess: {
      // Long, heavy, barely flexible (the abnormally long profiles the basic
      // view makes visible).
      int slices = static_cast<int>(rng.UniformInt(8, 40));
      double base = rng.Uniform(0.8, 1.4);
      for (int i = 0; i < slices; ++i) shape.profile.push_back(slice(base * 0.9, base * 1.1));
      shape.time_flex_minutes = rng.UniformInt(0, 6) * kMinutesPerSlice;
      break;
    }
    case ApplianceType::kGenerator: {
      int slices = static_cast<int>(rng.UniformInt(4, 24));
      for (int i = 0; i < slices; ++i) {
        double mid = rng.Uniform(0.6, 1.4);
        shape.profile.push_back(slice(mid * 0.4, mid * 1.3));
      }
      shape.time_flex_minutes = rng.UniformInt(0, 16) * kMinutesPerSlice;
      shape.direction = Direction::kProduction;
      break;
    }
  }
  if (shape.profile.empty()) shape.profile.push_back(slice(0.5, 0.5));
  return shape;
}

TimePoint AlignToSlice(TimePoint t) {
  return timeutil::TruncateTo(t, timeutil::Granularity::kSlice);
}

}  // namespace

Status ValidateWorkloadParams(const WorkloadParams& params) {
  auto check_fraction = [](const char* name, double value) -> Status {
    if (!(value >= 0.0 && value <= 1.0)) {
      return InvalidArgumentError(
          StrFormat("WorkloadParams.%s = %g is outside [0, 1]", name, value));
    }
    return OkStatus();
  };
  FLEXVIS_RETURN_IF_ERROR(check_fraction("fraction_accepted", params.fraction_accepted));
  FLEXVIS_RETURN_IF_ERROR(check_fraction("fraction_assigned", params.fraction_assigned));
  FLEXVIS_RETURN_IF_ERROR(check_fraction("fraction_rejected", params.fraction_rejected));
  double sum =
      params.fraction_accepted + params.fraction_assigned + params.fraction_rejected;
  if (sum > 1.0 + 1e-12) {
    return InvalidArgumentError(StrFormat(
        "WorkloadParams status fractions sum to %g > 1.0 "
        "(accepted %g + assigned %g + rejected %g); the remainder must stay Offered",
        sum, params.fraction_accepted, params.fraction_assigned, params.fraction_rejected));
  }
  if (params.num_prosumers < 0) {
    return InvalidArgumentError(
        StrFormat("WorkloadParams.num_prosumers = %d is negative", params.num_prosumers));
  }
  if (params.offers_per_prosumer < 0.0) {
    return InvalidArgumentError(StrFormat("WorkloadParams.offers_per_prosumer = %g is negative",
                                          params.offers_per_prosumer));
  }
  if (params.time_shift_minutes % kMinutesPerSlice != 0) {
    return InvalidArgumentError(StrFormat(
        "WorkloadParams.time_shift_minutes = %lld is not slice-aligned (multiple of %lld)",
        static_cast<long long>(params.time_shift_minutes),
        static_cast<long long>(kMinutesPerSlice)));
  }
  return OkStatus();
}

FlexOffer WorkloadGenerator::MakeOffer(Rng& rng, const dw::ProsumerInfo& prosumer,
                                       TimePoint around, core::FlexOfferId id,
                                       std::optional<ApplianceType> appliance_override) const {
  ApplianceType appliance;
  if (appliance_override.has_value()) {
    appliance = *appliance_override;
  } else {
    std::vector<ApplianceChoice> choices = AppliancesFor(prosumer.type);
    std::vector<double> weights;
    weights.reserve(choices.size());
    for (const ApplianceChoice& c : choices) weights.push_back(c.weight);
    appliance = choices[rng.WeightedIndex(weights)].appliance;
  }

  OfferShape shape = MakeShape(rng, appliance);
  double scale = EnergyScale(prosumer.type) * rng.Uniform(0.7, 1.3);
  for (ProfileSlice& s : shape.profile) {
    s.min_energy_kwh *= scale;
    s.max_energy_kwh *= scale;
  }

  FlexOffer offer;
  offer.id = id;
  offer.prosumer = prosumer.id;
  offer.region = prosumer.region;
  offer.grid_node = prosumer.grid_node;
  offer.prosumer_type = prosumer.type;
  offer.appliance_type = appliance;
  offer.energy_type = EnergyTypeFor(rng, prosumer.type, appliance);
  offer.direction = shape.direction;
  offer.profile = std::move(shape.profile);

  offer.earliest_start = AlignToSlice(around);
  offer.latest_start = offer.earliest_start + shape.time_flex_minutes;
  // Creation well before execution; deadlines in between, respecting
  // creation <= acceptance <= assignment <= latest_start.
  offer.creation_time = offer.earliest_start - rng.UniformInt(6, 36) * 60;
  TimePoint acceptance = offer.creation_time + rng.UniformInt(1, 6) * 60;
  if (offer.latest_start < acceptance) acceptance = offer.latest_start;
  offer.acceptance_deadline = acceptance;
  TimePoint assignment = acceptance + rng.UniformInt(1, 8) * 60;
  if (offer.latest_start < assignment) assignment = offer.latest_start;
  offer.assignment_deadline = assignment;
  return offer;
}

Result<Workload> WorkloadGenerator::Generate(const WorkloadParams& params) const {
  FLEXVIS_RETURN_IF_ERROR(ValidateWorkloadParams(params));
  Rng rng(params.seed);
  Workload out;

  const std::vector<double>& type_weights = params.prosumer_type_weights.empty()
                                                ? DefaultProsumerWeights()
                                                : params.prosumer_type_weights;
  const std::vector<geo::GeoRegion> leaves = atlas_->Leaves();
  const std::vector<grid::GridNode> feeders = topology_->Feeders();

  // Prosumer population.
  out.prosumers.reserve(static_cast<size_t>(params.num_prosumers));
  for (int i = 0; i < params.num_prosumers; ++i) {
    dw::ProsumerInfo p;
    p.id = params.first_prosumer_id + i;
    p.type = static_cast<ProsumerType>(rng.WeightedIndex(type_weights));
    p.name = StrFormat("%s %d", std::string(core::ProsumerTypeName(p.type)).c_str(),
                       static_cast<int>(p.id));
    p.region = leaves.empty() ? core::kInvalidRegionId
                              : leaves[static_cast<size_t>(
                                           rng.UniformInt(0, static_cast<int64_t>(
                                                                 leaves.size()) - 1))].id;
    p.grid_node = feeders.empty() ? core::kInvalidGridNodeId
                                  : feeders[static_cast<size_t>(rng.UniformInt(
                                                0, static_cast<int64_t>(feeders.size()) - 1))]
                                        .id;
    out.prosumers.push_back(std::move(p));
  }

  // Offers.
  timeutil::TimeInterval horizon = params.horizon;
  if (horizon.empty()) {
    horizon = timeutil::TimeInterval(TimePoint::FromCalendarOrDie(2013, 1, 15, 0, 0),
                                     TimePoint::FromCalendarOrDie(2013, 1, 17, 0, 0));
  }
  core::FlexOfferId next_id = params.first_offer_id;
  for (const dw::ProsumerInfo& prosumer : out.prosumers) {
    int64_t count = rng.Poisson(params.offers_per_prosumer);
    for (int64_t k = 0; k < count; ++k) {
      int64_t span = horizon.duration_minutes();
      TimePoint around = horizon.start + rng.UniformInt(0, std::max<int64_t>(0, span - 1));
      FlexOffer offer =
          MakeOffer(rng, prosumer, around, next_id++, params.appliance_override);

      // Keep the whole flexible window inside the horizon where possible.
      if (horizon.end < offer.latest_end()) {
        int64_t overshoot = offer.latest_end() - horizon.end;
        int64_t shift = ((overshoot + kMinutesPerSlice - 1) / kMinutesPerSlice) *
                        kMinutesPerSlice;
        offer.earliest_start = offer.earliest_start - shift;
        offer.latest_start = offer.latest_start - shift;
        offer.creation_time = offer.creation_time - shift;
        offer.acceptance_deadline = offer.acceptance_deadline - shift;
        offer.assignment_deadline = offer.assignment_deadline - shift;
      }

      // DST-style grid shift: the fleet's clocks move against the market
      // grid, so every time field (and thus any derived schedule) shifts.
      if (params.time_shift_minutes != 0) {
        const int64_t shift = params.time_shift_minutes;
        offer.earliest_start = offer.earliest_start + shift;
        offer.latest_start = offer.latest_start + shift;
        offer.creation_time = offer.creation_time + shift;
        offer.acceptance_deadline = offer.acceptance_deadline + shift;
        offer.assignment_deadline = offer.assignment_deadline + shift;
      }

      // Lifecycle state mix.
      double u = rng.NextDouble();
      if (u < params.fraction_assigned) {
        offer.state = core::FlexOfferState::kAssigned;
        // Synthetic schedule: a random feasible start, mid-band energies.
        int64_t steps = offer.time_flexibility_minutes() / kMinutesPerSlice;
        int64_t pick = steps > 0 ? rng.UniformInt(0, steps) : 0;
        core::Schedule sched;
        sched.start = offer.earliest_start + pick * kMinutesPerSlice;
        for (const ProfileSlice& s : offer.UnitProfile()) {
          sched.energy_kwh.push_back(
              rng.Uniform(s.min_energy_kwh, s.max_energy_kwh));
        }
        offer.schedule = std::move(sched);
      } else if (u < params.fraction_assigned + params.fraction_accepted) {
        offer.state = core::FlexOfferState::kAccepted;
      } else if (u < params.fraction_assigned + params.fraction_accepted +
                         params.fraction_rejected) {
        offer.state = core::FlexOfferState::kRejected;
      } else {
        offer.state = core::FlexOfferState::kOffered;
      }
      out.offers.push_back(std::move(offer));
    }
  }
  return out;
}

Status WorkloadGenerator::LoadIntoDatabase(const Workload& workload, dw::Database& db) {
  for (const dw::ProsumerInfo& p : workload.prosumers) {
    FLEXVIS_RETURN_IF_ERROR(db.RegisterProsumer(p));
  }
  return db.LoadFlexOffers(workload.offers);
}

}  // namespace flexvis::sim
