#ifndef FLEXVIS_SIM_COORDINATOR_H_
#define FLEXVIS_SIM_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/checkpoint.h"
#include "sim/enterprise.h"
#include "sim/online.h"
#include "sim/rebalance.h"
#include "sim/shard.h"
#include "util/fault.h"
#include "util/status.h"
#include "util/store.h"

namespace flexvis::sim {

/// Multi-enterprise sharding: the prosumer population is partitioned across
/// N Enterprise instances (shards) by a ShardRouter, and a Coordinator
/// drives all shards in lockstep — one global planning tick advances every
/// shard one tick — then merges the per-shard reports into a global view
/// with deterministic ordering. Each shard owns its own FaultRegistry,
/// OnlineLoopState, checkpoint directory, and write-ahead journal; nothing
/// process-wide sits on the tick path, so shard tick *computation* runs in
/// parallel (util/parallel pool) while all journal and snapshot I/O happens
/// serially in shard order (the process-wide util.journal.* / util.fileio.*
/// crash points therefore fire at deterministic positions, which the
/// coordinator kill-matrix test relies on).
///
/// A 1-shard run is byte-identical to the unsharded OnlineEnterprise::Run:
/// the hash partition routes everything to shard 0 in input order, energy
/// scaling divides by 1.0 (exact), and the merge maps shard-local offers
/// back through the identity permutation.

/// Layout of a sharded checkpoint directory:
///
///   COORDINATOR.json      the coordinator's util/store manifest (a zero-file
///                         generation whose `meta` carries num_shards, policy,
///                         epoch, base_epoch, migration overrides, and the
///                         global offer order) — written atomically, last at
///                         Begin (the run's commit point) and again after
///                         every committed migration and at every compaction
///   shard-0000/           a full single-enterprise checkpoint store
///   shard-0001/ ...       (meta.json, offers.jsonl, state.json for compacted
///                         generations, SNAPSHOT.json, journal.wal)
///
/// Compaction (OnlineParams::compact_ticks = C > 0) runs at every global tick
/// boundary divisible by C: the coordinator first advances `base_epoch` to
/// the current epoch in COORDINATOR.json, then folds every shard's journal
/// into a new store generation whose offers.jsonl reflects the *current*
/// router partition (committed migrations baked in). A recovery that finds a
/// migration record at or below base_epoch whose counterpart record was
/// compacted away therefore knows the counterpart shard's snapshot already
/// reflects that migration.
inline constexpr const char* kCoordinatorManifestFile = "COORDINATOR.json";
inline constexpr const char* kShardDirPrefix = "shard-";

/// Name of the shard-count environment knob benches and the CLI honour.
inline constexpr const char* kShardsEnvVar = "FLEXVIS_SHARDS";

/// getenv(FLEXVIS_SHARDS) clamped to [1, 64]; `fallback` when unset/invalid.
int ShardsFromEnv(int fallback = 1);

struct CoordinatorParams {
  int num_shards = 1;
  ShardPolicy policy = ShardPolicy::kHash;
  /// Per-shard loop parameters. `online.faults` is ignored: every shard gets
  /// its own registry, seeded from `fault_seed` and armed from
  /// FLEXVIS_FAULTS (a no-op when the variable is unset).
  OnlineParams online;
  /// Divide the energy-model means (wind/solar/demand) by num_shards so each
  /// shard balances its share of the market zone and shard-summed totals
  /// stay comparable to a single-enterprise run. Division by 1.0 is exact,
  /// preserving 1-shard byte-identity.
  bool scale_energy_per_shard = true;
  /// Base seed for the per-shard fault registries (shard s is seeded with a
  /// shard-distinct mix of this).
  uint64_t fault_seed = 2013;
  /// When set, a RebalanceController watches every tick's per-shard load and
  /// autonomously issues journaled RebalancePlans (prosumer moves, and —
  /// when `allow_resize` — shard split/merge). Unset: no controller, the
  /// PR-4 behaviour.
  std::optional<RebalanceParams> rebalance;
};

/// What MigrateProsumer may move. kIdleOnly is the PR-4 contract: the
/// prosumer must have no ingested offers (FailedPrecondition otherwise).
/// kAllowActive lifts that: mid-flight state (ingested-arrival positions,
/// pending-queue entries, decided offer states with schedules) travels
/// inside the migrate_out/migrate_in records, and both shards are re-based
/// onto spliced folded records with the consumed-history splice verified.
enum class MigrationMode {
  kIdleOnly = 0,
  kAllowActive,
};

/// A prosumer's mid-flight state, the payload an *active* migration moves
/// between shards (journaled inside the migrate_out/migrate_in records and
/// spliced into both shards' folded records at commit).
struct MigratedState {
  /// The prosumer's offers, verbatim input copies in global input order
  /// (migrate_in records carry them so the record is self-contained).
  std::vector<core::FlexOffer> offers;
  /// Offers already past the source's arrival cursor, in source arrival
  /// order (ingested or dropped at the ingest seam).
  std::vector<core::FlexOfferId> consumed;
  /// Pending-queue membership, in queue order.
  std::vector<core::FlexOfferId> pending_acceptance;
  std::vector<core::FlexOfferId> pending_assignment;
  /// Decided states (non-kOffered) with committed schedules, in source
  /// subset order.
  std::vector<OnlineStateChange> states;

  /// An idle prosumer: nothing consumed (and therefore nothing pending or
  /// decided) — eligible for the PR-4 idle migration path.
  bool idle() const { return consumed.empty(); }
};

/// The coordinator's merged view of one sharded run.
struct MergedOnlineReport {
  int num_shards = 1;
  /// Assignment epoch: number of committed prosumer migrations.
  int64_t epoch = 0;
  /// Shard-layout generation: number of committed split/merge resizes (the
  /// suffix of the shard directories, 0 for the initial layout).
  int topology = 0;
  /// Global report: counters summed across shards (queue_high_watermark is
  /// the max), offers merged back into global input order, outbox
  /// concatenated in shard order.
  OnlineReport global;
  /// Per-shard reports, indexed by shard id (sim/alerts ScanOverload input).
  std::vector<OnlineReport> shard_reports;
  /// Σ total_max_energy_kwh over the input offers in global order — a
  /// shard-invariant total (bit-identical at any shard count).
  double total_offered_kwh = 0.0;
};

/// Observability of a sharded recovery.
struct ShardResumeInfo {
  std::vector<ResumeInfo> shards;
  /// Committed migrations reconstructed from the journals.
  int migrations_replayed = 0;
  /// migrate_out records whose migrate_in was lost to the crash; the resume
  /// completed them (synthesizing the migrate_in) before continuing.
  int migrations_repaired = 0;
  /// True when COORDINATOR.json lagged the journals (crash between a
  /// migration's journal flushes and its manifest rewrite) and was rewritten.
  bool manifest_rewritten = false;
  /// Rebalance plans whose journaled record had no completion marker: the
  /// resume finished their remaining steps (or re-committed the resize).
  int plans_completed = 0;
  /// Plans the controller re-decided from the replayed load history because
  /// the crash hit after the trigger but before the plan record was durable;
  /// the resume executed them from scratch.
  int plans_reexecuted = 0;
  /// Shard store directories of superseded topologies (or uncommitted resize
  /// staging) swept by the recovery.
  int stale_shard_dirs_swept = 0;
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorParams params);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  const CoordinatorParams& params() const { return params_; }
  const ShardRouter& router() const { return router_; }
  int64_t epoch() const { return epoch_; }
  /// Number of committed split/merge resizes (0 for the initial layout).
  int topology() const { return topology_; }
  /// Rebalance plans executed by this coordinator instance (controller runs).
  int64_t plans_executed() const { return plans_executed_; }

  /// Per-shard fault registry (armed from FLEXVIS_FAULTS at Begin); valid
  /// after Begin. Tests arm individual shards through this.
  FaultRegistry& shard_faults(int shard);

  /// Partitions `offers` across the shards and builds every shard's loop
  /// state. In-memory mode: nothing touches disk.
  Status Begin(const std::vector<core::FlexOffer>& offers,
               const timeutil::TimeInterval& window);

  /// Begin with checkpointing under `directory` (created if needed; a
  /// previous run there is invalidated first): one snapshot sub-directory
  /// per shard, COORDINATOR.json written last as the commit point, and a
  /// per-shard journal flushed every tick.
  Status BeginCheckpointed(const std::vector<core::FlexOffer>& offers,
                           const timeutil::TimeInterval& window,
                           const std::string& directory);

  /// True when every shard has executed all ticks of the window.
  bool Done() const;

  /// Advances the run one global tick: every shard at the minimum tick index
  /// computes its tick in parallel (per-shard state and registries only),
  /// then the records are journaled serially in shard order.
  Status Tick();

  /// Moves `prosumer` to `to_shard`, replay-verified. Under kIdleOnly the
  /// prosumer must be idle in its current shard (none of its offers ingested
  /// yet — FailedPrecondition naming *every* already-ingested offer id
  /// otherwise); its offers are exported as a journaled migrate_out record,
  /// imported into the target via a migrate_in record carrying the full
  /// offer payload, and both shards are rebuilt from their new offer subsets
  /// by replaying every applied tick record; the rebuilt states are diffed
  /// against the pre-migration counters/outbox (Internal on any mismatch).
  /// Under kAllowActive an active prosumer moves too: the records
  /// additionally carry its consumed-arrival positions, pending-queue
  /// entries, and decided states, and both shards are re-based onto spliced
  /// folded records (FailedPrecondition when inter-shard ingest backlog skew
  /// would reorder the target's consumed history). Commits the new
  /// assignment epoch to COORDINATOR.json when checkpointed. NotFound when
  /// the prosumer owns no offers; InvalidArgument when already on
  /// `to_shard`.
  Status MigrateProsumer(core::ProsumerId prosumer, int to_shard,
                         MigrationMode mode = MigrationMode::kIdleOnly);

  /// Changes the fleet to `new_num_shards` at the current tick boundary
  /// (FailedPrecondition when the shards are not in lockstep or ingest
  /// backlog skew makes the consumed-history splice ambiguous). The global
  /// live state is re-partitioned under a fresh router (overrides cleared),
  /// cumulative counters and the outbox are re-homed to new shard 0, and —
  /// when checkpointed — a new topology of shard stores
  /// (`shard-NNNN.t<topology>/`) is staged and committed atomically by the
  /// COORDINATOR.json rewrite, after which the old topology's directories
  /// are destroyed (a crash in between leaves debris the next resume
  /// sweeps). InvalidArgument when the count is unchanged or out of
  /// [1, kMaxShards].
  Status Resize(int new_num_shards);

  /// Finalizes every shard and merges. Call once, after Done().
  Result<MergedOnlineReport> Finish();

  // ---- One-shot drivers ----------------------------------------------------

  static Result<MergedOnlineReport> RunSharded(const CoordinatorParams& params,
                                               const std::vector<core::FlexOffer>& offers,
                                               const timeutil::TimeInterval& window);

  static Result<MergedOnlineReport> RunShardedCheckpointed(
      const CoordinatorParams& params, const std::vector<core::FlexOffer>& offers,
      const timeutil::TimeInterval& window, const std::string& directory);

  /// Recovers a sharded run from `directory`: reads COORDINATOR.json
  /// (kDataLoss when absent — the run never committed; rerun from inputs),
  /// loads every shard snapshot, replays every shard journal in lockstep —
  /// reconstructing committed migrations in order, repairing a migration
  /// whose migrate_in was lost to the crash, truncating torn tails — then
  /// resumes all shards to a consistent epoch, continues the remaining
  /// ticks, and returns the merged report, byte-identical to an
  /// uninterrupted run.
  static Result<MergedOnlineReport> ResumeSharded(const std::string& directory,
                                                  ShardResumeInfo* info = nullptr);

 private:
  struct Shard;

  std::string ShardDir(int shard) const;
  /// Shard directory name under a specific topology: plain `shard-NNNN` for
  /// topology 0, `shard-NNNN.t<T>` after T resizes.
  static std::string ShardDirName(int topology, int shard);
  /// The coordinator state persisted as the COORDINATOR.json store meta.
  JsonValue CoordinatorMeta() const;
  /// Recommits COORDINATOR.json (the coordinator store manifest) with the
  /// current epoch/base_epoch/overrides — the atomic commit point for every
  /// coordinator-level state change.
  Status WriteCoordinatorManifest();
  /// Folds every shard's journal into a new store generation (current router
  /// partition + folded tick record), advancing base_epoch first so recovery
  /// can tell baked migrations from lost ones. `include`, when non-null,
  /// restricts the fold to the flagged shards — the resume path's catch-up
  /// for a compaction the crash interrupted partway through the shard list.
  Status CompactShards(const std::vector<bool>* include = nullptr);
  /// Resume-only: re-verifies shard `s` against the manifest-seeded router by
  /// rebuild + replay-diff, swapping in the rebuilt state. Used for a
  /// migration record whose counterpart was compacted away (epoch at or
  /// below base_epoch): the other shard's snapshot already reflects the
  /// migration, so only the surfacing shard needs its state rebased.
  Status RebakeShard(int s, int64_t epoch);
  /// Rebuilds shard `s`'s loop state from the offer subset `router` assigns
  /// it, replaying every applied tick record, and replay-diffs the result
  /// against the live state (arrival prefix, counters, outbox) — the
  /// migration verification step. Writes the rebuilt state to `out`.
  Status RebuildShard(int s, const ShardRouter& router, OnlineLoopState* out) const;
  /// Commits a migration whose journal records are already durable: applies
  /// the override, bumps the epoch, and swaps in the rebuilt states.
  Status CommitMigration(core::ProsumerId prosumer, int from, int to, int64_t new_epoch);
  std::vector<std::vector<size_t>> CurrentPartition() const;

  // ---- Active migration / splice (rebalance tentpole) ----------------------

  /// Everything of `prosumer`'s mid-flight state on shard `s`, extracted
  /// from the live loop state.
  MigratedState ExtractMovedState(int s, core::ProsumerId prosumer) const;
  /// Begin(subset) + Apply(fold), then verifies the consumed-arrival prefix
  /// is exactly `expect_consumed` as a set (FailedPrecondition otherwise —
  /// ingest-backlog skew would reorder consumed history). Swaps into `out`.
  /// Runs under the shard-owning `enterprise` so the energy-scaled residual
  /// target matches (a resize passes the *new* fleet's enterprises here).
  Status BuildSplicedState(const OnlineEnterprise& enterprise,
                           const std::vector<core::FlexOffer>& subset,
                           const OnlineTickRecord& fold,
                           const std::vector<core::FlexOfferId>& expect_consumed,
                           OnlineLoopState* out) const;
  /// Commits an active migration whose records are already durable: splices
  /// the moved state out of `from` and into `to`, re-bases both shards onto
  /// the spliced folds, applies the override, and bumps the epoch.
  Status CommitActiveMigration(core::ProsumerId prosumer, int from, int to, int64_t new_epoch);
  /// Resume-only one-sided rebases for an active migration whose counterpart
  /// record was compacted away: only the surfacing shard is re-based, using
  /// the record's moved-state fields (the other shard's snapshot already
  /// reflects the migration).
  Status ActiveRebakeTarget(int s, const MigratedState& moved, int64_t epoch);
  Status ActiveRebakeSource(int s, core::ProsumerId prosumer, int64_t epoch);

  // ---- Rebalance controller wiring -----------------------------------------

  /// One tick's per-shard load samples from the live states (identical to
  /// what a replayed journal record reconstructs).
  std::vector<ShardLoadSample> CollectSamples() const;
  /// Turns a controller decision into a concrete plan (move-set picked from
  /// the hot shard's per-prosumer pending load).
  RebalancePlan BuildPlan(const RebalanceDecision& decision) const;
  /// Journals the plan record, executes it step by step (moves that fail
  /// their precondition are skipped), journals the completion marker.
  Status ExecutePlan(const RebalancePlan& plan, bool already_journaled);
  /// Controller observation for the tick just completed; may trigger and
  /// execute a plan. Sets `*resized` when the plan changed the topology.
  Status ObserveAndRebalance(int64_t tick, bool* resized);

  CoordinatorParams params_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<core::FlexOffer> offers_;  // global input order
  timeutil::TimeInterval window_;
  int64_t epoch_ = 0;
  /// Highest epoch whose migrations are baked into the shard snapshots (set
  /// when compaction commits COORDINATOR.json before folding the shards).
  int64_t base_epoch_ = 0;
  /// Number of committed split/merge resizes; names the shard directories.
  int topology_ = 0;
  /// The energy-model means before per-shard scaling, kept so a resize can
  /// re-derive exact per-shard params for the new fleet size (re-dividing
  /// already-scaled values would not be exact in floating point).
  EnergyModelParams base_energy_;
  /// Present iff params_.rebalance is set.
  std::unique_ptr<RebalanceController> controller_;
  int64_t plans_executed_ = 0;
  bool checkpointed_ = false;
  std::string directory_;
  /// The zero-file store behind COORDINATOR.json (checkpointed runs only).
  DurableStore coord_store_;
  bool begun_ = false;
};

/// Offline counterpart: PlanHorizon across N enterprise shards, each with
/// its own FaultRegistry and a 1/N-scaled energy model, run in parallel and
/// merged deterministically.
struct MergedPlanningReport {
  int num_shards = 1;
  /// Series and settlement scalars summed across shards; member_offers and
  /// aggregate_offers concatenated in shard order (identical to the
  /// unsharded report at N = 1); degraded_stages is the sorted union.
  PlanningReport global;
  std::vector<PlanningReport> shard_reports;
  /// Σ total_max_energy_kwh over the input offers in global order.
  double total_offered_kwh = 0.0;
};

Result<MergedPlanningReport> PlanHorizonSharded(const EnterpriseParams& params,
                                                int num_shards, ShardPolicy policy,
                                                const std::vector<core::FlexOffer>& offers,
                                                const timeutil::TimeInterval& window,
                                                bool scale_energy_per_shard = true,
                                                uint64_t fault_seed = 2013);

}  // namespace flexvis::sim

#endif  // FLEXVIS_SIM_COORDINATOR_H_
