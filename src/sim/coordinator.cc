#include "sim/coordinator.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "core/messages.h"
#include "sim/workload.h"
#include "util/json.h"
#include "util/parallel.h"
#include "util/store.h"
#include "util/strings.h"

namespace flexvis::sim {

namespace fs = std::filesystem;

using core::FlexOffer;
using timeutil::TimeInterval;

namespace {

/// splitmix64-style shard seed: every shard's fault registry draws from its
/// own streams, reproducibly derived from the run's base seed.
uint64_t ShardSeed(uint64_t base, int shard) {
  uint64_t x = base + 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(shard + 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Element-wise sum of `other` into `acc`, rebasing `acc` when `other`
/// starts earlier (TimeSeries::Add ignores slices before the receiver's
/// start). Used only when merging shard 1+ into the running global series,
/// so a 1-shard merge never touches the copied report.
void AddAligned(core::TimeSeries* acc, const core::TimeSeries& other) {
  if (other.empty()) return;
  if (acc->empty()) {
    *acc = other;
    return;
  }
  if (other.start() < acc->start()) {
    core::TimeSeries rebased(other.start(), 0);
    rebased.Add(*acc);
    *acc = std::move(rebased);
  }
  acc->Add(other);
}

// ---- Migration journal records ----------------------------------------------
//
// Tick records serialize as JSON objects without a "kind" key (the PR 3
// format, unchanged byte for byte); migration records are tagged with one.
// A migration appends migrate_out to the source journal (flushed first),
// then migrate_in — carrying the full offer payload, so the record is
// self-contained — to the target journal, then rewrites COORDINATOR.json
// with the bumped epoch. Recovery therefore sees one of: both records (the
// migration committed; replay it), only migrate_out (crash between the two
// flushes; complete the migration by synthesizing the migrate_in), or
// neither (the migration never happened).

struct MigrationRecord {
  bool is_in = false;  // migrate_in vs migrate_out
  core::ProsumerId prosumer = core::kInvalidProsumerId;
  int from = 0;
  int to = 0;
  int64_t epoch = 0;
  /// migrate_in only: the migrated prosumer's offers.
  std::vector<FlexOffer> offers;
  /// Active migration: the record additionally carries the prosumer's
  /// mid-flight state (moved.offers stays empty here — the offer payload
  /// rides in `offers` on the migrate_in, as for idle migrations).
  bool active = false;
  MigratedState moved;
};

JsonValue IdArray(const std::vector<core::FlexOfferId>& ids) {
  JsonValue out = JsonValue::Array();
  for (core::FlexOfferId id : ids) out.Append(JsonValue::Int(id));
  return out;
}

Status DecodeIdArray(const JsonValue& value, const char* what,
                     std::vector<core::FlexOfferId>* out) {
  if (!value.is_array()) {
    return DataLossError(StrFormat("migration record '%s' is not an array", what));
  }
  for (size_t i = 0; i < value.size(); ++i) {
    if (!value[i].is_int()) {
      return DataLossError(StrFormat("migration record '%s' holds a non-integer id", what));
    }
    out->push_back(value[i].AsInt());
  }
  return OkStatus();
}

std::string EncodeMigrationRecord(const MigrationRecord& record) {
  JsonValue json = JsonValue::Object();
  json.Set("kind", JsonValue::Str(record.is_in ? "migrate_in" : "migrate_out"));
  json.Set("prosumer", JsonValue::Int(record.prosumer));
  json.Set("from", JsonValue::Int(record.from));
  json.Set("to", JsonValue::Int(record.to));
  json.Set("epoch", JsonValue::Int(record.epoch));
  if (record.is_in) {
    JsonValue offers = JsonValue::Array();
    for (const FlexOffer& o : record.offers) {
      offers.Append(JsonValue::Str(core::EncodeFlexOffer(o)));
    }
    json.Set("offers", std::move(offers));
  }
  if (record.active) {
    json.Set("active", JsonValue::Bool(true));
    json.Set("consumed", IdArray(record.moved.consumed));
    json.Set("pend_acc", IdArray(record.moved.pending_acceptance));
    json.Set("pend_asn", IdArray(record.moved.pending_assignment));
    JsonValue states = JsonValue::Array();
    for (const OnlineStateChange& change : record.moved.states) {
      states.Append(EncodeStateChange(change));
    }
    json.Set("states", std::move(states));
  }
  return json.Dump();
}

Result<MigrationRecord> DecodeMigrationRecord(const JsonValue& json) {
  MigrationRecord record;
  Result<std::string> kind = json.GetString("kind");
  Result<int64_t> prosumer = json.GetInt("prosumer");
  Result<int64_t> from = json.GetInt("from");
  Result<int64_t> to = json.GetInt("to");
  Result<int64_t> epoch = json.GetInt("epoch");
  if (!kind.ok() || !prosumer.ok() || !from.ok() || !to.ok() || !epoch.ok()) {
    return DataLossError("migration journal record is incomplete");
  }
  if (*kind == "migrate_in") {
    record.is_in = true;
  } else if (*kind != "migrate_out") {
    return DataLossError(StrFormat("unknown journal record kind '%s'", kind->c_str()));
  }
  record.prosumer = *prosumer;
  record.from = static_cast<int>(*from);
  record.to = static_cast<int>(*to);
  record.epoch = *epoch;
  if (record.is_in) {
    const JsonValue& offers = json.Get("offers");
    if (!offers.is_array()) {
      return DataLossError("migrate_in record lacks an 'offers' array");
    }
    for (size_t i = 0; i < offers.size(); ++i) {
      if (!offers[i].is_string()) {
        return DataLossError("migrate_in record holds a non-string offer");
      }
      Result<FlexOffer> offer = core::DecodeFlexOffer(offers[i].AsString());
      if (!offer.ok()) return offer.status();
      record.offers.push_back(*std::move(offer));
    }
  }
  // Pre-rebalance records have no "active" key and decode as idle.
  if (json.Has("active")) {
    Result<bool> active = json.GetBool("active");
    if (!active.ok() || !*active) {
      return DataLossError("migration record 'active' flag is malformed");
    }
    record.active = true;
    FLEXVIS_RETURN_IF_ERROR(
        DecodeIdArray(json.Get("consumed"), "consumed", &record.moved.consumed));
    FLEXVIS_RETURN_IF_ERROR(
        DecodeIdArray(json.Get("pend_acc"), "pend_acc", &record.moved.pending_acceptance));
    FLEXVIS_RETURN_IF_ERROR(
        DecodeIdArray(json.Get("pend_asn"), "pend_asn", &record.moved.pending_assignment));
    const JsonValue& states = json.Get("states");
    if (!states.is_array()) {
      return DataLossError("migration record 'states' is not an array");
    }
    for (size_t i = 0; i < states.size(); ++i) {
      Result<OnlineStateChange> change = DecodeStateChange(states[i]);
      if (!change.ok()) return change.status();
      record.moved.states.push_back(*std::move(change));
    }
  }
  return record;
}

/// Reconstitutes the full moved state a record carries: a migrate_in holds
/// the offer payload itself; for a migrate_out (or a legacy payload-free
/// record) the offers are recovered from the global input list.
MigratedState MovedFromRecord(const MigrationRecord& record,
                              const std::vector<FlexOffer>& offers) {
  MigratedState moved = record.moved;
  moved.offers = record.offers;
  if (moved.offers.empty()) {
    for (const FlexOffer& offer : offers) {
      if (offer.prosumer == record.prosumer) moved.offers.push_back(offer);
    }
  }
  return moved;
}

/// Removes the moved prosumer's footprint from the source shard's collapsed
/// fold: its decided states and queue entries drop out and the arrival
/// cursor retreats past its consumed arrivals. Counters (including sheds it
/// caused) stay with the source — cumulative history does not move.
OnlineTickRecord SpliceOutFold(const OnlineEnterprise& enterprise,
                               const OnlineLoopState& state, const MigratedState& moved) {
  OnlineTickRecord fold = enterprise.Snapshot(state);
  std::set<core::FlexOfferId> gone;
  for (const FlexOffer& offer : moved.offers) gone.insert(offer.id);
  fold.changes.erase(std::remove_if(fold.changes.begin(), fold.changes.end(),
                                    [&gone](const OnlineStateChange& change) {
                                      return gone.count(change.offer) != 0;
                                    }),
                     fold.changes.end());
  auto drop = [&gone](std::vector<core::FlexOfferId>* ids) {
    ids->erase(std::remove_if(ids->begin(), ids->end(),
                              [&gone](core::FlexOfferId id) { return gone.count(id) != 0; }),
               ids->end());
  };
  drop(&fold.pending_acceptance);
  drop(&fold.pending_assignment);
  fold.next_arrival -= static_cast<int64_t>(moved.consumed.size());
  return fold;
}

/// Grafts the moved prosumer's footprint onto the target shard's collapsed
/// fold: decided states and queue entries append after the target's own, the
/// arrival cursor advances over the moved consumed arrivals, and the
/// watermark accounts for the deeper merged queue.
OnlineTickRecord SpliceInFold(const OnlineEnterprise& enterprise,
                              const OnlineLoopState& state, const MigratedState& moved) {
  OnlineTickRecord fold = enterprise.Snapshot(state);
  for (const OnlineStateChange& change : moved.states) fold.changes.push_back(change);
  for (core::FlexOfferId id : moved.pending_acceptance) {
    fold.pending_acceptance.push_back(id);
  }
  for (core::FlexOfferId id : moved.pending_assignment) {
    fold.pending_assignment.push_back(id);
  }
  fold.next_arrival += static_cast<int64_t>(moved.consumed.size());
  fold.queue_high_watermark = std::max(fold.queue_high_watermark,
                                       static_cast<int>(fold.pending_acceptance.size()));
  return fold;
}

/// The offer subset `router` assigns to shard `s`, in global input order.
std::vector<FlexOffer> SubsetFor(const ShardRouter& router,
                                 const std::vector<FlexOffer>& offers, int s) {
  std::vector<FlexOffer> subset;
  for (const FlexOffer& offer : offers) {
    if (router.ShardOf(offer) == s) subset.push_back(offer);
  }
  return subset;
}

/// One replayed journal entry: either a tick record or a migration record.
struct ReplayedRecord {
  bool is_migration = false;
  OnlineTickRecord tick;
  MigrationRecord migration;
};

Result<ReplayedRecord> ParseJournalRecord(const std::string& payload) {
  ReplayedRecord out;
  Result<JsonValue> parsed = JsonValue::Parse(payload);
  if (!parsed.ok() || !parsed->is_object()) {
    return DataLossError("journal record is not a JSON object");
  }
  if (parsed->Has("kind")) {
    Result<MigrationRecord> migration = DecodeMigrationRecord(*parsed);
    if (!migration.ok()) return migration.status();
    out.is_migration = true;
    out.migration = *std::move(migration);
    return out;
  }
  Result<OnlineTickRecord> tick = DecodeTickRecord(payload);
  if (!tick.ok()) return tick.status();
  out.tick = *std::move(tick);
  return out;
}

/// COORDINATOR.json as a zero-file util/store generation: the
/// atomically-renamed manifest whose `meta` carries the whole coordinator
/// state, plus a write-ahead journal for rebalance-plan records (kind "plan"
/// before any step executes, kind "plan_done" after the last). Compacting
/// the store truncates the plan WAL in the same atomic commit that rewrites
/// the manifest.
StoreOptions CoordinatorStoreOptions() {
  StoreOptions options;
  options.manifest_name = kCoordinatorManifestFile;
  options.journal_name = "coordinator.wal";
  return options;
}

std::string EncodePlanDoneRecord(int64_t id) {
  JsonValue json = JsonValue::Object();
  json.Set("kind", JsonValue::Str("plan_done"));
  json.Set("id", JsonValue::Int(id));
  return json.Dump();
}

}  // namespace

int ShardsFromEnv(int fallback) {
  const char* env = std::getenv(kShardsEnvVar);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value < 1 || value > kMaxShards) return fallback;
  return static_cast<int>(value);
}

/// Everything one shard owns: its loop parameters (energy scaled, faults
/// pointed at the shard registry), its fault registry, its live state, the
/// list of applied records (a resumed shard's first entry is the folded
/// record of its compacted generation; replayed on migration rebuilds), and
/// — when checkpointed — its open durable store.
struct Coordinator::Shard {
  OnlineParams params;
  std::unique_ptr<FaultRegistry> registry;
  OnlineEnterprise enterprise;
  OnlineLoopState state;
  std::vector<OnlineTickRecord> applied;
  DurableStore store;
};

Coordinator::Coordinator(CoordinatorParams params)
    : params_(std::move(params)),
      router_(params_.num_shards < 1 ? 1 : params_.num_shards, params_.policy) {
  if (params_.num_shards < 1) params_.num_shards = 1;
}

Coordinator::~Coordinator() = default;

FaultRegistry& Coordinator::shard_faults(int shard) {
  return *shards_[static_cast<size_t>(shard)]->registry;
}

std::string Coordinator::ShardDirName(int topology, int shard) {
  if (topology == 0) return StrFormat("%s%04d", kShardDirPrefix, shard);
  return StrFormat("%s%04d.t%d", kShardDirPrefix, shard, topology);
}

std::string Coordinator::ShardDir(int shard) const {
  return (fs::path(directory_) / ShardDirName(topology_, shard)).string();
}

Status Coordinator::Begin(const std::vector<FlexOffer>& offers, const TimeInterval& window) {
  if (begun_) return FailedPreconditionError("coordinator already begun");
  offers_ = offers;
  window_ = window;
  // Keep the unscaled energy means: a resize re-derives exact per-shard
  // params for the new fleet size from these (re-dividing already-scaled
  // values would not be exact in floating point).
  base_energy_ = params_.online.energy;
  if (params_.rebalance.has_value() && controller_ == nullptr) {
    controller_ = std::make_unique<RebalanceController>(*params_.rebalance,
                                                        params_.num_shards, window_);
  }
  const int n = params_.num_shards;
  std::vector<std::vector<size_t>> partition = router_.Partition(offers_);
  shards_.clear();
  for (int s = 0; s < n; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->registry = std::make_unique<FaultRegistry>();
    FLEXVIS_RETURN_IF_ERROR(
        InstallFaultsInto(*shard->registry, ShardSeed(params_.fault_seed, s)));
    shard->params = params_.online;
    shard->params.faults = shard->registry.get();
    if (params_.scale_energy_per_shard) {
      const double divisor = static_cast<double>(n);
      shard->params.energy.wind_mean_kwh /= divisor;
      shard->params.energy.solar_peak_kwh /= divisor;
      shard->params.energy.demand_base_kwh /= divisor;
    }
    shard->enterprise = OnlineEnterprise(shard->params);
    std::vector<FlexOffer> subset;
    subset.reserve(partition[static_cast<size_t>(s)].size());
    for (size_t idx : partition[static_cast<size_t>(s)]) subset.push_back(offers_[idx]);
    Result<OnlineLoopState> state = shard->enterprise.Begin(subset, window);
    if (!state.ok()) return state.status();
    shard->state = *std::move(state);
    shards_.push_back(std::move(shard));
  }
  begun_ = true;
  return OkStatus();
}

Status Coordinator::BeginCheckpointed(const std::vector<FlexOffer>& offers,
                                      const TimeInterval& window,
                                      const std::string& directory) {
  directory_ = directory;
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    return InternalError(StrFormat("cannot create checkpoint directory '%s': %s",
                                   directory.c_str(), ec.message().c_str()));
  }
  // Invalidate any previous run first: dropping COORDINATOR.json means a
  // crash anywhere inside this function recovers to "no committed run"
  // (rerun from inputs), never to a mix of old and new shard state.
  FLEXVIS_RETURN_IF_ERROR(DurableStore::Invalidate(directory_, CoordinatorStoreOptions()));
  for (const fs::directory_entry& entry : fs::directory_iterator(directory_, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(kShardDirPrefix, 0) != 0) continue;
    (void)DurableStore::Invalidate(entry.path().string(), CheckpointStoreOptions());
  }

  FLEXVIS_RETURN_IF_ERROR(Begin(offers, window));
  checkpointed_ = true;

  // Per-shard stores (each its own commit point via SNAPSHOT.json, WAL
  // opened ready for the first tick), then the coordinator store — the run's
  // overall commit point — last.
  std::vector<std::vector<size_t>> partition = router_.Partition(offers_);
  for (int s = 0; s < params_.num_shards; ++s) {
    std::vector<FlexOffer> subset;
    for (size_t idx : partition[static_cast<size_t>(s)]) subset.push_back(offers_[idx]);
    Result<DurableStore> store = DurableStore::Create(
        ShardDir(s), CheckpointStoreOptions(),
        EncodeOnlineSnapshot(shards_[static_cast<size_t>(s)]->params, subset, window),
        JsonValue());
    if (!store.ok()) return store.status();
    shards_[static_cast<size_t>(s)]->store = *std::move(store);
  }
  Result<DurableStore> coord =
      DurableStore::Create(directory_, CoordinatorStoreOptions(), {}, CoordinatorMeta());
  if (!coord.ok()) return coord.status();
  coord_store_ = *std::move(coord);
  return OkStatus();
}

bool Coordinator::Done() const {
  if (!begun_) return false;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (!shard->enterprise.Done(shard->state)) return false;
  }
  return true;
}

Status Coordinator::Tick() {
  if (!begun_) return FailedPreconditionError("coordinator not begun");
  int64_t min_tick = -1;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->enterprise.Done(shard->state)) continue;
    if (min_tick < 0 || shard->state.next_tick < min_tick) {
      min_tick = shard->state.next_tick;
    }
  }
  if (min_tick < 0) return FailedPreconditionError("all shards are done");

  // Phase 1: compute every eligible shard's tick in parallel. The tick path
  // touches only shard-owned state and the shard's own FaultRegistry, so
  // execution order across shards cannot change any outcome.
  const size_t n = shards_.size();
  std::vector<OnlineTickRecord> records(n);
  std::vector<char> ticked(n, 0);
  ParallelFor(0, n, 1, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      Shard& shard = *shards_[s];
      if (shard.enterprise.Done(shard.state) || shard.state.next_tick != min_tick) continue;
      shard.enterprise.Tick(shard.state, &records[s]);
      ticked[s] = 1;
    }
  });

  // Phase 2: journal serially in shard order. All file I/O (and with it the
  // process-wide util.journal.* crash points) happens here, on one thread,
  // in a deterministic order — the property the coordinator kill-matrix
  // test depends on.
  for (size_t s = 0; s < n; ++s) {
    if (!ticked[s]) continue;
    Shard& shard = *shards_[s];
    if (checkpointed_) {
      FLEXVIS_RETURN_IF_ERROR(shard.store.Append(EncodeTickRecord(records[s])));
      FLEXVIS_RETURN_IF_ERROR(shard.store.Flush());
    }
    shard.applied.push_back(std::move(records[s]));
  }

  // Self-healing controller: once the global tick is complete on every shard
  // (a resumed run's first Tick may only be levelling a one-tick skew),
  // observe the per-shard load and, when a plan triggers, journal and
  // execute it before the boundary compaction — the compaction then bakes
  // the plan's effects into the new snapshots.
  bool resized = false;
  if (controller_ != nullptr && min_tick > controller_->last_observed_tick()) {
    bool complete = true;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      if (shard->state.next_tick != min_tick + 1) {
        complete = false;
        break;
      }
    }
    if (complete) FLEXVIS_RETURN_IF_ERROR(ObserveAndRebalance(min_tick, &resized));
  }

  // Checkpoint compaction at the global tick boundary: cadence keys off the
  // absolute tick index so a resumed run compacts at the same boundaries the
  // uninterrupted run would. A resize already committed fresh snapshots (and
  // empty WALs) this boundary, so there is nothing left to fold.
  const int compact_ticks = params_.online.compact_ticks;
  if (!resized && checkpointed_ && compact_ticks > 0 && (min_tick + 1) % compact_ticks == 0) {
    FLEXVIS_RETURN_IF_ERROR(CompactShards());
  }
  return OkStatus();
}

Status Coordinator::CompactShards(const std::vector<bool>* include) {
  // base_epoch advances FIRST (its own atomic manifest commit): once any
  // shard folds, a recovery may find a migration record at or below
  // base_epoch whose counterpart was compacted away, and must treat the
  // counterpart shard's snapshot as already carrying that migration. With a
  // controller the boundary always rewrites the manifest — it carries the
  // controller's trend state — and compacts the zero-file coordinator store,
  // so completed plans' WAL records fold away exactly when the shards'
  // migration records do.
  if (controller_ != nullptr) {
    base_epoch_ = epoch_;
    if (checkpointed_ && coord_store_.is_open()) {
      FLEXVIS_RETURN_IF_ERROR(coord_store_.Compact({}, CoordinatorMeta()));
    }
  } else if (base_epoch_ != epoch_) {
    base_epoch_ = epoch_;
    FLEXVIS_RETURN_IF_ERROR(WriteCoordinatorManifest());
  }
  std::vector<std::vector<size_t>> partition = router_.Partition(offers_);
  for (int s = 0; s < params_.num_shards; ++s) {
    Shard& shard = *shards_[static_cast<size_t>(s)];
    if (shard.applied.empty()) continue;
    if (include != nullptr && !(*include)[static_cast<size_t>(s)]) continue;
    std::vector<FlexOffer> subset;
    subset.reserve(partition[static_cast<size_t>(s)].size());
    for (size_t idx : partition[static_cast<size_t>(s)]) subset.push_back(offers_[idx]);
    StoreFiles files = EncodeOnlineSnapshot(shard.params, subset, window_);
    files.emplace_back(kCheckpointStateFile,
                       EncodeTickRecord(FoldTickRecords(shard.applied)));
    FLEXVIS_RETURN_IF_ERROR(shard.store.Compact(files, JsonValue()));
  }
  return OkStatus();
}

Status Coordinator::RebakeShard(int s, int64_t epoch) {
  OnlineLoopState rebuilt;
  FLEXVIS_RETURN_IF_ERROR(RebuildShard(s, router_, &rebuilt));
  shards_[static_cast<size_t>(s)]->state = std::move(rebuilt);
  epoch_ = std::max(epoch_, epoch);
  return OkStatus();
}

Status Coordinator::RebuildShard(int s, const ShardRouter& router,
                                 OnlineLoopState* out) const {
  const Shard& shard = *shards_[static_cast<size_t>(s)];
  std::vector<FlexOffer> subset;
  for (const FlexOffer& offer : offers_) {
    if (router.ShardOf(offer) == s) subset.push_back(offer);
  }
  Result<OnlineLoopState> rebuilt = shard.enterprise.Begin(subset, window_);
  if (!rebuilt.ok()) return rebuilt.status();
  for (const OnlineTickRecord& record : shard.applied) {
    FLEXVIS_RETURN_IF_ERROR(shard.enterprise.Apply(*rebuilt, record));
  }

  // Replay-diff against the live state. The arrival-prefix comparison is the
  // real migration precondition: history is untouched exactly when every
  // already-consumed arrival position maps to the same offer before and
  // after the membership change.
  const OnlineLoopState& live = shard.state;
  if (rebuilt->next_tick != live.next_tick ||
      rebuilt->next_arrival != live.next_arrival) {
    return FailedPreconditionError(StrFormat(
        "migration would perturb shard %d history (tick %d vs %d, arrival cursor %zu vs "
        "%zu)",
        s, rebuilt->next_tick, live.next_tick, rebuilt->next_arrival, live.next_arrival));
  }
  for (size_t i = 0; i < rebuilt->next_arrival; ++i) {
    core::FlexOfferId rebuilt_id = rebuilt->report.offers[rebuilt->arrival[i]].id;
    core::FlexOfferId live_id = live.report.offers[live.arrival[i]].id;
    if (rebuilt_id != live_id) {
      return FailedPreconditionError(StrFormat(
          "migration would reorder shard %d's consumed arrivals (position %zu: offer %lld "
          "vs %lld)",
          s, i, static_cast<long long>(rebuilt_id), static_cast<long long>(live_id)));
    }
  }
  if (rebuilt->report.outbox != live.report.outbox ||
      rebuilt->report.offers_received != live.report.offers_received ||
      rebuilt->report.accepted != live.report.accepted ||
      rebuilt->report.rejected != live.report.rejected ||
      rebuilt->report.assigned != live.report.assigned) {
    return InternalError(
        StrFormat("shard %d replay diverged from its live state during migration", s));
  }
  *out = *std::move(rebuilt);
  return OkStatus();
}

Status Coordinator::CommitMigration(core::ProsumerId prosumer, int from, int to,
                                    int64_t new_epoch) {
  FLEXVIS_RETURN_IF_ERROR(router_.Assign(prosumer, to));
  // max, not assignment: a resume pre-seeds epoch_ with the manifest's
  // base_epoch, and a replayed migration below it must not regress the epoch.
  epoch_ = std::max(epoch_, new_epoch);
  OnlineLoopState source_state;
  OnlineLoopState target_state;
  FLEXVIS_RETURN_IF_ERROR(RebuildShard(from, router_, &source_state));
  FLEXVIS_RETURN_IF_ERROR(RebuildShard(to, router_, &target_state));
  shards_[static_cast<size_t>(from)]->state = std::move(source_state);
  shards_[static_cast<size_t>(to)]->state = std::move(target_state);
  return OkStatus();
}

Status Coordinator::MigrateProsumer(core::ProsumerId prosumer, int to_shard,
                                    MigrationMode mode) {
  if (!begun_) return FailedPreconditionError("coordinator not begun");
  if (to_shard < 0 || to_shard >= params_.num_shards) {
    return InvalidArgumentError(
        StrFormat("shard %d out of range [0, %d)", to_shard, params_.num_shards));
  }
  const FlexOffer* sample = nullptr;
  for (const FlexOffer& offer : offers_) {
    if (offer.prosumer == prosumer) {
      sample = &offer;
      break;
    }
  }
  if (sample == nullptr) {
    return NotFoundError(
        StrFormat("prosumer %lld owns no offers", static_cast<long long>(prosumer)));
  }
  const int from = router_.ShardOf(*sample);
  if (from == to_shard) {
    return InvalidArgumentError(StrFormat("prosumer %lld is already on shard %d",
                                          static_cast<long long>(prosumer), to_shard));
  }

  // The precondition is validated BEFORE any offer payload is assembled:
  // under kIdleOnly an active prosumer cannot move, and the error names
  // every already-ingested offer so the operator sees the whole conflict,
  // not just the first.
  MigratedState moved = ExtractMovedState(from, prosumer);
  if (!moved.idle() && mode == MigrationMode::kIdleOnly) {
    std::string ids;
    for (core::FlexOfferId id : moved.consumed) {
      if (!ids.empty()) ids += ", ";
      ids += StrFormat("%lld", static_cast<long long>(id));
    }
    return FailedPreconditionError(StrFormat(
        "prosumer %lld is active on shard %d (offers %s already ingested); migration "
        "requires an idle prosumer",
        static_cast<long long>(prosumer), from, ids.c_str()));
  }
  for (const FlexOffer& offer : offers_) {
    if (offer.prosumer == prosumer) moved.offers.push_back(offer);
  }

  // Speculative verification of both shards BEFORE anything becomes durable:
  // a failed verification leaves the run (and journals) untouched. Idle
  // migrations rebuild both shards by replaying every applied record; active
  // migrations splice the moved state across collapsed folds.
  ShardRouter new_router = router_;
  FLEXVIS_RETURN_IF_ERROR(new_router.Assign(prosumer, to_shard));
  const int64_t new_epoch = epoch_ + 1;
  const bool active = !moved.idle();
  Shard& source = *shards_[static_cast<size_t>(from)];
  Shard& target = *shards_[static_cast<size_t>(to_shard)];
  OnlineLoopState source_state;
  OnlineLoopState target_state;
  OnlineTickRecord source_fold;
  OnlineTickRecord target_fold;
  if (active) {
    if (source.state.next_tick != target.state.next_tick) {
      return FailedPreconditionError(
          StrFormat("shards %d and %d are not at a common tick boundary (%d vs %d)", from,
                    to_shard, source.state.next_tick, target.state.next_tick));
    }
    source_fold = SpliceOutFold(source.enterprise, source.state, moved);
    target_fold = SpliceInFold(target.enterprise, target.state, moved);
    std::vector<core::FlexOfferId> source_expect;
    for (size_t pos = 0; pos < source.state.next_arrival; ++pos) {
      const FlexOffer& offer = source.state.report.offers[source.state.arrival[pos]];
      if (offer.prosumer != prosumer) source_expect.push_back(offer.id);
    }
    std::vector<core::FlexOfferId> target_expect;
    for (size_t pos = 0; pos < target.state.next_arrival; ++pos) {
      target_expect.push_back(target.state.report.offers[target.state.arrival[pos]].id);
    }
    for (core::FlexOfferId id : moved.consumed) target_expect.push_back(id);
    FLEXVIS_RETURN_IF_ERROR(BuildSplicedState(source.enterprise,
                                              SubsetFor(new_router, offers_, from),
                                              source_fold, source_expect, &source_state));
    FLEXVIS_RETURN_IF_ERROR(BuildSplicedState(target.enterprise,
                                              SubsetFor(new_router, offers_, to_shard),
                                              target_fold, target_expect, &target_state));
  } else {
    FLEXVIS_RETURN_IF_ERROR(RebuildShard(from, new_router, &source_state));
    FLEXVIS_RETURN_IF_ERROR(RebuildShard(to_shard, new_router, &target_state));
  }

  // Durability order: migrate_out (source journal) -> migrate_in with the
  // offer payload (target journal) -> manifest rewrite. Recovery completes a
  // lone migrate_out; a migrate_in cannot exist without its migrate_out.
  if (checkpointed_) {
    MigrationRecord out;
    out.is_in = false;
    out.prosumer = prosumer;
    out.from = from;
    out.to = to_shard;
    out.epoch = new_epoch;
    out.active = active;
    if (active) {
      out.moved = moved;
      out.moved.offers.clear();  // the offer payload rides on the migrate_in
    }
    FLEXVIS_RETURN_IF_ERROR(source.store.Append(EncodeMigrationRecord(out)));
    FLEXVIS_RETURN_IF_ERROR(source.store.Flush());
    MigrationRecord in = out;
    in.is_in = true;
    in.offers = moved.offers;
    FLEXVIS_RETURN_IF_ERROR(target.store.Append(EncodeMigrationRecord(in)));
    FLEXVIS_RETURN_IF_ERROR(target.store.Flush());
  }

  router_ = std::move(new_router);
  epoch_ = new_epoch;
  source.state = std::move(source_state);
  target.state = std::move(target_state);
  if (active) {
    // Both shards are now re-based onto their spliced folds; the fold
    // replaces the applied history so later rebuilds and compactions replay
    // it exactly as a compacted generation's state.json would.
    source.applied.clear();
    source.applied.push_back(std::move(source_fold));
    target.applied.clear();
    target.applied.push_back(std::move(target_fold));
  }
  if (checkpointed_) FLEXVIS_RETURN_IF_ERROR(WriteCoordinatorManifest());
  return OkStatus();
}

MigratedState Coordinator::ExtractMovedState(int s, core::ProsumerId prosumer) const {
  const OnlineLoopState& state = shards_[static_cast<size_t>(s)]->state;
  MigratedState moved;
  for (size_t pos = 0; pos < state.next_arrival; ++pos) {
    const FlexOffer& offer = state.report.offers[state.arrival[pos]];
    if (offer.prosumer == prosumer) moved.consumed.push_back(offer.id);
  }
  for (size_t idx : state.pending_acceptance) {
    const FlexOffer& offer = state.report.offers[idx];
    if (offer.prosumer == prosumer) moved.pending_acceptance.push_back(offer.id);
  }
  for (size_t idx : state.pending_assignment) {
    const FlexOffer& offer = state.report.offers[idx];
    if (offer.prosumer == prosumer) moved.pending_assignment.push_back(offer.id);
  }
  for (const FlexOffer& offer : state.report.offers) {
    if (offer.prosumer != prosumer || offer.state == core::FlexOfferState::kOffered) {
      continue;
    }
    OnlineStateChange change;
    change.offer = offer.id;
    change.state = offer.state;
    if (offer.state == core::FlexOfferState::kAssigned) change.schedule = offer.schedule;
    moved.states.push_back(std::move(change));
  }
  return moved;
}

Status Coordinator::BuildSplicedState(const OnlineEnterprise& enterprise,
                                      const std::vector<FlexOffer>& subset,
                                      const OnlineTickRecord& fold,
                                      const std::vector<core::FlexOfferId>& expect_consumed,
                                      OnlineLoopState* out) const {
  Result<OnlineLoopState> rebuilt = enterprise.Begin(subset, window_);
  if (!rebuilt.ok()) return rebuilt.status();
  FLEXVIS_RETURN_IF_ERROR(enterprise.Apply(*rebuilt, fold));
  if (rebuilt->next_arrival != expect_consumed.size()) {
    return FailedPreconditionError(
        StrFormat("spliced arrival cursor %zu does not cover the %zu consumed arrivals; "
                  "ingest-backlog skew would rewrite consumed history",
                  rebuilt->next_arrival, expect_consumed.size()));
  }
  // Set equality over the prefix: stable arrival ordering makes membership
  // the only degree of freedom — an unconsumed offer sorting into the prefix
  // (or a consumed one sorting out) is exactly the backlog-skew reorder the
  // migration must refuse.
  std::set<core::FlexOfferId> expect(expect_consumed.begin(), expect_consumed.end());
  for (size_t pos = 0; pos < rebuilt->next_arrival; ++pos) {
    const core::FlexOfferId id = rebuilt->report.offers[rebuilt->arrival[pos]].id;
    if (expect.erase(id) == 0) {
      return FailedPreconditionError(StrFormat(
          "offer %lld lands inside the spliced consumed-arrival prefix but was never "
          "consumed; ingest-backlog skew would reorder consumed history",
          static_cast<long long>(id)));
    }
  }
  *out = *std::move(rebuilt);
  return OkStatus();
}

Status Coordinator::CommitActiveMigration(core::ProsumerId prosumer, int from, int to,
                                          int64_t new_epoch) {
  // Re-extract the moved state from the replayed source (byte-identical to
  // what the live migration extracted — replay determinism) and re-run the
  // same splice the live commit ran.
  MigratedState moved = ExtractMovedState(from, prosumer);
  for (const FlexOffer& offer : offers_) {
    if (offer.prosumer == prosumer) moved.offers.push_back(offer);
  }
  Shard& source = *shards_[static_cast<size_t>(from)];
  Shard& target = *shards_[static_cast<size_t>(to)];
  if (source.state.next_tick != target.state.next_tick) {
    return DataLossError(
        StrFormat("active migration of prosumer %lld surfaced with shards %d and %d at "
                  "different ticks (%d vs %d)",
                  static_cast<long long>(prosumer), from, to, source.state.next_tick,
                  target.state.next_tick));
  }
  FLEXVIS_RETURN_IF_ERROR(router_.Assign(prosumer, to));
  epoch_ = std::max(epoch_, new_epoch);
  OnlineTickRecord source_fold = SpliceOutFold(source.enterprise, source.state, moved);
  OnlineTickRecord target_fold = SpliceInFold(target.enterprise, target.state, moved);
  std::vector<core::FlexOfferId> source_expect;
  for (size_t pos = 0; pos < source.state.next_arrival; ++pos) {
    const FlexOffer& offer = source.state.report.offers[source.state.arrival[pos]];
    if (offer.prosumer != prosumer) source_expect.push_back(offer.id);
  }
  std::vector<core::FlexOfferId> target_expect;
  for (size_t pos = 0; pos < target.state.next_arrival; ++pos) {
    target_expect.push_back(target.state.report.offers[target.state.arrival[pos]].id);
  }
  for (core::FlexOfferId id : moved.consumed) target_expect.push_back(id);
  OnlineLoopState source_state;
  OnlineLoopState target_state;
  FLEXVIS_RETURN_IF_ERROR(BuildSplicedState(source.enterprise, SubsetFor(router_, offers_, from),
                                            source_fold, source_expect, &source_state));
  FLEXVIS_RETURN_IF_ERROR(BuildSplicedState(target.enterprise, SubsetFor(router_, offers_, to),
                                            target_fold, target_expect, &target_state));
  source.state = std::move(source_state);
  target.state = std::move(target_state);
  source.applied.clear();
  source.applied.push_back(std::move(source_fold));
  target.applied.clear();
  target.applied.push_back(std::move(target_fold));
  return OkStatus();
}

Status Coordinator::ActiveRebakeTarget(int s, const MigratedState& moved, int64_t epoch) {
  Shard& shard = *shards_[static_cast<size_t>(s)];
  OnlineTickRecord fold = SpliceInFold(shard.enterprise, shard.state, moved);
  std::vector<core::FlexOfferId> expect;
  for (size_t pos = 0; pos < shard.state.next_arrival; ++pos) {
    expect.push_back(shard.state.report.offers[shard.state.arrival[pos]].id);
  }
  for (core::FlexOfferId id : moved.consumed) expect.push_back(id);
  OnlineLoopState spliced;
  FLEXVIS_RETURN_IF_ERROR(BuildSplicedState(shard.enterprise, SubsetFor(router_, offers_, s),
                                            fold, expect, &spliced));
  shard.state = std::move(spliced);
  shard.applied.clear();
  shard.applied.push_back(std::move(fold));
  epoch_ = std::max(epoch_, epoch);
  return OkStatus();
}

Status Coordinator::ActiveRebakeSource(int s, core::ProsumerId prosumer, int64_t epoch) {
  Shard& shard = *shards_[static_cast<size_t>(s)];
  MigratedState moved = ExtractMovedState(s, prosumer);
  for (const FlexOffer& offer : offers_) {
    if (offer.prosumer == prosumer) moved.offers.push_back(offer);
  }
  OnlineTickRecord fold = SpliceOutFold(shard.enterprise, shard.state, moved);
  std::vector<core::FlexOfferId> expect;
  for (size_t pos = 0; pos < shard.state.next_arrival; ++pos) {
    const FlexOffer& offer = shard.state.report.offers[shard.state.arrival[pos]];
    if (offer.prosumer != prosumer) expect.push_back(offer.id);
  }
  OnlineLoopState spliced;
  FLEXVIS_RETURN_IF_ERROR(BuildSplicedState(shard.enterprise, SubsetFor(router_, offers_, s),
                                            fold, expect, &spliced));
  shard.state = std::move(spliced);
  shard.applied.clear();
  shard.applied.push_back(std::move(fold));
  epoch_ = std::max(epoch_, epoch);
  return OkStatus();
}

Status Coordinator::Resize(int new_num_shards) {
  if (!begun_) return FailedPreconditionError("coordinator not begun");
  if (new_num_shards < 1 || new_num_shards > kMaxShards) {
    return InvalidArgumentError(
        StrFormat("num_shards %d out of range [1, %d]", new_num_shards, kMaxShards));
  }
  if (new_num_shards == params_.num_shards) {
    return InvalidArgumentError(StrFormat("fleet already has %d shards", new_num_shards));
  }
  const int next_tick = shards_[0]->state.next_tick;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->state.next_tick != next_tick) {
      return FailedPreconditionError(
          "shards are not at a common tick boundary; resize only between global ticks");
    }
  }

  // Collapse the whole fleet into one global view: consumed arrivals, queue
  // contents (old shard order, then queue order — the deterministic global
  // ordering both live and resumed resizes derive), decided offer states,
  // and the counter totals. Per-offer counter attribution is impossible from
  // journaled state (e.g. a scheduler demotion does not mark the offer), so
  // every cumulative counter and the global outbox re-home to new shard 0.
  std::set<core::FlexOfferId> consumed;
  std::vector<core::FlexOfferId> global_pend_acc;
  std::vector<core::FlexOfferId> global_pend_asn;
  std::map<core::FlexOfferId, OnlineStateChange> decided;
  OnlineTickRecord totals;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const OnlineLoopState& st = shard->state;
    for (size_t pos = 0; pos < st.next_arrival; ++pos) {
      consumed.insert(st.report.offers[st.arrival[pos]].id);
    }
    for (size_t idx : st.pending_acceptance) {
      global_pend_acc.push_back(st.report.offers[idx].id);
    }
    for (size_t idx : st.pending_assignment) {
      global_pend_asn.push_back(st.report.offers[idx].id);
    }
    for (const FlexOffer& offer : st.report.offers) {
      if (offer.state == core::FlexOfferState::kOffered) continue;
      OnlineStateChange change;
      change.offer = offer.id;
      change.state = offer.state;
      if (offer.state == core::FlexOfferState::kAssigned) change.schedule = offer.schedule;
      decided.emplace(offer.id, std::move(change));
    }
    totals.offers_received += st.report.offers_received;
    totals.accepted += st.report.accepted;
    totals.rejected += st.report.rejected;
    totals.assigned += st.report.assigned;
    totals.missed_acceptance += st.report.missed_acceptance;
    totals.missed_assignment += st.report.missed_assignment;
    totals.dropped_ingest += st.report.dropped_ingest;
    totals.failed_sends += st.report.failed_sends;
    totals.shed_offers += st.report.shed_offers;
    totals.queue_high_watermark =
        std::max(totals.queue_high_watermark, st.report.queue_high_watermark);
    for (const std::string& wire : st.report.outbox) totals.sent.push_back(wire);
  }

  // Build the new fleet speculatively: fresh router (a resize drops all
  // overrides — the new hash partition IS the rebalance), per-shard params
  // re-derived from the unscaled base energy, and each shard's state spliced
  // from a hand-built fold through the same verified path migrations use.
  const int new_n = new_num_shards;
  const int new_topology = topology_ + 1;
  ShardRouter new_router(new_n, params_.policy);
  std::vector<std::vector<size_t>> partition = new_router.Partition(offers_);
  std::vector<std::unique_ptr<Shard>> new_shards;
  std::vector<std::vector<FlexOffer>> subsets(static_cast<size_t>(new_n));
  for (int s = 0; s < new_n; ++s) {
    const size_t si = static_cast<size_t>(s);
    subsets[si].reserve(partition[si].size());
    for (size_t idx : partition[si]) subsets[si].push_back(offers_[idx]);
    auto shard = std::make_unique<Shard>();
    shard->registry = std::make_unique<FaultRegistry>();
    FLEXVIS_RETURN_IF_ERROR(
        InstallFaultsInto(*shard->registry, ShardSeed(params_.fault_seed, s)));
    shard->params = params_.online;
    shard->params.energy = base_energy_;
    if (params_.scale_energy_per_shard) {
      const double divisor = static_cast<double>(new_n);
      shard->params.energy.wind_mean_kwh /= divisor;
      shard->params.energy.solar_peak_kwh /= divisor;
      shard->params.energy.demand_base_kwh /= divisor;
    }
    shard->params.faults = shard->registry.get();
    shard->enterprise = OnlineEnterprise(shard->params);
    if (next_tick == 0) {
      Result<OnlineLoopState> state = shard->enterprise.Begin(subsets[si], window_);
      if (!state.ok()) return state.status();
      shard->state = *std::move(state);
    } else {
      OnlineTickRecord fold;
      fold.tick = next_tick - 1;
      fold.folded = true;
      fold.shed_policy = static_cast<int>(params_.online.shed_policy);
      std::set<core::FlexOfferId> member;
      std::vector<core::FlexOfferId> expect;
      for (const FlexOffer& offer : subsets[si]) {
        member.insert(offer.id);
        if (consumed.count(offer.id) != 0) expect.push_back(offer.id);
        auto it = decided.find(offer.id);
        if (it != decided.end()) fold.changes.push_back(it->second);
      }
      for (core::FlexOfferId id : global_pend_acc) {
        if (member.count(id) != 0) fold.pending_acceptance.push_back(id);
      }
      for (core::FlexOfferId id : global_pend_asn) {
        if (member.count(id) != 0) fold.pending_assignment.push_back(id);
      }
      fold.next_arrival = static_cast<int64_t>(expect.size());
      if (s == 0) {
        fold.offers_received = totals.offers_received;
        fold.accepted = totals.accepted;
        fold.rejected = totals.rejected;
        fold.assigned = totals.assigned;
        fold.missed_acceptance = totals.missed_acceptance;
        fold.missed_assignment = totals.missed_assignment;
        fold.dropped_ingest = totals.dropped_ingest;
        fold.failed_sends = totals.failed_sends;
        fold.shed_offers = totals.shed_offers;
        fold.sent = totals.sent;
        fold.queue_high_watermark =
            std::max(totals.queue_high_watermark,
                     static_cast<int>(fold.pending_acceptance.size()));
      } else {
        fold.queue_high_watermark = static_cast<int>(fold.pending_acceptance.size());
      }
      OnlineLoopState spliced;
      FLEXVIS_RETURN_IF_ERROR(
          BuildSplicedState(shard->enterprise, subsets[si], fold, expect, &spliced));
      shard->state = std::move(spliced);
      shard->applied.push_back(std::move(fold));
    }
    new_shards.push_back(std::move(shard));
  }

  // Stage the new topology's stores next to the old ones (distinct directory
  // names), then commit everything at once by compacting the coordinator
  // store — its manifest rewrite both flips the topology and truncates the
  // plan WAL. A crash before that commit recovers under the OLD manifest
  // (old directories intact, staged ones swept as stale); after it, under
  // the new (old directories swept).
  std::vector<std::string> old_dirs;
  if (checkpointed_) {
    for (int s = 0; s < params_.num_shards; ++s) old_dirs.push_back(ShardDir(s));
    for (int s = 0; s < new_n; ++s) {
      const size_t si = static_cast<size_t>(s);
      StoreFiles files = EncodeOnlineSnapshot(new_shards[si]->params, subsets[si], window_);
      if (next_tick > 0) {
        files.emplace_back(kCheckpointStateFile,
                           EncodeTickRecord(new_shards[si]->applied.front()));
      }
      Result<DurableStore> store = DurableStore::Create(
          (fs::path(directory_) / ShardDirName(new_topology, s)).string(),
          CheckpointStoreOptions(), std::move(files), JsonValue());
      if (!store.ok()) return store.status();
      new_shards[si]->store = *std::move(store);
    }
    for (std::unique_ptr<Shard>& shard : shards_) {
      if (shard->store.is_open()) FLEXVIS_RETURN_IF_ERROR(shard->store.Close());
    }
  }

  params_.num_shards = new_n;
  router_ = std::move(new_router);
  shards_ = std::move(new_shards);
  topology_ = new_topology;
  base_epoch_ = epoch_;
  if (controller_ != nullptr) {
    // All cumulative counters re-homed to new shard 0; seed its shed
    // baseline with the global total so the first post-resize observation
    // does not read the re-homing as one giant shed burst.
    std::vector<int64_t> seed(static_cast<size_t>(new_n), 0);
    seed[0] = totals.shed_offers;
    controller_->ResetShards(new_n, seed);
  }
  if (checkpointed_) {
    FLEXVIS_RETURN_IF_ERROR(coord_store_.Compact({}, CoordinatorMeta()));
    for (const std::string& dir : old_dirs) {
      FLEXVIS_RETURN_IF_ERROR(DurableStore::Destroy(dir, CheckpointStoreOptions()));
    }
  }
  return OkStatus();
}

std::vector<ShardLoadSample> Coordinator::CollectSamples() const {
  std::vector<ShardLoadSample> samples;
  samples.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    ShardLoadSample sample;
    sample.shed_offers = shard->state.report.shed_offers;
    sample.queue_depth = static_cast<int>(shard->state.pending_acceptance.size());
    sample.backlog =
        static_cast<int64_t>(shard->state.arrival.size() - shard->state.next_arrival);
    samples.push_back(sample);
  }
  return samples;
}

RebalancePlan Coordinator::BuildPlan(const RebalanceDecision& decision) const {
  RebalancePlan plan;
  plan.id = decision.plan_id;
  plan.tick = decision.tick;
  plan.action = decision.action;
  plan.new_num_shards = decision.new_num_shards;
  if (decision.action != RebalancePlan::Action::kMove) return plan;
  // Per-prosumer load on the hot shard: offers it has not answered yet
  // (un-ingested arrivals plus both pending queues). std::map iteration
  // gives the id-sorted candidate order PickMoveSet's tie-break expects.
  const OnlineLoopState& hot = shards_[static_cast<size_t>(decision.hot_shard)]->state;
  std::map<core::ProsumerId, int64_t> load;
  for (size_t pos = hot.next_arrival; pos < hot.arrival.size(); ++pos) {
    ++load[hot.report.offers[hot.arrival[pos]].prosumer];
  }
  for (size_t idx : hot.pending_acceptance) ++load[hot.report.offers[idx].prosumer];
  for (size_t idx : hot.pending_assignment) ++load[hot.report.offers[idx].prosumer];
  int64_t total = 0;
  std::vector<ProsumerLoad> candidates;
  candidates.reserve(load.size());
  for (const auto& [prosumer, pending] : load) {
    candidates.push_back({prosumer, pending});
    total += pending;
  }
  std::vector<core::ProsumerId> picked =
      PickMoveSet(std::move(candidates), params_.rebalance->max_moves, (total + 1) / 2);
  for (core::ProsumerId prosumer : picked) {
    plan.moves.push_back({prosumer, decision.hot_shard, decision.cold_shard});
  }
  return plan;
}

Status Coordinator::ExecutePlan(const RebalancePlan& plan, bool already_journaled) {
  const bool journaled = checkpointed_ && coord_store_.is_open();
  if (journaled && !already_journaled) {
    FLEXVIS_RETURN_IF_ERROR(coord_store_.Append(EncodeRebalancePlan(plan).Dump()));
    FLEXVIS_RETURN_IF_ERROR(coord_store_.Flush());
  }
  if (plan.action == RebalancePlan::Action::kMove) {
    for (const RebalanceMove& move : plan.moves) {
      const std::map<core::ProsumerId, int>& overrides = router_.overrides();
      auto it = overrides.find(move.prosumer);
      if (it != overrides.end() && it->second == move.to) {
        continue;  // already committed (a resumed plan replays its moves)
      }
      Status status = MigrateProsumer(move.prosumer, move.to, MigrationMode::kAllowActive);
      if (status.code() == StatusCode::kFailedPrecondition ||
          status.code() == StatusCode::kInvalidArgument) {
        // Verification refused the move (ingest-backlog skew, or the offers
        // already route there). The plan stays best-effort; the controller
        // re-triggers after cooldown if the imbalance persists.
        continue;
      }
      FLEXVIS_RETURN_IF_ERROR(status);
    }
    if (journaled) {
      FLEXVIS_RETURN_IF_ERROR(coord_store_.Append(EncodePlanDoneRecord(plan.id)));
      FLEXVIS_RETURN_IF_ERROR(coord_store_.Flush());
    }
  } else {
    // No plan_done record: Resize's manifest commit truncates the
    // coordinator WAL atomically, which retires the plan record with it.
    FLEXVIS_RETURN_IF_ERROR(Resize(plan.new_num_shards));
  }
  ++plans_executed_;
  return OkStatus();
}

Status Coordinator::ObserveAndRebalance(int64_t tick, bool* resized) {
  std::optional<RebalanceDecision> decision = controller_->Observe(tick, CollectSamples());
  if (!decision.has_value()) return OkStatus();
  RebalancePlan plan = BuildPlan(*decision);
  if (plan.action == RebalancePlan::Action::kMove && plan.moves.empty()) {
    // Nothing movable: journal nothing. The trigger still consumed a plan id
    // and started the cooldown, and a resumed run re-derives the identical
    // empty decision from the replayed load history.
    return OkStatus();
  }
  FLEXVIS_RETURN_IF_ERROR(ExecutePlan(plan, /*already_journaled=*/false));
  if (plan.action != RebalancePlan::Action::kMove) *resized = true;
  return OkStatus();
}

std::vector<std::vector<size_t>> Coordinator::CurrentPartition() const {
  return router_.Partition(offers_);
}

JsonValue Coordinator::CoordinatorMeta() const {
  JsonValue meta = JsonValue::Object();
  meta.Set("schema_version", JsonValue::Int(2));
  meta.Set("num_shards", JsonValue::Int(params_.num_shards));
  meta.Set("policy", JsonValue::Str(std::string(ShardPolicyName(params_.policy))));
  meta.Set("scale_energy_per_shard", JsonValue::Bool(params_.scale_energy_per_shard));
  meta.Set("fault_seed", JsonValue::Int(static_cast<int64_t>(params_.fault_seed)));
  meta.Set("epoch", JsonValue::Int(epoch_));
  meta.Set("base_epoch", JsonValue::Int(base_epoch_));
  meta.Set("topology", JsonValue::Int(topology_));
  // Pinned strategy identity (also pinned per shard in each meta.json):
  // surfaced in the manifest so operators and ResumeSharded see the names a
  // sharded run settles under without opening shard stores.
  meta.Set("forecaster", JsonValue::Str(params_.online.forecaster));
  meta.Set("bidding", JsonValue::Str(params_.online.bidding));
  JsonValue energy = JsonValue::Object();
  energy.Set("wind_mean_kwh", JsonValue::Double(base_energy_.wind_mean_kwh));
  energy.Set("solar_peak_kwh", JsonValue::Double(base_energy_.solar_peak_kwh));
  energy.Set("demand_base_kwh", JsonValue::Double(base_energy_.demand_base_kwh));
  meta.Set("base_energy", std::move(energy));
  if (params_.rebalance.has_value()) {
    meta.Set("rebalance", EncodeRebalanceParams(*params_.rebalance));
  }
  if (controller_ != nullptr) meta.Set("controller", controller_->EncodeState());
  JsonValue overrides = JsonValue::Array();
  for (const auto& [prosumer, shard] : router_.overrides()) {
    JsonValue pair = JsonValue::Array();
    pair.Append(JsonValue::Int(prosumer));
    pair.Append(JsonValue::Int(shard));
    overrides.Append(std::move(pair));
  }
  meta.Set("overrides", std::move(overrides));
  JsonValue order = JsonValue::Array();
  for (const FlexOffer& offer : offers_) order.Append(JsonValue::Int(offer.id));
  meta.Set("offer_order", std::move(order));
  return meta;
}

Status Coordinator::WriteCoordinatorManifest() {
  return coord_store_.Recommit(CoordinatorMeta());
}

Result<MergedOnlineReport> Coordinator::Finish() {
  if (!begun_) return FailedPreconditionError("coordinator not begun");
  MergedOnlineReport merged;
  merged.num_shards = params_.num_shards;
  merged.epoch = epoch_;
  merged.topology = topology_;
  std::vector<std::vector<size_t>> partition = CurrentPartition();
  merged.global.offers.resize(offers_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    if (checkpointed_ && shard.store.is_open()) {
      FLEXVIS_RETURN_IF_ERROR(shard.store.Close());
    }
    OnlineReport report = shard.enterprise.Finish(std::move(shard.state));
    if (report.offers.size() != partition[s].size()) {
      return InternalError(StrFormat(
          "shard %zu finished with %zu offers but owns %zu (partition drift)", s,
          report.offers.size(), partition[s].size()));
    }
    for (size_t i = 0; i < partition[s].size(); ++i) {
      merged.global.offers[partition[s][i]] = report.offers[i];
    }
    merged.global.offers_received += report.offers_received;
    merged.global.accepted += report.accepted;
    merged.global.rejected += report.rejected;
    merged.global.assigned += report.assigned;
    merged.global.missed_acceptance += report.missed_acceptance;
    merged.global.missed_assignment += report.missed_assignment;
    merged.global.dropped_ingest += report.dropped_ingest;
    merged.global.failed_sends += report.failed_sends;
    merged.global.shed_offers += report.shed_offers;
    merged.global.queue_high_watermark =
        std::max(merged.global.queue_high_watermark, report.queue_high_watermark);
    merged.global.imbalance_kwh += report.imbalance_kwh;
    merged.global.ticks = std::max(merged.global.ticks, report.ticks);
    for (const std::string& wire : report.outbox) merged.global.outbox.push_back(wire);
    merged.shard_reports.push_back(std::move(report));
  }
  for (const FlexOffer& offer : merged.global.offers) {
    merged.total_offered_kwh += offer.total_max_energy_kwh();
  }
  if (checkpointed_ && coord_store_.is_open()) FLEXVIS_RETURN_IF_ERROR(coord_store_.Close());
  begun_ = false;
  return merged;
}

Result<MergedOnlineReport> Coordinator::RunSharded(const CoordinatorParams& params,
                                                   const std::vector<FlexOffer>& offers,
                                                   const TimeInterval& window) {
  Coordinator coordinator(params);
  FLEXVIS_RETURN_IF_ERROR(coordinator.Begin(offers, window));
  while (!coordinator.Done()) FLEXVIS_RETURN_IF_ERROR(coordinator.Tick());
  return coordinator.Finish();
}

Result<MergedOnlineReport> Coordinator::RunShardedCheckpointed(
    const CoordinatorParams& params, const std::vector<FlexOffer>& offers,
    const TimeInterval& window, const std::string& directory) {
  Coordinator coordinator(params);
  FLEXVIS_RETURN_IF_ERROR(coordinator.BeginCheckpointed(offers, window, directory));
  while (!coordinator.Done()) FLEXVIS_RETURN_IF_ERROR(coordinator.Tick());
  return coordinator.Finish();
}

Result<MergedOnlineReport> Coordinator::ResumeSharded(const std::string& directory,
                                                      ShardResumeInfo* info) {
  if (info != nullptr) *info = ShardResumeInfo{};

  // The coordinator store manifest is the run's commit point: without it
  // nothing was promised (the crash predates Begin's completion) and the
  // caller reruns from its inputs. Resume also garbage-collects any staging
  // debris a crash left next to it.
  StoreRecovery coord_recovery;
  Result<DurableStore> coord_store =
      DurableStore::Resume(directory, CoordinatorStoreOptions(), &coord_recovery);
  if (!coord_store.ok()) return coord_store.status();
  const JsonValue& meta = coord_recovery.meta;
  if (!meta.is_object()) return DataLossError("COORDINATOR.json carries no coordinator meta");
  Result<int64_t> num_shards = meta.GetInt("num_shards");
  Result<std::string> policy_name = meta.GetString("policy");
  Result<bool> scale = meta.GetBool("scale_energy_per_shard");
  Result<int64_t> fault_seed = meta.GetInt("fault_seed");
  Result<int64_t> manifest_epoch = meta.GetInt("epoch");
  if (!num_shards.ok() || !policy_name.ok() || !scale.ok() || !fault_seed.ok() ||
      !manifest_epoch.ok() || *num_shards < 1) {
    return DataLossError("COORDINATOR.json is incomplete");
  }
  Result<ShardPolicy> policy = ParseShardPolicy(*policy_name);
  if (!policy.ok()) return DataLossError("COORDINATOR.json names an unknown policy");
  const JsonValue& base_epoch_json = meta.Get("base_epoch");
  const int64_t base_epoch = base_epoch_json.is_int() ? base_epoch_json.AsInt() : 0;
  const JsonValue& topology_json = meta.Get("topology");
  const int topology =
      topology_json.is_int() ? static_cast<int>(topology_json.AsInt()) : 0;
  const JsonValue& order_json = meta.Get("offer_order");
  const JsonValue& overrides_json = meta.Get("overrides");
  if (!order_json.is_array() || !overrides_json.is_array()) {
    return DataLossError("COORDINATOR.json lacks offer_order/overrides arrays");
  }
  std::map<core::ProsumerId, int> manifest_overrides;
  for (size_t i = 0; i < overrides_json.size(); ++i) {
    const JsonValue& pair = overrides_json[i];
    if (!pair.is_array() || pair.size() != 2 || !pair[0].is_int() || !pair[1].is_int()) {
      return DataLossError("COORDINATOR.json override entry is malformed");
    }
    manifest_overrides[pair[0].AsInt()] = static_cast<int>(pair[1].AsInt());
  }

  const int n = static_cast<int>(*num_shards);
  CoordinatorParams params;
  params.num_shards = n;
  params.policy = *policy;
  params.scale_energy_per_shard = *scale;
  params.fault_seed = static_cast<uint64_t>(*fault_seed);
  if (meta.Has("rebalance")) {
    Result<RebalanceParams> rebalance = DecodeRebalanceParams(meta.Get("rebalance"));
    if (!rebalance.ok()) return rebalance.status();
    params.rebalance = *rebalance;
  }

  // Resume every shard store: each verifies its own SNAPSHOT.json, repairs a
  // torn WAL tail, garbage-collects other-generation debris, and reopens the
  // committed generation's WAL for the continuation. Shards recover to
  // *independent* generations — a crash mid-compaction leaves some folded
  // and some not, and the replay below reconciles them.
  Coordinator coordinator(params);
  coordinator.directory_ = directory;
  coordinator.coord_store_ = *std::move(coord_store);
  coordinator.topology_ = topology;
  // Sweep shard directories the committed manifest does not name: a crash
  // mid-resize leaves either staged new-topology directories (the manifest
  // flip never happened) or the old topology's directories (the flip
  // happened but the destroy did not finish). Either way, only the
  // manifest's topology is live.
  {
    std::set<std::string> expected;
    for (int s = 0; s < n; ++s) expected.insert(ShardDirName(topology, s));
    std::error_code ec;
    for (const fs::directory_entry& entry : fs::directory_iterator(directory, ec)) {
      if (!entry.is_directory()) continue;
      const std::string name = entry.path().filename().string();
      if (name.rfind(kShardDirPrefix, 0) != 0) continue;
      if (expected.count(name) != 0) continue;
      FLEXVIS_RETURN_IF_ERROR(
          DurableStore::Destroy(entry.path().string(), CheckpointStoreOptions()));
      if (info != nullptr) ++info->stale_shard_dirs_swept;
    }
  }
  std::vector<DurableStore> shard_stores(static_cast<size_t>(n));
  std::vector<StoreRecovery> shard_recovery(static_cast<size_t>(n));
  std::vector<OnlineParams> shard_params(static_cast<size_t>(n));
  std::vector<std::vector<FlexOffer>> shard_offers(static_cast<size_t>(n));
  TimeInterval window;
  for (int s = 0; s < n; ++s) {
    const size_t si = static_cast<size_t>(s);
    Result<DurableStore> store = DurableStore::Resume(
        coordinator.ShardDir(s), CheckpointStoreOptions(), &shard_recovery[si]);
    if (!store.ok()) return store.status();
    shard_stores[si] = *std::move(store);
    FLEXVIS_RETURN_IF_ERROR(DecodeOnlineSnapshot(shard_recovery[si], &shard_params[si],
                                                 &shard_offers[si], &window));
  }

  // Parse every shard's WAL records up front and take a migration inventory:
  // for each epoch, which side(s) survived the crash. A migrate_in whose
  // migrate_out is nowhere and is not covered by base_epoch is impossible
  // under the durability order (out flushes first) — the directory is
  // corrupt, not crashed.
  struct MigrationSides {
    bool has_out = false;
    bool has_in = false;
    core::ProsumerId prosumer = core::kInvalidProsumerId;
  };
  std::map<int64_t, MigrationSides> inventory;
  std::vector<std::deque<ReplayedRecord>> queues(static_cast<size_t>(n));
  if (info != nullptr) info->shards.resize(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    const size_t si = static_cast<size_t>(s);
    for (const std::string& payload : shard_recovery[si].records) {
      Result<ReplayedRecord> record = ParseJournalRecord(payload);
      if (!record.ok()) return record.status();
      if (record->is_migration) {
        MigrationSides& sides = inventory[record->migration.epoch];
        (record->migration.is_in ? sides.has_in : sides.has_out) = true;
        sides.prosumer = record->migration.prosumer;
      }
      queues[si].push_back(*std::move(record));
    }
    if (info != nullptr) {
      info->shards[si].torn_tail = shard_recovery[si].torn_tail;
      info->shards[si].torn_bytes = shard_recovery[si].torn_bytes;
      info->shards[si].generation = shard_recovery[si].generation;
    }
  }
  for (const auto& [epoch, sides] : inventory) {
    if (sides.has_in && !sides.has_out && epoch > base_epoch) {
      return DataLossError(
          StrFormat("migrate_in for prosumer %lld has no matching migrate_out",
                    static_cast<long long>(sides.prosumer)));
    }
  }

  // Rebuild the global offer list in its original input order. Shards on
  // different generations may both carry a migrated prosumer's offers (the
  // source's pre-migration snapshot and the target's compacted one); that is
  // benign exactly when the copies are byte-identical. Offers missing from
  // every snapshot (migrated into a shard whose fold never committed) are
  // recovered from migrate_in payloads.
  std::map<core::FlexOfferId, FlexOffer> by_id;
  for (const std::vector<FlexOffer>& subset : shard_offers) {
    for (const FlexOffer& offer : subset) {
      auto [it, inserted] = by_id.emplace(offer.id, offer);
      if (!inserted &&
          core::EncodeFlexOffer(it->second) != core::EncodeFlexOffer(offer)) {
        return DataLossError(
            StrFormat("flex-offer %lld appears in two shard snapshots with different "
                      "content",
                      static_cast<long long>(offer.id)));
      }
    }
  }
  for (const std::deque<ReplayedRecord>& queue : queues) {
    for (const ReplayedRecord& record : queue) {
      if (!record.is_migration || !record.migration.is_in) continue;
      for (const FlexOffer& offer : record.migration.offers) {
        auto [it, inserted] = by_id.emplace(offer.id, offer);
        if (!inserted &&
            core::EncodeFlexOffer(it->second) != core::EncodeFlexOffer(offer)) {
          return DataLossError(
              StrFormat("flex-offer %lld in a migrate_in payload differs from its "
                        "snapshot copy",
                        static_cast<long long>(offer.id)));
        }
      }
    }
  }
  coordinator.params_.online = shard_params[0];
  coordinator.params_.online.faults = nullptr;
  // The snapshots already carry per-shard (scaled) parameters; nothing below
  // rescales, so suppress the Begin-time scaling semantics on this instance.
  coordinator.window_ = window;
  coordinator.base_energy_ = coordinator.params_.online.energy;
  const JsonValue& energy_json = meta.Get("base_energy");
  if (energy_json.is_object()) {
    Result<double> wind = energy_json.GetDouble("wind_mean_kwh");
    Result<double> solar = energy_json.GetDouble("solar_peak_kwh");
    Result<double> demand = energy_json.GetDouble("demand_base_kwh");
    if (!wind.ok() || !solar.ok() || !demand.ok()) {
      return DataLossError("COORDINATOR.json base_energy is incomplete");
    }
    coordinator.base_energy_.wind_mean_kwh = *wind;
    coordinator.base_energy_.solar_peak_kwh = *solar;
    coordinator.base_energy_.demand_base_kwh = *demand;
  } else if (params.scale_energy_per_shard) {
    // v1 manifest: multiply shard 0's scaled means back out. Exact only when
    // the division was (floats), but v1 runs cannot resize anyway.
    const double factor = static_cast<double>(n);
    coordinator.base_energy_.wind_mean_kwh *= factor;
    coordinator.base_energy_.solar_peak_kwh *= factor;
    coordinator.base_energy_.demand_base_kwh *= factor;
  }
  if (coordinator.params_.rebalance.has_value()) {
    coordinator.controller_ = std::make_unique<RebalanceController>(
        *coordinator.params_.rebalance, n, window);
    if (meta.Has("controller")) {
      FLEXVIS_RETURN_IF_ERROR(
          coordinator.controller_->DecodeState(meta.Get("controller")));
    }
  }
  for (size_t i = 0; i < order_json.size(); ++i) {
    if (!order_json[i].is_int()) return DataLossError("offer_order holds a non-integer id");
    auto it = by_id.find(order_json[i].AsInt());
    if (it == by_id.end()) {
      return DataLossError(StrFormat("offer_order names flex-offer %lld absent from every "
                                     "shard snapshot and migration record",
                                     static_cast<long long>(order_json[i].AsInt())));
    }
    coordinator.offers_.push_back(it->second);
  }
  if (coordinator.offers_.size() != by_id.size()) {
    return DataLossError("shard snapshots hold offers missing from offer_order");
  }

  // Seed the router with every override the manifest committed. Safe even
  // for overrides whose journal records will replay again below: migration
  // requires an idle prosumer, so the pre-boundary arrival prefix of every
  // shard is identical under the pre- and post-migration partitions, and
  // CommitMigration's Assign is then idempotent. The epoch starts at
  // base_epoch — migrations at or below it are baked into (some) snapshots
  // and may have no journal records left to replay.
  for (const auto& [prosumer, shard] : manifest_overrides) {
    FLEXVIS_RETURN_IF_ERROR(coordinator.router_.Assign(prosumer, shard));
  }
  coordinator.epoch_ = base_epoch;
  coordinator.base_epoch_ = base_epoch;

  // Rebuild each shard from its snapshot subset, then fast-forward through
  // the folded state.json of a compacted generation (no decision logic
  // re-runs; the folded record is kept as applied[0] so migration rebuilds
  // can replay it).
  for (int s = 0; s < n; ++s) {
    const size_t si = static_cast<size_t>(s);
    auto shard = std::make_unique<Shard>();
    shard->registry = std::make_unique<FaultRegistry>();
    FLEXVIS_RETURN_IF_ERROR(
        InstallFaultsInto(*shard->registry, ShardSeed(params.fault_seed, s)));
    shard->params = shard_params[si];
    shard->params.faults = shard->registry.get();
    shard->enterprise = OnlineEnterprise(shard->params);
    Result<OnlineLoopState> state = shard->enterprise.Begin(shard_offers[si], window);
    if (!state.ok()) return state.status();
    shard->state = *std::move(state);
    auto folded = shard_recovery[si].files.find(kCheckpointStateFile);
    if (folded != shard_recovery[si].files.end()) {
      Result<OnlineTickRecord> fold = DecodeTickRecord(folded->second);
      if (!fold.ok()) return fold.status();
      if (!fold->folded) {
        return DataLossError(
            StrFormat("shard %d state.json is not a folded tick record", s));
      }
      FLEXVIS_RETURN_IF_ERROR(shard->enterprise.Apply(shard->state, *fold));
      if (info != nullptr) {
        info->shards[si].ticks_folded = static_cast<int>(fold->tick) + 1;
      }
      shard->applied.push_back(*std::move(fold));
    }
    shard->store = std::move(shard_stores[si]);
    coordinator.shards_.push_back(std::move(shard));
  }
  coordinator.begun_ = true;
  coordinator.checkpointed_ = true;

  // Lockstep replay. Shards recovered to different generations start at
  // different ticks, so migration records do not surface in the same round;
  // a shard that has surfaced a migration record STALLS (applies no further
  // ticks) until the record resolves:
  //   - paired with its counterpart from the other shard's queue -> commit;
  //   - counterpart compacted away (epoch at or below base_epoch) -> the
  //     other shard's snapshot already carries the migration; rebase only
  //     the surfacing shard against the manifest-seeded router;
  //   - lone migrate_out above base_epoch whose target queue is exhausted ->
  //     the crash hit between the two flushes; complete the migration by
  //     synthesizing and journaling the migrate_in, then commit.
  // Per-tick load samples reconstructed during replay. Ticks at or below the
  // manifest's controller state were already observed live; everything after
  // is fed to the controller once replay settles, so its trend state crosses
  // the crash byte-identically.
  std::map<int64_t, std::vector<std::optional<ShardLoadSample>>> samples;
  struct PendingMigration {
    int shard = 0;  // the shard whose journal surfaced the record
    MigrationRecord record;
  };
  std::vector<PendingMigration> pending_in;
  std::vector<PendingMigration> pending_out;
  std::vector<bool> missed_compaction(static_cast<size_t>(n), false);
  for (;;) {
    bool progressed = false;

    for (int s = 0; s < n; ++s) {
      std::deque<ReplayedRecord>& queue = queues[static_cast<size_t>(s)];
      while (!queue.empty() && queue.front().is_migration) {
        MigrationRecord record = std::move(queue.front().migration);
        queue.pop_front();
        progressed = true;
        if (record.is_in) {
          if (record.to != s) {
            return DataLossError("migrate_in found in a journal it does not name as target");
          }
          pending_in.push_back({s, std::move(record)});
        } else {
          if (record.from != s) {
            return DataLossError(
                "migrate_out found in a journal it does not name as source");
          }
          pending_out.push_back({s, std::move(record)});
        }
      }
    }

    // Commit migrations in epoch order as their records pair up.
    std::sort(pending_in.begin(), pending_in.end(), [](const auto& a, const auto& b) {
      return a.record.epoch < b.record.epoch;
    });
    for (auto it = pending_in.begin(); it != pending_in.end();) {
      const MigrationRecord& record = it->record;
      auto match = std::find_if(pending_out.begin(), pending_out.end(),
                                [&](const PendingMigration& out) {
                                  return out.record.prosumer == record.prosumer &&
                                         out.record.epoch == record.epoch;
                                });
      if (match != pending_out.end()) {
        pending_out.erase(match);
        if (record.active) {
          FLEXVIS_RETURN_IF_ERROR(coordinator.CommitActiveMigration(
              record.prosumer, record.from, record.to, record.epoch));
        } else {
          FLEXVIS_RETURN_IF_ERROR(coordinator.CommitMigration(
              record.prosumer, record.from, record.to, record.epoch));
        }
        if (info != nullptr) ++info->migrations_replayed;
        it = pending_in.erase(it);
        progressed = true;
      } else if (!inventory[record.epoch].has_out) {
        // The migrate_out was compacted away with the source's old WAL
        // (epoch <= base_epoch, verified above): the source snapshot already
        // excludes the prosumer; rebase only this target shard.
        if (record.active) {
          FLEXVIS_RETURN_IF_ERROR(coordinator.ActiveRebakeTarget(
              it->shard, MovedFromRecord(record, coordinator.offers_), record.epoch));
        } else {
          FLEXVIS_RETURN_IF_ERROR(coordinator.RebakeShard(it->shard, record.epoch));
        }
        if (info != nullptr) ++info->migrations_replayed;
        it = pending_in.erase(it);
        progressed = true;
      } else {
        ++it;  // the out exists in some queue; keep draining until it surfaces
      }
    }
    for (auto it = pending_out.begin(); it != pending_out.end();) {
      const MigrationRecord& record = it->record;
      if (inventory[record.epoch].has_in) {
        ++it;  // the in exists in some queue; it will pair above
        continue;
      }
      if (record.epoch <= base_epoch) {
        // The migrate_in was compacted away with the target's old WAL: the
        // target snapshot already includes the prosumer; rebase the source.
        if (record.active) {
          FLEXVIS_RETURN_IF_ERROR(
              coordinator.ActiveRebakeSource(it->shard, record.prosumer, record.epoch));
        } else {
          FLEXVIS_RETURN_IF_ERROR(coordinator.RebakeShard(it->shard, record.epoch));
        }
        if (info != nullptr) ++info->migrations_replayed;
        it = pending_out.erase(it);
        progressed = true;
        continue;
      }
      if (!queues[static_cast<size_t>(record.to)].empty()) {
        ++it;  // target still replaying its pre-boundary ticks
        continue;
      }
      // Lone migrate_out above base_epoch: the crash hit between the two
      // flushes. Re-journal the migrate_in, then commit.
      MigrationRecord in = record;
      in.is_in = true;
      for (const FlexOffer& offer : coordinator.offers_) {
        if (offer.prosumer == in.prosumer) in.offers.push_back(offer);
      }
      Shard& target = *coordinator.shards_[static_cast<size_t>(in.to)];
      FLEXVIS_RETURN_IF_ERROR(target.store.Append(EncodeMigrationRecord(in)));
      FLEXVIS_RETURN_IF_ERROR(target.store.Flush());
      if (in.active) {
        FLEXVIS_RETURN_IF_ERROR(
            coordinator.CommitActiveMigration(in.prosumer, in.from, in.to, in.epoch));
      } else {
        FLEXVIS_RETURN_IF_ERROR(
            coordinator.CommitMigration(in.prosumer, in.from, in.to, in.epoch));
      }
      if (info != nullptr) ++info->migrations_repaired;
      it = pending_out.erase(it);
      progressed = true;
    }

    for (int s = 0; s < n; ++s) {
      std::deque<ReplayedRecord>& queue = queues[static_cast<size_t>(s)];
      if (queue.empty() || queue.front().is_migration) continue;
      const auto stalled = [s](const PendingMigration& p) { return p.shard == s; };
      if (std::any_of(pending_in.begin(), pending_in.end(), stalled) ||
          std::any_of(pending_out.begin(), pending_out.end(), stalled)) {
        continue;  // this shard's next records postdate its unresolved migration
      }
      Shard& shard = *coordinator.shards_[static_cast<size_t>(s)];
      OnlineTickRecord record = std::move(queue.front().tick);
      queue.pop_front();
      FLEXVIS_RETURN_IF_ERROR(shard.enterprise.Apply(shard.state, record));
      if (coordinator.controller_ != nullptr) {
        std::vector<std::optional<ShardLoadSample>>& row = samples[record.tick];
        row.resize(static_cast<size_t>(n));
        ShardLoadSample sample;
        sample.shed_offers = shard.state.report.shed_offers;
        sample.queue_depth = static_cast<int>(shard.state.pending_acceptance.size());
        sample.backlog =
            static_cast<int64_t>(shard.state.arrival.size() - shard.state.next_arrival);
        row[static_cast<size_t>(s)] = sample;
      }
      // A boundary tick surviving in the WAL means this shard's fold at that
      // boundary never committed — remembered for the catch-up compaction.
      if (const int compact_ticks = coordinator.params_.online.compact_ticks;
          compact_ticks > 0 && (record.tick + 1) % compact_ticks == 0) {
        missed_compaction[static_cast<size_t>(s)] = true;
      }
      shard.applied.push_back(std::move(record));
      if (info != nullptr) ++info->shards[static_cast<size_t>(s)].ticks_replayed;
      progressed = true;
    }
    if (!progressed) break;
  }
  if (!pending_in.empty() || !pending_out.empty()) {
    return DataLossError("unresolved migration records after journal replay");
  }

  // The journals are authoritative for the assignment epoch; a manifest that
  // lags them (crash between a migration's flushes and its manifest rewrite)
  // is refreshed before the run continues.
  if (coordinator.epoch_ != *manifest_epoch ||
      coordinator.router_.overrides() != manifest_overrides) {
    FLEXVIS_RETURN_IF_ERROR(coordinator.WriteCoordinatorManifest());
    if (info != nullptr) info->manifest_rewritten = true;
  }

  // Re-feed the controller the replayed ticks (its manifest state stops at
  // the last manifest write), then reconcile the plan WAL: a plan record
  // without its done marker means the crash hit mid-plan — its remaining
  // steps complete now. A decision the controller re-derives for the final
  // replayed tick that never even reached the WAL is re-planned whole. Both
  // paths are deterministic re-runs of what the live process was doing.
  const int topology_before_reconcile = coordinator.topology_;
  std::optional<RebalanceDecision> pending_decision;
  if (coordinator.controller_ != nullptr) {
    int64_t min_last = -1;
    for (const std::unique_ptr<Shard>& shard : coordinator.shards_) {
      const int64_t last = static_cast<int64_t>(shard->state.next_tick) - 1;
      if (min_last < 0 || last < min_last) min_last = last;
    }
    for (int64_t t = coordinator.controller_->last_observed_tick() + 1; t <= min_last;
         ++t) {
      auto row = samples.find(t);
      if (row == samples.end() || row->second.size() != static_cast<size_t>(n)) {
        return DataLossError(StrFormat(
            "no replayed load samples for observed tick %lld", static_cast<long long>(t)));
      }
      std::vector<ShardLoadSample> tick_samples;
      tick_samples.reserve(row->second.size());
      for (const std::optional<ShardLoadSample>& sample : row->second) {
        if (!sample.has_value()) {
          return DataLossError(
              StrFormat("a shard is missing its load sample for observed tick %lld",
                        static_cast<long long>(t)));
        }
        tick_samples.push_back(*sample);
      }
      std::optional<RebalanceDecision> decision =
          coordinator.controller_->Observe(t, tick_samples);
      if (decision.has_value() && t == min_last) pending_decision = decision;
    }
  }
  std::vector<RebalancePlan> wal_plans;
  std::set<int64_t> done_ids;
  for (const std::string& payload : coord_recovery.records) {
    Result<JsonValue> json = JsonValue::Parse(payload);
    if (!json.ok() || !json->is_object()) {
      return DataLossError("coordinator WAL record is not a JSON object");
    }
    Result<std::string> kind = json->GetString("kind");
    if (!kind.ok()) return DataLossError("coordinator WAL record lacks a kind");
    if (*kind == "plan") {
      Result<RebalancePlan> plan = DecodeRebalancePlan(*json);
      if (!plan.ok()) return plan.status();
      wal_plans.push_back(*std::move(plan));
    } else if (*kind == "plan_done") {
      Result<int64_t> id = json->GetInt("id");
      if (!id.ok()) return DataLossError("plan_done record lacks an id");
      done_ids.insert(*id);
    } else {
      return DataLossError(
          StrFormat("coordinator WAL record of unknown kind '%s'", kind->c_str()));
    }
  }
  for (const RebalancePlan& plan : wal_plans) {
    if (done_ids.count(plan.id) != 0) continue;
    FLEXVIS_RETURN_IF_ERROR(coordinator.ExecutePlan(plan, /*already_journaled=*/true));
    if (info != nullptr) ++info->plans_completed;
    if (pending_decision.has_value() && pending_decision->plan_id == plan.id) {
      pending_decision.reset();
    }
  }
  if (pending_decision.has_value() && done_ids.count(pending_decision->plan_id) != 0) {
    // The plan ran to completion live (done marker present); nothing to redo.
    pending_decision.reset();
  }
  if (pending_decision.has_value()) {
    RebalancePlan plan = coordinator.BuildPlan(*pending_decision);
    // An empty kMove plan was never journaled live either; both sides agree
    // by re-deriving it from the same replayed history.
    if (plan.action != RebalancePlan::Action::kMove || !plan.moves.empty()) {
      FLEXVIS_RETURN_IF_ERROR(coordinator.ExecutePlan(plan, /*already_journaled=*/false));
      if (info != nullptr) ++info->plans_reexecuted;
    }
  }

  // A global compaction the crash interrupted: every shard applied through
  // the boundary tick yet some shard's WAL still holds the boundary record —
  // an uninterrupted CompactShards folds it away before the next global tick
  // starts. Re-run the compaction for exactly those shards so the directory
  // converges to the uninterrupted layout and replay stays bounded by the
  // interval on the next recovery. When the crash hit mid-way through the
  // boundary tick's own journaling instead (some shard never got the
  // record), min_next sits below the boundary and the continuation re-runs
  // the global tick and its compaction itself.
  if (const int compact_ticks = coordinator.params_.online.compact_ticks;
      compact_ticks > 0 && coordinator.topology_ == topology_before_reconcile &&
      std::find(missed_compaction.begin(), missed_compaction.end(), true) !=
          missed_compaction.end()) {
    int64_t min_next = -1;
    for (const std::unique_ptr<Shard>& shard : coordinator.shards_) {
      if (min_next < 0 || shard->state.next_tick < min_next) {
        min_next = shard->state.next_tick;
      }
    }
    if (min_next > 0 && min_next % compact_ticks == 0) {
      FLEXVIS_RETURN_IF_ERROR(coordinator.CompactShards(&missed_compaction));
    }
  }

  // A reconcile-time resize may have changed the shard count; the tail
  // accounting runs over whatever fleet the continuation actually ticks.
  const size_t live_shards = coordinator.shards_.size();
  std::vector<int> replayed_ticks(live_shards, 0);
  for (size_t s = 0; s < live_shards; ++s) {
    replayed_ticks[s] = coordinator.shards_[s]->state.report.ticks;
  }
  while (!coordinator.Done()) FLEXVIS_RETURN_IF_ERROR(coordinator.Tick());
  if (info != nullptr) {
    if (info->shards.size() < live_shards) info->shards.resize(live_shards);
    for (size_t s = 0; s < live_shards; ++s) {
      info->shards[s].ticks_continued =
          coordinator.shards_[s]->state.report.ticks - replayed_ticks[s];
    }
  }
  return coordinator.Finish();
}

// ---- Offline sharded planning -----------------------------------------------

Result<MergedPlanningReport> PlanHorizonSharded(const EnterpriseParams& params,
                                                int num_shards, ShardPolicy policy,
                                                const std::vector<FlexOffer>& offers,
                                                const TimeInterval& window,
                                                bool scale_energy_per_shard,
                                                uint64_t fault_seed) {
  const int n = num_shards < 1 ? 1 : num_shards;
  ShardRouter router(n, policy);
  std::vector<std::vector<size_t>> partition = router.Partition(offers);

  std::vector<std::unique_ptr<FaultRegistry>> registries(static_cast<size_t>(n));
  std::vector<EnterpriseParams> shard_params(static_cast<size_t>(n), params);
  for (int s = 0; s < n; ++s) {
    registries[static_cast<size_t>(s)] = std::make_unique<FaultRegistry>();
    FLEXVIS_RETURN_IF_ERROR(
        InstallFaultsInto(*registries[static_cast<size_t>(s)], ShardSeed(fault_seed, s)));
    EnterpriseParams& sp = shard_params[static_cast<size_t>(s)];
    if (scale_energy_per_shard) {
      const double divisor = static_cast<double>(n);
      sp.energy.wind_mean_kwh /= divisor;
      sp.energy.solar_peak_kwh /= divisor;
      sp.energy.demand_base_kwh /= divisor;
    }
    sp.faults = registries[static_cast<size_t>(s)].get();
    sp.market.faults = registries[static_cast<size_t>(s)].get();
  }

  // Shard planning runs in parallel; each shard touches only its own params,
  // registry, and report slot. Nested parallel sections inside PlanHorizon
  // degrade to serial inline execution (util/parallel), so this composes.
  std::vector<Status> statuses(static_cast<size_t>(n), OkStatus());
  std::vector<PlanningReport> reports(static_cast<size_t>(n));
  ParallelFor(0, static_cast<size_t>(n), 1, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      std::vector<FlexOffer> subset;
      subset.reserve(partition[s].size());
      for (size_t idx : partition[s]) subset.push_back(offers[idx]);
      Enterprise enterprise(shard_params[s]);
      Result<PlanningReport> report = enterprise.PlanHorizon(subset, window);
      if (report.ok()) {
        reports[s] = *std::move(report);
      } else {
        statuses[s] = report.status();
      }
    }
  });
  for (const Status& status : statuses) FLEXVIS_RETURN_IF_ERROR(status);

  MergedPlanningReport merged;
  merged.num_shards = n;
  // Shard 0 seeds the global report (so a 1-shard merge is the unsharded
  // report verbatim); shards 1+ fold in. Prices stay shard 0's curve — a
  // merged price is not meaningful; per-shard curves live in shard_reports.
  merged.global = reports[0];
  for (int s = 1; s < n; ++s) {
    PlanningReport& r = reports[static_cast<size_t>(s)];
    AddAligned(&merged.global.res_production, r.res_production);
    AddAligned(&merged.global.inflexible_demand, r.inflexible_demand);
    AddAligned(&merged.global.planned_against_demand, r.planned_against_demand);
    AddAligned(&merged.global.target, r.target);
    AddAligned(&merged.global.planned_flexible_load, r.planned_flexible_load);
    AddAligned(&merged.global.realized_flexible_load, r.realized_flexible_load);
    AddAligned(&merged.global.deviation, r.deviation);
    merged.global.offers_in += r.offers_in;
    merged.global.aggregates_built += r.aggregates_built;
    merged.global.aggregates_assigned += r.aggregates_assigned;
    merged.global.aggregates_rejected += r.aggregates_rejected;
    merged.global.imbalance_before_kwh += r.imbalance_before_kwh;
    merged.global.imbalance_after_kwh += r.imbalance_after_kwh;
    for (FlexOffer& o : r.member_offers) merged.global.member_offers.push_back(o);
    for (FlexOffer& o : r.aggregate_offers) merged.global.aggregate_offers.push_back(o);
    for (const std::string& stage : r.degraded_stages) {
      merged.global.degraded_stages.push_back(stage);
    }
    AddAligned(&merged.global.settlement.traded_kwh, r.settlement.traded_kwh);
    merged.global.settlement.spot_cost_eur += r.settlement.spot_cost_eur;
    merged.global.settlement.imbalance_kwh += r.settlement.imbalance_kwh;
    merged.global.settlement.imbalance_cost_eur += r.settlement.imbalance_cost_eur;
    merged.global.settlement.total_cost_eur += r.settlement.total_cost_eur;
  }
  if (n > 1) {
    std::sort(merged.global.degraded_stages.begin(), merged.global.degraded_stages.end());
    merged.global.degraded_stages.erase(std::unique(merged.global.degraded_stages.begin(),
                                                    merged.global.degraded_stages.end()),
                                        merged.global.degraded_stages.end());
  }
  // Shard-invariant total: summed over the *input* offers in global order,
  // so the floating-point fold is bit-identical at every shard count.
  for (const FlexOffer& offer : offers) {
    merged.total_offered_kwh += offer.total_max_energy_kwh();
  }
  merged.shard_reports = std::move(reports);
  return merged;
}

}  // namespace flexvis::sim
