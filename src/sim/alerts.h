#ifndef FLEXVIS_SIM_ALERTS_H_
#define FLEXVIS_SIM_ALERTS_H_

#include <string>
#include <vector>

#include "core/measures.h"
#include "dw/database.h"
#include "sim/enterprise.h"
#include "sim/online.h"
#include "util/status.h"

namespace flexvis::sim {

/// What an alert warns about. The paper's future-work platform wants "alerts
/// about expected shortages or over-capacities and an option to drill down
/// data to find out a reason behind this" — this module implements both.
enum class AlertKind {
  /// Planned load exceeds available production over a sustained run of
  /// slices (the enterprise would have to buy at spot or risk imbalance).
  kShortage = 0,
  /// Production exceeds planned load (RES would be curtailed or dumped).
  kOverCapacity,
  /// Realized load deviates from the plan beyond tolerance (imbalance fees).
  kPlanDeviation,
  /// An enterprise shard's bounded ingest queue shed offers (reject-newest)
  /// or ran near capacity — the shard is saturated and prosumers are being
  /// turned away.
  kOverload,
};

std::string_view AlertKindName(AlertKind kind);

/// One detected alert: a maximal run of consecutive slices beyond threshold.
struct Alert {
  AlertKind kind = AlertKind::kShortage;
  timeutil::TimeInterval interval;
  /// Total energy beyond the threshold across the run (kWh).
  double magnitude_kwh = 0.0;
  /// Worst single slice (kWh).
  double peak_kwh = 0.0;
  /// [0, 1]; 1 when the peak reaches 4x the threshold.
  double severity = 0.0;
  std::string message;
  /// For kOverload alerts: the shard the alert names. -1 for alert kinds
  /// that are not shard-scoped (shortage/over-capacity/deviation).
  int shard = -1;
};

struct AlertParams {
  /// Per-slice residual (demand - production) above which a slice counts as
  /// shortage, in kWh.
  double shortage_threshold_kwh = 50.0;
  /// Per-slice surplus (production - demand) above which a slice counts as
  /// over-capacity.
  double overcapacity_threshold_kwh = 50.0;
  /// Per-slice |realized - planned| above which a slice counts as deviation.
  double deviation_threshold_kwh = 25.0;
  /// Runs shorter than this many consecutive slices are ignored (one noisy
  /// slice is not an operational event).
  int min_consecutive_slices = 2;
};

/// Scans a planning report for shortage / over-capacity / deviation runs.
class AlertEngine {
 public:
  explicit AlertEngine(AlertParams params) : params_(params) {}
  AlertEngine() : AlertEngine(AlertParams{}) {}

  const AlertParams& params() const { return params_; }

  /// All alerts in `report`, ordered by start time; severity-descending ties
  /// on equal starts.
  std::vector<Alert> Scan(const PlanningReport& report) const;

 private:
  AlertParams params_;
};

/// Drill-down of one alert ("to find out a reason behind the shortage ... it
/// is important to be able to ... drill down to the level of individual
/// flex-offers"): the flex-offers whose extent overlaps the alert interval,
/// with their state mix and remaining balancing potential.
struct AlertDrillDown {
  Alert alert;
  std::vector<core::FlexOffer> offers;
  core::StateCounts states;
  core::BalancingPotential potential;
  /// Offers sorted by scheduled energy within the interval, largest first —
  /// the "reason behind" list an operator reads top-down. Ids only; the
  /// offers themselves are in `offers`.
  std::vector<core::FlexOfferId> top_contributors;
};

Result<AlertDrillDown> DrillDownAlert(const Alert& alert, const dw::Database& db,
                                      size_t top_k = 10);

/// Scans per-shard online reports (index = shard id) for overload: a shard
/// that shed offers — or, when `queue_depth_threshold` > 0, whose
/// pending-acceptance queue reached that depth — produces one kOverload
/// alert spanning `window`, with magnitude_kwh = shed offer count, peak_kwh
/// = queue high watermark, and a message naming the shard. Ordered by shard.
std::vector<Alert> ScanOverload(const std::vector<OnlineReport>& shard_reports,
                                const timeutil::TimeInterval& window,
                                int queue_depth_threshold = 0);

}  // namespace flexvis::sim

#endif  // FLEXVIS_SIM_ALERTS_H_
