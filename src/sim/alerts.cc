#include "sim/alerts.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/strings.h"

namespace flexvis::sim {

using core::TimeSeries;
using timeutil::kMinutesPerSlice;
using timeutil::TimeInterval;
using timeutil::TimePoint;

std::string_view AlertKindName(AlertKind kind) {
  switch (kind) {
    case AlertKind::kShortage: return "shortage";
    case AlertKind::kOverCapacity: return "over-capacity";
    case AlertKind::kPlanDeviation: return "plan-deviation";
    case AlertKind::kOverload: return "overload";
  }
  return "unknown";
}

namespace {

// Finds maximal runs where `value(t) > threshold` and emits one alert each.
void ScanRuns(const TimeInterval& window, double threshold, int min_slices, AlertKind kind,
              const std::function<double(TimePoint)>& value, std::vector<Alert>* out) {
  TimePoint run_start = window.start;
  double magnitude = 0.0;
  double peak = 0.0;
  int length = 0;
  auto flush = [&](TimePoint end) {
    if (length >= min_slices) {
      Alert alert;
      alert.kind = kind;
      alert.interval = TimeInterval(run_start, end);
      alert.magnitude_kwh = magnitude;
      alert.peak_kwh = peak;
      alert.severity = std::clamp(peak / (4.0 * threshold), 0.0, 1.0);
      alert.message = StrFormat(
          "%s of %s kWh (peak %s kWh/slice) expected %s..%s",
          std::string(AlertKindName(kind)).c_str(), FormatDouble(magnitude, 0).c_str(),
          FormatDouble(peak, 1).c_str(), alert.interval.start.ToString().c_str(),
          alert.interval.end.ToString().c_str());
      out->push_back(std::move(alert));
    }
    magnitude = 0.0;
    peak = 0.0;
    length = 0;
  };
  for (TimePoint t = window.start; t < window.end; t = t + kMinutesPerSlice) {
    double excess = value(t) - threshold;
    if (excess > 0.0) {
      if (length == 0) run_start = t;
      magnitude += excess + threshold;  // report the full energy in the run
      peak = std::max(peak, excess + threshold);
      ++length;
    } else {
      flush(t);
    }
  }
  flush(window.end);
}

}  // namespace

std::vector<Alert> AlertEngine::Scan(const PlanningReport& report) const {
  std::vector<Alert> alerts;
  // Residual demand: inflexible + planned flexible - RES production.
  auto residual = [&](TimePoint t) {
    return report.inflexible_demand.At(t) + report.planned_flexible_load.At(t) -
           report.res_production.At(t);
  };
  ScanRuns(report.window, params_.shortage_threshold_kwh, params_.min_consecutive_slices,
           AlertKind::kShortage, residual, &alerts);
  ScanRuns(report.window, params_.overcapacity_threshold_kwh,
           params_.min_consecutive_slices, AlertKind::kOverCapacity,
           [&](TimePoint t) { return -residual(t); }, &alerts);
  ScanRuns(report.window, params_.deviation_threshold_kwh, params_.min_consecutive_slices,
           AlertKind::kPlanDeviation,
           [&](TimePoint t) { return std::abs(report.deviation.At(t)); }, &alerts);
  std::stable_sort(alerts.begin(), alerts.end(), [](const Alert& a, const Alert& b) {
    if (a.interval.start == b.interval.start) return a.severity > b.severity;
    return a.interval.start < b.interval.start;
  });
  return alerts;
}

std::vector<Alert> ScanOverload(const std::vector<OnlineReport>& shard_reports,
                                const TimeInterval& window, int queue_depth_threshold) {
  std::vector<Alert> alerts;
  for (size_t shard = 0; shard < shard_reports.size(); ++shard) {
    const OnlineReport& report = shard_reports[shard];
    const bool shed = report.shed_offers > 0;
    const bool deep = queue_depth_threshold > 0 &&
                      report.queue_high_watermark >= queue_depth_threshold;
    if (!shed && !deep) continue;
    Alert alert;
    alert.kind = AlertKind::kOverload;
    alert.interval = window;
    alert.shard = static_cast<int>(shard);
    alert.magnitude_kwh = static_cast<double>(report.shed_offers);
    alert.peak_kwh = static_cast<double>(report.queue_high_watermark);
    alert.severity = std::clamp(
        static_cast<double>(report.shed_offers) /
            static_cast<double>(std::max(1, report.offers_received)),
        deep ? 0.25 : 0.0, 1.0);
    alert.message = StrFormat(
        "overload on shard %zu: %d offer(s) shed, pending-acceptance queue peaked at %d",
        shard, report.shed_offers, report.queue_high_watermark);
    alerts.push_back(std::move(alert));
  }
  return alerts;
}

Result<AlertDrillDown> DrillDownAlert(const Alert& alert, const dw::Database& db,
                                      size_t top_k) {
  if (alert.interval.empty()) {
    return InvalidArgumentError("alert has an empty interval");
  }
  AlertDrillDown drill;
  drill.alert = alert;

  dw::FlexOfferFilter filter;
  filter.window = alert.interval;
  filter.aggregates = dw::FlexOfferFilter::AggregateFilter::kOnlyRaw;
  Result<std::vector<core::FlexOffer>> offers = db.SelectFlexOffers(filter);
  if (!offers.ok()) return offers.status();
  drill.offers = *std::move(offers);
  drill.states = core::CountByState(drill.offers);
  drill.potential = core::ComputeBalancingPotential(drill.offers);

  // Rank by scheduled energy falling inside the alert interval.
  std::vector<std::pair<double, core::FlexOfferId>> ranked;
  for (const core::FlexOffer& o : drill.offers) {
    double contribution = 0.0;
    if (o.schedule.has_value()) {
      for (size_t i = 0; i < o.schedule->energy_kwh.size(); ++i) {
        TimePoint t = o.schedule->start + static_cast<int64_t>(i) * kMinutesPerSlice;
        if (alert.interval.Contains(t)) contribution += o.schedule->energy_kwh[i];
      }
    } else {
      // Unscheduled offers contribute their minimum energy prorated by how
      // much of their possible extent falls inside the alert interval.
      TimeInterval overlap = o.extent().Intersect(alert.interval);
      int64_t extent_minutes = o.extent().duration_minutes();
      if (!overlap.empty() && extent_minutes > 0) {
        contribution = o.total_min_energy_kwh() *
                       static_cast<double>(overlap.duration_minutes()) /
                       static_cast<double>(extent_minutes);
      }
    }
    ranked.emplace_back(contribution, o.id);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (size_t i = 0; i < std::min(top_k, ranked.size()); ++i) {
    drill.top_contributors.push_back(ranked[i].second);
  }
  return drill;
}

}  // namespace flexvis::sim
