#ifndef FLEXVIS_SIM_WORKLOAD_H_
#define FLEXVIS_SIM_WORKLOAD_H_

#include <optional>
#include <vector>

#include "core/flex_offer.h"
#include "dw/database.h"
#include "geo/atlas.h"
#include "grid/topology.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/status.h"

namespace flexvis::sim {

/// Arms the global FaultRegistry from the FLEXVIS_FAULTS environment
/// variable ("point:prob[@latency_minutes],...", see FaultRegistry::
/// Configure) and seeds its streams with `seed` so fault draws reproduce
/// alongside the workload. The hook every workload driver — bench mains,
/// the CLI, throughput harnesses — calls before generating load, so a run
/// under injected faults is configured exactly like a clean one plus one
/// environment variable. No-op when the variable is unset.
Status InstallFaultsFromEnv(uint64_t seed = 2013);

/// InstallFaultsFromEnv against an explicit registry: seeds `registry` with
/// `seed` and arms it from FLEXVIS_FAULTS. The sharded coordinator calls
/// this once per shard (with a shard-distinct seed) so every shard draws its
/// faults from its own deterministic streams instead of the process-wide
/// singleton.
Status InstallFaultsInto(FaultRegistry& registry, uint64_t seed);

/// Shape of the synthetic flex-offer population. Defaults approximate the
/// MIRABEL demo mix: mostly households with EVs/heat pumps/wet appliances,
/// a sprinkle of industry and small plants.
struct WorkloadParams {
  uint64_t seed = 42;
  int num_prosumers = 100;
  /// Poisson mean of offers per prosumer within the horizon.
  double offers_per_prosumer = 5.0;
  /// Offers start (earliest start) uniformly within [horizon.start,
  /// horizon.end - profile duration].
  timeutil::TimeInterval horizon;
  /// Weights over core::ProsumerType (indexed by enum value); empty = the
  /// built-in mix.
  std::vector<double> prosumer_type_weights;
  /// Fractions of offers stamped Accepted / Assigned / Rejected; the
  /// remainder stays Offered. Assigned offers receive a synthetic schedule.
  /// Each must lie in [0, 1] and their sum must not exceed 1.0 (validated by
  /// ValidateWorkloadParams; Generate rejects violations with a typed
  /// kInvalidArgument instead of silently misgenerating).
  double fraction_accepted = 0.31;
  double fraction_assigned = 0.43;
  double fraction_rejected = 0.26;
  /// When set, every generated offer uses this appliance's profile shape
  /// regardless of the prosumer mix — how scenario phases model fleets (an
  /// EV-charge surge is a phase of kElectricVehicle-only offers).
  std::optional<core::ApplianceType> appliance_override;
  /// Applied to every offer's time fields after generation (start, deadlines,
  /// creation). Scenario phases use ±60 to model DST transitions shifting
  /// the fleet against the market grid. Must be slice-aligned.
  int64_t time_shift_minutes = 0;
  /// First ids minted for prosumers / offers; scenario phases pass running
  /// offsets so multi-phase workloads compose with globally unique ids.
  int first_prosumer_id = 1;
  core::FlexOfferId first_offer_id = 1;
};

/// Checks `params` for contradictions: each status fraction must lie in
/// [0, 1] and fraction_accepted + fraction_assigned + fraction_rejected must
/// not exceed 1.0; num_prosumers and offers_per_prosumer must be
/// non-negative; time_shift_minutes must be slice-aligned. Returns a typed
/// kInvalidArgument naming the offending field.
Status ValidateWorkloadParams(const WorkloadParams& params);

/// A generated workload: the prosumer population and their flex-offers,
/// geotagged by atlas leaf region and attached to grid feeders.
struct Workload {
  std::vector<dw::ProsumerInfo> prosumers;
  std::vector<core::FlexOffer> offers;
};

/// Deterministic synthetic workload generator (DESIGN.md §2: substitutes the
/// paper's real Danish prosumer data while reproducing the statistical shape
/// the views depend on).
class WorkloadGenerator {
 public:
  WorkloadGenerator(const geo::Atlas* atlas, const grid::GridTopology* topology)
      : atlas_(atlas), topology_(topology) {}

  /// Generates prosumers and offers. Every produced offer validates.
  /// Contradictory params (see ValidateWorkloadParams) are a typed
  /// kInvalidArgument.
  Result<Workload> Generate(const WorkloadParams& params) const;

  /// Generates one flex-offer for `prosumer` with earliest start near
  /// `around` (public so tests and examples can mint single offers). When
  /// `appliance` is set it overrides the prosumer-mix appliance draw.
  core::FlexOffer MakeOffer(Rng& rng, const dw::ProsumerInfo& prosumer,
                            timeutil::TimePoint around, core::FlexOfferId id,
                            std::optional<core::ApplianceType> appliance =
                                std::nullopt) const;

  /// Loads `workload` into `db` (dimensions are expected to be registered
  /// already via Atlas/GridTopology RegisterWithDatabase).
  static Status LoadIntoDatabase(const Workload& workload, dw::Database& db);

 private:
  const geo::Atlas* atlas_;
  const grid::GridTopology* topology_;
};

}  // namespace flexvis::sim

#endif  // FLEXVIS_SIM_WORKLOAD_H_
