#ifndef FLEXVIS_SIM_SCENARIO_H_
#define FLEXVIS_SIM_SCENARIO_H_

#include <optional>
#include <string>
#include <vector>

#include "sim/coordinator.h"
#include "sim/enterprise.h"
#include "sim/workload.h"
#include "util/json.h"
#include "util/status.h"

namespace flexvis::sim {

/// One time-boxed workload phase of a scenario: a cohort of prosumers whose
/// offers arrive within `window` (a sub-interval of the scenario horizon).
/// Phases compose — an EV-fleet charge surge is a high-volume
/// kElectricVehicle-only phase stacked on a baseline phase.
struct ScenarioPhase {
  std::string name;
  /// When this cohort's offers want to run; must lie within the scenario
  /// horizon.
  timeutil::TimeInterval window;
  int num_prosumers = 50;
  double offers_per_prosumer = 3.0;
  /// Weights over core::ProsumerType; empty = the built-in mix.
  std::vector<double> prosumer_type_weights;
  /// When set, every offer of this phase uses this appliance's shape (how a
  /// fleet is modeled).
  std::optional<core::ApplianceType> appliance_override;
  /// Shifts the cohort's clocks against the market grid (DST transitions);
  /// must be slice-aligned.
  int64_t time_shift_minutes = 0;
};

/// A declarative extreme-event scenario: time-varying workload phases plus
/// the energy-model, market, and strategy context they run under. JSON codec
/// below (same style as RebalanceParams); builtins cover the ROADMAP's
/// stress cases. Runs end-to-end through the sharded + checkpointed online
/// pipeline and the offline day-ahead settlement via RunScenario.
struct ScenarioSpec {
  std::string name;
  std::string description;
  uint64_t seed = 2013;
  /// The planning window the whole scenario covers.
  timeutil::TimeInterval horizon;
  /// Shard fleet the online run is partitioned across.
  int num_shards = 2;
  int64_t tick_minutes = 60;
  /// Named strategies (ForecasterRegistry / BiddingRegistry); empty selects
  /// the defaults. Pinned into every checkpoint meta.json and the
  /// COORDINATOR.json manifest by the run.
  std::string forecaster;
  std::string bidding;
  /// Energy-model modifiers applied to the EnergyModelParams defaults: a
  /// RES drought is wind_scale << 1, a heat wave is demand_scale > 1.
  double wind_scale = 1.0;
  double solar_scale = 1.0;
  double demand_scale = 1.0;
  /// Market modifiers: a price-spike day raises scarcity_slope/noise.
  double price_noise = 0.05;
  double scarcity_slope = 0.05;
  double imbalance_fee_multiplier = 3.0;
  /// Synthetic-history depth the forecaster trains on.
  int forecast_history_days = 14;
  std::vector<ScenarioPhase> phases;
};

/// spec <-> JSON (schema_version 1). Decode is strict about required fields
/// (name, horizon, phases with name + window) and optional-with-default for
/// everything else, so specs written by older builds keep decoding.
JsonValue EncodeScenarioSpec(const ScenarioSpec& spec);
Result<ScenarioSpec> DecodeScenarioSpec(const JsonValue& value);

/// Convenience: DecodeScenarioSpec over parsed `text`.
Result<ScenarioSpec> ParseScenarioSpec(std::string_view text);

/// Structural validation: non-empty horizon and phase list, every phase
/// window inside the horizon, non-negative sizes, slice-aligned shifts,
/// num_shards in [1, 64], tick_minutes > 0, and — when named — forecaster /
/// bidding registered (typed kInvalidArgument naming the options).
Status ValidateScenarioSpec(const ScenarioSpec& spec);

/// Names of the built-in extreme-event suite, sorted: dst-transition,
/// ev-surge, heat-wave, price-spike, res-drought.
std::vector<std::string> BuiltinScenarioNames();

/// The built-in spec registered under `name`; unknown names are a typed
/// kInvalidArgument naming the options.
Result<ScenarioSpec> MakeBuiltinScenario(const std::string& name);

/// Everything one scenario run produces.
struct ScenarioOutcome {
  ScenarioSpec spec;
  /// The composed multi-phase workload (offer ids globally unique across
  /// phases, phase cohorts concatenated in spec order).
  Workload workload;
  /// The sharded (+ checkpointed when a directory was given) online run.
  MergedOnlineReport merged;
  /// The offline day-ahead plan + settlement under the spec's named
  /// strategies (plan_on_forecast: the named forecaster's error is real).
  PlanningReport plan;
};

/// Golden-comparable metrics summary: scenario identity, resolved strategy
/// names, merged online counters, a CRC over the merged outbox (the
/// protocol stream), forecast error, and the settlement broken down per the
/// conservation identity (total == spot + imbalance, flagged as
/// settlement_conserved). Deterministic at any thread count.
JsonValue ScenarioMetrics(const ScenarioOutcome& outcome);

/// Runs `spec` end-to-end: composes the phase workload, drives the sharded
/// online pipeline (checkpointed under `checkpoint_dir` when non-empty, with
/// strategy identity pinned in every manifest), and settles the horizon
/// offline under the spec's named strategies.
Result<ScenarioOutcome> RunScenario(const ScenarioSpec& spec,
                                    const std::string& checkpoint_dir = "");

}  // namespace flexvis::sim

#endif  // FLEXVIS_SIM_SCENARIO_H_
