#ifndef FLEXVIS_SIM_CHECKPOINT_H_
#define FLEXVIS_SIM_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/online.h"
#include "util/json.h"
#include "util/status.h"
#include "util/store.h"

namespace flexvis::sim {

/// Crash-consistent checkpointing for the online planning loop, built on the
/// generational util/store engine. A checkpoint directory is one DurableStore
/// whose generation holds
///
///   meta.json       window + OnlineParams (the run's immutable inputs)
///   offers.jsonl    the input flex-offers, one message-format offer per line
///   state.json      (generations > 0 only) the folded tick record carrying
///                   every tick compacted so far
///   SNAPSHOT.json   the store manifest (generation + size/CRC over the
///                   files above), written last — the commit point
///   journal.wal     write-ahead journal of OnlineTickRecords, one frame per
///                   tick, flushed after every append
///
/// RunOnlineCheckpointed snapshots the inputs before the first tick and
/// journals every tick's decisions; ResumeOnline rebuilds the loop state by
/// replaying snapshot + folded state + journal — applying recorded
/// decisions, never re-running them — and continues the run, producing an
/// OnlineReport and outbox byte-identical to an uninterrupted run. A crash
/// before the snapshot manifest lands surfaces as kDataLoss (nothing was
/// promised yet; rerun from the inputs); a torn journal tail is truncated
/// and the lost ticks re-executed.
///
/// Compaction: with OnlineParams::compact_ticks = C > 0 the run folds the
/// journal into a new store generation after every C-th tick — the folded
/// record becomes state.json, the manifest commit supersedes the old
/// generation, and the WAL restarts empty — so a resume replays at most C
/// tick records no matter how long the run is. OnlineParams::compact_bytes
/// = B > 0 adds a size trigger on the same fold: the run also compacts as
/// soon as the journal's record payload since the last fold reaches B bytes
/// (Σ EncodeTickRecord sizes — a deterministic function of the decisions, so
/// the fold boundaries stay identical across reruns and resumes), bounding
/// resume replay by byte budget even when tick records vary wildly in size.
/// Either trigger may be used alone or both together. Generation > 0 files
/// carry a ".g<G>" suffix; recovery lands on exactly one committed
/// generation and garbage-collects the debris of the other.

inline constexpr const char* kCheckpointMetaFile = "meta.json";
inline constexpr const char* kCheckpointOffersFile = "offers.jsonl";
inline constexpr const char* kCheckpointStateFile = "state.json";
inline constexpr const char* kCheckpointManifestFile = "SNAPSHOT.json";
inline constexpr const char* kCheckpointJournalFile = "journal.wal";

/// Environment knobs for the compaction cadence. Unset or empty = off;
/// anything else must parse as a strictly positive integer (ticks between
/// folds / journal bytes between folds).
inline constexpr const char* kCompactTicksEnvVar = "FLEXVIS_COMPACT_TICKS";
inline constexpr const char* kCompactBytesEnvVar = "FLEXVIS_COMPACT_BYTES";

/// Parses $FLEXVIS_COMPACT_TICKS into an OnlineParams::compact_ticks value.
/// Unset/empty yields 0 (off); a set value that is unparsable, zero, or
/// negative is an InvalidArgument error naming the variable — a cadence of
/// zero is meaningless and silently ignoring it hid misconfigurations. The
/// benches and CLI wire it through explicitly — library code never reads the
/// environment behind a caller's back.
Result<int> CompactTicksFromEnv();

/// Same contract for $FLEXVIS_COMPACT_BYTES -> OnlineParams::compact_bytes.
Result<int64_t> CompactBytesFromEnv();

/// The store layout above as StoreOptions (manifest SNAPSHOT.json, WAL
/// journal.wal). The sharded coordinator opens one such store per shard.
StoreOptions CheckpointStoreOptions();

/// Observability of a recovery: how much state came back from disk.
struct ResumeInfo {
  /// Ticks recovered from the folded state.json of a compacted generation
  /// (no decision logic re-run, no per-tick records read).
  int ticks_folded = 0;
  /// Ticks reconstructed from the journal (no decision logic re-run).
  int ticks_replayed = 0;
  /// Ticks executed live after the replay to finish the window.
  int ticks_continued = 0;
  /// Store generation the recovery landed on (0 = never compacted).
  int64_t generation = 0;
  /// True when the journal ended in a torn frame (crash mid-append); the
  /// debris was truncated before continuing.
  bool torn_tail = false;
  /// Bytes of journal debris discarded.
  uint64_t torn_bytes = 0;
};

/// Runs the online loop over `window` with checkpointing into `directory`
/// (created if needed; any previous run's checkpoint there is replaced).
/// Each tick is journaled and flushed before the next begins, so at every
/// instant the directory recovers to a prefix of this run.
Result<OnlineReport> RunOnlineCheckpointed(const OnlineParams& params,
                                           const std::vector<core::FlexOffer>& offers,
                                           const timeutil::TimeInterval& window,
                                           const std::string& directory);

/// Recovers a run from `directory`: verifies the committed store generation
/// (kDataLoss when the snapshot is partial or corrupt), applies the folded
/// state (if the run compacted) and the journal tail (truncating a torn
/// frame), then continues the remaining ticks — journaling and compacting on
/// the cadence recorded in meta.json — and returns the completed report.
/// Byte-identical to the report the uninterrupted run would have produced,
/// including the outbox stream.
Result<OnlineReport> ResumeOnline(const std::string& directory, ResumeInfo* info = nullptr);

/// Serialization of one tick record (exposed for tests and the recovery
/// bench): compact JSON via EncodeTickRecord, strict decode via
/// DecodeTickRecord (missing fields or type mismatches error; the overload /
/// compaction fields added later are optional-with-default so older journals
/// still replay).
std::string EncodeTickRecord(const OnlineTickRecord& record);
Result<OnlineTickRecord> DecodeTickRecord(std::string_view text);

/// One offer-state change as a JSON object ({"offer","state"} plus
/// {"start_min","kwh"} when a schedule is attached) — the element format of
/// a tick record's "changes" array. Exposed for the coordinator's
/// active-migration records, which carry the moved offers' decided states in
/// the same format.
JsonValue EncodeStateChange(const OnlineStateChange& change);
Result<OnlineStateChange> DecodeStateChange(const JsonValue& value);

/// Merges `record` (the next tick) into the running fold `*fold`: deltas
/// (changes, sent wires) concatenate in order, absolute fields (counters,
/// cursor, queues) come from `record`, and the result is marked folded.
/// Applying the fold of ticks 0..K onto a fresh Begin state reproduces the
/// live post-tick-K state byte for byte — the invariant compaction rests on.
void FoldTickRecordInto(OnlineTickRecord* fold, const OnlineTickRecord& record);

/// FoldTickRecordInto over a whole sequence. Precondition: non-empty.
OnlineTickRecord FoldTickRecords(const std::vector<OnlineTickRecord>& records);

// ---- Snapshot codec (shared with sim/coordinator) ---------------------------
//
// The sharded coordinator namespaces one of these checkpoint stores per
// shard (shard-0000/, shard-0001/, ...) under its run directory, so every
// shard owns exactly the layout a single-enterprise checkpoint uses.

/// The immutable snapshot content (meta.json, offers.jsonl) for
/// DurableStore::Create/Compact. Never includes state.json — compaction
/// appends that itself.
StoreFiles EncodeOnlineSnapshot(const OnlineParams& params,
                                const std::vector<core::FlexOffer>& offers,
                                const timeutil::TimeInterval& window);

/// Decodes the run's immutable inputs out of a recovered checkpoint store.
/// `params->faults` is always left null — fault wiring is runtime state,
/// never persisted.
Status DecodeOnlineSnapshot(const StoreRecovery& recovery, OnlineParams* params,
                            std::vector<core::FlexOffer>* offers,
                            timeutil::TimeInterval* window);

}  // namespace flexvis::sim

#endif  // FLEXVIS_SIM_CHECKPOINT_H_
