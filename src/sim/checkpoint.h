#ifndef FLEXVIS_SIM_CHECKPOINT_H_
#define FLEXVIS_SIM_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/online.h"
#include "util/status.h"

namespace flexvis::sim {

/// Crash-consistent checkpointing for the online planning loop. A checkpoint
/// directory holds
///
///   meta.json       window + OnlineParams (the run's immutable inputs)
///   offers.jsonl    the input flex-offers, one message-format offer per line
///   SNAPSHOT.json   size + CRC-32 manifest over the two files above,
///                   written last — the snapshot's commit point
///   journal.wal     write-ahead journal of OnlineTickRecords, one frame per
///                   tick, flushed after every append
///
/// RunOnlineCheckpointed snapshots the inputs before the first tick and
/// journals every tick's decisions; ResumeOnline rebuilds the loop state by
/// replaying snapshot + journal — applying recorded decisions, never
/// re-running them — and continues the run, producing an OnlineReport and
/// outbox byte-identical to an uninterrupted run. A crash before the
/// snapshot manifest lands surfaces as kDataLoss (nothing was promised yet;
/// rerun from the inputs); a torn journal tail is truncated and the lost
/// ticks re-executed.

inline constexpr const char* kCheckpointMetaFile = "meta.json";
inline constexpr const char* kCheckpointOffersFile = "offers.jsonl";
inline constexpr const char* kCheckpointManifestFile = "SNAPSHOT.json";
inline constexpr const char* kCheckpointJournalFile = "journal.wal";

/// Observability of a recovery: how much state came back from disk.
struct ResumeInfo {
  /// Ticks reconstructed from the journal (no decision logic re-run).
  int ticks_replayed = 0;
  /// Ticks executed live after the replay to finish the window.
  int ticks_continued = 0;
  /// True when the journal ended in a torn frame (crash mid-append); the
  /// debris was truncated before continuing.
  bool torn_tail = false;
  /// Bytes of journal debris discarded.
  uint64_t torn_bytes = 0;
};

/// Runs the online loop over `window` with checkpointing into `directory`
/// (created if needed; any previous run's checkpoint there is replaced).
/// Each tick is journaled and flushed before the next begins, so at every
/// instant the directory recovers to a prefix of this run.
Result<OnlineReport> RunOnlineCheckpointed(const OnlineParams& params,
                                           const std::vector<core::FlexOffer>& offers,
                                           const timeutil::TimeInterval& window,
                                           const std::string& directory);

/// Recovers a run from `directory`: verifies the snapshot manifest
/// (kDataLoss when the snapshot is partial or corrupt), replays the journal
/// (truncating a torn tail), then continues the remaining ticks — journaling
/// them — and returns the completed report. Byte-identical to the report the
/// uninterrupted run would have produced, including the outbox stream.
Result<OnlineReport> ResumeOnline(const std::string& directory, ResumeInfo* info = nullptr);

/// Serialization of one tick record (exposed for tests and the recovery
/// bench): compact JSON via EncodeTickRecord, strict decode via
/// DecodeTickRecord (missing fields or type mismatches error; the overload
/// counters added later are optional-with-default so pre-overload journals
/// still replay).
std::string EncodeTickRecord(const OnlineTickRecord& record);
Result<OnlineTickRecord> DecodeTickRecord(std::string_view text);

// ---- Snapshot codec (shared with sim/coordinator) ---------------------------
//
// The sharded coordinator namespaces one of these snapshot directories per
// shard (shard-0000/, shard-0001/, ...) under its run directory, so every
// shard owns exactly the layout a single-enterprise checkpoint uses.

/// Writes the immutable snapshot (meta.json, offers.jsonl, SNAPSHOT.json —
/// manifest last, its rename being the commit point) under `directory`,
/// which must already exist.
Status WriteOnlineSnapshot(const std::string& directory, const OnlineParams& params,
                           const std::vector<core::FlexOffer>& offers,
                           const timeutil::TimeInterval& window);

/// Verifies the snapshot manifest under `directory` (kDataLoss when partial
/// or corrupt) and decodes the run's immutable inputs. `params->faults` is
/// always left null — fault wiring is runtime state, never persisted.
Status ReadOnlineSnapshot(const std::string& directory, OnlineParams* params,
                          std::vector<core::FlexOffer>* offers,
                          timeutil::TimeInterval* window);

}  // namespace flexvis::sim

#endif  // FLEXVIS_SIM_CHECKPOINT_H_
