#include "sim/energy_models.h"

#include <algorithm>
#include <cmath>

namespace flexvis::sim {

using core::TimeSeries;
using timeutil::kMinutesPerSlice;
using timeutil::TimeInterval;
using timeutil::TimePoint;

namespace {

size_t SliceCount(const TimeInterval& window) {
  return static_cast<size_t>(std::max<int64_t>(0, window.duration_minutes() / kMinutesPerSlice));
}

double HourOfDay(TimePoint t) {
  timeutil::CalendarTime c = t.ToCalendar();
  return c.hour + c.minute / 60.0;
}

}  // namespace

TimeSeries MakeResProduction(const TimeInterval& window, const EnergyModelParams& params) {
  Rng rng(params.seed);
  size_t n = SliceCount(window);
  TimeSeries series(window.start, n);
  // Wind: AR(1) around the mean with slow mean reversion.
  double wind = params.wind_mean_kwh;
  for (size_t i = 0; i < n; ++i) {
    TimePoint t = window.start + static_cast<int64_t>(i) * kMinutesPerSlice;
    wind += 0.06 * (params.wind_mean_kwh - wind) +
            rng.Normal(0.0, params.wind_mean_kwh * params.noise);
    wind = std::max(0.0, wind);
    // Solar: cosine bell between 06:00 and 20:00, peaking at 13:00.
    double h = HourOfDay(t);
    double solar = 0.0;
    if (h > 6.0 && h < 20.0) {
      double phase = (h - 13.0) / 7.0;  // -1..1 across the daylight window
      solar = params.solar_peak_kwh * std::max(0.0, std::cos(phase * M_PI / 2.0));
      solar *= 1.0 + rng.Normal(0.0, params.noise);
      solar = std::max(0.0, solar);
    }
    series.Set(static_cast<int64_t>(i), wind + solar);
  }
  return series;
}

TimeSeries MakeInflexibleDemand(const TimeInterval& window, const EnergyModelParams& params) {
  Rng rng(params.seed ^ 0x9E3779B97F4A7C15ULL);
  size_t n = SliceCount(window);
  TimeSeries series(window.start, n);
  for (size_t i = 0; i < n; ++i) {
    TimePoint t = window.start + static_cast<int64_t>(i) * kMinutesPerSlice;
    double h = HourOfDay(t);
    // Two-peak diurnal shape: morning (08:00) and evening (19:00) bumps over
    // a night valley.
    double shape = 0.65;
    shape += 0.35 * std::exp(-0.5 * std::pow((h - 8.0) / 2.0, 2));
    shape += 0.55 * std::exp(-0.5 * std::pow((h - 19.0) / 2.5, 2));
    double v = params.demand_base_kwh * shape * (1.0 + rng.Normal(0.0, params.noise));
    series.Set(static_cast<int64_t>(i), std::max(0.0, v));
  }
  return series;
}

TimeSeries MakeFlexibilityTarget(const TimeSeries& res, const TimeSeries& inflexible_demand) {
  TimeSeries target = res;
  target.Subtract(inflexible_demand);
  return target;
}

}  // namespace flexvis::sim
