#include "sim/scenario.h"

#include <algorithm>
#include <utility>

#include "geo/atlas.h"
#include "grid/topology.h"
#include "sim/forecaster.h"
#include "sim/market.h"
#include "util/crc32.h"
#include "util/strings.h"

namespace flexvis::sim {

using timeutil::kMinutesPerSlice;
using timeutil::TimeInterval;
using timeutil::TimePoint;

namespace {

// Optional-with-default readers, same contract as the checkpoint codec:
// specs written by older builds lack newer keys and decode to the defaults.
int64_t GetIntOr(const JsonValue& json, std::string_view key, int64_t fallback) {
  if (!json.Has(key)) return fallback;
  Result<int64_t> value = json.GetInt(key);
  return value.ok() ? *value : fallback;
}

double GetDoubleOr(const JsonValue& json, std::string_view key, double fallback) {
  if (!json.Has(key)) return fallback;
  Result<double> value = json.GetDouble(key);
  return value.ok() ? *value : fallback;
}

std::string GetStringOr(const JsonValue& json, std::string_view key, std::string fallback) {
  if (!json.Has(key)) return fallback;
  Result<std::string> value = json.GetString(key);
  return value.ok() ? *std::move(value) : std::move(fallback);
}

JsonValue EncodeInterval(const TimeInterval& interval) {
  JsonValue out = JsonValue::Object();
  out.Set("start_min", JsonValue::Int(interval.start.minutes()));
  out.Set("end_min", JsonValue::Int(interval.end.minutes()));
  return out;
}

Result<TimeInterval> DecodeInterval(const JsonValue& value, const char* what) {
  if (!value.is_object()) {
    return InvalidArgumentError(StrFormat("scenario %s is not an object", what));
  }
  Result<int64_t> start = value.GetInt("start_min");
  Result<int64_t> end = value.GetInt("end_min");
  if (!start.ok() || !end.ok()) {
    return InvalidArgumentError(StrFormat("scenario %s lacks start_min/end_min", what));
  }
  return TimeInterval(TimePoint::FromMinutes(*start), TimePoint::FromMinutes(*end));
}

}  // namespace

JsonValue EncodeScenarioSpec(const ScenarioSpec& spec) {
  JsonValue out = JsonValue::Object();
  out.Set("schema_version", JsonValue::Int(1));
  out.Set("name", JsonValue::Str(spec.name));
  out.Set("description", JsonValue::Str(spec.description));
  out.Set("seed", JsonValue::Int(static_cast<int64_t>(spec.seed)));
  out.Set("horizon", EncodeInterval(spec.horizon));
  out.Set("num_shards", JsonValue::Int(spec.num_shards));
  out.Set("tick_minutes", JsonValue::Int(spec.tick_minutes));
  out.Set("forecaster", JsonValue::Str(spec.forecaster));
  out.Set("bidding", JsonValue::Str(spec.bidding));
  out.Set("wind_scale", JsonValue::Double(spec.wind_scale));
  out.Set("solar_scale", JsonValue::Double(spec.solar_scale));
  out.Set("demand_scale", JsonValue::Double(spec.demand_scale));
  out.Set("price_noise", JsonValue::Double(spec.price_noise));
  out.Set("scarcity_slope", JsonValue::Double(spec.scarcity_slope));
  out.Set("imbalance_fee_multiplier", JsonValue::Double(spec.imbalance_fee_multiplier));
  out.Set("forecast_history_days", JsonValue::Int(spec.forecast_history_days));
  JsonValue phases = JsonValue::Array();
  for (const ScenarioPhase& phase : spec.phases) {
    JsonValue p = JsonValue::Object();
    p.Set("name", JsonValue::Str(phase.name));
    p.Set("window", EncodeInterval(phase.window));
    p.Set("num_prosumers", JsonValue::Int(phase.num_prosumers));
    p.Set("offers_per_prosumer", JsonValue::Double(phase.offers_per_prosumer));
    if (!phase.prosumer_type_weights.empty()) {
      JsonValue weights = JsonValue::Array();
      for (double w : phase.prosumer_type_weights) weights.Append(JsonValue::Double(w));
      p.Set("prosumer_type_weights", std::move(weights));
    }
    if (phase.appliance_override.has_value()) {
      p.Set("appliance",
            JsonValue::Str(std::string(core::ApplianceTypeName(*phase.appliance_override))));
    }
    if (phase.time_shift_minutes != 0) {
      p.Set("time_shift_minutes", JsonValue::Int(phase.time_shift_minutes));
    }
    phases.Append(std::move(p));
  }
  out.Set("phases", std::move(phases));
  return out;
}

Result<ScenarioSpec> DecodeScenarioSpec(const JsonValue& value) {
  if (!value.is_object()) return InvalidArgumentError("scenario spec is not a JSON object");
  ScenarioSpec spec;
  Result<std::string> name = value.GetString("name");
  if (!name.ok()) return InvalidArgumentError("scenario spec lacks a 'name' string");
  spec.name = *std::move(name);
  if (!value.Has("horizon")) {
    return InvalidArgumentError(
        StrFormat("scenario '%s' lacks a 'horizon'", spec.name.c_str()));
  }
  Result<TimeInterval> horizon = DecodeInterval(value.Get("horizon"), "horizon");
  if (!horizon.ok()) return horizon.status();
  spec.horizon = *horizon;
  spec.description = GetStringOr(value, "description", "");
  spec.seed = static_cast<uint64_t>(GetIntOr(value, "seed", 2013));
  spec.num_shards = static_cast<int>(GetIntOr(value, "num_shards", 2));
  spec.tick_minutes = GetIntOr(value, "tick_minutes", 60);
  spec.forecaster = GetStringOr(value, "forecaster", "");
  spec.bidding = GetStringOr(value, "bidding", "");
  spec.wind_scale = GetDoubleOr(value, "wind_scale", 1.0);
  spec.solar_scale = GetDoubleOr(value, "solar_scale", 1.0);
  spec.demand_scale = GetDoubleOr(value, "demand_scale", 1.0);
  spec.price_noise = GetDoubleOr(value, "price_noise", 0.05);
  spec.scarcity_slope = GetDoubleOr(value, "scarcity_slope", 0.05);
  spec.imbalance_fee_multiplier = GetDoubleOr(value, "imbalance_fee_multiplier", 3.0);
  spec.forecast_history_days =
      static_cast<int>(GetIntOr(value, "forecast_history_days", 14));

  const JsonValue& phases = value.Get("phases");
  if (!phases.is_array()) {
    return InvalidArgumentError(
        StrFormat("scenario '%s' lacks a 'phases' array", spec.name.c_str()));
  }
  for (size_t i = 0; i < phases.size(); ++i) {
    const JsonValue& p = phases[i];
    if (!p.is_object()) {
      return InvalidArgumentError(
          StrFormat("scenario '%s' phase %zu is not an object", spec.name.c_str(), i));
    }
    ScenarioPhase phase;
    Result<std::string> phase_name = p.GetString("name");
    if (!phase_name.ok()) {
      return InvalidArgumentError(
          StrFormat("scenario '%s' phase %zu lacks a 'name'", spec.name.c_str(), i));
    }
    phase.name = *std::move(phase_name);
    if (!p.Has("window")) {
      return InvalidArgumentError(StrFormat("scenario '%s' phase '%s' lacks a 'window'",
                                            spec.name.c_str(), phase.name.c_str()));
    }
    Result<TimeInterval> window = DecodeInterval(p.Get("window"), "phase window");
    if (!window.ok()) return window.status();
    phase.window = *window;
    phase.num_prosumers = static_cast<int>(GetIntOr(p, "num_prosumers", 50));
    phase.offers_per_prosumer = GetDoubleOr(p, "offers_per_prosumer", 3.0);
    if (p.Has("prosumer_type_weights")) {
      const JsonValue& weights = p.Get("prosumer_type_weights");
      if (!weights.is_array()) {
        return InvalidArgumentError(
            StrFormat("scenario '%s' phase '%s': prosumer_type_weights is not an array",
                      spec.name.c_str(), phase.name.c_str()));
      }
      for (size_t w = 0; w < weights.size(); ++w) {
        if (!weights[w].is_number()) {
          return InvalidArgumentError(
              StrFormat("scenario '%s' phase '%s': non-numeric prosumer weight",
                        spec.name.c_str(), phase.name.c_str()));
        }
        phase.prosumer_type_weights.push_back(weights[w].AsDouble());
      }
    }
    if (p.Has("appliance")) {
      Result<std::string> appliance = p.GetString("appliance");
      if (!appliance.ok()) {
        return InvalidArgumentError(
            StrFormat("scenario '%s' phase '%s': 'appliance' is not a string",
                      spec.name.c_str(), phase.name.c_str()));
      }
      Result<core::ApplianceType> parsed = core::ParseApplianceType(*appliance);
      if (!parsed.ok()) return parsed.status();
      phase.appliance_override = *parsed;
    }
    phase.time_shift_minutes = GetIntOr(p, "time_shift_minutes", 0);
    spec.phases.push_back(std::move(phase));
  }
  return spec;
}

Result<ScenarioSpec> ParseScenarioSpec(std::string_view text) {
  Result<JsonValue> parsed = JsonValue::Parse(text);
  if (!parsed.ok()) return parsed.status();
  return DecodeScenarioSpec(*parsed);
}

Status ValidateScenarioSpec(const ScenarioSpec& spec) {
  if (spec.name.empty()) return InvalidArgumentError("scenario has an empty name");
  if (spec.horizon.empty()) {
    return InvalidArgumentError(
        StrFormat("scenario '%s' has an empty horizon", spec.name.c_str()));
  }
  if (spec.phases.empty()) {
    return InvalidArgumentError(
        StrFormat("scenario '%s' has no phases", spec.name.c_str()));
  }
  if (spec.num_shards < 1 || spec.num_shards > 64) {
    return InvalidArgumentError(StrFormat("scenario '%s': num_shards %d outside [1, 64]",
                                          spec.name.c_str(), spec.num_shards));
  }
  if (spec.tick_minutes <= 0) {
    return InvalidArgumentError(StrFormat("scenario '%s': tick_minutes must be positive",
                                          spec.name.c_str()));
  }
  for (double scale : {spec.wind_scale, spec.solar_scale, spec.demand_scale}) {
    if (scale < 0.0) {
      return InvalidArgumentError(
          StrFormat("scenario '%s': energy scales must be non-negative", spec.name.c_str()));
    }
  }
  if (!spec.forecaster.empty() && !ForecasterRegistry::Global().Has(spec.forecaster)) {
    // Route through Make for the options-naming message.
    return ForecasterRegistry::Global().Make(spec.forecaster).status();
  }
  if (!spec.bidding.empty() && !BiddingRegistry::Global().Has(spec.bidding)) {
    return BiddingRegistry::Global().Make(spec.bidding).status();
  }
  for (const ScenarioPhase& phase : spec.phases) {
    if (phase.name.empty()) {
      return InvalidArgumentError(
          StrFormat("scenario '%s' has a phase with an empty name", spec.name.c_str()));
    }
    if (phase.window.empty()) {
      return InvalidArgumentError(StrFormat("scenario '%s' phase '%s' has an empty window",
                                            spec.name.c_str(), phase.name.c_str()));
    }
    if (phase.window.start < spec.horizon.start || spec.horizon.end < phase.window.end) {
      return InvalidArgumentError(
          StrFormat("scenario '%s' phase '%s' window lies outside the horizon",
                    spec.name.c_str(), phase.name.c_str()));
    }
    if (phase.num_prosumers < 0 || phase.offers_per_prosumer < 0.0) {
      return InvalidArgumentError(
          StrFormat("scenario '%s' phase '%s' has negative population parameters",
                    spec.name.c_str(), phase.name.c_str()));
    }
    if (phase.time_shift_minutes % kMinutesPerSlice != 0) {
      return InvalidArgumentError(StrFormat(
          "scenario '%s' phase '%s': time_shift_minutes %lld is not slice-aligned",
          spec.name.c_str(), phase.name.c_str(),
          static_cast<long long>(phase.time_shift_minutes)));
    }
  }
  return OkStatus();
}

namespace {

TimePoint Day(int d, int hour) {
  return TimePoint::FromCalendarOrDie(2013, 2, d, hour, 0);
}

ScenarioSpec EvSurge() {
  ScenarioSpec spec;
  spec.name = "ev-surge";
  spec.description = "Evening EV-fleet charge surge on top of a baseline day";
  spec.horizon = TimeInterval(Day(1, 0), Day(2, 0));
  spec.forecaster = "weighted-ensemble";
  spec.bidding = "spot-residual";
  ScenarioPhase baseline;
  baseline.name = "baseline";
  baseline.window = spec.horizon;
  baseline.num_prosumers = 50;
  baseline.offers_per_prosumer = 2.5;
  spec.phases.push_back(baseline);
  ScenarioPhase rush;
  rush.name = "ev-rush";
  rush.window = TimeInterval(Day(1, 17), Day(1, 22));
  rush.num_prosumers = 90;
  rush.offers_per_prosumer = 4.0;
  rush.prosumer_type_weights = {1.0};  // all households
  rush.appliance_override = core::ApplianceType::kElectricVehicle;
  spec.phases.push_back(rush);
  return spec;
}

ScenarioSpec HeatWave() {
  ScenarioSpec spec;
  spec.name = "heat-wave";
  spec.description = "Heat-wave demand spike: scaled demand, afternoon cooling fleet";
  spec.horizon = TimeInterval(Day(1, 0), Day(2, 0));
  spec.forecaster = "holt-winters";
  spec.bidding = "price-threshold";
  spec.demand_scale = 1.55;
  spec.solar_scale = 1.25;
  ScenarioPhase baseline;
  baseline.name = "baseline";
  baseline.window = spec.horizon;
  baseline.num_prosumers = 45;
  baseline.offers_per_prosumer = 2.5;
  spec.phases.push_back(baseline);
  ScenarioPhase cooling;
  cooling.name = "afternoon-cooling";
  cooling.window = TimeInterval(Day(1, 11), Day(1, 19));
  cooling.num_prosumers = 70;
  cooling.offers_per_prosumer = 3.5;
  cooling.appliance_override = core::ApplianceType::kHeatPump;
  spec.phases.push_back(cooling);
  return spec;
}

ScenarioSpec ResDrought() {
  ScenarioSpec spec;
  spec.name = "res-drought";
  spec.description = "Two-day RES drought: wind collapses, industry keeps running";
  spec.horizon = TimeInterval(Day(1, 0), Day(3, 0));
  spec.forecaster = "linear-ar";
  spec.bidding = "start-fixing";
  spec.wind_scale = 0.12;
  spec.solar_scale = 0.45;
  ScenarioPhase baseline;
  baseline.name = "baseline";
  baseline.window = spec.horizon;
  baseline.num_prosumers = 55;
  baseline.offers_per_prosumer = 3.0;
  spec.phases.push_back(baseline);
  ScenarioPhase industry;
  industry.name = "industrial-load";
  industry.window = TimeInterval(Day(1, 6), Day(2, 18));
  industry.num_prosumers = 25;
  industry.offers_per_prosumer = 2.0;
  industry.prosumer_type_weights = {0.0, 0.0, 0.6, 0.4, 0.0, 0.0};
  industry.appliance_override = core::ApplianceType::kIndustrialProcess;
  spec.phases.push_back(industry);
  return spec;
}

ScenarioSpec PriceSpike() {
  ScenarioSpec spec;
  spec.name = "price-spike";
  spec.description = "Price-spike day: steep scarcity pricing, battery arbitrage fleet";
  spec.horizon = TimeInterval(Day(1, 0), Day(2, 0));
  spec.forecaster = "holt-winters";
  spec.bidding = "price-threshold";
  spec.scarcity_slope = 0.45;
  spec.price_noise = 0.20;
  spec.imbalance_fee_multiplier = 5.0;
  ScenarioPhase baseline;
  baseline.name = "baseline";
  baseline.window = spec.horizon;
  baseline.num_prosumers = 50;
  baseline.offers_per_prosumer = 2.5;
  spec.phases.push_back(baseline);
  ScenarioPhase storage;
  storage.name = "battery-arbitrage";
  storage.window = spec.horizon;
  storage.num_prosumers = 40;
  storage.offers_per_prosumer = 3.0;
  storage.prosumer_type_weights = {0.0, 1.0};  // commercial fleet
  storage.appliance_override = core::ApplianceType::kBatteryStorage;
  spec.phases.push_back(storage);
  return spec;
}

ScenarioSpec DstTransition() {
  ScenarioSpec spec;
  spec.name = "dst-transition";
  spec.description = "DST transition: the afternoon cohort's clocks jump one hour";
  spec.horizon = TimeInterval(Day(1, 0), Day(2, 0));
  spec.forecaster = "seasonal-naive";
  spec.bidding = "spot-residual";
  ScenarioPhase before;
  before.name = "pre-shift";
  before.window = TimeInterval(Day(1, 0), Day(1, 12));
  before.num_prosumers = 55;
  before.offers_per_prosumer = 3.0;
  spec.phases.push_back(before);
  ScenarioPhase after;
  after.name = "post-shift";
  after.window = TimeInterval(Day(1, 12), Day(1, 22));
  after.num_prosumers = 55;
  after.offers_per_prosumer = 3.0;
  after.time_shift_minutes = 60;  // spring forward: everything runs an hour late
  spec.phases.push_back(after);
  return spec;
}

}  // namespace

std::vector<std::string> BuiltinScenarioNames() {
  return {"dst-transition", "ev-surge", "heat-wave", "price-spike", "res-drought"};
}

Result<ScenarioSpec> MakeBuiltinScenario(const std::string& name) {
  if (name == "ev-surge") return EvSurge();
  if (name == "heat-wave") return HeatWave();
  if (name == "res-drought") return ResDrought();
  if (name == "price-spike") return PriceSpike();
  if (name == "dst-transition") return DstTransition();
  std::string options;
  for (const std::string& n : BuiltinScenarioNames()) {
    if (!options.empty()) options += ", ";
    options += n;
  }
  return InvalidArgumentError(StrFormat("unknown builtin scenario '%s'; available: %s",
                                        name.c_str(), options.c_str()));
}

Result<ScenarioOutcome> RunScenario(const ScenarioSpec& spec,
                                    const std::string& checkpoint_dir) {
  FLEXVIS_RETURN_IF_ERROR(ValidateScenarioSpec(spec));

  ScenarioOutcome outcome;
  outcome.spec = spec;

  // 1. Compose the multi-phase workload. Each phase is its own cohort with a
  //    phase-distinct seed and running id offsets, so the composition is
  //    deterministic and ids stay globally unique across phases.
  geo::Atlas atlas = geo::Atlas::MakeDenmark();
  grid::GridTopology topology = grid::GridTopology::MakeRadial(3, 2, 2, 4);
  WorkloadGenerator generator(&atlas, &topology);
  int next_prosumer_id = 1;
  core::FlexOfferId next_offer_id = 1;
  for (size_t i = 0; i < spec.phases.size(); ++i) {
    const ScenarioPhase& phase = spec.phases[i];
    WorkloadParams params;
    params.seed = spec.seed ^ (0x9E3779B97F4A7C15ULL * (i + 1));
    params.num_prosumers = phase.num_prosumers;
    params.offers_per_prosumer = phase.offers_per_prosumer;
    params.horizon = phase.window;
    params.prosumer_type_weights = phase.prosumer_type_weights;
    params.appliance_override = phase.appliance_override;
    params.time_shift_minutes = phase.time_shift_minutes;
    // Scenario offers enter the pipeline undecided; the online loop and the
    // planner decide their lifecycle.
    params.fraction_accepted = 0.0;
    params.fraction_assigned = 0.0;
    params.fraction_rejected = 0.0;
    params.first_prosumer_id = next_prosumer_id;
    params.first_offer_id = next_offer_id;
    Result<Workload> cohort = generator.Generate(params);
    if (!cohort.ok()) return cohort.status();
    next_prosumer_id += phase.num_prosumers;
    next_offer_id += static_cast<core::FlexOfferId>(cohort->offers.size());
    for (dw::ProsumerInfo& p : cohort->prosumers) {
      outcome.workload.prosumers.push_back(std::move(p));
    }
    for (core::FlexOffer& o : cohort->offers) {
      outcome.workload.offers.push_back(std::move(o));
    }
  }

  // 2. The sharded online run, with the strategy identity pinned into every
  //    shard's meta.json and COORDINATOR.json when checkpointed.
  CoordinatorParams coord;
  coord.num_shards = spec.num_shards;
  coord.online.tick_minutes = spec.tick_minutes;
  coord.online.forecaster = spec.forecaster;
  coord.online.bidding = spec.bidding;
  coord.online.energy.wind_mean_kwh *= spec.wind_scale;
  coord.online.energy.solar_peak_kwh *= spec.solar_scale;
  coord.online.energy.demand_base_kwh *= spec.demand_scale;
  coord.fault_seed = spec.seed;
  Result<MergedOnlineReport> merged =
      checkpoint_dir.empty()
          ? Coordinator::RunSharded(coord, outcome.workload.offers, spec.horizon)
          : Coordinator::RunShardedCheckpointed(coord, outcome.workload.offers,
                                                spec.horizon, checkpoint_dir);
  if (!merged.ok()) return merged.status();
  outcome.merged = *std::move(merged);

  // 3. The offline day-ahead plan + settlement under the named strategies.
  //    plan_on_forecast makes the forecaster's error real: the plan targets
  //    its prediction, settlement uses the actual demand.
  EnterpriseParams enterprise_params;
  enterprise_params.seed = spec.seed;
  enterprise_params.plan_on_forecast = true;
  enterprise_params.forecast_history_days = spec.forecast_history_days;
  enterprise_params.forecaster = spec.forecaster;
  enterprise_params.market.bidding = spec.bidding;
  enterprise_params.market.noise = spec.price_noise;
  enterprise_params.market.scarcity_slope = spec.scarcity_slope;
  enterprise_params.market.imbalance_fee_multiplier = spec.imbalance_fee_multiplier;
  enterprise_params.energy.wind_mean_kwh *= spec.wind_scale;
  enterprise_params.energy.solar_peak_kwh *= spec.solar_scale;
  enterprise_params.energy.demand_base_kwh *= spec.demand_scale;
  Enterprise enterprise(enterprise_params);
  Result<PlanningReport> plan = enterprise.PlanHorizon(outcome.workload.offers, spec.horizon);
  if (!plan.ok()) return plan.status();
  outcome.plan = *std::move(plan);
  return outcome;
}

JsonValue ScenarioMetrics(const ScenarioOutcome& outcome) {
  JsonValue out = JsonValue::Object();
  out.Set("scenario", JsonValue::Str(outcome.spec.name));
  out.Set("forecaster", JsonValue::Str(outcome.plan.forecaster));
  out.Set("bidding", JsonValue::Str(outcome.plan.bidding));
  out.Set("num_shards", JsonValue::Int(outcome.merged.num_shards));
  out.Set("phases", JsonValue::Int(static_cast<int64_t>(outcome.spec.phases.size())));
  out.Set("prosumers", JsonValue::Int(static_cast<int64_t>(outcome.workload.prosumers.size())));
  out.Set("offers", JsonValue::Int(static_cast<int64_t>(outcome.workload.offers.size())));

  JsonValue online = JsonValue::Object();
  const OnlineReport& global = outcome.merged.global;
  online.Set("ticks", JsonValue::Int(global.ticks));
  online.Set("offers_received", JsonValue::Int(global.offers_received));
  online.Set("accepted", JsonValue::Int(global.accepted));
  online.Set("rejected", JsonValue::Int(global.rejected));
  online.Set("assigned", JsonValue::Int(global.assigned));
  online.Set("missed_acceptance", JsonValue::Int(global.missed_acceptance));
  online.Set("missed_assignment", JsonValue::Int(global.missed_assignment));
  online.Set("imbalance_kwh", JsonValue::Double(global.imbalance_kwh));
  uint32_t outbox_crc = 0;
  for (const std::string& wire : global.outbox) outbox_crc = Crc32(wire, outbox_crc);
  online.Set("outbox_crc", JsonValue::Int(static_cast<int64_t>(outbox_crc)));
  online.Set("total_offered_kwh", JsonValue::Double(outcome.merged.total_offered_kwh));
  out.Set("online", std::move(online));

  JsonValue plan = JsonValue::Object();
  plan.Set("offers_in", JsonValue::Int(outcome.plan.offers_in));
  plan.Set("aggregates_built", JsonValue::Int(outcome.plan.aggregates_built));
  plan.Set("aggregates_assigned", JsonValue::Int(outcome.plan.aggregates_assigned));
  plan.Set("aggregates_rejected", JsonValue::Int(outcome.plan.aggregates_rejected));
  plan.Set("imbalance_before_kwh", JsonValue::Double(outcome.plan.imbalance_before_kwh));
  plan.Set("imbalance_after_kwh", JsonValue::Double(outcome.plan.imbalance_after_kwh));
  JsonValue forecast = JsonValue::Object();
  forecast.Set("mae", JsonValue::Double(outcome.plan.forecast_error.mae));
  forecast.Set("mape", JsonValue::Double(outcome.plan.forecast_error.mape));
  forecast.Set("rmse", JsonValue::Double(outcome.plan.forecast_error.rmse));
  forecast.Set("slices", JsonValue::Int(outcome.plan.forecast_error.slices));
  plan.Set("forecast_error", std::move(forecast));
  const Settlement& settlement = outcome.plan.settlement;
  JsonValue settle = JsonValue::Object();
  settle.Set("spot_cost_eur", JsonValue::Double(settlement.spot_cost_eur));
  settle.Set("imbalance_kwh", JsonValue::Double(settlement.imbalance_kwh));
  settle.Set("imbalance_cost_eur", JsonValue::Double(settlement.imbalance_cost_eur));
  settle.Set("total_cost_eur", JsonValue::Double(settlement.total_cost_eur));
  bool conserved = std::abs(settlement.total_cost_eur -
                            (settlement.spot_cost_eur + settlement.imbalance_cost_eur)) <= 1e-6;
  settle.Set("settlement_conserved", JsonValue::Bool(conserved));
  plan.Set("settlement", std::move(settle));
  out.Set("plan", std::move(plan));
  return out;
}

}  // namespace flexvis::sim
