#include "sim/market.h"

#include <algorithm>
#include <cmath>

#include "util/fault.h"
#include "util/retry.h"

namespace flexvis::sim {

using core::TimeSeries;
using timeutil::kMinutesPerSlice;

TimeSeries Market::MakePrices(const timeutil::TimeInterval& window,
                              const TimeSeries& residual_demand) const {
  Rng rng(params_.seed);
  size_t n = static_cast<size_t>(std::max<int64_t>(0, window.duration_minutes() /
                                                          kMinutesPerSlice));
  TimeSeries prices(window.start, n);
  for (size_t i = 0; i < n; ++i) {
    timeutil::TimePoint t = window.start + static_cast<int64_t>(i) * kMinutesPerSlice;
    double scarcity = residual_demand.At(t);
    double p = params_.base_price_eur_mwh + params_.scarcity_slope * scarcity;
    p *= 1.0 + rng.Normal(0.0, params_.noise);
    prices.Set(static_cast<int64_t>(i), std::max(0.0, p));
  }
  return prices;
}

Settlement Market::Settle(const TimeSeries& plan_residual, const TimeSeries& deviation,
                          const TimeSeries& prices) const {
  Settlement s;
  s.traded_kwh = plan_residual;
  s.prices = prices;
  for (size_t i = 0; i < plan_residual.size(); ++i) {
    timeutil::TimePoint t = plan_residual.start() + static_cast<int64_t>(i) * kMinutesPerSlice;
    double price_eur_per_kwh = prices.At(t) / 1000.0;
    s.spot_cost_eur += plan_residual.AtIndex(static_cast<int64_t>(i)) * price_eur_per_kwh;
  }
  for (size_t i = 0; i < deviation.size(); ++i) {
    timeutil::TimePoint t = deviation.start() + static_cast<int64_t>(i) * kMinutesPerSlice;
    double dev = std::abs(deviation.AtIndex(static_cast<int64_t>(i)));
    double price_eur_per_kwh = prices.At(t) / 1000.0;
    s.imbalance_kwh += dev;
    s.imbalance_cost_eur += dev * price_eur_per_kwh * params_.imbalance_fee_multiplier;
  }
  s.total_cost_eur = s.spot_cost_eur + s.imbalance_cost_eur;
  return s;
}

Result<Settlement> Market::TrySettle(const TimeSeries& plan_residual,
                                     const TimeSeries& deviation,
                                     const TimeSeries& prices) const {
  FaultRegistry& faults =
      params_.faults != nullptr ? *params_.faults : FaultRegistry::Global();
  FLEXVIS_RETURN_IF_ERROR(RetryFaultPointIn(faults, "sim.market.bid", DefaultRetryPolicy(),
                                            []() -> Status { return OkStatus(); }));
  return Settle(plan_residual, deviation, prices);
}

Settlement Market::SettleAllAsImbalance(const TimeSeries& plan_residual,
                                        const TimeSeries& deviation,
                                        const TimeSeries& prices) const {
  Settlement s;
  s.traded_kwh = plan_residual;
  s.traded_kwh.Scale(0.0);  // nothing was traded
  s.prices = prices;
  auto charge = [&](const TimeSeries& series) {
    for (size_t i = 0; i < series.size(); ++i) {
      timeutil::TimePoint t = series.start() + static_cast<int64_t>(i) * kMinutesPerSlice;
      double energy = std::abs(series.AtIndex(static_cast<int64_t>(i)));
      double price_eur_per_kwh = prices.At(t) / 1000.0;
      s.imbalance_kwh += energy;
      s.imbalance_cost_eur += energy * price_eur_per_kwh * params_.imbalance_fee_multiplier;
    }
  };
  charge(plan_residual);
  charge(deviation);
  s.total_cost_eur = s.spot_cost_eur + s.imbalance_cost_eur;
  return s;
}

}  // namespace flexvis::sim
