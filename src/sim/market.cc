#include "sim/market.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/fault.h"
#include "util/retry.h"
#include "util/strings.h"

namespace flexvis::sim {

using core::TimeSeries;
using timeutil::kMinutesPerSlice;

TimeSeries Market::MakePrices(const timeutil::TimeInterval& window,
                              const TimeSeries& residual_demand) const {
  Rng rng(params_.seed);
  size_t n = static_cast<size_t>(std::max<int64_t>(0, window.duration_minutes() /
                                                          kMinutesPerSlice));
  TimeSeries prices(window.start, n);
  for (size_t i = 0; i < n; ++i) {
    timeutil::TimePoint t = window.start + static_cast<int64_t>(i) * kMinutesPerSlice;
    double scarcity = residual_demand.At(t);
    double p = params_.base_price_eur_mwh + params_.scarcity_slope * scarcity;
    p *= 1.0 + rng.Normal(0.0, params_.noise);
    prices.Set(static_cast<int64_t>(i), std::max(0.0, p));
  }
  return prices;
}

namespace {

/// Σ |deviation| charged at the per-slice penalty price, added onto `s`.
void ChargeDeviationImbalance(Settlement& s, const MarketParams& params,
                              const TimeSeries& deviation, const TimeSeries& prices) {
  for (size_t i = 0; i < deviation.size(); ++i) {
    timeutil::TimePoint t = deviation.start() + static_cast<int64_t>(i) * kMinutesPerSlice;
    double dev = std::abs(deviation.AtIndex(static_cast<int64_t>(i)));
    double price_eur_per_kwh = prices.At(t) / 1000.0;
    s.imbalance_kwh += dev;
    s.imbalance_cost_eur += dev * price_eur_per_kwh * params.imbalance_fee_multiplier;
  }
}

}  // namespace

Settlement SpotResidualStrategy::Settle(const MarketParams& params,
                                        const TimeSeries& plan_residual,
                                        const TimeSeries& deviation,
                                        const TimeSeries& prices) const {
  Settlement s;
  s.traded_kwh = plan_residual;
  s.prices = prices;
  for (size_t i = 0; i < plan_residual.size(); ++i) {
    timeutil::TimePoint t = plan_residual.start() + static_cast<int64_t>(i) * kMinutesPerSlice;
    double price_eur_per_kwh = prices.At(t) / 1000.0;
    s.spot_cost_eur += plan_residual.AtIndex(static_cast<int64_t>(i)) * price_eur_per_kwh;
  }
  ChargeDeviationImbalance(s, params, deviation, prices);
  s.total_cost_eur = s.spot_cost_eur + s.imbalance_cost_eur;
  return s;
}

Settlement StartFixingStrategy::Settle(const MarketParams& params,
                                       const TimeSeries& plan_residual,
                                       const TimeSeries& deviation,
                                       const TimeSeries& prices) const {
  Settlement s;
  s.traded_kwh = plan_residual;
  s.prices = prices;
  // Starts are fixed up front, so the whole residual is one inflexible
  // block: every slice trades at the day's mean price instead of its own.
  double block_price_eur_per_kwh = prices.Mean() / 1000.0;
  for (size_t i = 0; i < plan_residual.size(); ++i) {
    s.spot_cost_eur += plan_residual.AtIndex(static_cast<int64_t>(i)) * block_price_eur_per_kwh;
  }
  ChargeDeviationImbalance(s, params, deviation, prices);
  s.total_cost_eur = s.spot_cost_eur + s.imbalance_cost_eur;
  return s;
}

Settlement PriceThresholdStrategy::Settle(const MarketParams& params,
                                          const TimeSeries& plan_residual,
                                          const TimeSeries& deviation,
                                          const TimeSeries& prices) const {
  Settlement s;
  s.traded_kwh = plan_residual;
  s.traded_kwh.Scale(0.0);
  s.prices = prices;
  const double threshold = prices.Mean();
  for (size_t i = 0; i < plan_residual.size(); ++i) {
    timeutil::TimePoint t = plan_residual.start() + static_cast<int64_t>(i) * kMinutesPerSlice;
    double residual = plan_residual.AtIndex(static_cast<int64_t>(i));
    double price = prices.At(t);
    double price_eur_per_kwh = price / 1000.0;
    bool favorable = residual >= 0.0 ? price <= threshold : price >= threshold;
    if (favorable) {
      s.traded_kwh.Set(static_cast<int64_t>(i), residual);
      s.spot_cost_eur += residual * price_eur_per_kwh;
    } else {
      // Declined slice: the residual is not traded and is booked as
      // imbalance at the penalty price.
      s.imbalance_kwh += std::abs(residual);
      s.imbalance_cost_eur +=
          std::abs(residual) * price_eur_per_kwh * params.imbalance_fee_multiplier;
    }
  }
  ChargeDeviationImbalance(s, params, deviation, prices);
  s.total_cost_eur = s.spot_cost_eur + s.imbalance_cost_eur;
  return s;
}

std::string EffectiveBiddingName(const std::string& configured) {
  const char* env = std::getenv(kBiddingEnvVar);
  if (env != nullptr && env[0] != '\0') return env;
  if (!configured.empty()) return configured;
  return kDefaultBiddingName;
}

BiddingRegistry& BiddingRegistry::Global() {
  static BiddingRegistry* registry = [] {
    auto* r = new BiddingRegistry();
    (void)r->Register("spot-residual", [] {
      return std::unique_ptr<BiddingStrategy>(new SpotResidualStrategy());
    });
    (void)r->Register("start-fixing", [] {
      return std::unique_ptr<BiddingStrategy>(new StartFixingStrategy());
    });
    (void)r->Register("price-threshold", [] {
      return std::unique_ptr<BiddingStrategy>(new PriceThresholdStrategy());
    });
    return r;
  }();
  return *registry;
}

Status BiddingRegistry::Register(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = factories_.emplace(name, std::move(factory));
  if (!inserted) {
    return AlreadyExistsError(
        StrFormat("bidding strategy '%s' is already registered", name.c_str()));
  }
  return OkStatus();
}

std::vector<std::string> BiddingRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

bool BiddingRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) > 0;
}

Result<std::unique_ptr<BiddingStrategy>> BiddingRegistry::Make(const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = factories_.find(name);
    if (it != factories_.end()) factory = it->second;
  }
  if (!factory) {
    std::string options;
    for (const std::string& n : Names()) {
      if (!options.empty()) options += ", ";
      options += n;
    }
    return InvalidArgumentError(StrFormat("unknown bidding strategy '%s'; registered: %s",
                                          name.c_str(), options.c_str()));
  }
  return factory();
}

Settlement Market::Settle(const TimeSeries& plan_residual, const TimeSeries& deviation,
                          const TimeSeries& prices) const {
  return SpotResidualStrategy().Settle(params_, plan_residual, deviation, prices);
}

Result<Settlement> Market::TrySettle(const TimeSeries& plan_residual,
                                     const TimeSeries& deviation,
                                     const TimeSeries& prices) const {
  // Resolve the strategy before touching the exchange: an unknown name is a
  // configuration error, never a retry or a degraded settlement.
  Result<std::unique_ptr<BiddingStrategy>> strategy =
      BiddingRegistry::Global().Make(EffectiveBiddingName(params_.bidding));
  if (!strategy.ok()) return strategy.status();
  FaultRegistry& faults =
      params_.faults != nullptr ? *params_.faults : FaultRegistry::Global();
  FLEXVIS_RETURN_IF_ERROR(RetryFaultPointIn(faults, "sim.market.bid", DefaultRetryPolicy(),
                                            []() -> Status { return OkStatus(); }));
  return (*strategy)->Settle(params_, plan_residual, deviation, prices);
}

Settlement Market::SettleAllAsImbalance(const TimeSeries& plan_residual,
                                        const TimeSeries& deviation,
                                        const TimeSeries& prices) const {
  Settlement s;
  s.traded_kwh = plan_residual;
  s.traded_kwh.Scale(0.0);  // nothing was traded
  s.prices = prices;
  auto charge = [&](const TimeSeries& series) {
    for (size_t i = 0; i < series.size(); ++i) {
      timeutil::TimePoint t = series.start() + static_cast<int64_t>(i) * kMinutesPerSlice;
      double energy = std::abs(series.AtIndex(static_cast<int64_t>(i)));
      double price_eur_per_kwh = prices.At(t) / 1000.0;
      s.imbalance_kwh += energy;
      s.imbalance_cost_eur += energy * price_eur_per_kwh * params_.imbalance_fee_multiplier;
    }
  };
  charge(plan_residual);
  charge(deviation);
  s.total_cost_eur = s.spot_cost_eur + s.imbalance_cost_eur;
  return s;
}

}  // namespace flexvis::sim
