#ifndef FLEXVIS_SIM_REBALANCE_H_
#define FLEXVIS_SIM_REBALANCE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "time/time_point.h"
#include "util/json.h"
#include "util/status.h"

namespace flexvis::sim {

/// Knobs of the self-healing load controller. The controller watches the
/// per-shard overload signals (`shed_offers` deltas and pending-acceptance
/// queue depth, the same pair `ScanOverload` alerts on) and, when a shard
/// stays overloaded for `window_ticks` consecutive ticks, issues a
/// `RebalancePlan`: move the hottest prosumers to the coolest shard, or —
/// when every shard is hot and resizing is allowed — split the fleet.
struct RebalanceParams {
  /// Consecutive overloaded ticks before a shard triggers a plan.
  int window_ticks = 3;
  /// Pending-acceptance queue depth that counts as overloaded even without
  /// sheds (forwarded to ScanOverload). 0 disables the depth signal.
  int queue_depth_threshold = 0;
  /// Ticks after a plan during which no new plan is issued, so the fleet
  /// can absorb the moves before the controller re-evaluates.
  int cooldown_ticks = 4;
  /// Most prosumers one kMove plan relocates.
  int max_moves = 2;
  /// Allow kSplit/kMerge plans that change num_shards.
  bool allow_resize = false;
  /// Resize bounds (inclusive). Splits double, merges halve, both clamped.
  int min_shards = 1;
  int max_shards = 64;
  /// Consecutive fully-idle ticks (no sheds, empty queues, no backlog on
  /// any shard) before a kMerge plan halves the fleet. 0 disables merging.
  int merge_window_ticks = 0;
};

JsonValue EncodeRebalanceParams(const RebalanceParams& params);
Result<RebalanceParams> DecodeRebalanceParams(const JsonValue& value);

/// One shard's load signals after a tick, fed to the controller each tick.
/// All three are reconstructible from a replayed journal record, so a
/// resumed controller observes byte-identical history.
struct ShardLoadSample {
  /// Cumulative shed counter after the tick (the controller differences
  /// consecutive samples itself).
  int64_t shed_offers = 0;
  /// Pending-acceptance queue depth after the tick.
  int queue_depth = 0;
  /// Arrivals not yet ingested after the tick.
  int64_t backlog = 0;
};

/// One prosumer relocation within a plan.
struct RebalanceMove {
  core::ProsumerId prosumer = 0;
  int from = -1;
  int to = -1;
};

/// A durable rebalancing decision. The coordinator journals the whole plan
/// (kind "plan") before executing any step and a completion marker (kind
/// "plan_done") after the last, so a crash mid-plan resumes into either
/// completing the remaining steps or deterministically re-deciding the same
/// plan from the replayed load history.
struct RebalancePlan {
  enum class Action { kMove = 0, kSplit, kMerge };

  int64_t id = 0;
  /// Global tick the triggering observation covered.
  int64_t tick = 0;
  Action action = Action::kMove;
  /// Target fleet size for kSplit/kMerge; 0 for kMove.
  int new_num_shards = 0;
  std::vector<RebalanceMove> moves;
};

std::string_view RebalanceActionName(RebalancePlan::Action action);
Result<RebalancePlan::Action> ParseRebalanceAction(std::string_view name);

JsonValue EncodeRebalancePlan(const RebalancePlan& plan);
Result<RebalancePlan> DecodeRebalancePlan(const JsonValue& value);

/// What the controller decided on one tick; the coordinator turns it into a
/// concrete RebalancePlan (picking the move-set from live shard state).
struct RebalanceDecision {
  int64_t plan_id = 0;
  int64_t tick = 0;
  RebalancePlan::Action action = RebalancePlan::Action::kMove;
  /// The sustained-overloaded shard to drain (kMove).
  int hot_shard = -1;
  /// The least-loaded shard to receive the moves (kMove).
  int cold_shard = -1;
  /// Target fleet size (kSplit/kMerge).
  int new_num_shards = 0;
};

/// A per-prosumer load figure on the hot shard: offers not yet answered
/// (un-ingested arrivals plus pending-queue entries). Input to PickMoveSet.
struct ProsumerLoad {
  core::ProsumerId prosumer = 0;
  int64_t pending_offers = 0;
};

/// Picks the minimal move-set: candidates sorted by load descending (ties:
/// lower prosumer id first), taken until either `max_moves` prosumers are
/// picked or the cumulative load reaches `target_load` (aim: halve the hot
/// shard). Zero-load prosumers are never picked — moving them cannot help.
std::vector<core::ProsumerId> PickMoveSet(std::vector<ProsumerLoad> candidates, int max_moves,
                                          int64_t target_load);

/// The deterministic trend-watcher. Feed it every tick's per-shard samples
/// in tick order; it differences shed counters, runs ScanOverload over the
/// resulting per-tick report, tracks per-shard overload streaks, and issues
/// at most one decision per trigger with cooldown pacing. All state is
/// serializable into the coordinator manifest, and Observe() is a pure
/// function of (state, samples) — replaying the same sample history after a
/// crash reproduces the same decisions at the same ticks.
class RebalanceController {
 public:
  RebalanceController(RebalanceParams params, int num_shards, timeutil::TimeInterval window);

  const RebalanceParams& params() const { return params_; }
  int num_shards() const { return num_shards_; }
  int64_t next_plan_id() const { return next_plan_id_; }
  /// Last tick Observe() covered; -1 before the first.
  int64_t last_observed_tick() const { return last_observed_tick_; }

  /// Feeds one global tick's per-shard samples (index = shard). Returns a
  /// decision when a plan triggers this tick. Triggering always mutates the
  /// controller (plan id consumed, cooldown started, streaks reset) whether
  /// or not the coordinator manages to execute the plan, so live and
  /// replayed histories stay in lockstep.
  std::optional<RebalanceDecision> Observe(int64_t tick,
                                           const std::vector<ShardLoadSample>& samples);

  /// Resets per-shard tracking after a split/merge changed the fleet size.
  /// `prev_shed`, when sized to the new fleet, seeds the shed baselines —
  /// the coordinator re-homes all cumulative counters to new shard 0 on a
  /// resize, and a zero baseline there would read as one giant spurious
  /// shed burst on the first post-resize observation.
  void ResetShards(int num_shards, const std::vector<int64_t>& prev_shed = {});

  JsonValue EncodeState() const;
  Status DecodeState(const JsonValue& state);

 private:
  RebalanceParams params_;
  int num_shards_;
  timeutil::TimeInterval window_;
  /// Consecutive overloaded ticks per shard.
  std::vector<int> streak_;
  /// Previous tick's cumulative shed counter per shard.
  std::vector<int64_t> prev_shed_;
  int idle_streak_ = 0;
  int cooldown_ = 0;
  int64_t next_plan_id_ = 1;
  int64_t last_observed_tick_ = -1;
};

}  // namespace flexvis::sim

#endif  // FLEXVIS_SIM_REBALANCE_H_
