#include "sim/shard.h"

#include "util/strings.h"

namespace flexvis::sim {

namespace {

/// splitmix64 finalizer: a cheap, well-mixed stable hash so consecutive
/// prosumer ids spread evenly instead of striping across shards.
uint64_t MixId(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

int Bucket(uint64_t key, int num_shards) {
  return static_cast<int>(key % static_cast<uint64_t>(num_shards));
}

}  // namespace

std::string_view ShardPolicyName(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kHash: return "hash";
    case ShardPolicy::kRegion: return "region";
    case ShardPolicy::kFeeder: return "feeder";
  }
  return "unknown";
}

Result<ShardPolicy> ParseShardPolicy(std::string_view name) {
  if (name == "hash") return ShardPolicy::kHash;
  if (name == "region") return ShardPolicy::kRegion;
  if (name == "feeder") return ShardPolicy::kFeeder;
  return InvalidArgumentError(
      StrFormat("unknown shard policy '%.*s' (want hash|region|feeder)",
                static_cast<int>(name.size()), name.data()));
}

ShardRouter::ShardRouter(int num_shards, ShardPolicy policy)
    : num_shards_(num_shards < 1 ? 1 : num_shards), policy_(policy) {}

int ShardRouter::ShardOfProsumer(core::ProsumerId prosumer, core::RegionId region,
                                 core::GridNodeId grid_node) const {
  auto it = overrides_.find(prosumer);
  if (it != overrides_.end()) return it->second;
  switch (policy_) {
    case ShardPolicy::kHash:
      return Bucket(MixId(static_cast<uint64_t>(prosumer)), num_shards_);
    case ShardPolicy::kRegion:
      // Unknown dimension values fall back to the prosumer hash so every
      // offer still routes somewhere deterministic.
      if (region == core::kInvalidRegionId) {
        return Bucket(MixId(static_cast<uint64_t>(prosumer)), num_shards_);
      }
      return Bucket(static_cast<uint64_t>(region), num_shards_);
    case ShardPolicy::kFeeder:
      if (grid_node == core::kInvalidGridNodeId) {
        return Bucket(MixId(static_cast<uint64_t>(prosumer)), num_shards_);
      }
      return Bucket(static_cast<uint64_t>(grid_node), num_shards_);
  }
  return 0;
}

int ShardRouter::ShardOf(const core::FlexOffer& offer) const {
  return ShardOfProsumer(offer.prosumer, offer.region, offer.grid_node);
}

Status ShardRouter::Assign(core::ProsumerId prosumer, int shard) {
  if (shard < 0 || shard >= num_shards_) {
    return InvalidArgumentError(
        StrFormat("shard %d out of range [0, %d)", shard, num_shards_));
  }
  overrides_[prosumer] = shard;
  return OkStatus();
}

std::vector<std::vector<size_t>> ShardRouter::Partition(
    const std::vector<core::FlexOffer>& offers) const {
  std::vector<std::vector<size_t>> out(static_cast<size_t>(num_shards_));
  for (size_t i = 0; i < offers.size(); ++i) {
    out[static_cast<size_t>(ShardOf(offers[i]))].push_back(i);
  }
  return out;
}

}  // namespace flexvis::sim
