#ifndef FLEXVIS_SIM_ENTERPRISE_H_
#define FLEXVIS_SIM_ENTERPRISE_H_

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/aggregation.h"
#include "core/scheduler.h"
#include "dw/database.h"
#include "sim/energy_models.h"
#include "sim/forecaster.h"
#include "sim/market.h"
#include "util/status.h"

namespace flexvis {
class FaultRegistry;
}

namespace flexvis::sim {

/// Configuration of the MIRABEL enterprise planning loop (Section 2 of the
/// paper: collect -> forecast -> aggregate -> schedule -> trade ->
/// disaggregate -> settle).
struct EnterpriseParams {
  core::AggregationParams aggregation;
  core::SchedulerParams scheduler;
  MarketParams market;
  EnergyModelParams energy;
  /// Relative noise applied to executed energies when simulating the
  /// physical realization (prosumers not following the plan exactly).
  double execution_noise = 0.05;
  /// Probability that a prosumer ignores its assignment and runs at its
  /// earliest start instead.
  double non_compliance = 0.03;
  /// When true, the plan targets a *forecast* of the inflexible demand
  /// (built from `forecast_history_days` of synthetic history) rather than
  /// the actual curve; settlement still uses the actual demand, so the
  /// forecast error surfaces as extra imbalance — the real operating mode of
  /// a day-ahead enterprise.
  bool plan_on_forecast = false;
  int forecast_history_days = 14;
  /// Named forecaster from ForecasterRegistry used when plan_on_forecast is
  /// set; empty selects kDefaultForecasterName ("holt-winters", the
  /// pre-registry hardwired model, byte-identical). $FLEXVIS_FORECASTER
  /// overrides at resolution time; an unknown name is a typed
  /// kInvalidArgument from PlanHorizon naming the registered options.
  std::string forecaster;
  /// Local-search refinement iterations applied to the aggregate plan after
  /// the greedy pass (0 = off); stands in for the evolutionary scheduler of
  /// Tušar et al. the paper cites.
  int local_search_iterations = 0;
  uint64_t seed = 2013;
  /// Fault registry the pipeline's sim.enterprise.* seams consult; nullptr
  /// means FaultRegistry::Global() (the historical behaviour). Also forwarded
  /// to the market's sim.market.bid seam unless `market.faults` is set
  /// explicitly. The sharded coordinator points each shard's enterprise at
  /// its own registry so no process-wide singleton sits on the planning
  /// path. Runtime wiring only: never serialized.
  FaultRegistry* faults = nullptr;
};

/// Everything one planning run produces; the dashboards and Fig. 1 feed on
/// these series.
struct PlanningReport {
  timeutil::TimeInterval window;

  core::TimeSeries res_production;
  core::TimeSeries inflexible_demand;
  /// The demand curve the plan targeted: equals inflexible_demand unless
  /// plan_on_forecast is set, in which case it is the forecast.
  core::TimeSeries planned_against_demand;
  /// RES surplus the flexible portfolio should absorb (signed).
  core::TimeSeries target;
  /// Signed planned flexible load (consumption positive).
  core::TimeSeries planned_flexible_load;
  /// Simulated physical realization of the flexible load.
  core::TimeSeries realized_flexible_load;
  /// realized - planned per slice.
  core::TimeSeries deviation;

  int offers_in = 0;
  int aggregates_built = 0;
  int aggregates_assigned = 0;
  int aggregates_rejected = 0;
  double imbalance_before_kwh = 0.0;
  double imbalance_after_kwh = 0.0;

  /// Member-level offers with their disaggregated schedules (and rejected
  /// members of rejected aggregates).
  std::vector<core::FlexOffer> member_offers;
  /// The aggregates as scheduled.
  std::vector<core::FlexOffer> aggregate_offers;

  Settlement settlement;

  /// Resolved strategy identities this run used (after the environment
  /// overrides): the ForecasterRegistry name (recorded even when
  /// plan_on_forecast is off — it names what *would* forecast) and the
  /// BiddingRegistry name the settlement dispatched to.
  std::string forecaster;
  std::string bidding;
  /// Accuracy of the demand forecast against the realized inflexible demand
  /// over the window. slices == 0 (all-zero errors) when the run did not
  /// plan on a forecast or the forecasting stage degraded.
  ForecastError forecast_error;

  /// Injection points whose faults this run absorbed by degrading instead of
  /// failing (e.g. "sim.enterprise.forecast" fell back to planning on the
  /// actual demand curve, "sim.market.bid" settled everything at the
  /// imbalance fee). Empty on a clean run. Dashboards and the fault-matrix
  /// test read this to distinguish degraded from nominal output.
  std::vector<std::string> degraded_stages;
};

/// The planning and control engine of a MIRABEL enterprise.
class Enterprise {
 public:
  explicit Enterprise(EnterpriseParams params) : params_(params) {}
  Enterprise() : Enterprise(EnterpriseParams{}) {}

  const EnterpriseParams& params() const { return params_; }

  /// Plans `offers` for `window`: builds the RES/demand curves, aggregates,
  /// schedules aggregates against the RES surplus, disaggregates schedules
  /// to members, simulates execution, and settles on the market. Offers'
  /// prior states are ignored (a planning run decides them anew).
  Result<PlanningReport> PlanHorizon(const std::vector<core::FlexOffer>& offers,
                                     const timeutil::TimeInterval& window) const;

  /// Convenience: selects raw offers overlapping `window` from `db`, runs
  /// PlanHorizon, writes member states/schedules back, and loads the
  /// produced aggregates into the DW.
  Result<PlanningReport> RunDayAhead(dw::Database& db,
                                     const timeutil::TimeInterval& window) const;

 private:
  /// The last accepted aggregate plan, kept so a scheduler outage can fall
  /// back to it (the paper's enterprise keeps trading yesterday's plan and
  /// books the imbalance fee rather than going dark). Reused only when the
  /// outage run targets the same window and the same aggregate set;
  /// otherwise the fallback is the empty plan (every aggregate rejected).
  struct CachedPlan {
    timeutil::TimeInterval window;
    std::vector<core::FlexOfferId> aggregate_ids;
    core::ScheduleResult plan;
  };

  EnterpriseParams params_;
  /// Guarded by plan_mutex_; mutable because PlanHorizon is logically const
  /// (the cache only changes which *fallback* a degraded run uses).
  mutable std::mutex plan_mutex_;
  mutable std::optional<CachedPlan> last_accepted_plan_;
};

}  // namespace flexvis::sim

#endif  // FLEXVIS_SIM_ENTERPRISE_H_
