#include "sim/online.h"

#include <algorithm>
#include <numeric>

#include "core/measures.h"
#include "util/fault.h"
#include "util/retry.h"
#include "util/strings.h"

namespace flexvis::sim {

using core::AcceptanceMessage;
using core::AssignmentMessage;
using core::FlexOffer;
using core::TimeSeries;
using timeutil::kMinutesPerSlice;
using timeutil::TimeInterval;
using timeutil::TimePoint;

namespace {

/// Books a committed schedule's energy against the residual (consumption
/// positive). Shared by the live tick and journal replay so both sides of a
/// recovery agree bit-for-bit on the remaining target.
void CommitScheduleToResidual(const FlexOffer& offer, TimeSeries& residual) {
  const double sign = offer.direction == core::Direction::kConsumption ? 1.0 : -1.0;
  for (size_t i = 0; i < offer.schedule->energy_kwh.size(); ++i) {
    residual.AddAt(offer.schedule->start + static_cast<int64_t>(i) * kMinutesPerSlice,
                   -sign * offer.schedule->energy_kwh[i]);
  }
}

}  // namespace

Result<OnlineLoopState> OnlineEnterprise::Begin(const std::vector<FlexOffer>& offers,
                                                const TimeInterval& window) const {
  if (window.empty()) return InvalidArgumentError("online window is empty");
  if (params_.tick_minutes <= 0) {
    return InvalidArgumentError("tick_minutes must be positive");
  }

  OnlineLoopState state;
  state.window = window;
  state.report.offers = offers;
  for (FlexOffer& o : state.report.offers) {
    o.state = core::FlexOfferState::kOffered;
    o.schedule.reset();
  }
  state.index_of.reserve(state.report.offers.size());
  for (size_t i = 0; i < state.report.offers.size(); ++i) {
    state.index_of[state.report.offers[i].id] = i;
  }

  // Arrival order.
  state.arrival.resize(state.report.offers.size());
  std::iota(state.arrival.begin(), state.arrival.end(), 0);
  std::stable_sort(state.arrival.begin(), state.arrival.end(), [&](size_t a, size_t b) {
    return state.report.offers[a].creation_time < state.report.offers[b].creation_time;
  });

  // The balancing target and the running committed load. Committed capacity
  // is never revised: once an assignment message is out, its energy stays.
  state.residual = MakeFlexibilityTarget(MakeResProduction(window, params_.energy),
                                         MakeInflexibleDemand(window, params_.energy));
  return state;
}

bool OnlineEnterprise::Done(const OnlineLoopState& state) const {
  return state.window.start + state.next_tick * params_.tick_minutes >= state.window.end;
}

void OnlineEnterprise::Tick(OnlineLoopState& state, OnlineTickRecord* record) const {
  OnlineReport& report = state.report;
  const TimePoint now = state.window.start + state.next_tick * params_.tick_minutes;
  const TimePoint next_tick = now + params_.tick_minutes;
  ++report.ticks;

  core::Scheduler scheduler(params_.scheduler);
  FaultRegistry& faults =
      params_.faults != nullptr ? *params_.faults : FaultRegistry::Global();

  auto note_change = [&](const FlexOffer& offer) {
    if (record == nullptr) return;
    OnlineStateChange change;
    change.offer = offer.id;
    change.state = offer.state;
    if (offer.state == core::FlexOfferState::kAssigned) change.schedule = offer.schedule;
    record->changes.push_back(std::move(change));
  };

  // Delivery to the prosumer gateway sits behind the sim.online.send seam.
  // Each send retries per policy; persistent failure is absorbed, never
  // propagated — the loop must keep its tick cadence whatever the link does.
  auto deliver = [&](std::string wire) -> bool {
    Status sent = RetryFaultPointIn(faults, "sim.online.send", DefaultRetryPolicy(),
                                    []() -> Status { return OkStatus(); });
    if (!sent.ok()) {
      ++report.failed_sends;
      return false;
    }
    if (record != nullptr) record->sent.push_back(wire);
    report.outbox.push_back(std::move(wire));
    return true;
  };

  auto send_acceptance = [&](size_t idx, bool accepted) {
    FlexOffer& offer = report.offers[idx];
    AcceptanceMessage msg;
    msg.offer = offer.id;
    msg.accepted = accepted;
    msg.sent_at = std::min(now, offer.acceptance_deadline);
    // A lost acceptance degrades to rejection: without a confirmation the
    // prosumer must assume its offer lapsed, and the enterprise books no
    // capacity against it.
    if (!deliver(core::EncodeMessage(core::Message(msg)))) {
      offer.state = core::FlexOfferState::kRejected;
      ++report.rejected;
      ++report.missed_acceptance;
      note_change(offer);
      return;
    }
    if (accepted) {
      offer.state = core::FlexOfferState::kAccepted;
      ++report.accepted;
      state.pending_assignment.push_back(idx);
    } else {
      offer.state = core::FlexOfferState::kRejected;
      ++report.rejected;
    }
    note_change(offer);
  };

  // 1. Ingest offers created up to now. The uplink from the prosumer
  //    gateway is lossy (sim.online.ingest): an offer whose submission
  //    fails after retries is dropped — counted, left kOffered, never
  //    answered — and the loop moves on. Two overload valves bound the work
  //    a traffic spike can force into one tick: `max_ingest_per_tick`
  //    defers surplus arrivals to the next tick (the backlog stretches, the
  //    tick does not), and `ingest_queue_capacity` sheds reject-newest once
  //    the pending-acceptance queue is full (the shed offer is answered
  //    with a rejection so the prosumer is not left hanging).
  int ingested_this_tick = 0;
  while (state.next_arrival < state.arrival.size() &&
         report.offers[state.arrival[state.next_arrival]].creation_time <= now) {
    if (params_.max_ingest_per_tick > 0 &&
        ingested_this_tick >= params_.max_ingest_per_tick) {
      break;  // work budget exhausted; remaining arrivals carry over
    }
    size_t idx = state.arrival[state.next_arrival++];
    ++ingested_this_tick;
    Status ingested = RetryFaultPointIn(faults, "sim.online.ingest", DefaultRetryPolicy(),
                                        []() -> Status { return OkStatus(); });
    if (!ingested.ok()) {
      ++report.dropped_ingest;
      continue;
    }
    ++report.offers_received;
    if (report.offers[idx].acceptance_deadline < now) {
      // Arrived already expired (coarse tick): count as missed, reject.
      ++report.missed_acceptance;
      send_acceptance(idx, /*accepted=*/false);
    } else if (params_.ingest_queue_capacity > 0 &&
               state.pending_acceptance.size() >=
                   static_cast<size_t>(params_.ingest_queue_capacity)) {
      size_t victim = idx;  // reject-newest: the arrival itself
      if (params_.shed_policy == ShedPolicy::kRejectLeastValuable) {
        // Evict the queued offer with the lowest energy-flexibility value,
        // but only when the arrival is worth strictly more than it — ties
        // keep the queue (earliest-queued wins), so a flood of equal-value
        // offers cannot churn the queue.
        size_t least_pos = 0;
        double least_value =
            report.offers[state.pending_acceptance[0]].energy_flexibility_kwh();
        for (size_t p = 1; p < state.pending_acceptance.size(); ++p) {
          const double value =
              report.offers[state.pending_acceptance[p]].energy_flexibility_kwh();
          if (value < least_value) {
            least_value = value;
            least_pos = p;
          }
        }
        if (report.offers[idx].energy_flexibility_kwh() > least_value) {
          victim = state.pending_acceptance[least_pos];
          state.pending_acceptance.erase(state.pending_acceptance.begin() +
                                         static_cast<ptrdiff_t>(least_pos));
          state.pending_acceptance.push_back(idx);
        }
      }
      ++report.shed_offers;
      send_acceptance(victim, /*accepted=*/false);
    } else {
      state.pending_acceptance.push_back(idx);
      report.queue_high_watermark =
          std::max(report.queue_high_watermark,
                   static_cast<int>(state.pending_acceptance.size()));
    }
  }

  // 2. Answer every acceptance deadline falling before the next tick. The
  //    accept/reject call is a cheap screen: offers whose mandatory energy
  //    can never help (no surplus anywhere in their window) are rejected
  //    up front; everything else is accepted and scheduled later.
  std::vector<size_t> keep;
  for (size_t idx : state.pending_acceptance) {
    FlexOffer& offer = report.offers[idx];
    if (offer.acceptance_deadline >= next_tick) {
      keep.push_back(idx);
      continue;
    }
    bool useful = false;
    const double sign = offer.direction == core::Direction::kConsumption ? 1.0 : -1.0;
    for (TimePoint t = offer.earliest_start; t < offer.latest_end();
         t = t + kMinutesPerSlice) {
      if (sign * state.residual.At(t) > 0.0) {
        useful = true;
        break;
      }
    }
    // With no rejection threshold configured, accept everything (the
    // offline scheduler's behaviour); otherwise screen by usefulness.
    bool accept = params_.scheduler.rejection_threshold < 0.0 || useful;
    send_acceptance(idx, accept);
  }
  state.pending_acceptance = std::move(keep);

  // 3. Commit schedules for every assignment deadline before the next
  //    tick. Scheduling the urgent batch against the *remaining* residual
  //    implements the incremental commitment.
  std::vector<FlexOffer> urgent;
  std::vector<size_t> urgent_idx;
  keep.clear();
  for (size_t idx : state.pending_assignment) {
    FlexOffer& offer = report.offers[idx];
    if (offer.assignment_deadline >= next_tick) {
      keep.push_back(idx);
      continue;
    }
    if (offer.assignment_deadline < now) ++report.missed_assignment;
    urgent.push_back(offer);
    urgent_idx.push_back(idx);
  }
  state.pending_assignment = std::move(keep);
  if (!urgent.empty()) {
    core::ScheduleResult plan = scheduler.Plan(urgent, state.residual);
    for (size_t k = 0; k < plan.offers.size(); ++k) {
      FlexOffer& offer = report.offers[urgent_idx[k]];
      if (!plan.offers[k].schedule.has_value()) {
        // The scheduler rejected it post-acceptance; demote.
        offer.state = core::FlexOfferState::kRejected;
        note_change(offer);
        continue;
      }
      AssignmentMessage msg;
      msg.offer = offer.id;
      msg.schedule = *plan.offers[k].schedule;
      msg.sent_at = std::min(now, offer.assignment_deadline);
      // Commit capacity only after the assignment is delivered: a lost
      // assignment leaves the offer accepted-but-unscheduled (the
      // prosumer never learned what to run), books nothing against the
      // residual, and counts as a missed assignment deadline.
      if (!deliver(core::EncodeMessage(core::Message(msg)))) {
        ++report.missed_assignment;
        continue;
      }
      offer.schedule = plan.offers[k].schedule;
      offer.state = core::FlexOfferState::kAssigned;
      ++report.assigned;
      CommitScheduleToResidual(offer, state.residual);
      note_change(offer);
    }
  }

  if (record != nullptr) {
    record->tick = state.next_tick;
    record->shed_policy = static_cast<int>(params_.shed_policy);
    record->offers_received = report.offers_received;
    record->accepted = report.accepted;
    record->rejected = report.rejected;
    record->assigned = report.assigned;
    record->missed_acceptance = report.missed_acceptance;
    record->missed_assignment = report.missed_assignment;
    record->dropped_ingest = report.dropped_ingest;
    record->failed_sends = report.failed_sends;
    record->shed_offers = report.shed_offers;
    record->queue_high_watermark = report.queue_high_watermark;
    record->next_arrival = static_cast<int64_t>(state.next_arrival);
    record->pending_acceptance.clear();
    record->pending_assignment.clear();
    for (size_t idx : state.pending_acceptance) {
      record->pending_acceptance.push_back(report.offers[idx].id);
    }
    for (size_t idx : state.pending_assignment) {
      record->pending_assignment.push_back(report.offers[idx].id);
    }
  }
  ++state.next_tick;
  if (params_.publish_hook) params_.publish_hook(state);
}

Status OnlineEnterprise::Apply(OnlineLoopState& state, const OnlineTickRecord& record) const {
  if (record.folded) {
    // A folded record is the cumulative merge of ticks 0..record.tick; it
    // only makes sense applied onto a fresh state.
    if (state.next_tick != 0) {
      return DataLossError(StrFormat("folded journal record (ticks 0..%d) cannot apply to "
                                     "state already at tick %d",
                                     record.tick, state.next_tick));
    }
  } else if (record.tick != state.next_tick) {
    return DataLossError(StrFormat("journal tick %d does not continue state at tick %d "
                                   "(journal and snapshot disagree)",
                                   record.tick, state.next_tick));
  }
  OnlineReport& report = state.report;
  auto find_index = [&](core::FlexOfferId id, size_t* out) -> Status {
    auto it = state.index_of.find(id);
    if (it == state.index_of.end()) {
      return DataLossError(StrFormat("journal names flex-offer %lld absent from snapshot",
                                     static_cast<long long>(id)));
    }
    *out = it->second;
    return OkStatus();
  };

  for (const OnlineStateChange& change : record.changes) {
    size_t idx = 0;
    FLEXVIS_RETURN_IF_ERROR(find_index(change.offer, &idx));
    FlexOffer& offer = report.offers[idx];
    offer.state = change.state;
    if (change.state == core::FlexOfferState::kAssigned) {
      if (!change.schedule.has_value()) {
        return DataLossError(StrFormat("journal assigns flex-offer %lld without a schedule",
                                       static_cast<long long>(change.offer)));
      }
      offer.schedule = change.schedule;
      CommitScheduleToResidual(offer, state.residual);
    } else {
      offer.schedule.reset();
    }
  }
  for (const std::string& wire : record.sent) report.outbox.push_back(wire);

  report.offers_received = record.offers_received;
  report.accepted = record.accepted;
  report.rejected = record.rejected;
  report.assigned = record.assigned;
  report.missed_acceptance = record.missed_acceptance;
  report.missed_assignment = record.missed_assignment;
  report.dropped_ingest = record.dropped_ingest;
  report.failed_sends = record.failed_sends;
  report.shed_offers = record.shed_offers;
  report.queue_high_watermark = record.queue_high_watermark;
  if (record.next_arrival < 0 ||
      static_cast<size_t>(record.next_arrival) > state.arrival.size()) {
    return DataLossError(StrFormat("journal arrival cursor %lld out of range",
                                   static_cast<long long>(record.next_arrival)));
  }
  state.next_arrival = static_cast<size_t>(record.next_arrival);
  state.pending_acceptance.clear();
  for (core::FlexOfferId id : record.pending_acceptance) {
    size_t idx = 0;
    FLEXVIS_RETURN_IF_ERROR(find_index(id, &idx));
    state.pending_acceptance.push_back(idx);
  }
  state.pending_assignment.clear();
  for (core::FlexOfferId id : record.pending_assignment) {
    size_t idx = 0;
    FLEXVIS_RETURN_IF_ERROR(find_index(id, &idx));
    state.pending_assignment.push_back(idx);
  }
  report.ticks = record.tick + 1;
  state.next_tick = record.tick + 1;
  return OkStatus();
}

OnlineTickRecord OnlineEnterprise::Snapshot(const OnlineLoopState& state) const {
  const OnlineReport& report = state.report;
  OnlineTickRecord fold;
  fold.tick = state.next_tick - 1;
  fold.folded = true;
  fold.shed_policy = static_cast<int>(params_.shed_policy);
  for (const FlexOffer& offer : report.offers) {
    if (offer.state == core::FlexOfferState::kOffered) continue;
    OnlineStateChange change;
    change.offer = offer.id;
    change.state = offer.state;
    if (offer.state == core::FlexOfferState::kAssigned) change.schedule = offer.schedule;
    fold.changes.push_back(std::move(change));
  }
  fold.sent = report.outbox;
  fold.offers_received = report.offers_received;
  fold.accepted = report.accepted;
  fold.rejected = report.rejected;
  fold.assigned = report.assigned;
  fold.missed_acceptance = report.missed_acceptance;
  fold.missed_assignment = report.missed_assignment;
  fold.dropped_ingest = report.dropped_ingest;
  fold.failed_sends = report.failed_sends;
  fold.shed_offers = report.shed_offers;
  fold.queue_high_watermark = report.queue_high_watermark;
  fold.next_arrival = static_cast<int64_t>(state.next_arrival);
  for (size_t idx : state.pending_acceptance) {
    fold.pending_acceptance.push_back(report.offers[idx].id);
  }
  for (size_t idx : state.pending_assignment) {
    fold.pending_assignment.push_back(report.offers[idx].id);
  }
  return fold;
}

OnlineReport OnlineEnterprise::Finish(OnlineLoopState state) const {
  // Anything still pending at the end of the window never got answered in
  // time (its deadlines lie beyond the simulated horizon) — leave it
  // kOffered/kAccepted; that is honest bookkeeping, not a miss.
  state.report.imbalance_kwh = state.residual.Slice(state.window).AbsTotal();
  return std::move(state.report);
}

Result<OnlineReport> OnlineEnterprise::Run(const std::vector<FlexOffer>& offers,
                                           const TimeInterval& window) const {
  Result<OnlineLoopState> state = Begin(offers, window);
  if (!state.ok()) return state.status();
  while (!Done(*state)) Tick(*state, nullptr);
  return Finish(*std::move(state));
}

}  // namespace flexvis::sim
