#include "sim/online.h"

#include <algorithm>
#include <numeric>

#include "core/measures.h"
#include "util/fault.h"
#include "util/retry.h"
#include "util/strings.h"

namespace flexvis::sim {

using core::AcceptanceMessage;
using core::AssignmentMessage;
using core::FlexOffer;
using core::TimeSeries;
using timeutil::kMinutesPerSlice;
using timeutil::TimeInterval;
using timeutil::TimePoint;

Result<OnlineReport> OnlineEnterprise::Run(const std::vector<FlexOffer>& offers,
                                           const TimeInterval& window) const {
  if (window.empty()) return InvalidArgumentError("online window is empty");
  if (params_.tick_minutes <= 0) {
    return InvalidArgumentError("tick_minutes must be positive");
  }

  OnlineReport report;
  report.offers = offers;
  for (FlexOffer& o : report.offers) {
    o.state = core::FlexOfferState::kOffered;
    o.schedule.reset();
  }

  // Arrival order.
  std::vector<size_t> arrival(report.offers.size());
  std::iota(arrival.begin(), arrival.end(), 0);
  std::stable_sort(arrival.begin(), arrival.end(), [&](size_t a, size_t b) {
    return report.offers[a].creation_time < report.offers[b].creation_time;
  });

  // The balancing target and the running committed load. Committed capacity
  // is never revised: once an assignment message is out, its energy stays.
  TimeSeries target = MakeFlexibilityTarget(MakeResProduction(window, params_.energy),
                                            MakeInflexibleDemand(window, params_.energy));
  TimeSeries residual = target;  // shrinks as assignments commit

  core::Scheduler scheduler(params_.scheduler);

  std::vector<size_t> pending_acceptance;  // ingested, not yet answered
  std::vector<size_t> pending_assignment;  // accepted, not yet scheduled
  size_t next_arrival = 0;

  // Delivery to the prosumer gateway sits behind the sim.online.send seam.
  // Each send retries per policy; persistent failure is absorbed, never
  // propagated — the loop must keep its tick cadence whatever the link does.
  auto deliver = [&](std::string wire) -> bool {
    Status sent = RetryFaultPoint("sim.online.send", DefaultRetryPolicy(),
                                  []() -> Status { return OkStatus(); });
    if (!sent.ok()) {
      ++report.failed_sends;
      return false;
    }
    report.outbox.push_back(std::move(wire));
    return true;
  };

  auto send_acceptance = [&](size_t idx, TimePoint now, bool accepted) {
    FlexOffer& offer = report.offers[idx];
    AcceptanceMessage msg;
    msg.offer = offer.id;
    msg.accepted = accepted;
    msg.sent_at = std::min(now, offer.acceptance_deadline);
    // A lost acceptance degrades to rejection: without a confirmation the
    // prosumer must assume its offer lapsed, and the enterprise books no
    // capacity against it.
    if (!deliver(core::EncodeMessage(core::Message(msg)))) {
      offer.state = core::FlexOfferState::kRejected;
      ++report.rejected;
      ++report.missed_acceptance;
      return;
    }
    if (accepted) {
      offer.state = core::FlexOfferState::kAccepted;
      ++report.accepted;
      pending_assignment.push_back(idx);
    } else {
      offer.state = core::FlexOfferState::kRejected;
      ++report.rejected;
    }
  };

  for (TimePoint now = window.start; now < window.end; now = now + params_.tick_minutes) {
    ++report.ticks;
    const TimePoint next_tick = now + params_.tick_minutes;

    // 1. Ingest offers created up to now. The uplink from the prosumer
    //    gateway is lossy (sim.online.ingest): an offer whose submission
    //    fails after retries is dropped — counted, left kOffered, never
    //    answered — and the loop moves on.
    while (next_arrival < arrival.size() &&
           report.offers[arrival[next_arrival]].creation_time <= now) {
      size_t idx = arrival[next_arrival++];
      Status ingested = RetryFaultPoint("sim.online.ingest", DefaultRetryPolicy(),
                                        []() -> Status { return OkStatus(); });
      if (!ingested.ok()) {
        ++report.dropped_ingest;
        continue;
      }
      ++report.offers_received;
      if (report.offers[idx].acceptance_deadline < now) {
        // Arrived already expired (coarse tick): count as missed, reject.
        ++report.missed_acceptance;
        send_acceptance(idx, now, /*accepted=*/false);
      } else {
        pending_acceptance.push_back(idx);
      }
    }

    // 2. Answer every acceptance deadline falling before the next tick. The
    //    accept/reject call is a cheap screen: offers whose mandatory energy
    //    can never help (no surplus anywhere in their window) are rejected
    //    up front; everything else is accepted and scheduled later.
    std::vector<size_t> keep;
    for (size_t idx : pending_acceptance) {
      FlexOffer& offer = report.offers[idx];
      if (offer.acceptance_deadline >= next_tick) {
        keep.push_back(idx);
        continue;
      }
      bool useful = false;
      const double sign = offer.direction == core::Direction::kConsumption ? 1.0 : -1.0;
      for (TimePoint t = offer.earliest_start; t < offer.latest_end();
           t = t + kMinutesPerSlice) {
        if (sign * residual.At(t) > 0.0) {
          useful = true;
          break;
        }
      }
      // With no rejection threshold configured, accept everything (the
      // offline scheduler's behaviour); otherwise screen by usefulness.
      bool accept = params_.scheduler.rejection_threshold < 0.0 || useful;
      send_acceptance(idx, now, accept);
    }
    pending_acceptance = std::move(keep);

    // 3. Commit schedules for every assignment deadline before the next
    //    tick. Scheduling the urgent batch against the *remaining* residual
    //    implements the incremental commitment.
    std::vector<FlexOffer> urgent;
    std::vector<size_t> urgent_idx;
    keep.clear();
    for (size_t idx : pending_assignment) {
      FlexOffer& offer = report.offers[idx];
      if (offer.assignment_deadline >= next_tick) {
        keep.push_back(idx);
        continue;
      }
      if (offer.assignment_deadline < now) ++report.missed_assignment;
      urgent.push_back(offer);
      urgent_idx.push_back(idx);
    }
    pending_assignment = std::move(keep);
    if (!urgent.empty()) {
      core::ScheduleResult plan = scheduler.Plan(urgent, residual);
      for (size_t k = 0; k < plan.offers.size(); ++k) {
        FlexOffer& offer = report.offers[urgent_idx[k]];
        if (!plan.offers[k].schedule.has_value()) {
          // The scheduler rejected it post-acceptance; demote.
          offer.state = core::FlexOfferState::kRejected;
          continue;
        }
        AssignmentMessage msg;
        msg.offer = offer.id;
        msg.schedule = *plan.offers[k].schedule;
        msg.sent_at = std::min(now, offer.assignment_deadline);
        // Commit capacity only after the assignment is delivered: a lost
        // assignment leaves the offer accepted-but-unscheduled (the
        // prosumer never learned what to run), books nothing against the
        // residual, and counts as a missed assignment deadline.
        if (!deliver(core::EncodeMessage(core::Message(msg)))) {
          ++report.missed_assignment;
          continue;
        }
        offer.schedule = plan.offers[k].schedule;
        offer.state = core::FlexOfferState::kAssigned;
        ++report.assigned;
        const double sign =
            offer.direction == core::Direction::kConsumption ? 1.0 : -1.0;
        for (size_t i = 0; i < offer.schedule->energy_kwh.size(); ++i) {
          residual.AddAt(offer.schedule->start + static_cast<int64_t>(i) * kMinutesPerSlice,
                         -sign * offer.schedule->energy_kwh[i]);
        }
      }
    }
  }

  // Anything still pending at the end of the window never got answered in
  // time (its deadlines lie beyond the simulated horizon) — leave it
  // kOffered/kAccepted; that is honest bookkeeping, not a miss.
  report.imbalance_kwh = residual.Slice(window).AbsTotal();
  return report;
}

}  // namespace flexvis::sim
