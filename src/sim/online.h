#ifndef FLEXVIS_SIM_ONLINE_H_
#define FLEXVIS_SIM_ONLINE_H_

#include <string>
#include <vector>

#include "core/messages.h"
#include "core/scheduler.h"
#include "sim/energy_models.h"
#include "util/status.h"

namespace flexvis::sim {

/// Parameters of the online planning loop.
struct OnlineParams {
  /// Cadence of the planning tick. Each tick ingests newly created offers,
  /// answers every acceptance deadline falling before the next tick, and
  /// commits schedules for every assignment deadline falling before the
  /// next tick.
  int64_t tick_minutes = 60;
  core::SchedulerParams scheduler;
  EnergyModelParams energy;
};

/// Outcome of one online run.
struct OnlineReport {
  int offers_received = 0;
  int accepted = 0;
  int rejected = 0;
  int assigned = 0;
  /// Deadlines that passed before the loop could answer (late arrivals or a
  /// tick coarser than the deadline spacing). A healthy configuration keeps
  /// both at zero.
  int missed_acceptance = 0;
  int missed_assignment = 0;
  /// Offers lost at the sim.online.ingest seam after retries (lossy uplink):
  /// they stay kOffered, are never answered, and count here so operators see
  /// the loss. Zero unless faults are armed.
  int dropped_ingest = 0;
  /// Outbound messages that could not be delivered at sim.online.send after
  /// retries. A lost acceptance rejects the offer (the prosumer never got a
  /// confirmation to act on); a lost assignment leaves the offer accepted
  /// but uncommitted, so no capacity is booked against its schedule.
  int failed_sends = 0;
  /// Σ|target - committed load| over the horizon after the run.
  double imbalance_kwh = 0.0;
  /// Offers with their final states and committed schedules.
  std::vector<core::FlexOffer> offers;
  /// Every acceptance/assignment message sent, in send order (the protocol
  /// stream a prosumer gateway would receive).
  std::vector<std::string> outbox;
  /// Number of planning ticks executed.
  int ticks = 0;
};

/// The enterprise's *online* mode (Section 2: "performs a complex planning
/// activity in an online fashion"): offers arrive at their creation times;
/// the loop must send the acceptance message before each offer's acceptance
/// deadline and the assignment message (with the schedule) before its
/// assignment deadline, committing plan capacity incrementally — it can
/// never revisit a sent assignment, unlike the offline Enterprise which
/// plans a closed horizon at once.
class OnlineEnterprise {
 public:
  explicit OnlineEnterprise(OnlineParams params) : params_(params) {}
  OnlineEnterprise() : OnlineEnterprise(OnlineParams{}) {}

  const OnlineParams& params() const { return params_; }

  /// Simulates the loop over `window` (clock from window.start to
  /// window.end) with `offers` arriving at their creation times. Offers
  /// whose creation time precedes the window are ingested at the first tick.
  Result<OnlineReport> Run(const std::vector<core::FlexOffer>& offers,
                           const timeutil::TimeInterval& window) const;

 private:
  OnlineParams params_;
};

}  // namespace flexvis::sim

#endif  // FLEXVIS_SIM_ONLINE_H_
