#ifndef FLEXVIS_SIM_ONLINE_H_
#define FLEXVIS_SIM_ONLINE_H_

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/messages.h"
#include "core/scheduler.h"
#include "sim/energy_models.h"
#include "util/status.h"

namespace flexvis {
class FaultRegistry;
}

namespace flexvis::sim {

/// What to do with an arrival when the bounded ingest queue is full.
enum class ShedPolicy {
  /// Reject the arriving offer (the historical behaviour): cheapest, but a
  /// burst of low-value offers can crowd out a late high-value one.
  kRejectNewest = 0,
  /// Evict the *queued* offer with the lowest energy-flexibility value
  /// (FlexOffer::energy_flexibility_kwh, ties broken earliest-queued) when
  /// the arrival is worth more than it; otherwise reject the arrival. Under
  /// overload the queue keeps the most flexible offers — the ones the
  /// balancing objective values most.
  kRejectLeastValuable = 1,
};

/// Parameters of the online planning loop.
struct OnlineParams {
  /// Cadence of the planning tick. Each tick ingests newly created offers,
  /// answers every acceptance deadline falling before the next tick, and
  /// commits schedules for every assignment deadline falling before the
  /// next tick.
  int64_t tick_minutes = 60;
  core::SchedulerParams scheduler;
  EnergyModelParams energy;

  // ---- Overload protection (per-shard when run under the coordinator) -----

  /// Per-tick ingest work budget: at most this many arrivals are processed
  /// per tick; the surplus stays in the arrival backlog and is carried into
  /// the next tick, so a traffic spike stretches the backlog, never the
  /// tick. 0 = unlimited (the historical behaviour).
  int max_ingest_per_tick = 0;
  /// Bound on the pending-acceptance queue. An arrival that would overflow
  /// it is shed reject-newest: the enterprise answers it with an immediate
  /// rejection (counted in `shed_offers`) instead of queueing unbounded
  /// work. 0 = unbounded (the historical behaviour).
  int ingest_queue_capacity = 0;
  /// Which offer loses when the queue is full. Journaled in every tick
  /// record so a resumed run can prove it sheds under the same policy.
  ShedPolicy shed_policy = ShedPolicy::kRejectNewest;

  // ---- Checkpoint compaction (sim/checkpoint) -----------------------------

  /// Fold the write-ahead journal into a new-generation snapshot every this
  /// many ticks, bounding both journal size and resume replay time. 0 = off
  /// (the journal grows for the whole run). Purely a durability cadence: it
  /// never changes a planning decision, so any value produces byte-identical
  /// reports. Read from $FLEXVIS_COMPACT_TICKS by CompactTicksFromEnv.
  int compact_ticks = 0;

  /// Size trigger on the same fold: also compact as soon as the journal's
  /// record payload since the last fold reaches this many bytes
  /// (Σ EncodeTickRecord sizes, a deterministic function of the decisions).
  /// 0 = off. Composes with compact_ticks — whichever trigger fires first
  /// folds, and both reset. Like the tick cadence it never changes a
  /// planning decision. Read from $FLEXVIS_COMPACT_BYTES by
  /// CompactBytesFromEnv. The sharded coordinator compacts only on the
  /// global tick cadence and ignores this knob.
  int64_t compact_bytes = 0;

  // ---- Strategy identity (sim/forecaster, sim/market) ---------------------

  /// Named strategies the run's *planning context* is pinned to: the
  /// ForecasterRegistry / BiddingRegistry names a scenario (sim/scenario)
  /// settles its horizon with. The online tick loop itself neither
  /// forecasts nor trades, but the names are serialized into checkpoint
  /// meta.json (and surfaced in COORDINATOR.json) so ResumeOnline /
  /// ResumeSharded replay under the exact strategies the run was cut with —
  /// a resume can never silently settle under a different strategy. Empty =
  /// the defaults (holt-winters / spot-residual). Validated against the
  /// registries at decode time: an unknown pinned name is a typed
  /// kInvalidArgument naming the registered options.
  std::string forecaster;
  std::string bidding;

  /// Fault registry the loop's sim.online.* seams consult; nullptr means
  /// FaultRegistry::Global() (the historical behaviour). The sharded
  /// coordinator points each shard at its own registry so fault draws are
  /// deterministic per shard regardless of shard-parallel execution order —
  /// no process-wide singleton sits on the tick path. Runtime wiring only:
  /// never serialized into checkpoint metadata.
  FaultRegistry* faults = nullptr;

  /// Publish-generation hook for the concurrent serving layer (src/serve):
  /// invoked at the end of every *live* Tick() with the post-tick loop
  /// state, so an ingest loop can publish a fresh warehouse generation to
  /// concurrent dashboard readers on whatever cadence the hook chooses.
  /// Never invoked during Apply() — journal replay reconstructs state, it
  /// does not serve traffic. Runtime wiring only: never serialized, and it
  /// must not mutate the state it observes (decisions stay byte-identical
  /// with and without a hook installed).
  std::function<void(const struct OnlineLoopState& state)> publish_hook;
};

/// Outcome of one online run.
struct OnlineReport {
  int offers_received = 0;
  int accepted = 0;
  int rejected = 0;
  int assigned = 0;
  /// Deadlines that passed before the loop could answer (late arrivals or a
  /// tick coarser than the deadline spacing). A healthy configuration keeps
  /// both at zero.
  int missed_acceptance = 0;
  int missed_assignment = 0;
  /// Offers lost at the sim.online.ingest seam after retries (lossy uplink):
  /// they stay kOffered, are never answered, and count here so operators see
  /// the loss. Zero unless faults are armed.
  int dropped_ingest = 0;
  /// Outbound messages that could not be delivered at sim.online.send after
  /// retries. A lost acceptance rejects the offer (the prosumer never got a
  /// confirmation to act on); a lost assignment leaves the offer accepted
  /// but uncommitted, so no capacity is booked against its schedule.
  int failed_sends = 0;
  /// Arrivals shed by the bounded ingest queue (reject-newest): answered
  /// with an immediate rejection because pending_acceptance was already at
  /// `ingest_queue_capacity`. Zero unless the capacity knob is set.
  int shed_offers = 0;
  /// Largest pending-acceptance queue depth observed across the run — the
  /// saturation signal operators watch next to `shed_offers`.
  int queue_high_watermark = 0;
  /// Σ|target - committed load| over the horizon after the run.
  double imbalance_kwh = 0.0;
  /// Offers with their final states and committed schedules.
  std::vector<core::FlexOffer> offers;
  /// Every acceptance/assignment message sent, in send order (the protocol
  /// stream a prosumer gateway would receive).
  std::vector<std::string> outbox;
  /// Number of planning ticks executed.
  int ticks = 0;
};

/// One offer's state transition within a tick — the unit the write-ahead
/// journal (sim/checkpoint) persists so a crashed run can be replayed
/// without re-running any decision logic or fault draw.
struct OnlineStateChange {
  core::FlexOfferId offer = core::kInvalidFlexOfferId;
  core::FlexOfferState state = core::FlexOfferState::kOffered;
  /// Present exactly when `state` is kAssigned: the committed schedule whose
  /// energy was booked against the residual.
  std::optional<core::Schedule> schedule;
};

/// Everything one tick changed, in a form that makes replay exact and
/// idempotent: state transitions and sent wires are per-tick deltas (applied
/// in order), while the counters, arrival cursor, and pending queues are
/// absolute post-tick values.
struct OnlineTickRecord {
  /// 0-based index of the tick this record describes.
  int tick = 0;
  /// True for a *folded* record — the cumulative merge of ticks 0..tick that
  /// checkpoint compaction stores as the new-generation snapshot state. A
  /// folded record applies only onto a fresh (tick-0) state and replays the
  /// concatenated deltas of every folded tick in their original order, which
  /// reproduces the live state byte for byte (assignment commits hit the
  /// residual in the same order with the same operands).
  bool folded = false;
  /// ShedPolicy the run sheds under, journaled for provenance so a resumed
  /// run can verify it continues with the policy the journal was cut under.
  int shed_policy = 0;
  std::vector<OnlineStateChange> changes;
  /// Wires appended to the outbox this tick, in send order.
  std::vector<std::string> sent;
  // Absolute counter values after the tick.
  int offers_received = 0;
  int accepted = 0;
  int rejected = 0;
  int assigned = 0;
  int missed_acceptance = 0;
  int missed_assignment = 0;
  int dropped_ingest = 0;
  int failed_sends = 0;
  int shed_offers = 0;
  int queue_high_watermark = 0;
  /// Arrival cursor after the tick (offers ingested or dropped so far).
  int64_t next_arrival = 0;
  /// Post-tick pending queues, as offer ids (stable across processes).
  std::vector<core::FlexOfferId> pending_acceptance;
  std::vector<core::FlexOfferId> pending_assignment;
};

/// Mid-run state of the online loop, exposed so the checkpoint layer can run
/// tick-at-a-time, journal each tick's decisions, and reconstruct a crashed
/// run by applying journaled records. Opaque to other callers; obtain one
/// from OnlineEnterprise::Begin.
struct OnlineLoopState {
  OnlineReport report;
  core::TimeSeries residual;  // shrinks as assignments commit
  timeutil::TimeInterval window;
  std::vector<size_t> arrival;  // indices into report.offers, by creation time
  std::vector<size_t> pending_acceptance;  // ingested, not yet answered
  std::vector<size_t> pending_assignment;  // accepted, not yet scheduled
  size_t next_arrival = 0;
  int next_tick = 0;  // index of the tick Tick() would execute next
  std::unordered_map<core::FlexOfferId, size_t> index_of;  // id -> offers index
};

/// The enterprise's *online* mode (Section 2: "performs a complex planning
/// activity in an online fashion"): offers arrive at their creation times;
/// the loop must send the acceptance message before each offer's acceptance
/// deadline and the assignment message (with the schedule) before its
/// assignment deadline, committing plan capacity incrementally — it can
/// never revisit a sent assignment, unlike the offline Enterprise which
/// plans a closed horizon at once.
class OnlineEnterprise {
 public:
  explicit OnlineEnterprise(OnlineParams params) : params_(params) {}
  OnlineEnterprise() : OnlineEnterprise(OnlineParams{}) {}

  const OnlineParams& params() const { return params_; }

  /// Simulates the loop over `window` (clock from window.start to
  /// window.end) with `offers` arriving at their creation times. Offers
  /// whose creation time precedes the window are ingested at the first tick.
  /// Equivalent to Begin + Tick-until-Done + Finish.
  Result<OnlineReport> Run(const std::vector<core::FlexOffer>& offers,
                           const timeutil::TimeInterval& window) const;

  // ---- Checkpoint surface (sim/checkpoint) --------------------------------
  //
  // The tick-at-a-time decomposition of Run. `Tick` executes the next
  // planning tick live (consulting the sim.online.* fault seams exactly as
  // Run does) and optionally records its decisions; `Apply` replays a
  // journaled record onto the state without any decision logic or fault
  // draw, so a resumed run reproduces the original byte for byte.

  /// Validates inputs and builds the initial loop state (offers reset to
  /// kOffered, arrival order computed, balancing target derived).
  Result<OnlineLoopState> Begin(const std::vector<core::FlexOffer>& offers,
                                const timeutil::TimeInterval& window) const;

  /// True when every tick of the window has executed (or been applied).
  bool Done(const OnlineLoopState& state) const;

  /// Executes the next tick. When `record` is non-null it receives the
  /// tick's decisions for journaling. Precondition: !Done(state).
  void Tick(OnlineLoopState& state, OnlineTickRecord* record) const;

  /// Applies a journaled tick record: state transitions, outbox wires,
  /// counters, queues, and committed capacity. Rejects records that are out
  /// of order or name unknown offers (kDataLoss — the journal does not match
  /// the snapshot).
  Status Apply(OnlineLoopState& state, const OnlineTickRecord& record) const;

  /// Collapses a mid-run state into one synthetic *folded* record covering
  /// ticks 0..next_tick-1: applying the result onto a fresh Begin() state of
  /// the same offer subset reproduces `state`, with the residual rebuilt
  /// canonically (assignment commits replayed in subset order rather than
  /// original decision order). The shard coordinator splices these folds to
  /// re-home live state across active-prosumer migrations and split/merge
  /// resizes. Precondition: next_tick > 0 (a fresh state has nothing to fold).
  OnlineTickRecord Snapshot(const OnlineLoopState& state) const;

  /// Finalizes the report (imbalance over the window).
  OnlineReport Finish(OnlineLoopState state) const;

 private:
  OnlineParams params_;
};

}  // namespace flexvis::sim

#endif  // FLEXVIS_SIM_ONLINE_H_
