#ifndef FLEXVIS_SIM_MARKET_H_
#define FLEXVIS_SIM_MARKET_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/time_series.h"
#include "util/rng.h"
#include "util/status.h"

namespace flexvis {
class FaultRegistry;
}

namespace flexvis::sim {

/// Day-ahead spot market model (the paper's Nordpool Spot stand-in): spot
/// prices per slice, trades against the plan residual, and the imbalance
/// settlement ("the fee is substantially higher than a spot price").
struct MarketParams {
  uint64_t seed = 99;
  double base_price_eur_mwh = 45.0;
  /// Price sensitivity to scarcity (residual demand) per kWh.
  double scarcity_slope = 0.05;
  double noise = 0.05;
  /// Imbalance energy is settled at spot * this multiplier.
  double imbalance_fee_multiplier = 3.0;
  /// Named day-ahead bidding strategy (see BiddingRegistry); empty selects
  /// kDefaultBiddingName ("spot-residual", the pre-registry behaviour).
  /// $FLEXVIS_BIDDING overrides at resolution time.
  std::string bidding;
  /// Fault registry the sim.market.bid seam consults; nullptr means
  /// FaultRegistry::Global() (the historical behaviour). Per-shard market
  /// instances get their shard's registry so bid-placement fault draws stay
  /// deterministic under shard-parallel execution. Runtime wiring only.
  FaultRegistry* faults = nullptr;
};

/// Settlement of one planning horizon. Every bidding strategy must uphold
/// the conservation invariant total_cost_eur == spot_cost_eur +
/// imbalance_cost_eur (the identity the shard merge tests pin).
struct Settlement {
  /// Energy bought (positive) or sold (negative) per slice on the spot
  /// market to close the plan's residual gap, in kWh. Strategies that
  /// decline slices leave those entries at zero.
  core::TimeSeries traded_kwh;
  /// Spot prices used (EUR/MWh).
  core::TimeSeries prices;
  double spot_cost_eur = 0.0;       // cost of the traded energy (sales negative)
  double imbalance_kwh = 0.0;       // Σ |energy| settled at the penalty price
  double imbalance_cost_eur = 0.0;  // imbalance energy at the penalty price
  double total_cost_eur = 0.0;
};

/// A day-ahead bidding strategy over the aggregated flexibility residual
/// (after Valsomatzis & Pedersen, "Day-ahead Trading of Aggregated Energy
/// Flexibility"): decides how the enterprise trades `plan_residual` against
/// the spot curve and what share of it is booked as imbalance instead.
/// Implementations must be deterministic functions of their inputs and must
/// preserve total_cost_eur == spot_cost_eur + imbalance_cost_eur.
class BiddingStrategy {
 public:
  virtual ~BiddingStrategy() = default;
  virtual std::string name() const = 0;

  virtual Settlement Settle(const MarketParams& params,
                            const core::TimeSeries& plan_residual,
                            const core::TimeSeries& deviation,
                            const core::TimeSeries& prices) const = 0;
};

/// The pre-registry behaviour: the whole residual trades slice-by-slice at
/// spot; plan deviations pay the imbalance fee. Byte-identical to the old
/// hardwired Market::Settle.
class SpotResidualStrategy : public BiddingStrategy {
 public:
  std::string name() const override { return "spot-residual"; }
  Settlement Settle(const MarketParams& params, const core::TimeSeries& plan_residual,
                    const core::TimeSeries& deviation,
                    const core::TimeSeries& prices) const override;
};

/// Conservative start-time-fixing (Valsomatzis & Pedersen's baseline): the
/// aggregator fixes every start before bidding, collapsing the flexibility
/// into one inflexible block traded at the day's mean spot price. Immune to
/// per-slice price spikes but unable to exploit cheap slices; deviations
/// still pay the per-slice imbalance fee.
class StartFixingStrategy : public BiddingStrategy {
 public:
  std::string name() const override { return "start-fixing"; }
  Settlement Settle(const MarketParams& params, const core::TimeSeries& plan_residual,
                    const core::TimeSeries& deviation,
                    const core::TimeSeries& prices) const override;
};

/// Price-threshold bidding: trades a slice only when its price is favorable
/// versus the day's mean — buys (residual > 0) at or below mean, sells
/// (residual < 0) at or above mean. Residual in declined slices is not
/// traded and is settled at the imbalance penalty instead, so the strategy
/// wins on spiky days and loses on flat ones.
class PriceThresholdStrategy : public BiddingStrategy {
 public:
  std::string name() const override { return "price-threshold"; }
  Settlement Settle(const MarketParams& params, const core::TimeSeries& plan_residual,
                    const core::TimeSeries& deviation,
                    const core::TimeSeries& prices) const override;
};

/// Strategy the market uses when MarketParams::bidding is empty — the
/// pre-registry behaviour, so defaults stay byte-identical.
inline constexpr char kDefaultBiddingName[] = "spot-residual";

/// Environment override consulted by EffectiveBiddingName.
inline constexpr char kBiddingEnvVar[] = "FLEXVIS_BIDDING";

/// Resolves the bidding-strategy name a run should use: $FLEXVIS_BIDDING
/// when set and non-empty, else `configured`, else kDefaultBiddingName.
/// Resolution only — the name is validated by BiddingRegistry::Make.
std::string EffectiveBiddingName(const std::string& configured);

/// Registry of named bidding-strategy factories. The global instance
/// carries the three built-ins (spot-residual, start-fixing,
/// price-threshold); tests and extensions may Register more. Thread-safe.
class BiddingRegistry {
 public:
  using Factory = std::function<std::unique_ptr<BiddingStrategy>()>;

  /// The process-wide registry, pre-populated with the built-ins.
  static BiddingRegistry& Global();

  /// Registers `factory` under `name`; kAlreadyExists on a duplicate name.
  Status Register(const std::string& name, Factory factory);

  /// Registered names, sorted (the order error messages cite them in).
  std::vector<std::string> Names() const;

  /// True iff `name` is registered.
  bool Has(const std::string& name) const;

  /// Instantiates the strategy registered under `name`. An unknown name is
  /// a typed kInvalidArgument naming the registered options.
  Result<std::unique_ptr<BiddingStrategy>> Make(const std::string& name) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

class Market {
 public:
  explicit Market(MarketParams params) : params_(params) {}
  Market() : Market(MarketParams{}) {}

  const MarketParams& params() const { return params_; }

  /// Spot price curve over `window`: base price pushed up by residual demand
  /// (demand minus RES) plus noise.
  core::TimeSeries MakePrices(const timeutil::TimeInterval& window,
                              const core::TimeSeries& residual_demand) const;

  /// Settles a horizon with the spot-residual strategy (the primitive the
  /// other strategies are measured against): the enterprise trades
  /// `plan_residual` (demand the plan could not cover internally; negative =
  /// surplus sold) at spot, and pays the imbalance fee on |realized -
  /// planned| deviations.
  Settlement Settle(const core::TimeSeries& plan_residual,
                    const core::TimeSeries& deviation,
                    const core::TimeSeries& prices) const;

  /// Strategy-dispatching settlement behind the `sim.market.bid` injection
  /// point: resolves params().bidding (with the $FLEXVIS_BIDDING override)
  /// against BiddingRegistry::Global() — an unknown name is a typed
  /// kInvalidArgument naming the registered options, surfaced before any
  /// bid is placed. Bid placement on the spot exchange is the pipeline's
  /// outward-facing network call, so it retries transient faults under the
  /// default policy and surfaces a typed Status when the exchange stays
  /// unreachable. Callers degrade via SettleAllAsImbalance (see
  /// Enterprise::PlanHorizon).
  Result<Settlement> TrySettle(const core::TimeSeries& plan_residual,
                               const core::TimeSeries& deviation,
                               const core::TimeSeries& prices) const;

  /// Degraded settlement for an unreachable spot market: no trade executes
  /// (traded_kwh all zero, spot cost zero) and the *entire* residual — not
  /// just the plan deviation — is settled at the imbalance penalty price,
  /// the fee the paper says "is substantially higher than a spot price".
  Settlement SettleAllAsImbalance(const core::TimeSeries& plan_residual,
                                  const core::TimeSeries& deviation,
                                  const core::TimeSeries& prices) const;

 private:
  MarketParams params_;
};

}  // namespace flexvis::sim

#endif  // FLEXVIS_SIM_MARKET_H_
