#ifndef FLEXVIS_SIM_MARKET_H_
#define FLEXVIS_SIM_MARKET_H_

#include "core/time_series.h"
#include "util/rng.h"
#include "util/status.h"

namespace flexvis {
class FaultRegistry;
}

namespace flexvis::sim {

/// Day-ahead spot market model (the paper's Nordpool Spot stand-in): spot
/// prices per slice, trades against the plan residual, and the imbalance
/// settlement ("the fee is substantially higher than a spot price").
struct MarketParams {
  uint64_t seed = 99;
  double base_price_eur_mwh = 45.0;
  /// Price sensitivity to scarcity (residual demand) per kWh.
  double scarcity_slope = 0.05;
  double noise = 0.05;
  /// Imbalance energy is settled at spot * this multiplier.
  double imbalance_fee_multiplier = 3.0;
  /// Fault registry the sim.market.bid seam consults; nullptr means
  /// FaultRegistry::Global() (the historical behaviour). Per-shard market
  /// instances get their shard's registry so bid-placement fault draws stay
  /// deterministic under shard-parallel execution. Runtime wiring only.
  FaultRegistry* faults = nullptr;
};

/// Settlement of one planning horizon.
struct Settlement {
  /// Energy bought (positive) or sold (negative) per slice on the spot
  /// market to close the plan's residual gap, in kWh.
  core::TimeSeries traded_kwh;
  /// Spot prices used (EUR/MWh).
  core::TimeSeries prices;
  double spot_cost_eur = 0.0;       // cost of the traded energy (sales negative)
  double imbalance_kwh = 0.0;       // Σ |realized - plan| settled as imbalance
  double imbalance_cost_eur = 0.0;  // imbalance energy at the penalty price
  double total_cost_eur = 0.0;
};

class Market {
 public:
  explicit Market(MarketParams params) : params_(params) {}
  Market() : Market(MarketParams{}) {}

  const MarketParams& params() const { return params_; }

  /// Spot price curve over `window`: base price pushed up by residual demand
  /// (demand minus RES) plus noise.
  core::TimeSeries MakePrices(const timeutil::TimeInterval& window,
                              const core::TimeSeries& residual_demand) const;

  /// Settles a horizon: the enterprise trades `plan_residual` (demand the
  /// plan could not cover internally; negative = surplus sold) at spot, and
  /// pays the imbalance fee on |realized - planned| deviations.
  Settlement Settle(const core::TimeSeries& plan_residual,
                    const core::TimeSeries& deviation,
                    const core::TimeSeries& prices) const;

  /// Settle() behind the `sim.market.bid` injection point: bid placement on
  /// the spot exchange is the pipeline's outward-facing network call, so it
  /// retries transient faults under the default policy and surfaces a typed
  /// Status when the exchange stays unreachable. Callers degrade via
  /// SettleAllAsImbalance (see Enterprise::PlanHorizon).
  Result<Settlement> TrySettle(const core::TimeSeries& plan_residual,
                               const core::TimeSeries& deviation,
                               const core::TimeSeries& prices) const;

  /// Degraded settlement for an unreachable spot market: no trade executes
  /// (traded_kwh all zero, spot cost zero) and the *entire* residual — not
  /// just the plan deviation — is settled at the imbalance penalty price,
  /// the fee the paper says "is substantially higher than a spot price".
  Settlement SettleAllAsImbalance(const core::TimeSeries& plan_residual,
                                  const core::TimeSeries& deviation,
                                  const core::TimeSeries& prices) const;

 private:
  MarketParams params_;
};

}  // namespace flexvis::sim

#endif  // FLEXVIS_SIM_MARKET_H_
