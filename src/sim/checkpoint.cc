#include "sim/checkpoint.h"

#include <cstdlib>
#include <utility>

#include "core/messages.h"
#include "sim/forecaster.h"
#include "sim/market.h"
#include "util/json.h"
#include "util/store.h"
#include "util/strings.h"

namespace flexvis::sim {

namespace {

JsonValue IdArray(const std::vector<core::FlexOfferId>& ids) {
  JsonValue out = JsonValue::Array();
  for (core::FlexOfferId id : ids) out.Append(JsonValue::Int(id));
  return out;
}

Status ReadIdArray(const JsonValue& parent, std::string_view key,
                   std::vector<core::FlexOfferId>* out) {
  const JsonValue& array = parent.Get(key);
  if (!array.is_array()) {
    return DataLossError(StrFormat("tick record field '%.*s' is not an array",
                                   static_cast<int>(key.size()), key.data()));
  }
  out->clear();
  for (size_t i = 0; i < array.size(); ++i) {
    if (!array[i].is_int()) {
      return DataLossError(StrFormat("tick record field '%.*s' holds a non-integer id",
                                     static_cast<int>(key.size()), key.data()));
    }
    out->push_back(array[i].AsInt());
  }
  return OkStatus();
}

/// Optional-with-default integer: pre-overload / pre-compaction checkpoints
/// lack the newer keys and must keep resuming with the historical behaviour.
int64_t GetIntOr(const JsonValue& json, std::string_view key, int64_t fallback) {
  if (!json.Has(key)) return fallback;
  Result<int64_t> value = json.GetInt(key);
  return value.ok() ? *value : fallback;
}

/// Optional-with-default string, same contract as GetIntOr: pre-strategy
/// checkpoints lack the pinned-strategy keys and resume under the defaults.
std::string GetStringOr(const JsonValue& json, std::string_view key, std::string fallback) {
  if (!json.Has(key)) return fallback;
  Result<std::string> value = json.GetString(key);
  return value.ok() ? *std::move(value) : std::move(fallback);
}

/// meta.json <-> (window, params). Every field the loop's decisions depend
/// on must round-trip exactly; doubles serialize as %.17g so they do.
std::string EncodeMeta(const OnlineParams& params, const timeutil::TimeInterval& window) {
  JsonValue meta = JsonValue::Object();
  meta.Set("schema_version", JsonValue::Int(1));
  meta.Set("window_start_min", JsonValue::Int(window.start.minutes()));
  meta.Set("window_end_min", JsonValue::Int(window.end.minutes()));
  meta.Set("tick_minutes", JsonValue::Int(params.tick_minutes));
  meta.Set("rejection_threshold", JsonValue::Double(params.scheduler.rejection_threshold));
  meta.Set("scheduler_order", JsonValue::Int(static_cast<int64_t>(params.scheduler.order)));
  meta.Set("energy_seed", JsonValue::Int(static_cast<int64_t>(params.energy.seed)));
  meta.Set("wind_mean_kwh", JsonValue::Double(params.energy.wind_mean_kwh));
  meta.Set("solar_peak_kwh", JsonValue::Double(params.energy.solar_peak_kwh));
  meta.Set("demand_base_kwh", JsonValue::Double(params.energy.demand_base_kwh));
  meta.Set("energy_noise", JsonValue::Double(params.energy.noise));
  meta.Set("max_ingest_per_tick", JsonValue::Int(params.max_ingest_per_tick));
  meta.Set("ingest_queue_capacity", JsonValue::Int(params.ingest_queue_capacity));
  meta.Set("shed_policy", JsonValue::Int(static_cast<int64_t>(params.shed_policy)));
  meta.Set("compact_ticks", JsonValue::Int(params.compact_ticks));
  meta.Set("compact_bytes", JsonValue::Int(params.compact_bytes));
  meta.Set("forecaster", JsonValue::Str(params.forecaster));
  meta.Set("bidding", JsonValue::Str(params.bidding));
  return meta.Dump();
}

Status DecodeMeta(std::string_view text, OnlineParams* params,
                  timeutil::TimeInterval* window) {
  Result<JsonValue> parsed = JsonValue::Parse(text);
  if (!parsed.ok() || !parsed->is_object()) {
    return DataLossError("checkpoint meta.json is unparsable");
  }
  const JsonValue& meta = *parsed;
  Result<int64_t> start = meta.GetInt("window_start_min");
  Result<int64_t> end = meta.GetInt("window_end_min");
  Result<int64_t> tick = meta.GetInt("tick_minutes");
  Result<double> threshold = meta.GetDouble("rejection_threshold");
  Result<int64_t> order = meta.GetInt("scheduler_order");
  Result<int64_t> seed = meta.GetInt("energy_seed");
  Result<double> wind = meta.GetDouble("wind_mean_kwh");
  Result<double> solar = meta.GetDouble("solar_peak_kwh");
  Result<double> demand = meta.GetDouble("demand_base_kwh");
  Result<double> noise = meta.GetDouble("energy_noise");
  for (const Status* status :
       {&start.status(), &end.status(), &tick.status(), &threshold.status(),
        &order.status(), &seed.status(), &wind.status(), &solar.status(),
        &demand.status(), &noise.status()}) {
    if (!status->ok()) {
      return DataLossError(StrFormat("checkpoint meta.json is incomplete: %s",
                                     status->message().c_str()));
    }
  }
  *window = timeutil::TimeInterval(timeutil::TimePoint::FromMinutes(*start),
                                   timeutil::TimePoint::FromMinutes(*end));
  params->tick_minutes = *tick;
  params->scheduler.rejection_threshold = *threshold;
  params->scheduler.order = static_cast<core::SchedulerParams::Order>(*order);
  params->energy.seed = static_cast<uint64_t>(*seed);
  params->energy.wind_mean_kwh = *wind;
  params->energy.solar_peak_kwh = *solar;
  params->energy.demand_base_kwh = *demand;
  params->energy.noise = *noise;
  params->max_ingest_per_tick = static_cast<int>(GetIntOr(meta, "max_ingest_per_tick", 0));
  params->ingest_queue_capacity =
      static_cast<int>(GetIntOr(meta, "ingest_queue_capacity", 0));
  params->shed_policy = static_cast<ShedPolicy>(GetIntOr(meta, "shed_policy", 0));
  params->compact_ticks = static_cast<int>(GetIntOr(meta, "compact_ticks", 0));
  params->compact_bytes = GetIntOr(meta, "compact_bytes", 0);
  // Pinned strategy identity. Absent keys (pre-strategy checkpoints) resume
  // under the defaults; a *present* unknown name is a configuration error
  // surfaced before any replay, naming the registered options.
  params->forecaster = GetStringOr(meta, "forecaster", "");
  params->bidding = GetStringOr(meta, "bidding", "");
  if (!params->forecaster.empty()) {
    Result<std::unique_ptr<Forecaster>> forecaster =
        ForecasterRegistry::Global().Make(params->forecaster);
    if (!forecaster.ok()) return forecaster.status();
  }
  if (!params->bidding.empty()) {
    Result<std::unique_ptr<BiddingStrategy>> bidding =
        BiddingRegistry::Global().Make(params->bidding);
    if (!bidding.ok()) return bidding.status();
  }
  params->faults = nullptr;
  return OkStatus();
}

std::string EncodeOffers(const std::vector<core::FlexOffer>& offers) {
  // Input order preserved: the report's offers vector mirrors it, and
  // byte-identical recovery depends on the exact order coming back.
  std::string lines;
  for (const core::FlexOffer& offer : offers) {
    lines += core::EncodeFlexOffer(offer);
    lines += '\n';
  }
  return lines;
}

Status DecodeOffers(std::string_view lines, std::vector<core::FlexOffer>* offers) {
  offers->clear();
  size_t start = 0;
  while (start < lines.size()) {
    size_t end = lines.find('\n', start);
    if (end == std::string_view::npos) end = lines.size();
    std::string_view line = lines.substr(start, end - start);
    if (!StripWhitespace(line).empty()) {
      Result<core::FlexOffer> offer = core::DecodeFlexOffer(line);
      if (!offer.ok()) {
        return DataLossError(StrFormat("checkpoint offers.jsonl: bad record near byte %zu: %s",
                                       start, offer.status().message().c_str()));
      }
      offers->push_back(*std::move(offer));
    }
    start = end + 1;
  }
  return OkStatus();
}

/// Executes the remaining ticks live: journal append + flush before the next
/// tick starts (the flush is the durability point), folding every record
/// into `fold` and compacting the store on the params cadences.
/// `journal_bytes` is the record payload already sitting in the WAL when the
/// loop starts (0 on a fresh run; the replayed tail's bytes on a resume), so
/// the byte trigger continues exactly where the interrupted run left off.
Result<OnlineReport> ContinueJournaled(const OnlineEnterprise& enterprise,
                                       OnlineLoopState state, DurableStore& store,
                                       const StoreFiles& snapshot_files,
                                       OnlineTickRecord* fold, int* ticks_continued,
                                       uint64_t journal_bytes) {
  const int compact_ticks = enterprise.params().compact_ticks;
  const int64_t compact_bytes = enterprise.params().compact_bytes;
  while (!enterprise.Done(state)) {
    OnlineTickRecord record;
    enterprise.Tick(state, &record);
    const std::string encoded = EncodeTickRecord(record);
    FLEXVIS_RETURN_IF_ERROR(store.Append(encoded));
    FLEXVIS_RETURN_IF_ERROR(store.Flush());
    journal_bytes += encoded.size();
    FoldTickRecordInto(fold, record);
    if (ticks_continued != nullptr) ++*ticks_continued;
    const bool ticks_due = compact_ticks > 0 && (record.tick + 1) % compact_ticks == 0;
    const bool bytes_due =
        compact_bytes > 0 && journal_bytes >= static_cast<uint64_t>(compact_bytes);
    if (ticks_due || bytes_due) {
      // Fold the journal into a new generation: the fold covers every tick
      // since Begin (including any previously folded base), so the new
      // snapshot alone reproduces the post-tick state and the WAL restarts
      // empty. The tick cadence keys off the absolute tick index and the
      // byte trigger off the deterministic encoded record sizes, so a
      // resumed run compacts at the same boundaries the uninterrupted run
      // would.
      StoreFiles files = snapshot_files;
      files.emplace_back(kCheckpointStateFile, EncodeTickRecord(*fold));
      FLEXVIS_RETURN_IF_ERROR(store.Compact(files, JsonValue()));
      journal_bytes = 0;
    }
  }
  FLEXVIS_RETURN_IF_ERROR(store.Close());
  return enterprise.Finish(std::move(state));
}

}  // namespace

namespace {

/// Shared parse for the compaction env knobs: unset/empty = 0 (off); a set
/// value must be a strictly positive integer or the result is an
/// InvalidArgument error naming the variable.
Result<int64_t> CompactEnvValue(const char* var) {
  const char* env = std::getenv(var);
  if (env == nullptr || *env == '\0') return static_cast<int64_t>(0);
  char* end = nullptr;
  const long long value = std::strtoll(env, &end, 10);
  if (end == env || *end != '\0') {
    return InvalidArgumentError(
        StrFormat("$%s is not an integer: '%s'", var, env));
  }
  if (value <= 0) {
    return InvalidArgumentError(StrFormat(
        "$%s must be a positive integer (unset it to disable compaction), got '%s'", var,
        env));
  }
  return static_cast<int64_t>(value);
}

}  // namespace

Result<int> CompactTicksFromEnv() {
  Result<int64_t> value = CompactEnvValue(kCompactTicksEnvVar);
  if (!value.ok()) return value.status();
  return static_cast<int>(*value);
}

Result<int64_t> CompactBytesFromEnv() { return CompactEnvValue(kCompactBytesEnvVar); }

StoreOptions CheckpointStoreOptions() {
  StoreOptions options;
  options.manifest_name = kCheckpointManifestFile;
  options.journal_name = kCheckpointJournalFile;
  return options;
}

void FoldTickRecordInto(OnlineTickRecord* fold, const OnlineTickRecord& record) {
  fold->folded = true;
  fold->tick = record.tick;
  fold->shed_policy = record.shed_policy;
  fold->changes.insert(fold->changes.end(), record.changes.begin(), record.changes.end());
  fold->sent.insert(fold->sent.end(), record.sent.begin(), record.sent.end());
  fold->offers_received = record.offers_received;
  fold->accepted = record.accepted;
  fold->rejected = record.rejected;
  fold->assigned = record.assigned;
  fold->missed_acceptance = record.missed_acceptance;
  fold->missed_assignment = record.missed_assignment;
  fold->dropped_ingest = record.dropped_ingest;
  fold->failed_sends = record.failed_sends;
  fold->shed_offers = record.shed_offers;
  fold->queue_high_watermark = record.queue_high_watermark;
  fold->next_arrival = record.next_arrival;
  fold->pending_acceptance = record.pending_acceptance;
  fold->pending_assignment = record.pending_assignment;
}

OnlineTickRecord FoldTickRecords(const std::vector<OnlineTickRecord>& records) {
  OnlineTickRecord fold;
  for (const OnlineTickRecord& record : records) FoldTickRecordInto(&fold, record);
  return fold;
}

StoreFiles EncodeOnlineSnapshot(const OnlineParams& params,
                                const std::vector<core::FlexOffer>& offers,
                                const timeutil::TimeInterval& window) {
  StoreFiles files;
  files.emplace_back(kCheckpointMetaFile, EncodeMeta(params, window));
  files.emplace_back(kCheckpointOffersFile, EncodeOffers(offers));
  return files;
}

Status DecodeOnlineSnapshot(const StoreRecovery& recovery, OnlineParams* params,
                            std::vector<core::FlexOffer>* offers,
                            timeutil::TimeInterval* window) {
  auto meta = recovery.files.find(kCheckpointMetaFile);
  if (meta == recovery.files.end()) {
    return DataLossError("checkpoint store has no meta.json");
  }
  FLEXVIS_RETURN_IF_ERROR(DecodeMeta(meta->second, params, window));
  auto offer_lines = recovery.files.find(kCheckpointOffersFile);
  if (offer_lines == recovery.files.end()) {
    return DataLossError("checkpoint store has no offers.jsonl");
  }
  return DecodeOffers(offer_lines->second, offers);
}

JsonValue EncodeStateChange(const OnlineStateChange& change) {
  JsonValue c = JsonValue::Object();
  c.Set("offer", JsonValue::Int(change.offer));
  c.Set("state", JsonValue::Int(static_cast<int64_t>(change.state)));
  if (change.schedule.has_value()) {
    c.Set("start_min", JsonValue::Int(change.schedule->start.minutes()));
    JsonValue kwh = JsonValue::Array();
    for (double e : change.schedule->energy_kwh) kwh.Append(JsonValue::Double(e));
    c.Set("kwh", std::move(kwh));
  }
  return c;
}

Result<OnlineStateChange> DecodeStateChange(const JsonValue& c) {
  Result<int64_t> offer = c.GetInt("offer");
  Result<int64_t> state = c.GetInt("state");
  if (!offer.ok() || !state.ok()) {
    return DataLossError("offer-state change is malformed");
  }
  OnlineStateChange change;
  change.offer = *offer;
  change.state = static_cast<core::FlexOfferState>(*state);
  if (c.Has("start_min")) {
    Result<int64_t> start = c.GetInt("start_min");
    const JsonValue& kwh = c.Get("kwh");
    if (!start.ok() || !kwh.is_array()) {
      return DataLossError("offer-state change has a bad schedule");
    }
    core::Schedule schedule;
    schedule.start = timeutil::TimePoint::FromMinutes(*start);
    for (size_t k = 0; k < kwh.size(); ++k) {
      if (!kwh[k].is_number()) {
        return DataLossError("offer-state change has a bad schedule");
      }
      schedule.energy_kwh.push_back(kwh[k].AsDouble());
    }
    change.schedule = std::move(schedule);
  }
  return change;
}

std::string EncodeTickRecord(const OnlineTickRecord& record) {
  JsonValue json = JsonValue::Object();
  json.Set("tick", JsonValue::Int(record.tick));
  if (record.folded) json.Set("folded", JsonValue::Bool(true));
  json.Set("shed_policy", JsonValue::Int(record.shed_policy));
  JsonValue changes = JsonValue::Array();
  for (const OnlineStateChange& change : record.changes) {
    changes.Append(EncodeStateChange(change));
  }
  json.Set("changes", std::move(changes));
  JsonValue sent = JsonValue::Array();
  for (const std::string& wire : record.sent) sent.Append(JsonValue::Str(wire));
  json.Set("sent", std::move(sent));
  json.Set("received", JsonValue::Int(record.offers_received));
  json.Set("accepted", JsonValue::Int(record.accepted));
  json.Set("rejected", JsonValue::Int(record.rejected));
  json.Set("assigned", JsonValue::Int(record.assigned));
  json.Set("missed_acc", JsonValue::Int(record.missed_acceptance));
  json.Set("missed_asn", JsonValue::Int(record.missed_assignment));
  json.Set("dropped", JsonValue::Int(record.dropped_ingest));
  json.Set("failed_sends", JsonValue::Int(record.failed_sends));
  json.Set("shed", JsonValue::Int(record.shed_offers));
  json.Set("qhw", JsonValue::Int(record.queue_high_watermark));
  json.Set("next_arrival", JsonValue::Int(record.next_arrival));
  json.Set("pend_acc", IdArray(record.pending_acceptance));
  json.Set("pend_asn", IdArray(record.pending_assignment));
  return json.Dump();
}

Result<OnlineTickRecord> DecodeTickRecord(std::string_view text) {
  Result<JsonValue> parsed = JsonValue::Parse(text);
  if (!parsed.ok() || !parsed->is_object()) {
    return DataLossError("journal record is not a JSON object");
  }
  const JsonValue& json = *parsed;
  OnlineTickRecord record;
  Result<int64_t> tick = json.GetInt("tick");
  Result<int64_t> received = json.GetInt("received");
  Result<int64_t> accepted = json.GetInt("accepted");
  Result<int64_t> rejected = json.GetInt("rejected");
  Result<int64_t> assigned = json.GetInt("assigned");
  Result<int64_t> missed_acc = json.GetInt("missed_acc");
  Result<int64_t> missed_asn = json.GetInt("missed_asn");
  Result<int64_t> dropped = json.GetInt("dropped");
  Result<int64_t> failed_sends = json.GetInt("failed_sends");
  Result<int64_t> next_arrival = json.GetInt("next_arrival");
  for (const Status* status :
       {&tick.status(), &received.status(), &accepted.status(), &rejected.status(),
        &assigned.status(), &missed_acc.status(), &missed_asn.status(), &dropped.status(),
        &failed_sends.status(), &next_arrival.status()}) {
    if (!status->ok()) {
      return DataLossError(
          StrFormat("journal record is incomplete: %s", status->message().c_str()));
    }
  }
  record.tick = static_cast<int>(*tick);
  record.folded = json.Get("folded").is_bool() && json.Get("folded").AsBool();
  record.shed_policy = static_cast<int>(GetIntOr(json, "shed_policy", 0));
  record.offers_received = static_cast<int>(*received);
  record.accepted = static_cast<int>(*accepted);
  record.rejected = static_cast<int>(*rejected);
  record.assigned = static_cast<int>(*assigned);
  record.missed_acceptance = static_cast<int>(*missed_acc);
  record.missed_assignment = static_cast<int>(*missed_asn);
  record.dropped_ingest = static_cast<int>(*dropped);
  record.failed_sends = static_cast<int>(*failed_sends);
  record.shed_offers = static_cast<int>(GetIntOr(json, "shed", 0));
  record.queue_high_watermark = static_cast<int>(GetIntOr(json, "qhw", 0));
  record.next_arrival = *next_arrival;

  const JsonValue& changes = json.Get("changes");
  if (!changes.is_array()) return DataLossError("journal record lacks a 'changes' array");
  for (size_t i = 0; i < changes.size(); ++i) {
    Result<OnlineStateChange> change = DecodeStateChange(changes[i]);
    if (!change.ok()) {
      return DataLossError(StrFormat("journal record change %zu: %s", i,
                                     change.status().message().c_str()));
    }
    record.changes.push_back(*std::move(change));
  }

  const JsonValue& sent = json.Get("sent");
  if (!sent.is_array()) return DataLossError("journal record lacks a 'sent' array");
  for (size_t i = 0; i < sent.size(); ++i) {
    if (!sent[i].is_string()) {
      return DataLossError(StrFormat("journal record sent[%zu] is not a string", i));
    }
    record.sent.push_back(sent[i].AsString());
  }
  FLEXVIS_RETURN_IF_ERROR(ReadIdArray(json, "pend_acc", &record.pending_acceptance));
  FLEXVIS_RETURN_IF_ERROR(ReadIdArray(json, "pend_asn", &record.pending_assignment));
  return record;
}

Result<OnlineReport> RunOnlineCheckpointed(const OnlineParams& params,
                                           const std::vector<core::FlexOffer>& offers,
                                           const timeutil::TimeInterval& window,
                                           const std::string& directory) {
  OnlineEnterprise enterprise(params);
  Result<OnlineLoopState> state = enterprise.Begin(offers, window);
  if (!state.ok()) return state.status();

  // Create invalidates any previous checkpoint (manifest removed first) and
  // commits the generation-0 snapshot before the first tick runs.
  const StoreFiles snapshot = EncodeOnlineSnapshot(params, offers, window);
  Result<DurableStore> store =
      DurableStore::Create(directory, CheckpointStoreOptions(), snapshot, JsonValue());
  if (!store.ok()) return store.status();

  OnlineTickRecord fold;
  return ContinueJournaled(enterprise, *std::move(state), *store, snapshot, &fold, nullptr,
                           0);
}

Result<OnlineReport> ResumeOnline(const std::string& directory, ResumeInfo* info) {
  if (info != nullptr) *info = ResumeInfo{};

  // Store integrity gates everything: a crash before the manifest landed
  // means no tick ever ran (the journal is only written after the snapshot
  // commits), so the caller can simply rerun from its inputs. Resume also
  // repairs a torn journal tail and garbage-collects compaction debris.
  StoreRecovery recovery;
  Result<DurableStore> store =
      DurableStore::Resume(directory, CheckpointStoreOptions(), &recovery);
  if (!store.ok()) return store.status();

  OnlineParams params;
  timeutil::TimeInterval window;
  std::vector<core::FlexOffer> offers;
  FLEXVIS_RETURN_IF_ERROR(DecodeOnlineSnapshot(recovery, &params, &offers, &window));

  OnlineEnterprise enterprise(params);
  Result<OnlineLoopState> state = enterprise.Begin(offers, window);
  if (!state.ok()) return state.status();

  // A compacted generation carries the fold of every tick before the
  // compaction point as state.json — one Apply recovers them all.
  OnlineTickRecord fold;
  auto folded_state = recovery.files.find(kCheckpointStateFile);
  if (folded_state != recovery.files.end()) {
    Result<OnlineTickRecord> base = DecodeTickRecord(folded_state->second);
    if (!base.ok()) return base.status();
    if (!base->folded) {
      return DataLossError("checkpoint state.json is not a folded tick record");
    }
    FLEXVIS_RETURN_IF_ERROR(enterprise.Apply(*state, *base));
    fold = *std::move(base);
    if (info != nullptr) info->ticks_folded = fold.tick + 1;
  }

  // Replay the journal tail of the committed generation, accounting its
  // record payload so the byte trigger resumes mid-budget.
  uint64_t tail_bytes = 0;
  for (const std::string& record_text : recovery.records) {
    Result<OnlineTickRecord> record = DecodeTickRecord(record_text);
    if (!record.ok()) return record.status();
    FLEXVIS_RETURN_IF_ERROR(enterprise.Apply(*state, *record));
    FoldTickRecordInto(&fold, *record);
    tail_bytes += record_text.size();
  }
  if (info != nullptr) {
    info->ticks_replayed = static_cast<int>(recovery.records.size());
    info->generation = recovery.generation;
    info->torn_tail = recovery.torn_tail;
    info->torn_bytes = recovery.torn_bytes;
  }

  // A journal tail that ends on a compaction boundary — the tick cadence, or
  // a record payload at/over the byte budget — means the crash interrupted
  // that boundary's compaction: an uninterrupted run compacts before the
  // next tick starts, so it never leaves such a tail. Re-execute the
  // compaction now: the directory converges to the layout the uninterrupted
  // run would have, and the bounded-replay guarantees (at most compact_ticks
  // records / compact_bytes payload, plus one record) hold again after
  // recovery.
  const StoreFiles snapshot = EncodeOnlineSnapshot(params, offers, window);
  const bool ticks_due = params.compact_ticks > 0 &&
                         (fold.tick + 1) % params.compact_ticks == 0;
  const bool bytes_due = params.compact_bytes > 0 &&
                         tail_bytes >= static_cast<uint64_t>(params.compact_bytes);
  if (!recovery.records.empty() && (ticks_due || bytes_due)) {
    StoreFiles files = snapshot;
    files.emplace_back(kCheckpointStateFile, EncodeTickRecord(fold));
    FLEXVIS_RETURN_IF_ERROR(store->Compact(files, JsonValue()));
    tail_bytes = 0;
  }
  return ContinueJournaled(enterprise, *std::move(state), *store, snapshot, &fold,
                           info != nullptr ? &info->ticks_continued : nullptr, tail_bytes);
}

}  // namespace flexvis::sim
