#include "sim/checkpoint.h"

#include <filesystem>
#include <utility>

#include "core/messages.h"
#include "util/fileio.h"
#include "util/journal.h"
#include "util/json.h"
#include "util/strings.h"

namespace flexvis::sim {

namespace {

namespace fs = std::filesystem;

JsonValue IdArray(const std::vector<core::FlexOfferId>& ids) {
  JsonValue out = JsonValue::Array();
  for (core::FlexOfferId id : ids) out.Append(JsonValue::Int(id));
  return out;
}

Status ReadIdArray(const JsonValue& parent, std::string_view key,
                   std::vector<core::FlexOfferId>* out) {
  const JsonValue& array = parent.Get(key);
  if (!array.is_array()) {
    return DataLossError(StrFormat("tick record field '%.*s' is not an array",
                                   static_cast<int>(key.size()), key.data()));
  }
  out->clear();
  for (size_t i = 0; i < array.size(); ++i) {
    if (!array[i].is_int()) {
      return DataLossError(StrFormat("tick record field '%.*s' holds a non-integer id",
                                     static_cast<int>(key.size()), key.data()));
    }
    out->push_back(array[i].AsInt());
  }
  return OkStatus();
}

/// meta.json <-> (window, params). Every field the loop's decisions depend
/// on must round-trip exactly; doubles serialize as %.17g so they do.
std::string EncodeMeta(const OnlineParams& params, const timeutil::TimeInterval& window) {
  JsonValue meta = JsonValue::Object();
  meta.Set("schema_version", JsonValue::Int(1));
  meta.Set("window_start_min", JsonValue::Int(window.start.minutes()));
  meta.Set("window_end_min", JsonValue::Int(window.end.minutes()));
  meta.Set("tick_minutes", JsonValue::Int(params.tick_minutes));
  meta.Set("rejection_threshold", JsonValue::Double(params.scheduler.rejection_threshold));
  meta.Set("scheduler_order", JsonValue::Int(static_cast<int64_t>(params.scheduler.order)));
  meta.Set("energy_seed", JsonValue::Int(static_cast<int64_t>(params.energy.seed)));
  meta.Set("wind_mean_kwh", JsonValue::Double(params.energy.wind_mean_kwh));
  meta.Set("solar_peak_kwh", JsonValue::Double(params.energy.solar_peak_kwh));
  meta.Set("demand_base_kwh", JsonValue::Double(params.energy.demand_base_kwh));
  meta.Set("energy_noise", JsonValue::Double(params.energy.noise));
  meta.Set("max_ingest_per_tick", JsonValue::Int(params.max_ingest_per_tick));
  meta.Set("ingest_queue_capacity", JsonValue::Int(params.ingest_queue_capacity));
  return meta.Dump();
}

/// Optional-with-default integer: pre-overload checkpoints lack the newer
/// keys and must keep resuming with the historical (unlimited) behaviour.
int64_t GetIntOr(const JsonValue& json, std::string_view key, int64_t fallback) {
  if (!json.Has(key)) return fallback;
  Result<int64_t> value = json.GetInt(key);
  return value.ok() ? *value : fallback;
}

Status DecodeMeta(std::string_view text, OnlineParams* params,
                  timeutil::TimeInterval* window) {
  Result<JsonValue> parsed = JsonValue::Parse(text);
  if (!parsed.ok() || !parsed->is_object()) {
    return DataLossError("checkpoint meta.json is unparsable");
  }
  const JsonValue& meta = *parsed;
  Result<int64_t> start = meta.GetInt("window_start_min");
  Result<int64_t> end = meta.GetInt("window_end_min");
  Result<int64_t> tick = meta.GetInt("tick_minutes");
  Result<double> threshold = meta.GetDouble("rejection_threshold");
  Result<int64_t> order = meta.GetInt("scheduler_order");
  Result<int64_t> seed = meta.GetInt("energy_seed");
  Result<double> wind = meta.GetDouble("wind_mean_kwh");
  Result<double> solar = meta.GetDouble("solar_peak_kwh");
  Result<double> demand = meta.GetDouble("demand_base_kwh");
  Result<double> noise = meta.GetDouble("energy_noise");
  for (const Status* status :
       {&start.status(), &end.status(), &tick.status(), &threshold.status(),
        &order.status(), &seed.status(), &wind.status(), &solar.status(),
        &demand.status(), &noise.status()}) {
    if (!status->ok()) {
      return DataLossError(StrFormat("checkpoint meta.json is incomplete: %s",
                                     status->message().c_str()));
    }
  }
  *window = timeutil::TimeInterval(timeutil::TimePoint::FromMinutes(*start),
                                   timeutil::TimePoint::FromMinutes(*end));
  params->tick_minutes = *tick;
  params->scheduler.rejection_threshold = *threshold;
  params->scheduler.order = static_cast<core::SchedulerParams::Order>(*order);
  params->energy.seed = static_cast<uint64_t>(*seed);
  params->energy.wind_mean_kwh = *wind;
  params->energy.solar_peak_kwh = *solar;
  params->energy.demand_base_kwh = *demand;
  params->energy.noise = *noise;
  params->max_ingest_per_tick = static_cast<int>(GetIntOr(meta, "max_ingest_per_tick", 0));
  params->ingest_queue_capacity =
      static_cast<int>(GetIntOr(meta, "ingest_queue_capacity", 0));
  params->faults = nullptr;
  return OkStatus();
}

std::string EncodeOffers(const std::vector<core::FlexOffer>& offers) {
  // Input order preserved: the report's offers vector mirrors it, and
  // byte-identical recovery depends on the exact order coming back.
  std::string lines;
  for (const core::FlexOffer& offer : offers) {
    lines += core::EncodeFlexOffer(offer);
    lines += '\n';
  }
  return lines;
}

Status DecodeOffers(std::string_view lines, std::vector<core::FlexOffer>* offers) {
  offers->clear();
  size_t start = 0;
  while (start < lines.size()) {
    size_t end = lines.find('\n', start);
    if (end == std::string_view::npos) end = lines.size();
    std::string_view line = lines.substr(start, end - start);
    if (!StripWhitespace(line).empty()) {
      Result<core::FlexOffer> offer = core::DecodeFlexOffer(line);
      if (!offer.ok()) {
        return DataLossError(StrFormat("checkpoint offers.jsonl: bad record near byte %zu: %s",
                                       start, offer.status().message().c_str()));
      }
      offers->push_back(*std::move(offer));
    }
    start = end + 1;
  }
  return OkStatus();
}

/// Executes the remaining ticks live, journaling each one (append + flush
/// before the next tick starts: the flush is the durability point).
Result<OnlineReport> ContinueJournaled(const OnlineEnterprise& enterprise,
                                       OnlineLoopState state, const fs::path& journal_path,
                                       int* ticks_continued) {
  Result<JournalWriter> writer = JournalWriter::Open(journal_path.string());
  if (!writer.ok()) return writer.status();
  while (!enterprise.Done(state)) {
    OnlineTickRecord record;
    enterprise.Tick(state, &record);
    FLEXVIS_RETURN_IF_ERROR(writer->Append(EncodeTickRecord(record)));
    FLEXVIS_RETURN_IF_ERROR(writer->Flush());
    if (ticks_continued != nullptr) ++*ticks_continued;
  }
  FLEXVIS_RETURN_IF_ERROR(writer->Close());
  return enterprise.Finish(std::move(state));
}

}  // namespace

Status WriteOnlineSnapshot(const std::string& directory, const OnlineParams& params,
                           const std::vector<core::FlexOffer>& offers,
                           const timeutil::TimeInterval& window) {
  const fs::path dir(directory);
  FLEXVIS_RETURN_IF_ERROR(
      WriteFileAtomic((dir / kCheckpointMetaFile).string(), EncodeMeta(params, window)));
  FLEXVIS_RETURN_IF_ERROR(
      WriteFileAtomic((dir / kCheckpointOffersFile).string(), EncodeOffers(offers)));
  return WriteManifest(dir.string(), kCheckpointManifestFile,
                       {kCheckpointMetaFile, kCheckpointOffersFile});
}

Status ReadOnlineSnapshot(const std::string& directory, OnlineParams* params,
                          std::vector<core::FlexOffer>* offers,
                          timeutil::TimeInterval* window) {
  const fs::path dir(directory);
  FLEXVIS_RETURN_IF_ERROR(VerifyManifest(directory, kCheckpointManifestFile));
  Result<std::string> meta_text = ReadFileToString((dir / kCheckpointMetaFile).string());
  if (!meta_text.ok()) return meta_text.status();
  FLEXVIS_RETURN_IF_ERROR(DecodeMeta(*meta_text, params, window));
  Result<std::string> offers_text =
      ReadFileToString((dir / kCheckpointOffersFile).string());
  if (!offers_text.ok()) return offers_text.status();
  return DecodeOffers(*offers_text, offers);
}

std::string EncodeTickRecord(const OnlineTickRecord& record) {
  JsonValue json = JsonValue::Object();
  json.Set("tick", JsonValue::Int(record.tick));
  JsonValue changes = JsonValue::Array();
  for (const OnlineStateChange& change : record.changes) {
    JsonValue c = JsonValue::Object();
    c.Set("offer", JsonValue::Int(change.offer));
    c.Set("state", JsonValue::Int(static_cast<int64_t>(change.state)));
    if (change.schedule.has_value()) {
      c.Set("start_min", JsonValue::Int(change.schedule->start.minutes()));
      JsonValue kwh = JsonValue::Array();
      for (double e : change.schedule->energy_kwh) kwh.Append(JsonValue::Double(e));
      c.Set("kwh", std::move(kwh));
    }
    changes.Append(std::move(c));
  }
  json.Set("changes", std::move(changes));
  JsonValue sent = JsonValue::Array();
  for (const std::string& wire : record.sent) sent.Append(JsonValue::Str(wire));
  json.Set("sent", std::move(sent));
  json.Set("received", JsonValue::Int(record.offers_received));
  json.Set("accepted", JsonValue::Int(record.accepted));
  json.Set("rejected", JsonValue::Int(record.rejected));
  json.Set("assigned", JsonValue::Int(record.assigned));
  json.Set("missed_acc", JsonValue::Int(record.missed_acceptance));
  json.Set("missed_asn", JsonValue::Int(record.missed_assignment));
  json.Set("dropped", JsonValue::Int(record.dropped_ingest));
  json.Set("failed_sends", JsonValue::Int(record.failed_sends));
  json.Set("shed", JsonValue::Int(record.shed_offers));
  json.Set("qhw", JsonValue::Int(record.queue_high_watermark));
  json.Set("next_arrival", JsonValue::Int(record.next_arrival));
  json.Set("pend_acc", IdArray(record.pending_acceptance));
  json.Set("pend_asn", IdArray(record.pending_assignment));
  return json.Dump();
}

Result<OnlineTickRecord> DecodeTickRecord(std::string_view text) {
  Result<JsonValue> parsed = JsonValue::Parse(text);
  if (!parsed.ok() || !parsed->is_object()) {
    return DataLossError("journal record is not a JSON object");
  }
  const JsonValue& json = *parsed;
  OnlineTickRecord record;
  Result<int64_t> tick = json.GetInt("tick");
  Result<int64_t> received = json.GetInt("received");
  Result<int64_t> accepted = json.GetInt("accepted");
  Result<int64_t> rejected = json.GetInt("rejected");
  Result<int64_t> assigned = json.GetInt("assigned");
  Result<int64_t> missed_acc = json.GetInt("missed_acc");
  Result<int64_t> missed_asn = json.GetInt("missed_asn");
  Result<int64_t> dropped = json.GetInt("dropped");
  Result<int64_t> failed_sends = json.GetInt("failed_sends");
  Result<int64_t> next_arrival = json.GetInt("next_arrival");
  for (const Status* status :
       {&tick.status(), &received.status(), &accepted.status(), &rejected.status(),
        &assigned.status(), &missed_acc.status(), &missed_asn.status(), &dropped.status(),
        &failed_sends.status(), &next_arrival.status()}) {
    if (!status->ok()) {
      return DataLossError(
          StrFormat("journal record is incomplete: %s", status->message().c_str()));
    }
  }
  record.tick = static_cast<int>(*tick);
  record.offers_received = static_cast<int>(*received);
  record.accepted = static_cast<int>(*accepted);
  record.rejected = static_cast<int>(*rejected);
  record.assigned = static_cast<int>(*assigned);
  record.missed_acceptance = static_cast<int>(*missed_acc);
  record.missed_assignment = static_cast<int>(*missed_asn);
  record.dropped_ingest = static_cast<int>(*dropped);
  record.failed_sends = static_cast<int>(*failed_sends);
  record.shed_offers = static_cast<int>(GetIntOr(json, "shed", 0));
  record.queue_high_watermark = static_cast<int>(GetIntOr(json, "qhw", 0));
  record.next_arrival = *next_arrival;

  const JsonValue& changes = json.Get("changes");
  if (!changes.is_array()) return DataLossError("journal record lacks a 'changes' array");
  for (size_t i = 0; i < changes.size(); ++i) {
    const JsonValue& c = changes[i];
    Result<int64_t> offer = c.GetInt("offer");
    Result<int64_t> state = c.GetInt("state");
    if (!offer.ok() || !state.ok()) {
      return DataLossError(StrFormat("journal record change %zu is malformed", i));
    }
    OnlineStateChange change;
    change.offer = *offer;
    change.state = static_cast<core::FlexOfferState>(*state);
    if (c.Has("start_min")) {
      Result<int64_t> start = c.GetInt("start_min");
      const JsonValue& kwh = c.Get("kwh");
      if (!start.ok() || !kwh.is_array()) {
        return DataLossError(StrFormat("journal record change %zu has a bad schedule", i));
      }
      core::Schedule schedule;
      schedule.start = timeutil::TimePoint::FromMinutes(*start);
      for (size_t k = 0; k < kwh.size(); ++k) {
        if (!kwh[k].is_number()) {
          return DataLossError(StrFormat("journal record change %zu has a bad schedule", i));
        }
        schedule.energy_kwh.push_back(kwh[k].AsDouble());
      }
      change.schedule = std::move(schedule);
    }
    record.changes.push_back(std::move(change));
  }

  const JsonValue& sent = json.Get("sent");
  if (!sent.is_array()) return DataLossError("journal record lacks a 'sent' array");
  for (size_t i = 0; i < sent.size(); ++i) {
    if (!sent[i].is_string()) {
      return DataLossError(StrFormat("journal record sent[%zu] is not a string", i));
    }
    record.sent.push_back(sent[i].AsString());
  }
  FLEXVIS_RETURN_IF_ERROR(ReadIdArray(json, "pend_acc", &record.pending_acceptance));
  FLEXVIS_RETURN_IF_ERROR(ReadIdArray(json, "pend_asn", &record.pending_assignment));
  return record;
}

Result<OnlineReport> RunOnlineCheckpointed(const OnlineParams& params,
                                           const std::vector<core::FlexOffer>& offers,
                                           const timeutil::TimeInterval& window,
                                           const std::string& directory) {
  const fs::path dir(directory);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return InternalError(StrFormat("cannot create checkpoint directory '%s': %s",
                                   directory.c_str(), ec.message().c_str()));
  }
  // Invalidate any previous checkpoint before rewriting: dropping the
  // manifest first means a crash inside this function leaves "no valid
  // snapshot" (rerun from inputs), never a new journal under an old
  // snapshot or vice versa.
  fs::remove(dir / kCheckpointManifestFile, ec);
  fs::remove(dir / kCheckpointJournalFile, ec);

  OnlineEnterprise enterprise(params);
  Result<OnlineLoopState> state = enterprise.Begin(offers, window);
  if (!state.ok()) return state.status();

  FLEXVIS_RETURN_IF_ERROR(WriteOnlineSnapshot(directory, params, offers, window));
  return ContinueJournaled(enterprise, *std::move(state), dir / kCheckpointJournalFile,
                           nullptr);
}

Result<OnlineReport> ResumeOnline(const std::string& directory, ResumeInfo* info) {
  const fs::path dir(directory);
  if (info != nullptr) *info = ResumeInfo{};

  // Snapshot integrity gates everything: a crash before the manifest landed
  // means no tick ever ran (the journal is only written after the snapshot
  // commits), so the caller can simply rerun from its inputs.
  OnlineParams params;
  timeutil::TimeInterval window;
  std::vector<core::FlexOffer> offers;
  FLEXVIS_RETURN_IF_ERROR(ReadOnlineSnapshot(directory, &params, &offers, &window));

  OnlineEnterprise enterprise(params);
  Result<OnlineLoopState> state = enterprise.Begin(offers, window);
  if (!state.ok()) return state.status();

  // Replay: apply every intact journaled tick; truncate a torn tail so the
  // continued run appends on a frame boundary. A missing journal means the
  // crash hit between snapshot commit and the first append — zero ticks.
  const std::string journal_path = (dir / kCheckpointJournalFile).string();
  Result<JournalReplay> replay = ReplayJournal(journal_path);
  if (replay.ok()) {
    for (const std::string& record_text : replay->records) {
      Result<OnlineTickRecord> record = DecodeTickRecord(record_text);
      if (!record.ok()) return record.status();
      FLEXVIS_RETURN_IF_ERROR(enterprise.Apply(*state, *record));
    }
    if (replay->torn_tail) {
      FLEXVIS_RETURN_IF_ERROR(TruncateJournal(journal_path, replay->valid_bytes));
    }
    if (info != nullptr) {
      info->ticks_replayed = static_cast<int>(replay->records.size());
      info->torn_tail = replay->torn_tail;
      info->torn_bytes = replay->torn_bytes;
    }
  } else if (replay.status().code() != StatusCode::kNotFound) {
    return replay.status();
  }

  return ContinueJournaled(enterprise, *std::move(state), dir / kCheckpointJournalFile,
                           info != nullptr ? &info->ticks_continued : nullptr);
}

}  // namespace flexvis::sim
