# Empty dependencies file for fig2_anatomy.
# This may be replaced when dependencies are built.
