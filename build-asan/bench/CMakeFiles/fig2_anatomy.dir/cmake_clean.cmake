file(REMOVE_RECURSE
  "CMakeFiles/fig2_anatomy.dir/fig2_anatomy.cc.o"
  "CMakeFiles/fig2_anatomy.dir/fig2_anatomy.cc.o.d"
  "fig2_anatomy"
  "fig2_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
