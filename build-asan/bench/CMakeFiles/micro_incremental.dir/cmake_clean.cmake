file(REMOVE_RECURSE
  "CMakeFiles/micro_incremental.dir/micro_incremental.cc.o"
  "CMakeFiles/micro_incremental.dir/micro_incremental.cc.o.d"
  "micro_incremental"
  "micro_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
