# Empty dependencies file for micro_incremental.
# This may be replaced when dependencies are built.
