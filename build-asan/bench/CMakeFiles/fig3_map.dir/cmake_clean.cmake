file(REMOVE_RECURSE
  "CMakeFiles/fig3_map.dir/fig3_map.cc.o"
  "CMakeFiles/fig3_map.dir/fig3_map.cc.o.d"
  "fig3_map"
  "fig3_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
