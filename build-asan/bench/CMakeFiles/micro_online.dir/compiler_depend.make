# Empty compiler generated dependencies file for micro_online.
# This may be replaced when dependencies are built.
