file(REMOVE_RECURSE
  "CMakeFiles/micro_online.dir/micro_online.cc.o"
  "CMakeFiles/micro_online.dir/micro_online.cc.o.d"
  "micro_online"
  "micro_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
