# Empty dependencies file for micro_interact.
# This may be replaced when dependencies are built.
