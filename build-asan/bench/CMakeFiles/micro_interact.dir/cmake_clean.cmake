file(REMOVE_RECURSE
  "CMakeFiles/micro_interact.dir/micro_interact.cc.o"
  "CMakeFiles/micro_interact.dir/micro_interact.cc.o.d"
  "micro_interact"
  "micro_interact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_interact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
