
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_balancing.cc" "bench/CMakeFiles/fig1_balancing.dir/fig1_balancing.cc.o" "gcc" "bench/CMakeFiles/fig1_balancing.dir/fig1_balancing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/bench/CMakeFiles/flexvis_bench_common.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/viz/CMakeFiles/flexvis_viz.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/flexvis_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/olap/CMakeFiles/flexvis_olap.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geo/CMakeFiles/flexvis_geo.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/grid/CMakeFiles/flexvis_grid.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dw/CMakeFiles/flexvis_dw.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/render/CMakeFiles/flexvis_render.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/flexvis_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/time/CMakeFiles/flexvis_time.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/flexvis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
