file(REMOVE_RECURSE
  "CMakeFiles/fig1_balancing.dir/fig1_balancing.cc.o"
  "CMakeFiles/fig1_balancing.dir/fig1_balancing.cc.o.d"
  "fig1_balancing"
  "fig1_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
