# Empty compiler generated dependencies file for fig1_balancing.
# This may be replaced when dependencies are built.
