file(REMOVE_RECURSE
  "CMakeFiles/fig10_hover.dir/fig10_hover.cc.o"
  "CMakeFiles/fig10_hover.dir/fig10_hover.cc.o.d"
  "fig10_hover"
  "fig10_hover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_hover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
