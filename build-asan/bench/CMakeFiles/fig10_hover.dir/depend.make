# Empty dependencies file for fig10_hover.
# This may be replaced when dependencies are built.
