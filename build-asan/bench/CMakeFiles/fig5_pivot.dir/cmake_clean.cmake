file(REMOVE_RECURSE
  "CMakeFiles/fig5_pivot.dir/fig5_pivot.cc.o"
  "CMakeFiles/fig5_pivot.dir/fig5_pivot.cc.o.d"
  "fig5_pivot"
  "fig5_pivot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pivot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
