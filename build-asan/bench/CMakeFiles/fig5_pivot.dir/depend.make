# Empty dependencies file for fig5_pivot.
# This may be replaced when dependencies are built.
