file(REMOVE_RECURSE
  "../lib/libflexvis_bench_common.a"
  "../lib/libflexvis_bench_common.pdb"
  "CMakeFiles/flexvis_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/flexvis_bench_common.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexvis_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
