file(REMOVE_RECURSE
  "../lib/libflexvis_bench_common.a"
)
