# Empty dependencies file for flexvis_bench_common.
# This may be replaced when dependencies are built.
