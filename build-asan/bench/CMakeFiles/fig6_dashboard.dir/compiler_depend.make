# Empty compiler generated dependencies file for fig6_dashboard.
# This may be replaced when dependencies are built.
