file(REMOVE_RECURSE
  "CMakeFiles/fig6_dashboard.dir/fig6_dashboard.cc.o"
  "CMakeFiles/fig6_dashboard.dir/fig6_dashboard.cc.o.d"
  "fig6_dashboard"
  "fig6_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
