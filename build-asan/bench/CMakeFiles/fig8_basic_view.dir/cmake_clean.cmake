file(REMOVE_RECURSE
  "CMakeFiles/fig8_basic_view.dir/fig8_basic_view.cc.o"
  "CMakeFiles/fig8_basic_view.dir/fig8_basic_view.cc.o.d"
  "fig8_basic_view"
  "fig8_basic_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_basic_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
