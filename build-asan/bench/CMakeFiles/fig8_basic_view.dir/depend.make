# Empty dependencies file for fig8_basic_view.
# This may be replaced when dependencies are built.
