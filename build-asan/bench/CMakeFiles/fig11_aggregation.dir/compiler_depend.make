# Empty compiler generated dependencies file for fig11_aggregation.
# This may be replaced when dependencies are built.
