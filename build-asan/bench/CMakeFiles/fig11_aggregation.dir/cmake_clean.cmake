file(REMOVE_RECURSE
  "CMakeFiles/fig11_aggregation.dir/fig11_aggregation.cc.o"
  "CMakeFiles/fig11_aggregation.dir/fig11_aggregation.cc.o.d"
  "fig11_aggregation"
  "fig11_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
