# Empty dependencies file for fig7_loading.
# This may be replaced when dependencies are built.
