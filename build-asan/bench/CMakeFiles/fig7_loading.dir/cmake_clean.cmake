file(REMOVE_RECURSE
  "CMakeFiles/fig7_loading.dir/fig7_loading.cc.o"
  "CMakeFiles/fig7_loading.dir/fig7_loading.cc.o.d"
  "fig7_loading"
  "fig7_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
