# Empty dependencies file for fig4_schematic.
# This may be replaced when dependencies are built.
