file(REMOVE_RECURSE
  "CMakeFiles/fig4_schematic.dir/fig4_schematic.cc.o"
  "CMakeFiles/fig4_schematic.dir/fig4_schematic.cc.o.d"
  "fig4_schematic"
  "fig4_schematic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_schematic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
