file(REMOVE_RECURSE
  "CMakeFiles/fig9_profile_view.dir/fig9_profile_view.cc.o"
  "CMakeFiles/fig9_profile_view.dir/fig9_profile_view.cc.o.d"
  "fig9_profile_view"
  "fig9_profile_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_profile_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
