# Empty dependencies file for fig9_profile_view.
# This may be replaced when dependencies are built.
