# Empty dependencies file for micro_olap.
# This may be replaced when dependencies are built.
