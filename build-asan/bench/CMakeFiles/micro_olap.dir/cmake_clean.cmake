file(REMOVE_RECURSE
  "CMakeFiles/micro_olap.dir/micro_olap.cc.o"
  "CMakeFiles/micro_olap.dir/micro_olap.cc.o.d"
  "micro_olap"
  "micro_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
