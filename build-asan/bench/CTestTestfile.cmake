# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-asan/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig1_balancing "/root/repo/build-asan/bench/fig1_balancing")
set_tests_properties(bench_smoke_fig1_balancing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig2_anatomy "/root/repo/build-asan/bench/fig2_anatomy")
set_tests_properties(bench_smoke_fig2_anatomy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig3_map "/root/repo/build-asan/bench/fig3_map")
set_tests_properties(bench_smoke_fig3_map PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig4_schematic "/root/repo/build-asan/bench/fig4_schematic")
set_tests_properties(bench_smoke_fig4_schematic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig5_pivot "/root/repo/build-asan/bench/fig5_pivot")
set_tests_properties(bench_smoke_fig5_pivot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig6_dashboard "/root/repo/build-asan/bench/fig6_dashboard")
set_tests_properties(bench_smoke_fig6_dashboard PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig7_loading "/root/repo/build-asan/bench/fig7_loading")
set_tests_properties(bench_smoke_fig7_loading PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig8_basic_view "/root/repo/build-asan/bench/fig8_basic_view")
set_tests_properties(bench_smoke_fig8_basic_view PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig9_profile_view "/root/repo/build-asan/bench/fig9_profile_view")
set_tests_properties(bench_smoke_fig9_profile_view PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig10_hover "/root/repo/build-asan/bench/fig10_hover")
set_tests_properties(bench_smoke_fig10_hover PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig11_aggregation "/root/repo/build-asan/bench/fig11_aggregation")
set_tests_properties(bench_smoke_fig11_aggregation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
