
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aggregation_test.cc" "tests/CMakeFiles/flexvis_tests.dir/aggregation_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/aggregation_test.cc.o.d"
  "/root/repo/tests/determinism_test.cc" "tests/CMakeFiles/flexvis_tests.dir/determinism_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/determinism_test.cc.o.d"
  "/root/repo/tests/dw_test.cc" "tests/CMakeFiles/flexvis_tests.dir/dw_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/dw_test.cc.o.d"
  "/root/repo/tests/enterprise_modes_test.cc" "tests/CMakeFiles/flexvis_tests.dir/enterprise_modes_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/enterprise_modes_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/flexvis_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/failure_test.cc" "tests/CMakeFiles/flexvis_tests.dir/failure_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/failure_test.cc.o.d"
  "/root/repo/tests/flex_offer_test.cc" "tests/CMakeFiles/flexvis_tests.dir/flex_offer_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/flex_offer_test.cc.o.d"
  "/root/repo/tests/geo_grid_test.cc" "tests/CMakeFiles/flexvis_tests.dir/geo_grid_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/geo_grid_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/flexvis_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/json_test.cc" "tests/CMakeFiles/flexvis_tests.dir/json_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/json_test.cc.o.d"
  "/root/repo/tests/local_search_test.cc" "tests/CMakeFiles/flexvis_tests.dir/local_search_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/local_search_test.cc.o.d"
  "/root/repo/tests/measures_test.cc" "tests/CMakeFiles/flexvis_tests.dir/measures_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/measures_test.cc.o.d"
  "/root/repo/tests/messages_test.cc" "tests/CMakeFiles/flexvis_tests.dir/messages_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/messages_test.cc.o.d"
  "/root/repo/tests/misc_coverage_test.cc" "tests/CMakeFiles/flexvis_tests.dir/misc_coverage_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/misc_coverage_test.cc.o.d"
  "/root/repo/tests/olap_test.cc" "tests/CMakeFiles/flexvis_tests.dir/olap_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/olap_test.cc.o.d"
  "/root/repo/tests/parallel_test.cc" "tests/CMakeFiles/flexvis_tests.dir/parallel_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/parallel_test.cc.o.d"
  "/root/repo/tests/persistence_test.cc" "tests/CMakeFiles/flexvis_tests.dir/persistence_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/persistence_test.cc.o.d"
  "/root/repo/tests/png_test.cc" "tests/CMakeFiles/flexvis_tests.dir/png_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/png_test.cc.o.d"
  "/root/repo/tests/render_test.cc" "tests/CMakeFiles/flexvis_tests.dir/render_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/render_test.cc.o.d"
  "/root/repo/tests/scheduler_test.cc" "tests/CMakeFiles/flexvis_tests.dir/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/scheduler_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/flexvis_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/time_series_test.cc" "tests/CMakeFiles/flexvis_tests.dir/time_series_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/time_series_test.cc.o.d"
  "/root/repo/tests/time_test.cc" "tests/CMakeFiles/flexvis_tests.dir/time_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/time_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/flexvis_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/view_options_test.cc" "tests/CMakeFiles/flexvis_tests.dir/view_options_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/view_options_test.cc.o.d"
  "/root/repo/tests/viz_test.cc" "tests/CMakeFiles/flexvis_tests.dir/viz_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/viz_test.cc.o.d"
  "/root/repo/tests/viz_views_test.cc" "tests/CMakeFiles/flexvis_tests.dir/viz_views_test.cc.o" "gcc" "tests/CMakeFiles/flexvis_tests.dir/viz_views_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/viz/CMakeFiles/flexvis_viz.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/flexvis_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/olap/CMakeFiles/flexvis_olap.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dw/CMakeFiles/flexvis_dw.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geo/CMakeFiles/flexvis_geo.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/grid/CMakeFiles/flexvis_grid.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/render/CMakeFiles/flexvis_render.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/flexvis_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/time/CMakeFiles/flexvis_time.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/flexvis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
