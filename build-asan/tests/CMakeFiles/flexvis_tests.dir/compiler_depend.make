# Empty compiler generated dependencies file for flexvis_tests.
# This may be replaced when dependencies are built.
