# Empty compiler generated dependencies file for flexvis_cli.
# This may be replaced when dependencies are built.
