file(REMOVE_RECURSE
  "CMakeFiles/flexvis_cli.dir/flexvis_cli.cc.o"
  "CMakeFiles/flexvis_cli.dir/flexvis_cli.cc.o.d"
  "flexvis"
  "flexvis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexvis_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
