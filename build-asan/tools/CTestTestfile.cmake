# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-asan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke "bash" "-c" "    set -e;     DB=\$(mktemp -d);     /root/repo/build-asan/tools/flexvis generate --out \$DB --prosumers 40 --day 2013-02-01 &&     /root/repo/build-asan/tools/flexvis stats --db \$DB &&     /root/repo/build-asan/tools/flexvis plan --db \$DB --day 2013-02-01 &&     /root/repo/build-asan/tools/flexvis render --db \$DB --view dashboard --out \$DB/dash.svg &&     /root/repo/build-asan/tools/flexvis render --db \$DB --view map --out \$DB/map.png &&     /root/repo/build-asan/tools/flexvis mdx --db \$DB 'SELECT { State.Members } ON ROWS FROM [FlexOffers]' &&     /root/repo/build-asan/tools/flexvis alerts --db \$DB &&     test -s \$DB/dash.svg && test -s \$DB/map.png &&     rm -rf \$DB")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
