# Empty compiler generated dependencies file for enterprise_day_ahead.
# This may be replaced when dependencies are built.
