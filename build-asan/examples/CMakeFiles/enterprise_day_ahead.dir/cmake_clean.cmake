file(REMOVE_RECURSE
  "CMakeFiles/enterprise_day_ahead.dir/enterprise_day_ahead.cpp.o"
  "CMakeFiles/enterprise_day_ahead.dir/enterprise_day_ahead.cpp.o.d"
  "enterprise_day_ahead"
  "enterprise_day_ahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_day_ahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
