# Empty compiler generated dependencies file for visual_analysis.
# This may be replaced when dependencies are built.
