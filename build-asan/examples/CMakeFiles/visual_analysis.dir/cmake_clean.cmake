file(REMOVE_RECURSE
  "CMakeFiles/visual_analysis.dir/visual_analysis.cpp.o"
  "CMakeFiles/visual_analysis.dir/visual_analysis.cpp.o.d"
  "visual_analysis"
  "visual_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visual_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
