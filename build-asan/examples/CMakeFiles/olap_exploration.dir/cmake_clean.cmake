file(REMOVE_RECURSE
  "CMakeFiles/olap_exploration.dir/olap_exploration.cpp.o"
  "CMakeFiles/olap_exploration.dir/olap_exploration.cpp.o.d"
  "olap_exploration"
  "olap_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
