# Empty compiler generated dependencies file for olap_exploration.
# This may be replaced when dependencies are built.
