# Empty compiler generated dependencies file for alerts_platform.
# This may be replaced when dependencies are built.
