file(REMOVE_RECURSE
  "CMakeFiles/alerts_platform.dir/alerts_platform.cpp.o"
  "CMakeFiles/alerts_platform.dir/alerts_platform.cpp.o.d"
  "alerts_platform"
  "alerts_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alerts_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
