# Empty compiler generated dependencies file for week_simulation.
# This may be replaced when dependencies are built.
