file(REMOVE_RECURSE
  "CMakeFiles/week_simulation.dir/week_simulation.cpp.o"
  "CMakeFiles/week_simulation.dir/week_simulation.cpp.o.d"
  "week_simulation"
  "week_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/week_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
