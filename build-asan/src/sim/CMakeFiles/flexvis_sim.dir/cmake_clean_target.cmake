file(REMOVE_RECURSE
  "libflexvis_sim.a"
)
