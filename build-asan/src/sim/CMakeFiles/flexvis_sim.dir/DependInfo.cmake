
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/alerts.cc" "src/sim/CMakeFiles/flexvis_sim.dir/alerts.cc.o" "gcc" "src/sim/CMakeFiles/flexvis_sim.dir/alerts.cc.o.d"
  "/root/repo/src/sim/energy_models.cc" "src/sim/CMakeFiles/flexvis_sim.dir/energy_models.cc.o" "gcc" "src/sim/CMakeFiles/flexvis_sim.dir/energy_models.cc.o.d"
  "/root/repo/src/sim/enterprise.cc" "src/sim/CMakeFiles/flexvis_sim.dir/enterprise.cc.o" "gcc" "src/sim/CMakeFiles/flexvis_sim.dir/enterprise.cc.o.d"
  "/root/repo/src/sim/forecaster.cc" "src/sim/CMakeFiles/flexvis_sim.dir/forecaster.cc.o" "gcc" "src/sim/CMakeFiles/flexvis_sim.dir/forecaster.cc.o.d"
  "/root/repo/src/sim/market.cc" "src/sim/CMakeFiles/flexvis_sim.dir/market.cc.o" "gcc" "src/sim/CMakeFiles/flexvis_sim.dir/market.cc.o.d"
  "/root/repo/src/sim/online.cc" "src/sim/CMakeFiles/flexvis_sim.dir/online.cc.o" "gcc" "src/sim/CMakeFiles/flexvis_sim.dir/online.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/flexvis_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/flexvis_sim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/dw/CMakeFiles/flexvis_dw.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geo/CMakeFiles/flexvis_geo.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/grid/CMakeFiles/flexvis_grid.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/flexvis_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/time/CMakeFiles/flexvis_time.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/flexvis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
