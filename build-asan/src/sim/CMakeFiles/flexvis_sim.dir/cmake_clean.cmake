file(REMOVE_RECURSE
  "CMakeFiles/flexvis_sim.dir/alerts.cc.o"
  "CMakeFiles/flexvis_sim.dir/alerts.cc.o.d"
  "CMakeFiles/flexvis_sim.dir/energy_models.cc.o"
  "CMakeFiles/flexvis_sim.dir/energy_models.cc.o.d"
  "CMakeFiles/flexvis_sim.dir/enterprise.cc.o"
  "CMakeFiles/flexvis_sim.dir/enterprise.cc.o.d"
  "CMakeFiles/flexvis_sim.dir/forecaster.cc.o"
  "CMakeFiles/flexvis_sim.dir/forecaster.cc.o.d"
  "CMakeFiles/flexvis_sim.dir/market.cc.o"
  "CMakeFiles/flexvis_sim.dir/market.cc.o.d"
  "CMakeFiles/flexvis_sim.dir/online.cc.o"
  "CMakeFiles/flexvis_sim.dir/online.cc.o.d"
  "CMakeFiles/flexvis_sim.dir/workload.cc.o"
  "CMakeFiles/flexvis_sim.dir/workload.cc.o.d"
  "libflexvis_sim.a"
  "libflexvis_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexvis_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
