# Empty compiler generated dependencies file for flexvis_sim.
# This may be replaced when dependencies are built.
