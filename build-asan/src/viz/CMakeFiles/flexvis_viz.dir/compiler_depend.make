# Empty compiler generated dependencies file for flexvis_viz.
# This may be replaced when dependencies are built.
