file(REMOVE_RECURSE
  "libflexvis_viz.a"
)
