file(REMOVE_RECURSE
  "CMakeFiles/flexvis_viz.dir/anatomy_view.cc.o"
  "CMakeFiles/flexvis_viz.dir/anatomy_view.cc.o.d"
  "CMakeFiles/flexvis_viz.dir/balancing_view.cc.o"
  "CMakeFiles/flexvis_viz.dir/balancing_view.cc.o.d"
  "CMakeFiles/flexvis_viz.dir/basic_view.cc.o"
  "CMakeFiles/flexvis_viz.dir/basic_view.cc.o.d"
  "CMakeFiles/flexvis_viz.dir/dashboard_view.cc.o"
  "CMakeFiles/flexvis_viz.dir/dashboard_view.cc.o.d"
  "CMakeFiles/flexvis_viz.dir/interaction.cc.o"
  "CMakeFiles/flexvis_viz.dir/interaction.cc.o.d"
  "CMakeFiles/flexvis_viz.dir/lane_layout.cc.o"
  "CMakeFiles/flexvis_viz.dir/lane_layout.cc.o.d"
  "CMakeFiles/flexvis_viz.dir/map_view.cc.o"
  "CMakeFiles/flexvis_viz.dir/map_view.cc.o.d"
  "CMakeFiles/flexvis_viz.dir/pivot_offers_view.cc.o"
  "CMakeFiles/flexvis_viz.dir/pivot_offers_view.cc.o.d"
  "CMakeFiles/flexvis_viz.dir/pivot_view.cc.o"
  "CMakeFiles/flexvis_viz.dir/pivot_view.cc.o.d"
  "CMakeFiles/flexvis_viz.dir/profile_view.cc.o"
  "CMakeFiles/flexvis_viz.dir/profile_view.cc.o.d"
  "CMakeFiles/flexvis_viz.dir/schematic_view.cc.o"
  "CMakeFiles/flexvis_viz.dir/schematic_view.cc.o.d"
  "CMakeFiles/flexvis_viz.dir/session.cc.o"
  "CMakeFiles/flexvis_viz.dir/session.cc.o.d"
  "CMakeFiles/flexvis_viz.dir/view_common.cc.o"
  "CMakeFiles/flexvis_viz.dir/view_common.cc.o.d"
  "CMakeFiles/flexvis_viz.dir/viewport.cc.o"
  "CMakeFiles/flexvis_viz.dir/viewport.cc.o.d"
  "libflexvis_viz.a"
  "libflexvis_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexvis_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
