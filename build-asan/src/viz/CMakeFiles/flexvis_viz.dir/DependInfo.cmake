
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/anatomy_view.cc" "src/viz/CMakeFiles/flexvis_viz.dir/anatomy_view.cc.o" "gcc" "src/viz/CMakeFiles/flexvis_viz.dir/anatomy_view.cc.o.d"
  "/root/repo/src/viz/balancing_view.cc" "src/viz/CMakeFiles/flexvis_viz.dir/balancing_view.cc.o" "gcc" "src/viz/CMakeFiles/flexvis_viz.dir/balancing_view.cc.o.d"
  "/root/repo/src/viz/basic_view.cc" "src/viz/CMakeFiles/flexvis_viz.dir/basic_view.cc.o" "gcc" "src/viz/CMakeFiles/flexvis_viz.dir/basic_view.cc.o.d"
  "/root/repo/src/viz/dashboard_view.cc" "src/viz/CMakeFiles/flexvis_viz.dir/dashboard_view.cc.o" "gcc" "src/viz/CMakeFiles/flexvis_viz.dir/dashboard_view.cc.o.d"
  "/root/repo/src/viz/interaction.cc" "src/viz/CMakeFiles/flexvis_viz.dir/interaction.cc.o" "gcc" "src/viz/CMakeFiles/flexvis_viz.dir/interaction.cc.o.d"
  "/root/repo/src/viz/lane_layout.cc" "src/viz/CMakeFiles/flexvis_viz.dir/lane_layout.cc.o" "gcc" "src/viz/CMakeFiles/flexvis_viz.dir/lane_layout.cc.o.d"
  "/root/repo/src/viz/map_view.cc" "src/viz/CMakeFiles/flexvis_viz.dir/map_view.cc.o" "gcc" "src/viz/CMakeFiles/flexvis_viz.dir/map_view.cc.o.d"
  "/root/repo/src/viz/pivot_offers_view.cc" "src/viz/CMakeFiles/flexvis_viz.dir/pivot_offers_view.cc.o" "gcc" "src/viz/CMakeFiles/flexvis_viz.dir/pivot_offers_view.cc.o.d"
  "/root/repo/src/viz/pivot_view.cc" "src/viz/CMakeFiles/flexvis_viz.dir/pivot_view.cc.o" "gcc" "src/viz/CMakeFiles/flexvis_viz.dir/pivot_view.cc.o.d"
  "/root/repo/src/viz/profile_view.cc" "src/viz/CMakeFiles/flexvis_viz.dir/profile_view.cc.o" "gcc" "src/viz/CMakeFiles/flexvis_viz.dir/profile_view.cc.o.d"
  "/root/repo/src/viz/schematic_view.cc" "src/viz/CMakeFiles/flexvis_viz.dir/schematic_view.cc.o" "gcc" "src/viz/CMakeFiles/flexvis_viz.dir/schematic_view.cc.o.d"
  "/root/repo/src/viz/session.cc" "src/viz/CMakeFiles/flexvis_viz.dir/session.cc.o" "gcc" "src/viz/CMakeFiles/flexvis_viz.dir/session.cc.o.d"
  "/root/repo/src/viz/view_common.cc" "src/viz/CMakeFiles/flexvis_viz.dir/view_common.cc.o" "gcc" "src/viz/CMakeFiles/flexvis_viz.dir/view_common.cc.o.d"
  "/root/repo/src/viz/viewport.cc" "src/viz/CMakeFiles/flexvis_viz.dir/viewport.cc.o" "gcc" "src/viz/CMakeFiles/flexvis_viz.dir/viewport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/render/CMakeFiles/flexvis_render.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/olap/CMakeFiles/flexvis_olap.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/flexvis_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/geo/CMakeFiles/flexvis_geo.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/grid/CMakeFiles/flexvis_grid.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dw/CMakeFiles/flexvis_dw.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/flexvis_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/time/CMakeFiles/flexvis_time.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/flexvis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
