
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/render/axis.cc" "src/render/CMakeFiles/flexvis_render.dir/axis.cc.o" "gcc" "src/render/CMakeFiles/flexvis_render.dir/axis.cc.o.d"
  "/root/repo/src/render/canvas.cc" "src/render/CMakeFiles/flexvis_render.dir/canvas.cc.o" "gcc" "src/render/CMakeFiles/flexvis_render.dir/canvas.cc.o.d"
  "/root/repo/src/render/color.cc" "src/render/CMakeFiles/flexvis_render.dir/color.cc.o" "gcc" "src/render/CMakeFiles/flexvis_render.dir/color.cc.o.d"
  "/root/repo/src/render/display_list.cc" "src/render/CMakeFiles/flexvis_render.dir/display_list.cc.o" "gcc" "src/render/CMakeFiles/flexvis_render.dir/display_list.cc.o.d"
  "/root/repo/src/render/font5x7.cc" "src/render/CMakeFiles/flexvis_render.dir/font5x7.cc.o" "gcc" "src/render/CMakeFiles/flexvis_render.dir/font5x7.cc.o.d"
  "/root/repo/src/render/incremental.cc" "src/render/CMakeFiles/flexvis_render.dir/incremental.cc.o" "gcc" "src/render/CMakeFiles/flexvis_render.dir/incremental.cc.o.d"
  "/root/repo/src/render/png.cc" "src/render/CMakeFiles/flexvis_render.dir/png.cc.o" "gcc" "src/render/CMakeFiles/flexvis_render.dir/png.cc.o.d"
  "/root/repo/src/render/raster_canvas.cc" "src/render/CMakeFiles/flexvis_render.dir/raster_canvas.cc.o" "gcc" "src/render/CMakeFiles/flexvis_render.dir/raster_canvas.cc.o.d"
  "/root/repo/src/render/scale.cc" "src/render/CMakeFiles/flexvis_render.dir/scale.cc.o" "gcc" "src/render/CMakeFiles/flexvis_render.dir/scale.cc.o.d"
  "/root/repo/src/render/svg_canvas.cc" "src/render/CMakeFiles/flexvis_render.dir/svg_canvas.cc.o" "gcc" "src/render/CMakeFiles/flexvis_render.dir/svg_canvas.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/time/CMakeFiles/flexvis_time.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/flexvis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
