# Empty compiler generated dependencies file for flexvis_render.
# This may be replaced when dependencies are built.
