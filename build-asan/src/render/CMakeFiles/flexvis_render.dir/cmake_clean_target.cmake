file(REMOVE_RECURSE
  "libflexvis_render.a"
)
