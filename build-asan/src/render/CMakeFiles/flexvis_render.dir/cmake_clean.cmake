file(REMOVE_RECURSE
  "CMakeFiles/flexvis_render.dir/axis.cc.o"
  "CMakeFiles/flexvis_render.dir/axis.cc.o.d"
  "CMakeFiles/flexvis_render.dir/canvas.cc.o"
  "CMakeFiles/flexvis_render.dir/canvas.cc.o.d"
  "CMakeFiles/flexvis_render.dir/color.cc.o"
  "CMakeFiles/flexvis_render.dir/color.cc.o.d"
  "CMakeFiles/flexvis_render.dir/display_list.cc.o"
  "CMakeFiles/flexvis_render.dir/display_list.cc.o.d"
  "CMakeFiles/flexvis_render.dir/font5x7.cc.o"
  "CMakeFiles/flexvis_render.dir/font5x7.cc.o.d"
  "CMakeFiles/flexvis_render.dir/incremental.cc.o"
  "CMakeFiles/flexvis_render.dir/incremental.cc.o.d"
  "CMakeFiles/flexvis_render.dir/png.cc.o"
  "CMakeFiles/flexvis_render.dir/png.cc.o.d"
  "CMakeFiles/flexvis_render.dir/raster_canvas.cc.o"
  "CMakeFiles/flexvis_render.dir/raster_canvas.cc.o.d"
  "CMakeFiles/flexvis_render.dir/scale.cc.o"
  "CMakeFiles/flexvis_render.dir/scale.cc.o.d"
  "CMakeFiles/flexvis_render.dir/svg_canvas.cc.o"
  "CMakeFiles/flexvis_render.dir/svg_canvas.cc.o.d"
  "libflexvis_render.a"
  "libflexvis_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexvis_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
