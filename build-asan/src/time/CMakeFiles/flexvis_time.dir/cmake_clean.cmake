file(REMOVE_RECURSE
  "CMakeFiles/flexvis_time.dir/granularity.cc.o"
  "CMakeFiles/flexvis_time.dir/granularity.cc.o.d"
  "CMakeFiles/flexvis_time.dir/time_point.cc.o"
  "CMakeFiles/flexvis_time.dir/time_point.cc.o.d"
  "libflexvis_time.a"
  "libflexvis_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexvis_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
