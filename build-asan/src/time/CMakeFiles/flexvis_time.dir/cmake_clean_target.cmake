file(REMOVE_RECURSE
  "libflexvis_time.a"
)
