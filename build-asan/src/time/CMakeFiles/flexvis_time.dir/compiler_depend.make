# Empty compiler generated dependencies file for flexvis_time.
# This may be replaced when dependencies are built.
