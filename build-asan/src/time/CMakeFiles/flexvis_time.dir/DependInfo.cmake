
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/time/granularity.cc" "src/time/CMakeFiles/flexvis_time.dir/granularity.cc.o" "gcc" "src/time/CMakeFiles/flexvis_time.dir/granularity.cc.o.d"
  "/root/repo/src/time/time_point.cc" "src/time/CMakeFiles/flexvis_time.dir/time_point.cc.o" "gcc" "src/time/CMakeFiles/flexvis_time.dir/time_point.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/flexvis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
