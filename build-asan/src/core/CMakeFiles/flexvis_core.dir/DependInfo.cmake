
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregation.cc" "src/core/CMakeFiles/flexvis_core.dir/aggregation.cc.o" "gcc" "src/core/CMakeFiles/flexvis_core.dir/aggregation.cc.o.d"
  "/root/repo/src/core/flex_offer.cc" "src/core/CMakeFiles/flexvis_core.dir/flex_offer.cc.o" "gcc" "src/core/CMakeFiles/flexvis_core.dir/flex_offer.cc.o.d"
  "/root/repo/src/core/local_search.cc" "src/core/CMakeFiles/flexvis_core.dir/local_search.cc.o" "gcc" "src/core/CMakeFiles/flexvis_core.dir/local_search.cc.o.d"
  "/root/repo/src/core/measures.cc" "src/core/CMakeFiles/flexvis_core.dir/measures.cc.o" "gcc" "src/core/CMakeFiles/flexvis_core.dir/measures.cc.o.d"
  "/root/repo/src/core/messages.cc" "src/core/CMakeFiles/flexvis_core.dir/messages.cc.o" "gcc" "src/core/CMakeFiles/flexvis_core.dir/messages.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/flexvis_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/flexvis_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/time_series.cc" "src/core/CMakeFiles/flexvis_core.dir/time_series.cc.o" "gcc" "src/core/CMakeFiles/flexvis_core.dir/time_series.cc.o.d"
  "/root/repo/src/core/types.cc" "src/core/CMakeFiles/flexvis_core.dir/types.cc.o" "gcc" "src/core/CMakeFiles/flexvis_core.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/time/CMakeFiles/flexvis_time.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/flexvis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
