# Empty dependencies file for flexvis_core.
# This may be replaced when dependencies are built.
