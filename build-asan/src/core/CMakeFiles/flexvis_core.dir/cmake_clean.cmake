file(REMOVE_RECURSE
  "CMakeFiles/flexvis_core.dir/aggregation.cc.o"
  "CMakeFiles/flexvis_core.dir/aggregation.cc.o.d"
  "CMakeFiles/flexvis_core.dir/flex_offer.cc.o"
  "CMakeFiles/flexvis_core.dir/flex_offer.cc.o.d"
  "CMakeFiles/flexvis_core.dir/local_search.cc.o"
  "CMakeFiles/flexvis_core.dir/local_search.cc.o.d"
  "CMakeFiles/flexvis_core.dir/measures.cc.o"
  "CMakeFiles/flexvis_core.dir/measures.cc.o.d"
  "CMakeFiles/flexvis_core.dir/messages.cc.o"
  "CMakeFiles/flexvis_core.dir/messages.cc.o.d"
  "CMakeFiles/flexvis_core.dir/scheduler.cc.o"
  "CMakeFiles/flexvis_core.dir/scheduler.cc.o.d"
  "CMakeFiles/flexvis_core.dir/time_series.cc.o"
  "CMakeFiles/flexvis_core.dir/time_series.cc.o.d"
  "CMakeFiles/flexvis_core.dir/types.cc.o"
  "CMakeFiles/flexvis_core.dir/types.cc.o.d"
  "libflexvis_core.a"
  "libflexvis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexvis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
