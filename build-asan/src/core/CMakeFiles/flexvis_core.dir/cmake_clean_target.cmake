file(REMOVE_RECURSE
  "libflexvis_core.a"
)
