# Empty compiler generated dependencies file for flexvis_geo.
# This may be replaced when dependencies are built.
