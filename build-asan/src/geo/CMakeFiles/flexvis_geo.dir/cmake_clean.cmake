file(REMOVE_RECURSE
  "CMakeFiles/flexvis_geo.dir/atlas.cc.o"
  "CMakeFiles/flexvis_geo.dir/atlas.cc.o.d"
  "CMakeFiles/flexvis_geo.dir/geometry.cc.o"
  "CMakeFiles/flexvis_geo.dir/geometry.cc.o.d"
  "libflexvis_geo.a"
  "libflexvis_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexvis_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
