file(REMOVE_RECURSE
  "libflexvis_geo.a"
)
