file(REMOVE_RECURSE
  "CMakeFiles/flexvis_util.dir/json.cc.o"
  "CMakeFiles/flexvis_util.dir/json.cc.o.d"
  "CMakeFiles/flexvis_util.dir/parallel.cc.o"
  "CMakeFiles/flexvis_util.dir/parallel.cc.o.d"
  "CMakeFiles/flexvis_util.dir/rng.cc.o"
  "CMakeFiles/flexvis_util.dir/rng.cc.o.d"
  "CMakeFiles/flexvis_util.dir/status.cc.o"
  "CMakeFiles/flexvis_util.dir/status.cc.o.d"
  "CMakeFiles/flexvis_util.dir/strings.cc.o"
  "CMakeFiles/flexvis_util.dir/strings.cc.o.d"
  "libflexvis_util.a"
  "libflexvis_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexvis_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
