# Empty compiler generated dependencies file for flexvis_util.
# This may be replaced when dependencies are built.
