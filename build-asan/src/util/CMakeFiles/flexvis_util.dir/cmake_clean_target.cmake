file(REMOVE_RECURSE
  "libflexvis_util.a"
)
