file(REMOVE_RECURSE
  "libflexvis_grid.a"
)
