file(REMOVE_RECURSE
  "CMakeFiles/flexvis_grid.dir/topology.cc.o"
  "CMakeFiles/flexvis_grid.dir/topology.cc.o.d"
  "libflexvis_grid.a"
  "libflexvis_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexvis_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
