# Empty compiler generated dependencies file for flexvis_grid.
# This may be replaced when dependencies are built.
