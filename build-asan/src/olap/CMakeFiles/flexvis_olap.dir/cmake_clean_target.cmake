file(REMOVE_RECURSE
  "libflexvis_olap.a"
)
