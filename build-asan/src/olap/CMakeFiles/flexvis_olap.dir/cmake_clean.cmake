file(REMOVE_RECURSE
  "CMakeFiles/flexvis_olap.dir/cube.cc.o"
  "CMakeFiles/flexvis_olap.dir/cube.cc.o.d"
  "CMakeFiles/flexvis_olap.dir/dimension.cc.o"
  "CMakeFiles/flexvis_olap.dir/dimension.cc.o.d"
  "CMakeFiles/flexvis_olap.dir/mdx.cc.o"
  "CMakeFiles/flexvis_olap.dir/mdx.cc.o.d"
  "libflexvis_olap.a"
  "libflexvis_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexvis_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
