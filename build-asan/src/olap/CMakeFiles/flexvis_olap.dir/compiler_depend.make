# Empty compiler generated dependencies file for flexvis_olap.
# This may be replaced when dependencies are built.
