file(REMOVE_RECURSE
  "CMakeFiles/flexvis_dw.dir/csv.cc.o"
  "CMakeFiles/flexvis_dw.dir/csv.cc.o.d"
  "CMakeFiles/flexvis_dw.dir/database.cc.o"
  "CMakeFiles/flexvis_dw.dir/database.cc.o.d"
  "CMakeFiles/flexvis_dw.dir/persistence.cc.o"
  "CMakeFiles/flexvis_dw.dir/persistence.cc.o.d"
  "CMakeFiles/flexvis_dw.dir/query.cc.o"
  "CMakeFiles/flexvis_dw.dir/query.cc.o.d"
  "CMakeFiles/flexvis_dw.dir/table.cc.o"
  "CMakeFiles/flexvis_dw.dir/table.cc.o.d"
  "CMakeFiles/flexvis_dw.dir/value.cc.o"
  "CMakeFiles/flexvis_dw.dir/value.cc.o.d"
  "libflexvis_dw.a"
  "libflexvis_dw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexvis_dw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
