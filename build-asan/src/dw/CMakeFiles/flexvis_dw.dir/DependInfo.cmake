
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dw/csv.cc" "src/dw/CMakeFiles/flexvis_dw.dir/csv.cc.o" "gcc" "src/dw/CMakeFiles/flexvis_dw.dir/csv.cc.o.d"
  "/root/repo/src/dw/database.cc" "src/dw/CMakeFiles/flexvis_dw.dir/database.cc.o" "gcc" "src/dw/CMakeFiles/flexvis_dw.dir/database.cc.o.d"
  "/root/repo/src/dw/persistence.cc" "src/dw/CMakeFiles/flexvis_dw.dir/persistence.cc.o" "gcc" "src/dw/CMakeFiles/flexvis_dw.dir/persistence.cc.o.d"
  "/root/repo/src/dw/query.cc" "src/dw/CMakeFiles/flexvis_dw.dir/query.cc.o" "gcc" "src/dw/CMakeFiles/flexvis_dw.dir/query.cc.o.d"
  "/root/repo/src/dw/table.cc" "src/dw/CMakeFiles/flexvis_dw.dir/table.cc.o" "gcc" "src/dw/CMakeFiles/flexvis_dw.dir/table.cc.o.d"
  "/root/repo/src/dw/value.cc" "src/dw/CMakeFiles/flexvis_dw.dir/value.cc.o" "gcc" "src/dw/CMakeFiles/flexvis_dw.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/flexvis_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/time/CMakeFiles/flexvis_time.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/flexvis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
