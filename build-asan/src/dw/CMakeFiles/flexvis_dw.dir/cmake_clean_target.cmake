file(REMOVE_RECURSE
  "libflexvis_dw.a"
)
