# Empty dependencies file for flexvis_dw.
# This may be replaced when dependencies are built.
