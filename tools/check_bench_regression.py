#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh BENCH_<name>.json against its
committed baseline and fail on regressions beyond a tolerance.

Usage:
    check_bench_regression.py --baseline bench/baselines/BENCH_serve.json \
        --current bench_out/BENCH_serve.json [--tolerance 0.25] \
        [--diff-out bench_out/BENCH_serve.diff.json]
    check_bench_regression.py --self-test

Which direction is "worse" is inferred from the metric name:

  * higher-is-better:  *_per_sec, *_per_second, items_per_second, speedup
  * lower-is-better:   *_seconds, *_p50*, *_p99*, *overhead*
  * hard gates (exact): metrics valued 0/1 in the baseline whose name does
    not match a direction pattern (deterministic, cache_coherent,
    ingest_unblocked, ...) — a 1 in the baseline must stay 1.

Lower-is-better metrics named in seconds additionally get an absolute slack
(--latency-slack, default 1 ms): micro- and nanosecond-scale percentiles sit
at timer resolution, so a relative-only gate would flap on scheduler noise.
Such a metric regresses only when it is BOTH beyond the relative tolerance
AND more than the slack worse in absolute terms.

Everything else is reported informationally and never gates. Samples gate on
their items_per_second; counters gate per the rules above. The exit code is
nonzero iff at least one gated metric regressed beyond the tolerance, and the
full comparison is always written to --diff-out (when given) so CI can
archive it as an artifact.
"""

import argparse
import json
import re
import sys

HIGHER_BETTER = re.compile(r"(_per_sec(ond)?$|^speedup|_speedup$|sessions_per_sec|per_second$)")
LOWER_BETTER = re.compile(r"(_seconds(_\d+)?$|p50|p99|overhead|_wall$)")


def classify(name, baseline_value):
    if HIGHER_BETTER.search(name):
        return "higher"
    if LOWER_BETTER.search(name):
        return "lower"
    if baseline_value in (0.0, 1.0):
        return "exact"
    return "info"


def load_metrics(path):
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    metrics = {}
    for sample in report.get("samples", []):
        label = sample.get("label")
        ips = sample.get("items_per_second")
        if label is not None and ips is not None:
            metrics[f"sample:{label}:items_per_second"] = float(ips)
    # Per-stage throughput breakdowns (schema additions are tolerated: a
    # baseline written before stages existed simply lacks these keys, and
    # current-only metrics report as non-gating "new").
    for stage in report.get("stages", []):
        sample = stage.get("sample")
        name = stage.get("stage")
        ips = stage.get("items_per_second")
        if sample is not None and name is not None and ips is not None:
            metrics[f"stage:{sample}:{name}:items_per_second"] = float(ips)
    for key, value in report.get("counters", {}).items():
        try:
            metrics[f"counter:{key}"] = float(value)
        except (TypeError, ValueError):
            continue
    return report.get("name", "?"), metrics


def compare(baseline, current, tolerance, latency_slack=0.001):
    """Returns (rows, regressions): every compared metric, and those failing."""
    rows = []
    regressions = []
    for name, base in sorted(baseline.items()):
        short = name.split(":", 1)[1] if ":" in name else name
        kind = classify(
            short.rsplit(":", 1)[-1] if name.startswith(("sample:", "stage:")) else short, base)
        cur = current.get(name)
        row = {"metric": name, "baseline": base, "current": cur, "direction": kind}
        if cur is None:
            row["status"] = "missing"
            if kind != "info":
                row["status"] = "regressed"
                row["reason"] = "metric disappeared from the current report"
                regressions.append(row)
            rows.append(row)
            continue
        status = "ok"
        reason = None
        if kind == "higher":
            floor = base * (1.0 - tolerance)
            if cur < floor:
                status, reason = "regressed", f"{cur:.6g} < {floor:.6g} (-{tolerance:.0%} of baseline)"
        elif kind == "lower":
            ceiling = base * (1.0 + tolerance)
            # Seconds-valued metrics also need to clear the absolute slack so
            # timer-resolution noise on sub-millisecond percentiles cannot
            # gate; a zero baseline cannot gate relatively at all.
            slack = latency_slack if ("seconds" in short or "_wall" in short) else 0.0
            if base > 0.0 and cur > ceiling and (cur - base) > slack:
                status, reason = "regressed", f"{cur:.6g} > {ceiling:.6g} (+{tolerance:.0%} of baseline, >{slack:g}s slack)"
        elif kind == "exact":
            if base == 1.0 and cur != 1.0:
                status, reason = "regressed", "hard gate flipped from 1 to 0"
        row["status"] = status
        if reason:
            row["reason"] = reason
        rows.append(row)
        if status == "regressed":
            regressions.append(row)
    for name in sorted(set(current) - set(baseline)):
        rows.append({"metric": name, "baseline": None, "current": current[name],
                     "status": "new", "direction": "info"})
    return rows, regressions


def run_check(args):
    base_name, baseline = load_metrics(args.baseline)
    cur_name, current = load_metrics(args.current)
    if base_name != cur_name:
        print(f"WARNING: comparing report '{cur_name}' against baseline '{base_name}'")
    rows, regressions = compare(baseline, current, args.tolerance, args.latency_slack)

    diff = {
        "bench": cur_name,
        "tolerance": args.tolerance,
        "regressed": bool(regressions),
        "comparisons": rows,
    }
    if args.diff_out:
        with open(args.diff_out, "w", encoding="utf-8") as fh:
            json.dump(diff, fh, indent=2)
            fh.write("\n")

    gated = [r for r in rows if r["direction"] != "info"]
    print(f"bench '{cur_name}': {len(gated)} gated metrics, "
          f"{len(rows) - len(gated)} informational, tolerance {args.tolerance:.0%}")
    for row in rows:
        if row["status"] in ("regressed", "missing"):
            print(f"  REGRESSED  {row['metric']}: baseline={row['baseline']} "
                  f"current={row['current']} ({row.get('reason', row['status'])})")
    if regressions:
        print(f"FAIL: {len(regressions)} metric(s) regressed beyond {args.tolerance:.0%}")
        return 1
    print("OK: no gated metric regressed")
    return 0


def self_test():
    """Proves the checker fails on a synthetic regression and passes on
    identical reports (run by CI so the gate is demonstrably live)."""
    baseline = {
        "sample:workload:items_per_second": 1000.0,
        "stage:workload:scan:items_per_second": 4000.0,
        "counter:sessions_per_sec_8": 500.0,
        "counter:p99_query_seconds_8": 0.010,
        "counter:cache_coherent": 1.0,
        "counter:cache_hits": 77.0,
    }

    rows, regressions = compare(baseline, dict(baseline), 0.25)
    assert not regressions, f"identical reports must pass: {regressions}"

    # A baseline written before per-stage breakdowns existed must tolerate a
    # current report that has them (new fields never gate) ...
    old_baseline = {k: v for k, v in baseline.items() if not k.startswith("stage:")}
    rows, regressions = compare(old_baseline, dict(baseline), 0.25)
    assert not regressions, f"stage metrics new in current must not gate: {regressions}"

    # ... but once a stage is in the baseline, its throughput gates like any
    # other rate metric.
    stage_slow = dict(baseline)
    stage_slow["stage:workload:scan:items_per_second"] = 4000.0 * 0.5
    rows, regressions = compare(baseline, stage_slow, 0.25)
    assert any(r["metric"] == "stage:workload:scan:items_per_second"
               for r in regressions), rows

    slower = dict(baseline)
    slower["counter:sessions_per_sec_8"] = 500.0 * 0.5  # -50% throughput
    rows, regressions = compare(baseline, slower, 0.25)
    assert any(r["metric"] == "counter:sessions_per_sec_8" for r in regressions), rows

    latent = dict(baseline)
    latent["counter:p99_query_seconds_8"] = 0.010 * 2.0  # 2x p99, +10ms absolute
    rows, regressions = compare(baseline, latent, 0.25)
    assert any(r["metric"] == "counter:p99_query_seconds_8" for r in regressions), rows

    tiny = dict(baseline)
    tiny["counter:p50_query_seconds_1"] = 5e-6  # 10x relatively, but within slack
    tiny_base = dict(baseline)
    tiny_base["counter:p50_query_seconds_1"] = 5e-7
    rows, regressions = compare(tiny_base, tiny, 0.25)
    assert not regressions, f"sub-slack latency noise must not gate: {regressions}"

    broken = dict(baseline)
    broken["counter:cache_coherent"] = 0.0  # hard gate flip
    rows, regressions = compare(baseline, broken, 0.25)
    assert any(r["metric"] == "counter:cache_coherent" for r in regressions), rows

    noisy = dict(baseline)
    noisy["counter:cache_hits"] = 5.0  # informational: must NOT gate
    rows, regressions = compare(baseline, noisy, 0.25)
    assert not regressions, f"informational counters must not gate: {regressions}"

    within = dict(baseline)
    within["counter:sessions_per_sec_8"] = 500.0 * 0.80  # -20% < 25% tolerance
    rows, regressions = compare(baseline, within, 0.25)
    assert not regressions, f"within-tolerance drift must pass: {regressions}"

    print("self-test OK: regressions fail, identical/within-tolerance pass")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", help="committed BENCH_<name>.json to compare against")
    parser.add_argument("--current", help="freshly produced BENCH_<name>.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative regression (default 0.25 = 25%%)")
    parser.add_argument("--latency-slack", type=float, default=0.001,
                        help="absolute slack in seconds for lower-is-better "
                             "latency metrics (default 0.001)")
    parser.add_argument("--diff-out", help="write the full comparison JSON here")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in synthetic-regression self-test")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required (or use --self-test)")
    return run_check(args)


if __name__ == "__main__":
    sys.exit(main())
