// flexvis — command-line front end over the library, composing the full
// stack through the persisted warehouse format (dw::SaveDatabase /
// LoadDatabase):
//
//   flexvis generate --out DIR [--prosumers N] [--offers-per-prosumer X]
//                    [--seed S] [--day YYYY-MM-DD]
//       build a synthetic world and write the warehouse directory
//
//   flexvis plan --db DIR [--day YYYY-MM-DD] [--forecast] [--local-search N]
//       run the day-ahead enterprise loop, write schedules back, print the
//       report, and save the updated warehouse. With FLEXVIS_SHARDS=N (N>1)
//       the horizon is planned across N enterprise shards instead and the
//       merged report printed; sharded plans are not written back.
//
//   flexvis render --db DIR --view basic|profile|map|schematic|dashboard
//                  --out FILE.svg|.png|.ppm [--day YYYY-MM-DD]
//       render a view of the warehouse's offers to a file
//
//   flexvis mdx --db DIR "SELECT ... FROM [FlexOffers] ..."
//       evaluate an MDX query and print the pivot table
//
//   flexvis alerts --db DIR [--day YYYY-MM-DD]
//       plan (without write-back) and print shortage/over-capacity alerts
//       with drill-downs
//
//   flexvis stats --db DIR
//       print warehouse summary statistics
//
// Every command exits 0 on success and prints errors to stderr otherwise.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "dw/persistence.h"
#include "geo/atlas.h"
#include "grid/topology.h"
#include "olap/cube.h"
#include "olap/mdx.h"
#include "render/png.h"
#include "render/raster_canvas.h"
#include "render/svg_canvas.h"
#include "sim/alerts.h"
#include "sim/coordinator.h"
#include "sim/enterprise.h"
#include "sim/workload.h"
#include "util/strings.h"
#include "viz/basic_view.h"
#include "viz/dashboard_view.h"
#include "viz/map_view.h"
#include "viz/profile_view.h"
#include "viz/schematic_view.h"

using namespace flexvis;
using timeutil::TimeInterval;
using timeutil::TimePoint;

namespace {

// ---- Tiny flag parser ----------------------------------------------------------

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;  // --key value or --key (="")

  bool Has(const std::string& key) const { return flags.count(key) != 0; }
  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    return std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    return std::atof(it->second.c_str());
  }
};

Args ParseArgs(int argc, char** argv, int start) {
  Args args;
  for (int i = start; i < argc; ++i) {
    std::string token = argv[i];
    if (StartsWith(token, "--")) {
      std::string key = token.substr(2);
      if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        args.flags[key] = argv[++i];
      } else {
        args.flags[key] = "";
      }
    } else {
      args.positional.push_back(std::move(token));
    }
  }
  return args;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: flexvis <command> [flags]\n"
               "commands: generate, plan, render, mdx, alerts, stats\n"
               "see the header of tools/flexvis_cli.cc for details\n");
  return 2;
}

Result<TimePoint> ParseDay(const std::string& text) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    return InvalidArgumentError(StrFormat("cannot parse day '%s'", text.c_str()));
  }
  return TimePoint::FromCalendar(y, m, d, 0, 0);
}

TimeInterval DayWindow(const Args& args) {
  TimePoint day = TimePoint::FromCalendarOrDie(2013, 2, 1, 0, 0);
  if (args.Has("day")) {
    Result<TimePoint> parsed = ParseDay(args.Get("day"));
    if (parsed.ok()) day = *parsed;
  }
  return TimeInterval(day, day + timeutil::kMinutesPerDay);
}

// ---- Commands ----------------------------------------------------------------

int CmdGenerate(const Args& args) {
  std::string out = args.Get("out");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out DIR is required\n");
    return 2;
  }
  geo::Atlas atlas = geo::Atlas::MakeDenmark();
  grid::GridTopology topology = grid::GridTopology::MakeRadial(3, 2, 2, 4);
  dw::Database db;
  Status status = atlas.RegisterWithDatabase(db);
  if (status.ok()) status = topology.RegisterWithDatabase(db);
  if (!status.ok()) return Fail(status);

  sim::WorkloadGenerator generator(&atlas, &topology);
  sim::WorkloadParams params;
  params.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  params.num_prosumers = static_cast<int>(args.GetInt("prosumers", 200));
  params.offers_per_prosumer = args.GetDouble("offers-per-prosumer", 5.0);
  params.horizon = DayWindow(args);
  Result<sim::Workload> generated = generator.Generate(params);
  if (!generated.ok()) return Fail(generated.status());
  sim::Workload workload = *std::move(generated);
  status = sim::WorkloadGenerator::LoadIntoDatabase(workload, db);
  if (!status.ok()) return Fail(status);
  status = dw::SaveDatabase(db, out);
  if (!status.ok()) return Fail(status);
  std::printf("generated %zu prosumers, %zu flex-offers for %s -> %s\n",
              workload.prosumers.size(), workload.offers.size(),
              params.horizon.start.ToString().c_str(), out.c_str());
  return 0;
}

int CmdPlan(const Args& args) {
  std::string dir = args.Get("db");
  if (dir.empty()) {
    std::fprintf(stderr, "plan: --db DIR is required\n");
    return 2;
  }
  Result<dw::Database> db = dw::LoadDatabase(dir);
  if (!db.ok()) return Fail(db.status());

  sim::EnterpriseParams params;
  params.plan_on_forecast = args.Has("forecast");
  params.local_search_iterations = static_cast<int>(args.GetInt("local-search", 0));
  // Named strategies (README "Strategies & scenarios"): empty falls back to
  // the defaults; unknown names fail typed from PlanHorizon.
  params.forecaster = args.Get("forecaster");
  params.market.bidding = args.Get("bidding");

  // FLEXVIS_SHARDS=N partitions the prosumer population across N enterprise
  // shards (README "Multi-enterprise sharding"). The merged plan is printed
  // but not written back: per-shard schedules belong to per-shard
  // warehouses (dw::SaveDatabaseSharded), not this single one.
  if (int shards = sim::ShardsFromEnv(1); shards > 1) {
    Result<std::vector<core::FlexOffer>> offers =
        db->SelectFlexOffers(dw::FlexOfferFilter{});
    if (!offers.ok()) return Fail(offers.status());
    Result<sim::MergedPlanningReport> merged = sim::PlanHorizonSharded(
        params, shards, sim::ShardPolicy::kHash, *offers, DayWindow(args));
    if (!merged.ok()) return Fail(merged.status());
    std::printf("enterprise shards     %d\n", merged->num_shards);
    std::printf("offers planned        %d\n", merged->global.offers_in);
    std::printf("aggregates            %d (assigned %d, rejected %d)\n",
                merged->global.aggregates_built, merged->global.aggregates_assigned,
                merged->global.aggregates_rejected);
    std::printf("surplus imbalance     %.0f -> %.0f kWh\n",
                merged->global.imbalance_before_kwh, merged->global.imbalance_after_kwh);
    std::printf("settlement            %.2f EUR (imbalance fee %.2f EUR)\n",
                merged->global.settlement.total_cost_eur,
                merged->global.settlement.imbalance_cost_eur);
    std::printf("warehouse unchanged   sharded plans are not written back\n");
    return 0;
  }

  sim::Enterprise enterprise(params);
  Result<sim::PlanningReport> report = enterprise.RunDayAhead(*db, DayWindow(args));
  if (!report.ok()) return Fail(report.status());

  std::printf("offers planned        %d\n", report->offers_in);
  std::printf("aggregates            %d (assigned %d, rejected %d)\n",
              report->aggregates_built, report->aggregates_assigned,
              report->aggregates_rejected);
  std::printf("planned on            %s demand\n",
              params.plan_on_forecast ? "forecast" : "actual");
  std::printf("strategies            forecaster=%s bidding=%s\n",
              report->forecaster.c_str(), report->bidding.c_str());
  std::printf("surplus imbalance     %.0f -> %.0f kWh\n", report->imbalance_before_kwh,
              report->imbalance_after_kwh);
  std::printf("plan deviation        %.0f kWh\n", report->deviation.AbsTotal());
  std::printf("settlement            %.2f EUR (imbalance fee %.2f EUR)\n",
              report->settlement.total_cost_eur, report->settlement.imbalance_cost_eur);
  Status status = dw::SaveDatabase(*db, dir);
  if (!status.ok()) return Fail(status);
  std::printf("warehouse updated     %s\n", dir.c_str());
  return 0;
}

int CmdRender(const Args& args) {
  std::string dir = args.Get("db");
  std::string view = args.Get("view", "basic");
  std::string out = args.Get("out");
  if (dir.empty() || out.empty()) {
    std::fprintf(stderr, "render: --db DIR and --out FILE are required\n");
    return 2;
  }
  Result<dw::Database> db = dw::LoadDatabase(dir);
  if (!db.ok()) return Fail(db.status());
  Result<std::vector<core::FlexOffer>> offers = db->SelectFlexOffers(dw::FlexOfferFilter{});
  if (!offers.ok()) return Fail(offers.status());

  std::unique_ptr<render::DisplayList> scene;
  if (view == "basic") {
    scene = std::move(viz::RenderBasicView(*offers, viz::BasicViewOptions{}).scene);
  } else if (view == "profile") {
    scene = std::move(viz::RenderProfileView(*offers, viz::ProfileViewOptions{}).scene);
  } else if (view == "map") {
    geo::Atlas atlas = geo::Atlas::MakeDenmark();
    scene = std::move(viz::RenderMapView(*offers, atlas, viz::MapViewOptions{}).scene);
  } else if (view == "schematic") {
    grid::GridTopology topology = grid::GridTopology::MakeRadial(3, 2, 2, 4);
    scene = std::move(
        viz::RenderSchematicView(*offers, topology, viz::SchematicViewOptions{}).scene);
  } else if (view == "dashboard") {
    scene = std::move(viz::RenderDashboardView(*offers, viz::DashboardOptions{}).scene);
  } else {
    std::fprintf(stderr, "render: unknown view '%s'\n", view.c_str());
    return 2;
  }

  Status status;
  if (EndsWith(out, ".svg")) {
    render::SvgCanvas svg(scene->width(), scene->height());
    scene->ReplayAll(svg);
    status = svg.WriteToFile(out);
  } else if (EndsWith(out, ".png") || EndsWith(out, ".ppm")) {
    render::RasterCanvas raster(static_cast<int>(scene->width()),
                                static_cast<int>(scene->height()));
    scene->ReplayAll(raster);
    status = EndsWith(out, ".png") ? render::WritePngFile(raster, out)
                                   : raster.WriteToFile(out);
  } else {
    std::fprintf(stderr, "render: --out must end in .svg, .png, or .ppm\n");
    return 2;
  }
  if (!status.ok()) return Fail(status);
  std::printf("rendered %s view of %zu offers -> %s\n", view.c_str(), offers->size(),
              out.c_str());
  return 0;
}

int CmdMdx(const Args& args) {
  std::string dir = args.Get("db");
  if (dir.empty() || args.positional.empty()) {
    std::fprintf(stderr, "mdx: --db DIR and a query string are required\n");
    return 2;
  }
  Result<dw::Database> db = dw::LoadDatabase(dir);
  if (!db.ok()) return Fail(db.status());
  olap::Cube cube(&*db);
  Status status = cube.AddStandardDimensions();
  if (!status.ok()) return Fail(status);
  Result<olap::CubeQuery> query = olap::ParseMdx(args.positional[0], cube);
  if (!query.ok()) return Fail(query.status());
  Result<olap::PivotResult> pivot = cube.Evaluate(*query);
  if (!pivot.ok()) return Fail(pivot.status());
  std::printf("%s", pivot->ToText().c_str());
  return 0;
}

int CmdAlerts(const Args& args) {
  std::string dir = args.Get("db");
  if (dir.empty()) {
    std::fprintf(stderr, "alerts: --db DIR is required\n");
    return 2;
  }
  Result<dw::Database> db = dw::LoadDatabase(dir);
  if (!db.ok()) return Fail(db.status());
  dw::FlexOfferFilter raw_only;
  raw_only.aggregates = dw::FlexOfferFilter::AggregateFilter::kOnlyRaw;
  Result<std::vector<core::FlexOffer>> offers = db->SelectFlexOffers(raw_only);
  if (!offers.ok()) return Fail(offers.status());

  sim::Enterprise enterprise;
  Result<sim::PlanningReport> report = enterprise.PlanHorizon(*offers, DayWindow(args));
  if (!report.ok()) return Fail(report.status());

  sim::AlertParams params;
  params.shortage_threshold_kwh = args.GetDouble("threshold", 40.0);
  params.overcapacity_threshold_kwh = params.shortage_threshold_kwh;
  std::vector<sim::Alert> alerts = sim::AlertEngine(params).Scan(*report);
  std::printf("%zu alert(s)\n", alerts.size());
  for (const sim::Alert& alert : alerts) {
    std::printf("[%-14s] sev %.2f  %s\n", std::string(sim::AlertKindName(alert.kind)).c_str(),
                alert.severity, alert.message.c_str());
    Result<sim::AlertDrillDown> drill = sim::DrillDownAlert(alert, *db, 3);
    if (drill.ok()) {
      for (core::FlexOfferId id : drill->top_contributors) {
        std::printf("    contributor: offer %lld\n", static_cast<long long>(id));
      }
    }
  }
  return 0;
}

int CmdStats(const Args& args) {
  std::string dir = args.Get("db");
  if (dir.empty()) {
    std::fprintf(stderr, "stats: --db DIR is required\n");
    return 2;
  }
  Result<dw::Database> db = dw::LoadDatabase(dir);
  if (!db.ok()) return Fail(db.status());
  Result<std::vector<core::FlexOffer>> offers = db->SelectFlexOffers(dw::FlexOfferFilter{});
  if (!offers.ok()) return Fail(offers.status());
  core::StateCounts counts = core::CountByState(*offers);
  core::BalancingPotential bp = core::ComputeBalancingPotential(*offers);
  std::printf("prosumers            %zu\n", db->prosumers().size());
  std::printf("regions              %zu\n", db->regions().size());
  std::printf("grid nodes           %zu\n", db->grid_nodes().size());
  std::printf("flex-offers          %zu\n", offers->size());
  std::printf("  offered            %lld\n",
              static_cast<long long>(counts[core::FlexOfferState::kOffered]));
  std::printf("  accepted           %lld\n",
              static_cast<long long>(counts[core::FlexOfferState::kAccepted]));
  std::printf("  assigned           %lld\n",
              static_cast<long long>(counts[core::FlexOfferState::kAssigned]));
  std::printf("  rejected           %lld\n",
              static_cast<long long>(counts[core::FlexOfferState::kRejected]));
  std::printf("scheduled energy     %.0f kWh\n", core::TotalScheduledEnergyKwh(*offers));
  std::printf("balancing potential  %.3f\n", bp.potential);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (Status faults = sim::InstallFaultsFromEnv(); !faults.ok()) {
    std::fprintf(stderr, "%s\n", faults.ToString().c_str());
    return 1;
  }
  std::string command = argv[1];
  Args args = ParseArgs(argc, argv, 2);
  if (command == "generate") return CmdGenerate(args);
  if (command == "plan") return CmdPlan(args);
  if (command == "render") return CmdRender(args);
  if (command == "mdx") return CmdMdx(args);
  if (command == "alerts") return CmdAlerts(args);
  if (command == "stats") return CmdStats(args);
  return Usage();
}
