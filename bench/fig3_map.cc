// Figure 3 — "Example of the map view of flex-offers".
//
// Regenerates the map view: the five leaf areas of the synthetic Denmark
// atlas, shaded by flex-offer count, each with a mini histogram of offer
// earliest-start times (the "0..50" scales of the figure). Prints the
// per-region counts and histogram rows.

#include <cstdio>

#include "bench/bench_common.h"
#include "viz/map_view.h"

using namespace flexvis;

int main() {
  bench::PrintHeader("fig3_map", "Fig. 3: map view with one histogram per region");

  bench::WorldOptions options;
  options.num_prosumers = 500;
  options.offers_per_prosumer = 20.0;  // ~10k offers, a realistic map load
  std::unique_ptr<bench::World> world = bench::BuildWorld(options);

  viz::MapViewOptions view_options;
  view_options.histogram_buckets = 8;
  viz::MapViewResult view = viz::RenderMapView(world->workload.offers, world->atlas,
                                               view_options);
  Status export_status = bench::ExportScene(*view.scene, "fig3_map");
  if (!export_status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", export_status.ToString().c_str());
    return 1;
  }

  std::printf("\n%zu flex-offers over %zu regions\n", world->workload.offers.size(),
              view.region_ids.size());
  std::printf("%-14s %8s\n", "region", "offers");
  int64_t total = 0;
  for (size_t i = 0; i < view.region_ids.size(); ++i) {
    Result<geo::GeoRegion> region = world->atlas.Find(view.region_ids[i]);
    std::printf("%-14s %8lld\n", region.ok() ? region->name.c_str() : "?",
                static_cast<long long>(view.region_counts[i]));
    total += view.region_counts[i];
  }
  std::printf("%-14s %8lld\n", "total", static_cast<long long>(total));

  // Drill-up: the same map at the region level (Spatial-Geographical
  // requirement: "select data for (or group on) a spacial object, e.g.,
  // country, city, or district").
  viz::MapViewOptions region_options;
  region_options.level = "region";
  viz::MapViewResult regions = viz::RenderMapView(world->workload.offers, world->atlas,
                                                  region_options);
  export_status = bench::ExportScene(*regions.scene, "fig3_map_regions");
  if (!export_status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", export_status.ToString().c_str());
    return 1;
  }
  std::printf("\ndrill-up to region level:\n%-14s %8s\n", "region", "offers");
  for (size_t i = 0; i < regions.region_ids.size(); ++i) {
    Result<geo::GeoRegion> region = world->atlas.Find(regions.region_ids[i]);
    std::printf("%-14s %8lld\n", region.ok() ? region->name.c_str() : "?",
                static_cast<long long>(regions.region_counts[i]));
  }
  return 0;
}
