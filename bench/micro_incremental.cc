// Q2 — "the incremental rendering of flex-offers ... allows executing
// actions when a flex-offer rendering is in progress (rendering does not
// freeze the tool)".
//
// Quantifies the claim: full raster replay of a large basic-view scene vs.
// one budgeted incremental step, plus a measurement of how many display
// items fit inside a 16 ms frame budget (a 60 Hz GUI tick) — the number the
// tool would use to size its per-frame work.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "bench/bench_common.h"
#include "render/incremental.h"
#include "render/raster_canvas.h"
#include "viz/basic_view.h"

using namespace flexvis;

namespace {

std::unique_ptr<render::DisplayList> BuildScene(size_t offers) {
  viz::BasicViewResult result =
      viz::RenderBasicView(bench::MakeRandomOffers(7, offers), viz::BasicViewOptions{});
  return std::move(result.scene);
}

void BM_FullRasterReplay(benchmark::State& state) {
  std::unique_ptr<render::DisplayList> scene = BuildScene(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    render::RasterCanvas canvas(1000, 600);
    scene->ReplayAll(canvas);
    benchmark::DoNotOptimize(canvas);
  }
  state.counters["display_items"] = static_cast<double>(scene->size());
}
BENCHMARK(BM_FullRasterReplay)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_IncrementalStep512(benchmark::State& state) {
  std::unique_ptr<render::DisplayList> scene = BuildScene(static_cast<size_t>(state.range(0)));
  render::RasterCanvas canvas(1000, 600);
  render::IncrementalRenderer renderer(scene.get(), &canvas);
  for (auto _ : state) {
    if (renderer.done()) renderer.Reset();
    benchmark::DoNotOptimize(renderer.Step(512));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_IncrementalStep512)->Arg(10000)->Arg(50000);

// Not a throughput benchmark: measures how many items fit in a 16 ms frame.
void BM_ItemsPerFrameBudget(benchmark::State& state) {
  std::unique_ptr<render::DisplayList> scene = BuildScene(50000);
  double items_per_frame = 0.0;
  for (auto _ : state) {
    render::RasterCanvas canvas(1000, 600);
    render::IncrementalRenderer renderer(scene.get(), &canvas);
    auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(16);
    size_t replayed = 0;
    while (!renderer.done() && std::chrono::steady_clock::now() < deadline) {
      replayed += renderer.Step(256);
    }
    items_per_frame = static_cast<double>(replayed);
    benchmark::DoNotOptimize(replayed);
  }
  state.counters["items_per_16ms_frame"] = items_per_frame;
  state.counters["scene_items"] = static_cast<double>(scene->size());
}
BENCHMARK(BM_ItemsPerFrameBudget)->Iterations(3)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
