// Q2 — "the incremental rendering of flex-offers ... allows executing
// actions when a flex-offer rendering is in progress (rendering does not
// freeze the tool)".
//
// Quantifies the claim: full raster replay of a large basic-view scene vs.
// one budgeted incremental step, plus a measurement of how many display
// items fit inside a 16 ms frame budget (a 60 Hz GUI tick) — the number the
// tool would use to size its per-frame work.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "render/incremental.h"
#include "render/raster_canvas.h"
#include "util/parallel.h"
#include "viz/basic_view.h"

using namespace flexvis;

namespace {

std::unique_ptr<render::DisplayList> BuildScene(size_t offers) {
  viz::BasicViewResult result =
      viz::RenderBasicView(bench::MakeRandomOffers(7, offers), viz::BasicViewOptions{});
  return std::move(result.scene);
}

void BM_FullRasterReplay(benchmark::State& state) {
  std::unique_ptr<render::DisplayList> scene = BuildScene(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    render::RasterCanvas canvas(1000, 600);
    scene->ReplayAll(canvas);
    benchmark::DoNotOptimize(canvas);
  }
  state.counters["display_items"] = static_cast<double>(scene->size());
}
BENCHMARK(BM_FullRasterReplay)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_IncrementalStep512(benchmark::State& state) {
  std::unique_ptr<render::DisplayList> scene = BuildScene(static_cast<size_t>(state.range(0)));
  render::RasterCanvas canvas(1000, 600);
  render::IncrementalRenderer renderer(scene.get(), &canvas);
  for (auto _ : state) {
    if (renderer.done()) renderer.Reset();
    benchmark::DoNotOptimize(renderer.Step(512));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_IncrementalStep512)->Arg(10000)->Arg(50000);

// Not a throughput benchmark: measures how many items fit in a 16 ms frame.
void BM_ItemsPerFrameBudget(benchmark::State& state) {
  std::unique_ptr<render::DisplayList> scene = BuildScene(50000);
  double items_per_frame = 0.0;
  for (auto _ : state) {
    render::RasterCanvas canvas(1000, 600);
    render::IncrementalRenderer renderer(scene.get(), &canvas);
    auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(16);
    size_t replayed = 0;
    while (!renderer.done() && std::chrono::steady_clock::now() < deadline) {
      replayed += renderer.Step(256);
    }
    items_per_frame = static_cast<double>(replayed);
    benchmark::DoNotOptimize(replayed);
  }
  state.counters["items_per_16ms_frame"] = items_per_frame;
  state.counters["scene_items"] = static_cast<double>(scene->size());
}
BENCHMARK(BM_ItemsPerFrameBudget)->Iterations(3)->Unit(benchmark::kMillisecond);

// Serial-vs-tile-parallel raster replay report for the CI gate. The two
// framebuffers must match byte-for-byte; false on divergence or I/O failure.
bool WriteSpeedupReport() {
  const size_t offers = bench::EnvSize("FLEXVIS_BENCH_OFFERS", 20000);
  std::unique_ptr<render::DisplayList> scene = BuildScene(offers);
  const double items = static_cast<double>(scene->size());

  SetParallelThreadCount(1);
  render::RasterCanvas serial_canvas(1000, 600);
  scene->ReplayAll(serial_canvas);
  double serial_seconds = bench::MeasureSeconds([&] {
    render::RasterCanvas canvas(1000, 600);
    scene->ReplayAll(canvas);
  });

  const int threads = std::max(4, ParallelThreadCount());
  SetParallelThreadCount(threads);
  render::RasterCanvas threaded_canvas(1000, 600);
  threaded_canvas.ReplayParallelAll(*scene);
  double threaded_seconds = bench::MeasureSeconds([&] {
    render::RasterCanvas canvas(1000, 600);
    canvas.ReplayParallelAll(*scene);
  });
  SetParallelThreadCount(0);

  bench::BenchReport report("micro_incremental");
  report.AddSample("raster_replay_serial", serial_seconds, 1, items);
  report.AddSample("raster_replay_parallel", threaded_seconds, threads, items);
  report.AddStage("raster_replay_serial", "scan", serial_seconds, items);
  report.AddStage("raster_replay_parallel", "merge", threaded_seconds, items);
  report.SetCounter("speedup", threaded_seconds > 0.0 ? serial_seconds / threaded_seconds : 0.0);
  report.SetCounter("display_items", items);
  const bool deterministic = serial_canvas.ToPpm() == threaded_canvas.ToPpm();
  report.SetCounter("deterministic", deterministic ? 1.0 : 0.0);
  Status status = report.Write();
  if (!status.ok()) {
    std::fprintf(stderr, "report failed: %s\n", status.ToString().c_str());
    return false;
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: tile-parallel raster output diverged from serial replay\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!WriteSpeedupReport()) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
