// Q5 — interactivity plumbing: "automatic selection of 'pretty scales' of
// the axes", hover hit-testing (Fig. 10), and rubber-band selection
// (Fig. 8) must all be cheap enough to run on every mouse move.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_common.h"
#include "render/scale.h"
#include "viz/basic_view.h"
#include "viz/interaction.h"

using namespace flexvis;

namespace {

void BM_PrettyScale(benchmark::State& state) {
  double hi = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::MakePrettyScale(0.37, hi, 6));
    hi = hi * 1.1 + 0.01;
    if (hi > 1e9) hi = 1.0;
  }
}
BENCHMARK(BM_PrettyScale);

void BM_TimeTicks(benchmark::State& state) {
  timeutil::TimeInterval window(bench::BenchDay(),
                                bench::BenchDay() + state.range(0) * 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::MakeTimeTicks(window));
  }
}
BENCHMARK(BM_TimeTicks)->Arg(24 * 60)->Arg(24 * 60 * 30)->Arg(24 * 60 * 365);

struct SceneFixture {
  explicit SceneFixture(size_t offers)
      : offer_list(bench::MakeRandomOffers(17, offers)),
        view(viz::RenderBasicView(offer_list, viz::BasicViewOptions{})) {}
  std::vector<core::FlexOffer> offer_list;
  viz::BasicViewResult view;
};

void BM_HitTestPoint(benchmark::State& state) {
  SceneFixture fixture(static_cast<size_t>(state.range(0)));
  double x = fixture.view.plot.x;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.view.scene->HitTest(
        render::Point{x, fixture.view.plot.y + fixture.view.plot.height / 2}));
    x += 7.0;
    if (x > fixture.view.plot.right()) x = fixture.view.plot.x;
  }
}
BENCHMARK(BM_HitTestPoint)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_HoverResolve(benchmark::State& state) {
  SceneFixture fixture(static_cast<size_t>(state.range(0)));
  render::Point center{fixture.view.plot.x + fixture.view.plot.width / 2,
                       fixture.view.plot.y + fixture.view.plot.height / 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(viz::HoverAt(*fixture.view.scene, fixture.offer_list, center));
  }
}
BENCHMARK(BM_HoverResolve)->Arg(1000)->Arg(10000);

void BM_RubberBandSelect(benchmark::State& state) {
  SceneFixture fixture(static_cast<size_t>(state.range(0)));
  render::Rect band{fixture.view.plot.x + 100, fixture.view.plot.y + 50,
                    fixture.view.plot.width * 0.3, fixture.view.plot.height * 0.4};
  size_t selected = 0;
  for (auto _ : state) {
    std::vector<core::FlexOfferId> ids = viz::SelectByRectangle(*fixture.view.scene, band);
    selected = ids.size();
    benchmark::DoNotOptimize(ids);
  }
  state.counters["selected"] = static_cast<double>(selected);
}
BENCHMARK(BM_RubberBandSelect)->Arg(1000)->Arg(10000)->Arg(50000);

}  // namespace

BENCHMARK_MAIN();
