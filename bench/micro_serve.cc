// Serving-layer microbenchmarks (EXPERIMENTS.md Q10): what the concurrent
// multi-session MVCC tier costs and guarantees. The custom main writes
// bench_out/BENCH_serve.json with sessions/sec and p99 query latency for the
// mixed hover/select/pivot/rollup workload at 1/8/64 concurrent sessions,
// publish (ingest) throughput with 0 vs 64 pinned reader sessions, and cache
// hit/miss/eviction counters. Two hard gates fail the binary:
//
//   cache_coherent    every answer served from the result cache byte-equals
//                     the same request recomputed from scratch on a fresh
//                     engine over the same warehouse generation;
//   ingest_unblocked  publishing N generations with 64 pinned readers stays
//                     within FLEXVIS_SERVE_INGEST_TOLERANCE (default 10%)
//                     of the session-free publish rate — readers never block
//                     the ingest path.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serve/engine.h"
#include "util/strings.h"

using namespace flexvis;

namespace {

/// A warehouse generation whose content is a pure function of (offers,
/// version): states rotate with the version so successive generations give
/// different query answers.
std::shared_ptr<const dw::Database> MakeWarehouse(const std::vector<core::FlexOffer>& offers,
                                                  int version) {
  auto db = std::make_shared<dw::Database>();
  std::vector<core::FlexOffer> rotated = offers;
  const core::FlexOfferState states[] = {
      core::FlexOfferState::kOffered, core::FlexOfferState::kAccepted,
      core::FlexOfferState::kAssigned, core::FlexOfferState::kRejected};
  for (size_t i = 0; i < rotated.size(); ++i) {
    rotated[i].state = states[(i + static_cast<size_t>(version)) % 4];
    if (rotated[i].state != core::FlexOfferState::kAssigned) rotated[i].schedule.reset();
  }
  if (!db->LoadFlexOffers(rotated).ok()) std::abort();
  return db;
}

/// The mixed dashboard workload: hover, filtered select, pivot, roll-up.
std::vector<serve::ServeRequest> MixedWorkload(const std::vector<core::FlexOffer>& offers) {
  std::vector<serve::ServeRequest> requests;
  for (int i = 0; i < 4; ++i) {
    serve::ServeRequest hover;
    hover.kind = serve::RequestKind::kHover;
    hover.offer = offers[(offers.size() / 4) * static_cast<size_t>(i)].id;
    requests.push_back(hover);
  }
  serve::ServeRequest select;
  select.kind = serve::RequestKind::kSelect;
  select.filter.states = {core::FlexOfferState::kAccepted, core::FlexOfferState::kAssigned};
  requests.push_back(select);

  serve::ServeRequest pivot;
  pivot.kind = serve::RequestKind::kPivot;
  pivot.mdx =
      "SELECT { Measures.EnergyFlexibility } ON COLUMNS, { State.Members } ON ROWS "
      "FROM [FlexOffers]";
  requests.push_back(pivot);

  serve::ServeRequest rollup = pivot;
  rollup.kind = serve::RequestKind::kRollup;
  rollup.mdx =
      "SELECT { Measures.Count } ON COLUMNS, { Prosumer.Type.Members } ON ROWS "
      "FROM [FlexOffers]";
  requests.push_back(rollup);
  return requests;
}

double Percentile(std::vector<double>& sorted_ascending, double p) {
  if (sorted_ascending.empty()) return 0.0;
  std::sort(sorted_ascending.begin(), sorted_ascending.end());
  const size_t index = std::min(
      sorted_ascending.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ascending.size())));
  return sorted_ascending[index];
}

double EnvTolerance(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return (end != value && parsed > 0.0) ? parsed : fallback;
}

// ---- google-benchmark timings (not run by the CI smoke filter) --------------

void BM_ServeCachedPivot(benchmark::State& state) {
  std::vector<core::FlexOffer> offers = bench::MakeRandomOffers(91, 400);
  serve::ServeEngine engine(serve::ServeEngine::Options{});
  engine.Publish(MakeWarehouse(offers, 0));
  Result<serve::ServeSession> session = engine.OpenSession();
  if (!session.ok()) {
    state.SkipWithError(session.status().ToString().c_str());
    return;
  }
  const std::vector<serve::ServeRequest> workload = MixedWorkload(offers);
  size_t next = 0;
  for (auto _ : state) {
    Result<std::string> answer = session->Query(workload[next++ % workload.size()]);
    if (!answer.ok()) {
      state.SkipWithError(answer.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(answer);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeCachedPivot);

// ---- The JSON report the CI gate archives -----------------------------------

bool WriteServeReport() {
  bench::BenchReport report("serve");
  bool ok = true;

  const size_t num_offers = bench::EnvSize("FLEXVIS_BENCH_SERVE_OFFERS", 600);
  const std::vector<core::FlexOffer> offers = bench::MakeRandomOffers(91, num_offers);
  const std::vector<serve::ServeRequest> workload = MixedWorkload(offers);

  // ---- Sessions/sec + p99 query latency at 1/8/64 concurrent sessions ----
  serve::ServeEngine engine(serve::ServeEngine::Options{});
  engine.Publish(MakeWarehouse(offers, 0));

  for (int concurrency : {1, 8, 64}) {
    const int cycles_per_thread = concurrency == 1 ? 24 : concurrency == 8 ? 6 : 2;
    std::atomic<int> errors{0};
    std::atomic<int64_t> sessions_opened{0};
    std::mutex latency_mutex;
    std::vector<double> latencies;

    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(concurrency));
    for (int t = 0; t < concurrency; ++t) {
      threads.emplace_back([&, t] {
        std::vector<double> local;
        for (int c = 0; c < cycles_per_thread; ++c) {
          Result<serve::ServeSession> session = engine.OpenSession();
          if (!session.ok()) { ++errors; return; }
          ++sessions_opened;
          for (size_t q = 0; q < workload.size(); ++q) {
            const auto start = std::chrono::steady_clock::now();
            Result<std::string> answer =
                session->Query(workload[(q + static_cast<size_t>(t)) % workload.size()]);
            const auto end = std::chrono::steady_clock::now();
            if (!answer.ok()) { ++errors; return; }
            local.push_back(std::chrono::duration<double>(end - start).count());
          }
        }
        std::lock_guard<std::mutex> lock(latency_mutex);
        latencies.insert(latencies.end(), local.begin(), local.end());
      });
    }
    for (std::thread& thread : threads) thread.join();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

    if (errors.load() != 0) {
      std::fprintf(stderr, "FAIL: %d-session workload had %d errors\n", concurrency,
                   errors.load());
      ok = false;
    }
    const double sessions = static_cast<double>(sessions_opened.load());
    const std::string label = StrFormat("serve_sessions_%d", concurrency);
    report.AddSample(label, wall_s, concurrency, sessions);
    report.AddStage(label, "query", wall_s, static_cast<double>(latencies.size()));
    if (wall_s > 0.0) {
      report.SetCounter(StrFormat("sessions_per_sec_%d", concurrency), sessions / wall_s);
    }
    report.SetCounter(StrFormat("p99_query_seconds_%d", concurrency),
                      Percentile(latencies, 0.99));
    report.SetCounter(StrFormat("p50_query_seconds_%d", concurrency),
                      Percentile(latencies, 0.50));
  }

  serve::ServeStats stats = engine.stats();
  report.SetCounter("cache_hits", static_cast<double>(stats.cache.hits));
  report.SetCounter("cache_misses", static_cast<double>(stats.cache.misses));
  report.SetCounter("cache_evictions", static_cast<double>(stats.cache.evictions));
  if (stats.cache.hits <= 0) {
    std::fprintf(stderr, "FAIL: the mixed workload never hit the result cache\n");
    ok = false;
  }
  if (stats.active_pins != 0) {
    std::fprintf(stderr, "FAIL: %lld pins leaked after all sessions closed\n",
                 static_cast<long long>(stats.active_pins));
    ok = false;
  }

  // ---- Hard gate: cached result byte-equals recomputed --------------------
  // Re-answer the whole workload on the live engine (cache-hot), then on a
  // fresh engine over the same warehouse bytes (cache-cold, every answer
  // recomputed), and byte-compare.
  {
    bool coherent = true;
    std::shared_ptr<const dw::Database> db = MakeWarehouse(offers, 0);
    serve::ServeEngine fresh(serve::ServeEngine::Options{});
    fresh.Publish(db);
    Result<serve::ServeSession> hot = engine.OpenSession();
    Result<serve::ServeSession> cold = fresh.OpenSession();
    if (!hot.ok() || !cold.ok()) {
      coherent = false;
    } else {
      for (const serve::ServeRequest& request : workload) {
        Result<std::string> cached = hot->Query(request);
        Result<std::string> recomputed = cold->Query(request);
        if (!cached.ok() || !recomputed.ok() || *cached != *recomputed) {
          coherent = false;
          std::fprintf(stderr, "FAIL: cached result differs from recomputation\n");
          break;
        }
      }
    }
    report.SetCounter("cache_coherent", coherent ? 1.0 : 0.0);
    ok = ok && coherent;
  }

  // ---- Hard gate: pinned readers never block the ingest path --------------
  // Publish K generations with no sessions, then with 64 open sessions each
  // pinning a generation. MVCC means the publisher never waits on a reader,
  // so the pinned-readers run must stay within tolerance of the free run.
  {
    const int kPublishes = static_cast<int>(bench::EnvSize("FLEXVIS_BENCH_SERVE_PUBLISHES", 20));
    const double tolerance = EnvTolerance("FLEXVIS_SERVE_INGEST_TOLERANCE", 0.10);

    auto publish_k = [&](serve::ServeEngine& target) {
      for (int v = 1; v <= kPublishes; ++v) {
        target.Publish(MakeWarehouse(offers, v));
      }
    };

    serve::ServeEngine free_engine(serve::ServeEngine::Options{});
    free_engine.Publish(MakeWarehouse(offers, 0));
    const double free_s = bench::MeasureSeconds([&] { publish_k(free_engine); });

    serve::ServeEngine pinned_engine(serve::ServeEngine::Options{});
    pinned_engine.Publish(MakeWarehouse(offers, 0));
    std::vector<serve::ServeSession> readers;
    readers.reserve(64);
    for (int i = 0; i < 64; ++i) {
      Result<serve::ServeSession> session = pinned_engine.OpenSession();
      if (!session.ok()) { ok = false; break; }
      // Each reader pins whatever is current and holds the pin across the
      // whole publish storm (a dashboard mid-interaction).
      readers.push_back(*std::move(session));
    }
    const double pinned_s = bench::MeasureSeconds([&] { publish_k(pinned_engine); });
    readers.clear();

    const double free_rate = free_s > 0.0 ? kPublishes / free_s : 0.0;
    const double pinned_rate = pinned_s > 0.0 ? kPublishes / pinned_s : 0.0;
    report.SetCounter("publish_per_sec_free", free_rate);
    report.SetCounter("publish_per_sec_64_pinned", pinned_rate);
    const bool unblocked =
        free_rate > 0.0 && pinned_rate >= free_rate * (1.0 - tolerance);
    report.SetCounter("ingest_unblocked", unblocked ? 1.0 : 0.0);
    report.SetCounter("ingest_tolerance", tolerance);
    if (!unblocked) {
      std::fprintf(stderr,
                   "FAIL: publish rate dropped from %.1f/s to %.1f/s with 64 pinned "
                   "readers (tolerance %.0f%%)\n",
                   free_rate, pinned_rate, tolerance * 100.0);
      ok = false;
    }
  }

  // ---- Admission control under overload (reported, journaled) -------------
  {
    std::atomic<int64_t> journal_lines{0};
    serve::ServeEngine::Options options;
    options.max_active_sessions = 8;
    options.shed_policy = sim::ShedPolicy::kRejectNewest;
    options.journal = [&journal_lines](const std::string&) { ++journal_lines; };
    serve::ServeEngine bounded(options);
    bounded.Publish(MakeWarehouse(offers, 0));
    std::vector<serve::ServeSession> held;
    int shed = 0;
    for (int i = 0; i < 64; ++i) {
      Result<serve::ServeSession> session = bounded.OpenSession();
      if (session.ok()) {
        held.push_back(*std::move(session));
      } else {
        ++shed;
      }
    }
    report.SetCounter("admission_shed_64_over_8", static_cast<double>(shed));
    report.SetCounter("admission_journal_lines", static_cast<double>(journal_lines.load()));
    if (shed != 56 || bounded.stats().admission.shed != 56) {
      std::fprintf(stderr, "FAIL: expected 56 of 64 sessions shed, got %d\n", shed);
      ok = false;
    }
  }

  if (Status status = report.Write(); !status.ok()) {
    std::fprintf(stderr, "report failed: %s\n", status.ToString().c_str());
    return false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!WriteServeReport()) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
