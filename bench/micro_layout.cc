// Q1 — "The tool is capable of visualizing a large number of flex-offers on
// a computer screen."
//
// Quantifies the claim: lane-stacking layout and full basic-view scene
// construction across 10^2..10^5 offers, plus the ablation against the
// naive one-offer-per-lane layout DESIGN.md calls out (same asymptotic cost
// but hundreds of times more lanes, i.e. sub-pixel lanes on any screen).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "viz/basic_view.h"
#include "viz/lane_layout.h"
#include "viz/profile_view.h"

using namespace flexvis;

namespace {

void BM_AssignLanes(benchmark::State& state) {
  std::vector<core::FlexOffer> offers =
      bench::MakeRandomOffers(1, static_cast<size_t>(state.range(0)));
  int lanes = 0;
  for (auto _ : state) {
    viz::LaneLayout layout = viz::AssignLanes(offers);
    lanes = layout.lane_count;
    benchmark::DoNotOptimize(layout);
  }
  state.counters["offers"] = static_cast<double>(offers.size());
  state.counters["lanes"] = lanes;
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AssignLanes)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_AssignLanesNaive(benchmark::State& state) {
  std::vector<core::FlexOffer> offers =
      bench::MakeRandomOffers(1, static_cast<size_t>(state.range(0)));
  int lanes = 0;
  for (auto _ : state) {
    viz::LaneLayout layout = viz::AssignLanesNaive(offers);
    lanes = layout.lane_count;
    benchmark::DoNotOptimize(layout);
  }
  state.counters["lanes"] = lanes;
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AssignLanesNaive)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RenderBasicViewScene(benchmark::State& state) {
  std::vector<core::FlexOffer> offers =
      bench::MakeRandomOffers(2, static_cast<size_t>(state.range(0)));
  size_t items = 0;
  for (auto _ : state) {
    viz::BasicViewResult result = viz::RenderBasicView(offers, viz::BasicViewOptions{});
    items = result.scene->size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["display_items"] = static_cast<double>(items);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RenderBasicViewScene)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RenderProfileViewScene(benchmark::State& state) {
  std::vector<core::FlexOffer> offers =
      bench::MakeRandomOffers(3, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    viz::ProfileViewResult result =
        viz::RenderProfileView(offers, viz::ProfileViewOptions{});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RenderProfileViewScene)->Arg(100)->Arg(1000)->Arg(4000);

// Layout throughput report (layout itself is single-threaded; the report
// tracks offers/sec so CI can flag regressions of the Q1 scaling claim).
bool WriteLayoutReport() {
  const size_t count = bench::EnvSize("FLEXVIS_BENCH_OFFERS", 100000);
  std::vector<core::FlexOffer> offers = bench::MakeRandomOffers(1, count);

  double lanes_seconds = bench::MeasureSeconds([&] {
    viz::LaneLayout layout = viz::AssignLanes(offers);
    benchmark::DoNotOptimize(layout);
  });
  double scene_seconds = bench::MeasureSeconds([&] {
    viz::BasicViewResult result = viz::RenderBasicView(offers, viz::BasicViewOptions{});
    benchmark::DoNotOptimize(result);
  });

  bench::BenchReport report("micro_layout");
  report.AddSample("assign_lanes", lanes_seconds, 1, static_cast<double>(count));
  report.AddSample("render_basic_view_scene", scene_seconds, 1, static_cast<double>(count));
  // Lane assignment is the layout stage of the full scene build, so the two
  // samples double as a per-stage breakdown of the view render.
  report.AddStage("render_basic_view_scene", "layout", lanes_seconds,
                  static_cast<double>(count));
  report.AddStage("render_basic_view_scene", "paint", scene_seconds,
                  static_cast<double>(count));
  Status status = report.Write();
  if (!status.ok()) {
    std::fprintf(stderr, "report failed: %s\n", status.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!WriteLayoutReport()) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
