// Recovery-path microbenchmarks (EXPERIMENTS.md Q7/Q9): what crash
// consistency costs and how fast a crashed run comes back. The custom main
// writes bench_out/BENCH_recovery.json with snapshot save/load throughput,
// WAL append rates (fsync-per-record vs buffered), store recovery rate, and
// ResumeOnline wall time against the number of journaled ticks — with and
// without generational compaction. With compaction at interval C the resume
// replays at most C tick records no matter how long the run was; the
// `replay_bounded_by_interval` counter gates that bound in CI (the bench
// exits nonzero when a compacted resume replays more than its interval).
//
// All durable I/O goes through util/store's DurableStore — the journal and
// manifest primitives are implementation details of util/ and are not used
// directly here.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "dw/persistence.h"
#include "sim/checkpoint.h"
#include "sim/online.h"
#include "util/parallel.h"
#include "util/store.h"
#include "util/strings.h"

using namespace flexvis;

namespace {

namespace fs = std::filesystem;

std::string BenchDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / "flexvis_bench_recovery" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string SampleRecord() {
  // Roughly the size and shape of a real journaled tick record.
  return std::string(
      R"({"tick":7,"changes":[{"offer":1201,"state":2,"start_min":22606560,)"
      R"("kwh":[1.25,0.5,2.0]}],"sent":["..."],"received":64,"accepted":20,)"
      R"("rejected":4,"assigned":16,"next_arrival":64,"pend_acc":[7,9]})");
}

/// A minimal store layout for the raw WAL-rate benchmarks: one manifest, one
/// WAL, no snapshot files.
StoreOptions WalBenchOptions() {
  StoreOptions options;
  options.manifest_name = "MANIFEST.json";
  options.journal_name = "records.wal";
  return options;
}

// ---- google-benchmark timings (not run by the CI smoke filter) ----------------------

void BM_StoreAppendDurable(benchmark::State& state) {
  Result<DurableStore> store =
      DurableStore::Create(BenchDir("bm_append"), WalBenchOptions(), {}, JsonValue());
  if (!store.ok()) {
    state.SkipWithError(store.status().ToString().c_str());
    return;
  }
  const std::string record = SampleRecord();
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->Append(record));
    benchmark::DoNotOptimize(store->Flush());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(record.size()));
}
BENCHMARK(BM_StoreAppendDurable);

void BM_StoreRecover(benchmark::State& state) {
  const std::string dir = BenchDir("bm_recover");
  {
    Result<DurableStore> store =
        DurableStore::Create(dir, WalBenchOptions(), {}, JsonValue());
    if (!store.ok()) {
      state.SkipWithError(store.status().ToString().c_str());
      return;
    }
    for (int64_t i = 0; i < state.range(0); ++i) {
      if (!store->Append(SampleRecord()).ok()) {
        state.SkipWithError("append failed");
        return;
      }
    }
    (void)store->Close();
  }
  for (auto _ : state) {
    Result<StoreRecovery> recovery = DurableStore::Recover(dir, WalBenchOptions());
    benchmark::DoNotOptimize(recovery);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StoreRecover)->Arg(1000)->Arg(10000);

// ---- The JSON report the CI gate archives -------------------------------------------

bool WriteRecoveryReport() {
  bench::BenchReport report("recovery");
  bool ok = true;

  // Snapshot save/load throughput over a realistic warehouse.
  bench::WorldOptions world_options;
  world_options.num_prosumers =
      static_cast<int>(bench::EnvSize("FLEXVIS_BENCH_RECOVERY_PROSUMERS", 150));
  std::unique_ptr<bench::World> world = bench::BuildWorld(world_options);
  const double db_offers = static_cast<double>(world->db.NumFlexOffers());

  // WAL workload: enough records that per-record overheads dominate.
  const size_t journal_records = bench::EnvSize("FLEXVIS_BENCH_JOURNAL_RECORDS", 2000);
  const std::string record = SampleRecord();

  for (int threads : {1, 8}) {
    SetParallelThreadCount(threads);
    const std::string suffix = StrFormat("_%dt", threads);

    // Snapshot save + load (manifest verification included in the load).
    const std::string snap_dir = BenchDir(StrFormat("snapshot%s", suffix.c_str()));
    double save_s = bench::MeasureSeconds([&] {
      if (!dw::SaveDatabase(world->db, snap_dir).ok()) ok = false;
    });
    report.AddSample("snapshot_save" + suffix, save_s, threads, db_offers);
    double load_s = bench::MeasureSeconds([&] {
      Result<dw::Database> restored = dw::LoadDatabase(snap_dir);
      if (!restored.ok()) ok = false;
      benchmark::DoNotOptimize(restored);
    });
    report.AddSample("snapshot_load" + suffix, load_s, threads, db_offers);

    // WAL append, durable (flush+fsync per record) and buffered.
    const std::string journal_dir = BenchDir(StrFormat("journal%s", suffix.c_str()));
    double durable_s = bench::MeasureSeconds(
        [&] {
          Result<DurableStore> store = DurableStore::Create(
              journal_dir + "/durable", WalBenchOptions(), {}, JsonValue());
          for (size_t i = 0; store.ok() && i < journal_records; ++i) {
            if (!store->Append(record).ok() || !store->Flush().ok()) ok = false;
          }
        },
        1);
    report.AddSample("journal_append_fsync" + suffix, durable_s, threads,
                     static_cast<double>(journal_records));
    const std::string buffered_dir = journal_dir + "/buffered";
    double buffered_s = bench::MeasureSeconds([&] {
      Result<DurableStore> store =
          DurableStore::Create(buffered_dir, WalBenchOptions(), {}, JsonValue());
      for (size_t i = 0; store.ok() && i < journal_records; ++i) {
        if (!store->Append(record).ok()) ok = false;
      }
      if (store.ok() && !store->Close().ok()) ok = false;
    });
    report.AddSample("journal_append_buffered" + suffix, buffered_s, threads,
                     static_cast<double>(journal_records));

    // Store recovery (manifest verification + WAL replay of the buffered
    // store written above).
    double replay_s = bench::MeasureSeconds([&] {
      Result<StoreRecovery> recovery =
          DurableStore::Recover(buffered_dir, WalBenchOptions());
      if (!recovery.ok() || recovery->records.size() != journal_records) ok = false;
      benchmark::DoNotOptimize(recovery);
    });
    report.AddSample("journal_replay" + suffix, replay_s, threads,
                     static_cast<double>(journal_records));
    report.AddStage("journal_replay" + suffix, "scan", replay_s,
                    static_cast<double>(journal_records));
    report.AddStage("snapshot_load" + suffix, "fold", load_s, db_offers);
    report.AddStage("journal_append_fsync" + suffix, "append", durable_s,
                    static_cast<double>(journal_records));
    if (replay_s > 0.0) {
      report.SetCounter("journal_replay_records_per_sec" + suffix,
                        static_cast<double>(journal_records) / replay_s);
    }
  }
  SetParallelThreadCount(1);

  // Resume wall time vs run length x compaction cadence (EXPERIMENTS.md Q9):
  // run once checkpointed at a 15-minute tick over growing windows, then
  // time ResumeOnline over the completed store. Without compaction the
  // replayed-tick count grows linearly with the run; with compaction at
  // interval C the resume replays at most C records — the hard bound the
  // `replay_bounded_by_interval` counter gates.
  std::vector<core::FlexOffer> offers =
      bench::MakeRandomOffers(31, bench::EnvSize("FLEXVIS_BENCH_RESUME_OFFERS", 200));
  const int64_t tick_minutes = 15;
  const size_t ticks_cap = bench::EnvSize("FLEXVIS_BENCH_RESUME_TICKS_CAP", 19200);
  std::vector<int> compact_settings = {0, 64, 256};
  if (Result<int> env = sim::CompactTicksFromEnv();
      env.ok() && *env > 0 &&
      std::find(compact_settings.begin(), compact_settings.end(), *env) ==
          compact_settings.end()) {
    compact_settings.push_back(*env);
  }
  bool bounded = true;
  for (int run_ticks : {192, 1920, 19200}) {
    if (static_cast<size_t>(run_ticks) > ticks_cap) continue;
    timeutil::TimeInterval window(bench::BenchDay(),
                                  bench::BenchDay() + run_ticks * tick_minutes);
    for (int compact_ticks : compact_settings) {
      sim::OnlineParams params;
      params.tick_minutes = tick_minutes;
      params.compact_ticks = compact_ticks;
      const std::string dir =
          BenchDir(StrFormat("resume_%dticks_c%d", run_ticks, compact_ticks));
      Result<sim::OnlineReport> baseline =
          sim::RunOnlineCheckpointed(params, offers, window, dir);
      if (!baseline.ok()) {
        std::fprintf(stderr, "FAIL: checkpointed run errored: %s\n",
                     baseline.status().ToString().c_str());
        return false;
      }
      const std::string label =
          StrFormat("resume_%dticks_c%d", baseline->ticks, compact_ticks);
      sim::ResumeInfo info;
      Result<sim::OnlineReport> resumed = sim::ResumeOnline(dir, &info);
      if (!resumed.ok() ||
          info.ticks_folded + info.ticks_replayed != baseline->ticks ||
          info.ticks_continued != 0 || resumed->outbox != baseline->outbox ||
          resumed->imbalance_kwh != baseline->imbalance_kwh) {
        std::fprintf(stderr, "FAIL: resume diverged from the checkpointed run (%s)\n",
                     label.c_str());
        ok = false;
      }
      if (compact_ticks > 0 && info.ticks_replayed > compact_ticks) {
        std::fprintf(stderr,
                     "FAIL: compacted resume replayed %d ticks, above its interval %d "
                     "(%s)\n",
                     info.ticks_replayed, compact_ticks, label.c_str());
        bounded = false;
      }
      double resume_s = bench::MeasureSeconds(
          [&] {
            Result<sim::OnlineReport> timed = sim::ResumeOnline(dir);
            if (!timed.ok()) ok = false;
            benchmark::DoNotOptimize(timed);
          },
          1);
      report.AddSample(label, resume_s, 1, static_cast<double>(baseline->ticks));
      report.SetCounter(label + "_ticks_replayed", static_cast<double>(info.ticks_replayed));
      report.SetCounter(label + "_generation", static_cast<double>(info.generation));
    }
  }
  report.SetCounter("replay_bounded_by_interval", bounded ? 1.0 : 0.0);
  report.SetCounter("resume_matches_baseline", ok ? 1.0 : 0.0);
  ok = ok && bounded;

  if (Status status = report.Write(); !status.ok()) {
    std::fprintf(stderr, "report failed: %s\n", status.ToString().c_str());
    return false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!WriteRecoveryReport()) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
