// Recovery-path microbenchmarks (EXPERIMENTS.md Q7): what crash consistency
// costs and how fast a crashed run comes back. The custom main writes
// bench_out/BENCH_recovery.json with snapshot save/load throughput, journal
// append rates (fsync-per-record vs buffered), journal replay rate, and
// ResumeOnline wall time against the number of journaled ticks — each at 1
// and 8 worker threads, since recovery shares the process with the parallel
// render/aggregation pools.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "dw/persistence.h"
#include "sim/checkpoint.h"
#include "sim/online.h"
#include "util/journal.h"
#include "util/parallel.h"
#include "util/strings.h"

using namespace flexvis;

namespace {

namespace fs = std::filesystem;

std::string BenchDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / "flexvis_bench_recovery" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string SampleRecord() {
  // Roughly the size and shape of a real journaled tick record.
  return std::string(
      R"({"tick":7,"changes":[{"offer":1201,"state":2,"start_min":22606560,)"
      R"("kwh":[1.25,0.5,2.0]}],"sent":["..."],"received":64,"accepted":20,)"
      R"("rejected":4,"assigned":16,"next_arrival":64,"pend_acc":[7,9]})");
}

// ---- google-benchmark timings (not run by the CI smoke filter) ----------------------

void BM_JournalAppendDurable(benchmark::State& state) {
  const std::string path = BenchDir("bm_append") + "/j.wal";
  Result<JournalWriter> writer = JournalWriter::Open(path);
  if (!writer.ok()) {
    state.SkipWithError(writer.status().ToString().c_str());
    return;
  }
  const std::string record = SampleRecord();
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer->Append(record));
    benchmark::DoNotOptimize(writer->Flush());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(record.size()));
}
BENCHMARK(BM_JournalAppendDurable);

void BM_JournalReplay(benchmark::State& state) {
  const std::string path = BenchDir("bm_replay") + "/j.wal";
  {
    Result<JournalWriter> writer = JournalWriter::Open(path);
    for (int64_t i = 0; i < state.range(0); ++i) {
      if (!writer->Append(SampleRecord()).ok()) {
        state.SkipWithError("append failed");
        return;
      }
    }
    (void)writer->Close();
  }
  for (auto _ : state) {
    Result<JournalReplay> replay = ReplayJournal(path);
    benchmark::DoNotOptimize(replay);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JournalReplay)->Arg(1000)->Arg(10000);

// ---- The JSON report the CI gate archives -------------------------------------------

bool WriteRecoveryReport() {
  bench::BenchReport report("recovery");
  bool ok = true;

  // Snapshot save/load throughput over a realistic warehouse.
  bench::WorldOptions world_options;
  world_options.num_prosumers =
      static_cast<int>(bench::EnvSize("FLEXVIS_BENCH_RECOVERY_PROSUMERS", 150));
  std::unique_ptr<bench::World> world = bench::BuildWorld(world_options);
  const double db_offers = static_cast<double>(world->db.NumFlexOffers());

  // Journal workload: enough records that per-record overheads dominate.
  const size_t journal_records = bench::EnvSize("FLEXVIS_BENCH_JOURNAL_RECORDS", 2000);
  const std::string record = SampleRecord();

  // Resume workload: the same window at two tick cadences, so the report
  // shows recovery wall-time as a function of journal length.
  std::vector<core::FlexOffer> offers =
      bench::MakeRandomOffers(31, bench::EnvSize("FLEXVIS_BENCH_RECOVERY_OFFERS", 1000));
  timeutil::TimeInterval window(bench::BenchDay(),
                                bench::BenchDay() + 2 * timeutil::kMinutesPerDay);
  const int64_t cadences[] = {120, 15};  // 24 and 192 ticks over two days

  for (int threads : {1, 8}) {
    SetParallelThreadCount(threads);
    const std::string suffix = StrFormat("_%dt", threads);

    // Snapshot save + load (manifest verification included in the load).
    const std::string snap_dir = BenchDir(StrFormat("snapshot%s", suffix.c_str()));
    double save_s = bench::MeasureSeconds([&] {
      if (!dw::SaveDatabase(world->db, snap_dir).ok()) ok = false;
    });
    report.AddSample("snapshot_save" + suffix, save_s, threads, db_offers);
    double load_s = bench::MeasureSeconds([&] {
      Result<dw::Database> restored = dw::LoadDatabase(snap_dir);
      if (!restored.ok()) ok = false;
      benchmark::DoNotOptimize(restored);
    });
    report.AddSample("snapshot_load" + suffix, load_s, threads, db_offers);

    // Journal append, durable (flush+fsync per record) and buffered.
    const std::string journal_dir = BenchDir(StrFormat("journal%s", suffix.c_str()));
    double durable_s = bench::MeasureSeconds(
        [&] {
          const std::string path = journal_dir + "/durable.wal";
          fs::remove(path);
          Result<JournalWriter> writer = JournalWriter::Open(path);
          for (size_t i = 0; writer.ok() && i < journal_records; ++i) {
            if (!writer->Append(record).ok() || !writer->Flush().ok()) ok = false;
          }
        },
        1);
    report.AddSample("journal_append_fsync" + suffix, durable_s, threads,
                     static_cast<double>(journal_records));
    double buffered_s = bench::MeasureSeconds([&] {
      const std::string path = journal_dir + "/buffered.wal";
      fs::remove(path);
      Result<JournalWriter> writer = JournalWriter::Open(path);
      for (size_t i = 0; writer.ok() && i < journal_records; ++i) {
        if (!writer->Append(record).ok()) ok = false;
      }
      if (writer.ok() && !writer->Close().ok()) ok = false;
    });
    report.AddSample("journal_append_buffered" + suffix, buffered_s, threads,
                     static_cast<double>(journal_records));

    // Journal replay (reads the buffered file written above).
    double replay_s = bench::MeasureSeconds([&] {
      Result<JournalReplay> replay = ReplayJournal(journal_dir + "/buffered.wal");
      if (!replay.ok() || replay->records.size() != journal_records) ok = false;
      benchmark::DoNotOptimize(replay);
    });
    report.AddSample("journal_replay" + suffix, replay_s, threads,
                     static_cast<double>(journal_records));
    if (replay_s > 0.0) {
      report.SetCounter("journal_replay_records_per_sec" + suffix,
                        static_cast<double>(journal_records) / replay_s);
    }

    // Recovery wall time vs journaled ticks: run once checkpointed, then
    // time ResumeOnline over the completed journal (replay of every tick;
    // zero live ticks) and check it reproduces the original byte for byte.
    for (int64_t tick_minutes : cadences) {
      sim::OnlineParams params;
      params.tick_minutes = tick_minutes;
      const std::string dir =
          BenchDir(StrFormat("resume_%lldm%s", static_cast<long long>(tick_minutes),
                             suffix.c_str()));
      Result<sim::OnlineReport> baseline =
          sim::RunOnlineCheckpointed(params, offers, window, dir);
      if (!baseline.ok()) {
        std::fprintf(stderr, "FAIL: checkpointed run errored: %s\n",
                     baseline.status().ToString().c_str());
        return false;
      }
      const std::string label =
          StrFormat("resume_%dticks%s", baseline->ticks, suffix.c_str());
      sim::ResumeInfo info;
      Result<sim::OnlineReport> resumed = sim::ResumeOnline(dir, &info);
      if (!resumed.ok() || info.ticks_replayed != baseline->ticks ||
          info.ticks_continued != 0 || resumed->outbox != baseline->outbox ||
          resumed->imbalance_kwh != baseline->imbalance_kwh) {
        std::fprintf(stderr, "FAIL: resume diverged from the checkpointed run (%s)\n",
                     label.c_str());
        ok = false;
      }
      double resume_s = bench::MeasureSeconds([&] {
        Result<sim::OnlineReport> timed = sim::ResumeOnline(dir);
        if (!timed.ok()) ok = false;
        benchmark::DoNotOptimize(timed);
      });
      report.AddSample(label, resume_s, threads, static_cast<double>(baseline->ticks));
      if (resume_s > 0.0) {
        report.SetCounter(label + "_ticks_per_sec",
                          static_cast<double>(baseline->ticks) / resume_s);
      }
    }
  }
  SetParallelThreadCount(1);
  report.SetCounter("resume_matches_baseline", ok ? 1.0 : 0.0);

  if (Status status = report.Write(); !status.ok()) {
    std::fprintf(stderr, "report failed: %s\n", status.ToString().c_str());
    return false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!WriteRecoveryReport()) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
