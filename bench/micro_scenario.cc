// Extreme-event scenario benchmarks (EXPERIMENTS.md Q14): what driving the
// builtin scenario suite end-to-end (multi-phase workload -> sharded online
// run -> day-ahead settlement under the named strategies) costs. The custom
// main writes bench_out/BENCH_scenario.json with online ticks/sec per
// scenario plus two hard gates: `deterministic` (every scenario's metrics are
// byte-identical at 1 and 8 worker threads) and `settlement_conserved`
// (every scenario's settlement satisfies total == spot + imbalance).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/scenario.h"
#include "util/parallel.h"
#include "util/strings.h"

using namespace flexvis;

namespace {

// ---- google-benchmark timings (not run by the CI smoke filter) --------------

void BM_ScenarioEndToEnd(benchmark::State& state) {
  std::vector<std::string> names = sim::BuiltinScenarioNames();
  const std::string& name = names[static_cast<size_t>(state.range(0)) % names.size()];
  Result<sim::ScenarioSpec> spec = sim::MakeBuiltinScenario(name);
  if (!spec.ok()) {
    state.SkipWithError(spec.status().ToString().c_str());
    return;
  }
  int64_t ticks = 0;
  for (auto _ : state) {
    Result<sim::ScenarioOutcome> outcome = sim::RunScenario(*spec);
    if (!outcome.ok()) {
      state.SkipWithError(outcome.status().ToString().c_str());
      return;
    }
    ticks += outcome->merged.global.ticks;
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(ticks);
  state.SetLabel(name);
}
BENCHMARK(BM_ScenarioEndToEnd)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

// ---- The JSON report the CI gate archives -----------------------------------

bool WriteScenarioReport() {
  bench::BenchReport report("scenario");
  bool ok = true;
  bool deterministic = true;
  bool settlement_conserved = true;

  for (const std::string& name : sim::BuiltinScenarioNames()) {
    Result<sim::ScenarioSpec> spec = sim::MakeBuiltinScenario(name);
    if (!spec.ok()) {
      std::fprintf(stderr, "FAIL: builtin '%s' unavailable: %s\n", name.c_str(),
                   spec.status().ToString().c_str());
      return false;
    }

    // Determinism gate: the full metrics document (counters, outbox CRC,
    // forecast error, settlement) must not move with the thread count.
    std::string serial_metrics;
    double ticks = 0.0;
    for (int threads : {1, 8}) {
      SetParallelThreadCount(threads);
      Result<sim::ScenarioOutcome> outcome = sim::RunScenario(*spec);
      if (!outcome.ok()) {
        std::fprintf(stderr, "FAIL: scenario '%s' errored: %s\n", name.c_str(),
                     outcome.status().ToString().c_str());
        SetParallelThreadCount(1);
        return false;
      }
      JsonValue metrics = sim::ScenarioMetrics(*outcome);
      if (threads == 1) {
        serial_metrics = metrics.Dump();
        ticks = static_cast<double>(outcome->merged.global.ticks);
        // Conservation gate: ScenarioMetrics stamps the identity check.
        if (!metrics.Get("plan").Get("settlement").Get("settlement_conserved").AsBool()) {
          std::fprintf(stderr, "FAIL: scenario '%s' violates settlement conservation\n",
                       name.c_str());
          settlement_conserved = false;
        }
      } else if (metrics.Dump() != serial_metrics) {
        std::fprintf(stderr, "FAIL: scenario '%s' differs across thread counts\n",
                     name.c_str());
        deterministic = false;
      }

      const std::string label = StrFormat("scenario_%s_%dt", name.c_str(), threads);
      double wall_s = bench::MeasureSeconds([&] {
        Result<sim::ScenarioOutcome> timed = sim::RunScenario(*spec);
        if (!timed.ok()) ok = false;
        benchmark::DoNotOptimize(timed);
      });
      report.AddSample(label, wall_s, threads, ticks);
      if (wall_s > 0.0) {
        report.SetCounter(label + "_ticks_per_sec", ticks / wall_s);
      }
    }
  }
  SetParallelThreadCount(1);

  report.SetCounter("deterministic", deterministic ? 1.0 : 0.0);
  report.SetCounter("settlement_conserved", settlement_conserved ? 1.0 : 0.0);
  report.SetCounter("scenarios",
                    static_cast<double>(sim::BuiltinScenarioNames().size()));

  if (Status status = report.Write(); !status.ok()) {
    std::fprintf(stderr, "report failed: %s\n", status.ToString().c_str());
    return false;
  }
  return ok && deterministic && settlement_conserved;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!WriteScenarioReport()) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
