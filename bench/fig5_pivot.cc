// Figure 5 — "Example of the pivot view of flex-offers".
//
// Regenerates the OLAP pivot view with the figure's prosumer hierarchy (All
// prosumers -> Consumer/Producer -> types) on the swimlane axis, an MDX
// query window at the top, and the scheduled-energy measure. Prints the
// pivot as text alongside.

#include <cstdio>

#include "bench/bench_common.h"
#include "olap/mdx.h"
#include "viz/pivot_view.h"

using namespace flexvis;

int main() {
  bench::PrintHeader("fig5_pivot",
                     "Fig. 5: pivot view, prosumer hierarchy swimlanes + MDX window");

  bench::WorldOptions options;
  options.num_prosumers = 400;
  std::unique_ptr<bench::World> world = bench::BuildWorld(options);

  const std::string mdx =
      "SELECT { Measures.ScheduledEnergy } ON COLUMNS, { Prosumer.Type.Members } ON ROWS "
      "FROM [FlexOffers]";
  Result<olap::CubeQuery> query = olap::ParseMdx(mdx, *world->cube);
  if (!query.ok()) {
    std::fprintf(stderr, "MDX parse failed: %s\n", query.status().ToString().c_str());
    return 1;
  }
  Result<olap::PivotResult> pivot = world->cube->Evaluate(*query);
  if (!pivot.ok()) {
    std::fprintf(stderr, "cube evaluation failed: %s\n", pivot.status().ToString().c_str());
    return 1;
  }

  viz::PivotViewOptions view_options;
  view_options.mdx_text = mdx;
  view_options.hierarchy = world->cube->FindDimension("Prosumer");
  viz::PivotViewResult view = viz::RenderPivotView(*pivot, view_options);
  if (Status export_status = bench::ExportScene(*view.scene, "fig5_pivot"); !export_status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", export_status.ToString().c_str());
    return 1;
  }

  std::printf("\nMDX> %s\n\n%s", mdx.c_str(), pivot->ToText().c_str());

  // The drill-up companion: the same measure at the Role level.
  olap::CubeQuery roles;
  roles.axes = {olap::AxisSpec{"Prosumer", "Role", {}}};
  roles.measure = olap::Measure::kSumScheduledEnergy;
  Result<olap::PivotResult> rolled = world->cube->Evaluate(roles);
  if (rolled.ok()) {
    std::printf("\ndrill-up to Role level:\n%s", rolled->ToText().c_str());
  }
  return 0;
}
