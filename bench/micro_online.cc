// Ablation of the *online* planning mode (Section 2: the enterprise plans
// "in an online fashion"): how much plan quality does irrevocable
// incremental commitment cost versus the offline scheduler that sees the
// whole horizon, and how does the planning-tick cadence trade deadline
// safety against work per tick. The custom main additionally writes
// bench_out/BENCH_micro_online.json with ingest throughput at 0%, 1%, and
// 10% injected fault rates (the robustness layer's overhead budget).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "core/scheduler.h"
#include "sim/online.h"
#include "util/fault.h"
#include "util/parallel.h"

using namespace flexvis;

namespace {

std::vector<core::FlexOffer> BenchOffers(size_t count) {
  return bench::MakeRandomOffers(21, count);
}

timeutil::TimeInterval BenchWindow() {
  return timeutil::TimeInterval(bench::BenchDay() - 2 * timeutil::kMinutesPerDay,
                                bench::BenchDay() + 3 * timeutil::kMinutesPerDay);
}

void BM_OnlineRun(benchmark::State& state) {
  std::vector<core::FlexOffer> offers = BenchOffers(static_cast<size_t>(state.range(0)));
  sim::OnlineParams params;
  params.tick_minutes = state.range(1);
  sim::OnlineEnterprise enterprise(params);
  double imbalance = 0.0, missed = 0.0, ticks = 0.0;
  for (auto _ : state) {
    Result<sim::OnlineReport> report = enterprise.Run(offers, BenchWindow());
    if (report.ok()) {
      imbalance = report->imbalance_kwh;
      missed = report->missed_acceptance + report->missed_assignment;
      ticks = report->ticks;
    }
    benchmark::DoNotOptimize(report);
  }
  state.counters["imbalance"] = imbalance;
  state.counters["missed_deadlines"] = missed;
  state.counters["ticks"] = ticks;
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OnlineRun)
    ->Args({2000, 15})
    ->Args({2000, 60})
    ->Args({2000, 240})
    ->Args({8000, 60})
    ->Unit(benchmark::kMillisecond);

// The offline baseline on the same offers/target for the quality comparison.
void BM_OfflineBaseline(benchmark::State& state) {
  std::vector<core::FlexOffer> offers = BenchOffers(static_cast<size_t>(state.range(0)));
  sim::OnlineParams params;  // reuse the energy defaults for a fair target
  core::TimeSeries target = sim::MakeFlexibilityTarget(
      sim::MakeResProduction(BenchWindow(), params.energy),
      sim::MakeInflexibleDemand(BenchWindow(), params.energy));
  core::Scheduler scheduler;
  double imbalance = 0.0;
  for (auto _ : state) {
    core::ScheduleResult plan = scheduler.Plan(offers, target);
    imbalance = plan.imbalance_after_kwh;
    benchmark::DoNotOptimize(plan);
  }
  state.counters["imbalance"] = imbalance;
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OfflineBaseline)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

// Message codec throughput (the protocol must keep up with "millions of
// individual energy consumers").
void BM_EncodeDecodeMessage(benchmark::State& state) {
  std::vector<core::FlexOffer> offers = BenchOffers(256);
  size_t i = 0;
  for (auto _ : state) {
    std::string wire = core::EncodeMessage(core::Message(offers[i % offers.size()]));
    benchmark::DoNotOptimize(core::DecodeMessage(wire));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeDecodeMessage);

// Throughput-under-faults report for the CI gate: the same online run with
// the sim.online.ingest and sim.online.send seams armed at increasing
// failure probabilities. Retries and degradations keep every run finishing;
// the JSON captures what the fault load costs in items/sec and how many
// offers the loop shed. Returns false when a run errors (injected faults
// must never surface from OnlineEnterprise::Run) or the report cannot be
// written.
bool WriteFaultLoadReport() {
  const size_t count = bench::EnvSize("FLEXVIS_BENCH_ONLINE_OFFERS", 4000);
  std::vector<core::FlexOffer> offers = bench::MakeRandomOffers(21, count);
  sim::OnlineEnterprise enterprise(sim::OnlineParams{});
  FaultRegistry& registry = FaultRegistry::Global();

  struct Rate {
    const char* label;
    double probability;
  };
  const Rate rates[] = {{"fault_0pct", 0.0}, {"fault_1pct", 0.01}, {"fault_10pct", 0.10}};

  bench::BenchReport report("micro_online");
  double clean_imbalance = 0.0;
  bool ok = true;
  for (const Rate& rate : rates) {
    registry.DisarmAll();
    registry.Seed(20130318);
    if (rate.probability > 0.0) {
      FaultConfig config;
      config.probability = rate.probability;
      registry.Arm("sim.online.ingest", config);
      registry.Arm("sim.online.send", config);
    }
    Result<sim::OnlineReport> run = enterprise.Run(offers, BenchWindow());
    if (!run.ok()) {
      std::fprintf(stderr, "FAIL: online run at %s errored: %s\n", rate.label,
                   run.status().ToString().c_str());
      ok = false;
      break;
    }
    double seconds = bench::MeasureSeconds([&] {
      Result<sim::OnlineReport> timed = enterprise.Run(offers, BenchWindow());
      benchmark::DoNotOptimize(timed);
    });
    report.AddSample(rate.label, seconds, ParallelThreadCount(),
                     static_cast<double>(count));
    report.AddStage(rate.label, "run", seconds, static_cast<double>(count));
    if (rate.probability == 0.0) clean_imbalance = run->imbalance_kwh;
    std::string prefix = rate.label;
    report.SetCounter(prefix + "_dropped_ingest", run->dropped_ingest);
    report.SetCounter(prefix + "_failed_sends", run->failed_sends);
    report.SetCounter(prefix + "_imbalance_kwh", run->imbalance_kwh);
  }
  registry.DisarmAll();

  if (ok) {
    // The 0% run must match a registry-untouched run bit-for-bit: disarmed
    // fault checks may not perturb the pipeline.
    Result<sim::OnlineReport> baseline = enterprise.Run(offers, BenchWindow());
    const bool clean = baseline.ok() && baseline->imbalance_kwh == clean_imbalance;
    report.SetCounter("faults_off_matches_baseline", clean ? 1.0 : 0.0);
    if (!clean) {
      std::fprintf(stderr, "FAIL: disarmed fault checks changed online output\n");
      ok = false;
    }
  }
  if (Status status = report.Write(); !status.ok()) {
    std::fprintf(stderr, "report failed: %s\n", status.ToString().c_str());
    return false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!WriteFaultLoadReport()) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
