// Ablation of the *online* planning mode (Section 2: the enterprise plans
// "in an online fashion"): how much plan quality does irrevocable
// incremental commitment cost versus the offline scheduler that sees the
// whole horizon, and how does the planning-tick cadence trade deadline
// safety against work per tick.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/scheduler.h"
#include "sim/online.h"

using namespace flexvis;

namespace {

std::vector<core::FlexOffer> BenchOffers(size_t count) {
  return bench::MakeRandomOffers(21, count);
}

timeutil::TimeInterval BenchWindow() {
  return timeutil::TimeInterval(bench::BenchDay() - 2 * timeutil::kMinutesPerDay,
                                bench::BenchDay() + 3 * timeutil::kMinutesPerDay);
}

void BM_OnlineRun(benchmark::State& state) {
  std::vector<core::FlexOffer> offers = BenchOffers(static_cast<size_t>(state.range(0)));
  sim::OnlineParams params;
  params.tick_minutes = state.range(1);
  sim::OnlineEnterprise enterprise(params);
  double imbalance = 0.0, missed = 0.0, ticks = 0.0;
  for (auto _ : state) {
    Result<sim::OnlineReport> report = enterprise.Run(offers, BenchWindow());
    if (report.ok()) {
      imbalance = report->imbalance_kwh;
      missed = report->missed_acceptance + report->missed_assignment;
      ticks = report->ticks;
    }
    benchmark::DoNotOptimize(report);
  }
  state.counters["imbalance"] = imbalance;
  state.counters["missed_deadlines"] = missed;
  state.counters["ticks"] = ticks;
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OnlineRun)
    ->Args({2000, 15})
    ->Args({2000, 60})
    ->Args({2000, 240})
    ->Args({8000, 60})
    ->Unit(benchmark::kMillisecond);

// The offline baseline on the same offers/target for the quality comparison.
void BM_OfflineBaseline(benchmark::State& state) {
  std::vector<core::FlexOffer> offers = BenchOffers(static_cast<size_t>(state.range(0)));
  sim::OnlineParams params;  // reuse the energy defaults for a fair target
  core::TimeSeries target = sim::MakeFlexibilityTarget(
      sim::MakeResProduction(BenchWindow(), params.energy),
      sim::MakeInflexibleDemand(BenchWindow(), params.energy));
  core::Scheduler scheduler;
  double imbalance = 0.0;
  for (auto _ : state) {
    core::ScheduleResult plan = scheduler.Plan(offers, target);
    imbalance = plan.imbalance_after_kwh;
    benchmark::DoNotOptimize(plan);
  }
  state.counters["imbalance"] = imbalance;
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OfflineBaseline)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

// Message codec throughput (the protocol must keep up with "millions of
// individual energy consumers").
void BM_EncodeDecodeMessage(benchmark::State& state) {
  std::vector<core::FlexOffer> offers = BenchOffers(256);
  size_t i = 0;
  for (auto _ : state) {
    std::string wire = core::EncodeMessage(core::Message(offers[i % offers.size()]));
    benchmark::DoNotOptimize(core::DecodeMessage(wire));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeDecodeMessage);

}  // namespace

BENCHMARK_MAIN();
