// Q4 — the Section 3 query surface: "the framework must be able to retrieve
// counts of accepted flex-offers in the west Denmark in the period from
// Jan-2013 to Feb-2013 grouped by cities and energy type", with nested
// filtering and grouping.
//
// Quantifies the cost of that query class: pivot evaluation latency across
// fact-table sizes, single- vs two-axis queries, time bucketing, slicers,
// and the raw DW filter underneath.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"
#include "olap/mdx.h"
#include "util/parallel.h"

using namespace flexvis;

namespace {

std::unique_ptr<bench::World> MakeWorld(int64_t offers_target) {
  bench::WorldOptions options;
  options.num_prosumers = static_cast<int>(offers_target / 5);
  options.offers_per_prosumer = 5.0;
  return bench::BuildWorld(options);
}

void BM_PivotCountByState(benchmark::State& state) {
  std::unique_ptr<bench::World> world = MakeWorld(state.range(0));
  olap::CubeQuery q;
  q.axes = {olap::AxisSpec{"State", "", {}}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(world->cube->Evaluate(q));
  }
  state.counters["facts"] = static_cast<double>(world->db.NumFlexOffers());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(world->db.NumFlexOffers()));
}
BENCHMARK(BM_PivotCountByState)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_PivotTwoAxesWithSlicers(benchmark::State& state) {
  std::unique_ptr<bench::World> world = MakeWorld(state.range(0));
  // The Section 3 example query.
  olap::CubeQuery q;
  q.axes = {olap::AxisSpec{"Geography", "City", {}},
            olap::AxisSpec{"EnergyType", "Type", {}}};
  q.slicers = {{"State", "Accepted"}, {"Geography", "West Denmark"}};
  q.window = world->horizon;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world->cube->Evaluate(q));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(world->db.NumFlexOffers()));
}
BENCHMARK(BM_PivotTwoAxesWithSlicers)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_PivotTimeAxis(benchmark::State& state) {
  std::unique_ptr<bench::World> world = MakeWorld(state.range(0));
  olap::CubeQuery q;
  q.axes = {olap::AxisSpec{"Time", "", {}}, olap::AxisSpec{"State", "", {}}};
  q.window = world->horizon;
  q.time_granularity = timeutil::Granularity::kHour;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world->cube->Evaluate(q));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(world->db.NumFlexOffers()));
}
BENCHMARK(BM_PivotTimeAxis)->Arg(10000);

void BM_MdxParse(benchmark::State& state) {
  std::unique_ptr<bench::World> world = MakeWorld(1000);
  const char* mdx =
      "SELECT { EnergyType.Type.Members } ON COLUMNS, { Geography.City.Members } ON ROWS "
      "FROM [FlexOffers] WHERE ( State.[Accepted], Geography.[West Denmark], "
      "Time.[2013-01-01 : 2013-03-01] )";
  for (auto _ : state) {
    benchmark::DoNotOptimize(olap::ParseMdx(mdx, *world->cube));
  }
}
BENCHMARK(BM_MdxParse);

void BM_WarehouseSelect(benchmark::State& state) {
  std::unique_ptr<bench::World> world = MakeWorld(state.range(0));
  dw::FlexOfferFilter filter;
  filter.states = {core::FlexOfferState::kAccepted};
  filter.window = timeutil::TimeInterval(world->horizon.start,
                                         world->horizon.start + 6 * 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(world->db.SelectFlexOffers(filter));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(world->db.NumFlexOffers()));
}
BENCHMARK(BM_WarehouseSelect)->Arg(1000)->Arg(10000);

// FNV-1a over everything a pivot result carries (headers, measure, cell
// values as raw double bits), to verify the threaded fact scan merges to the
// byte-exact serial result.
uint64_t HashPivot(const olap::PivotResult& pivot) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  auto mix_headers = [&](const std::vector<olap::PivotHeader>& headers) {
    mix(headers.size());
    for (const olap::PivotHeader& header : headers) {
      mix(static_cast<uint64_t>(header.member_id));
      mix(header.label.size());
      for (char c : header.label) mix(static_cast<uint8_t>(c));
    }
  };
  mix(static_cast<uint64_t>(pivot.measure));
  mix_headers(pivot.rows);
  mix_headers(pivot.cols);
  for (const std::vector<double>& row : pivot.cells) {
    for (double cell : row) {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(cell));
      std::memcpy(&bits, &cell, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

// Serial-vs-threaded pivot report for the CI gate (BENCH_olap.json), with a
// per-stage breakdown of the columnar scan: `scan` is the unfiltered
// single-axis pivot (classify + accumulate only), `filter` the Section 3
// query (window mask + slicer allow-sets ahead of the gather), `fold` the
// hour-bucketed time axis, and `merge` the filtered query under the ordered
// chunk merge at 8 threads. Returns false when the report cannot be written
// or the threaded scan diverges from the serial one.
bool WritePivotReport() {
  const size_t count = bench::EnvSize("FLEXVIS_BENCH_OLAP_OFFERS", 50000);
  std::unique_ptr<bench::World> world = MakeWorld(static_cast<int64_t>(count));
  const double facts = static_cast<double>(world->db.NumFlexOffers());

  olap::CubeQuery scan_query;
  scan_query.axes = {olap::AxisSpec{"State", "", {}}};

  olap::CubeQuery filter_query;  // the Section 3 example query
  filter_query.axes = {olap::AxisSpec{"Geography", "City", {}},
                       olap::AxisSpec{"EnergyType", "Type", {}}};
  filter_query.slicers = {{"State", "Accepted"}, {"Geography", "West Denmark"}};
  filter_query.window = world->horizon;

  olap::CubeQuery fold_query;
  fold_query.axes = {olap::AxisSpec{"Time", "", {}}, olap::AxisSpec{"State", "", {}}};
  fold_query.window = world->horizon;
  fold_query.time_granularity = timeutil::Granularity::kHour;

  const olap::CubeQuery* matrix[] = {&scan_query, &filter_query, &fold_query};
  auto hash_matrix = [&]() -> uint64_t {
    uint64_t h = 1469598103934665603ULL;
    for (const olap::CubeQuery* q : matrix) {
      Result<olap::PivotResult> pivot = world->cube->Evaluate(*q);
      if (!pivot.ok()) {
        std::fprintf(stderr, "pivot failed: %s\n", pivot.status().ToString().c_str());
        return 0;
      }
      h ^= HashPivot(*pivot);
      h *= 1099511628211ULL;
    }
    return h;
  };
  auto time_query = [&](const olap::CubeQuery& q) {
    return bench::MeasureSeconds([&] {
      Result<olap::PivotResult> pivot = world->cube->Evaluate(q);
      benchmark::DoNotOptimize(pivot);
    });
  };

  SetParallelThreadCount(1);
  const uint64_t serial_hash = hash_matrix();
  const double scan_s = time_query(scan_query);
  const double filter_s = time_query(filter_query);
  const double fold_s = time_query(fold_query);

  const int threads = 8;
  SetParallelThreadCount(threads);
  const uint64_t threaded_hash = hash_matrix();
  const double merge_s = time_query(filter_query);
  SetParallelThreadCount(0);  // back to the environment-resolved default

  bench::BenchReport report("olap");
  report.AddSample("pivot_serial", filter_s, 1, facts);
  report.AddSample("pivot_parallel", merge_s, threads, facts);
  report.AddStage("pivot_serial", "scan", scan_s, facts);
  report.AddStage("pivot_serial", "filter", filter_s, facts);
  report.AddStage("pivot_serial", "fold", fold_s, facts);
  report.AddStage("pivot_parallel", "merge", merge_s, facts);
  report.SetCounter("facts", facts);
  report.SetCounter("speedup", merge_s > 0.0 ? filter_s / merge_s : 0.0);
  const bool deterministic = serial_hash != 0 && serial_hash == threaded_hash;
  report.SetCounter("deterministic", deterministic ? 1.0 : 0.0);
  if (Status status = report.Write(); !status.ok()) {
    std::fprintf(stderr, "report failed: %s\n", status.ToString().c_str());
    return false;
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: threaded pivot diverged from the serial result\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!WritePivotReport()) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
