// Q4 — the Section 3 query surface: "the framework must be able to retrieve
// counts of accepted flex-offers in the west Denmark in the period from
// Jan-2013 to Feb-2013 grouped by cities and energy type", with nested
// filtering and grouping.
//
// Quantifies the cost of that query class: pivot evaluation latency across
// fact-table sizes, single- vs two-axis queries, time bucketing, slicers,
// and the raw DW filter underneath.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "olap/mdx.h"

using namespace flexvis;

namespace {

std::unique_ptr<bench::World> MakeWorld(int64_t offers_target) {
  bench::WorldOptions options;
  options.num_prosumers = static_cast<int>(offers_target / 5);
  options.offers_per_prosumer = 5.0;
  return bench::BuildWorld(options);
}

void BM_PivotCountByState(benchmark::State& state) {
  std::unique_ptr<bench::World> world = MakeWorld(state.range(0));
  olap::CubeQuery q;
  q.axes = {olap::AxisSpec{"State", "", {}}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(world->cube->Evaluate(q));
  }
  state.counters["facts"] = static_cast<double>(world->db.NumFlexOffers());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(world->db.NumFlexOffers()));
}
BENCHMARK(BM_PivotCountByState)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_PivotTwoAxesWithSlicers(benchmark::State& state) {
  std::unique_ptr<bench::World> world = MakeWorld(state.range(0));
  // The Section 3 example query.
  olap::CubeQuery q;
  q.axes = {olap::AxisSpec{"Geography", "City", {}},
            olap::AxisSpec{"EnergyType", "Type", {}}};
  q.slicers = {{"State", "Accepted"}, {"Geography", "West Denmark"}};
  q.window = world->horizon;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world->cube->Evaluate(q));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(world->db.NumFlexOffers()));
}
BENCHMARK(BM_PivotTwoAxesWithSlicers)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_PivotTimeAxis(benchmark::State& state) {
  std::unique_ptr<bench::World> world = MakeWorld(state.range(0));
  olap::CubeQuery q;
  q.axes = {olap::AxisSpec{"Time", "", {}}, olap::AxisSpec{"State", "", {}}};
  q.window = world->horizon;
  q.time_granularity = timeutil::Granularity::kHour;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world->cube->Evaluate(q));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(world->db.NumFlexOffers()));
}
BENCHMARK(BM_PivotTimeAxis)->Arg(10000);

void BM_MdxParse(benchmark::State& state) {
  std::unique_ptr<bench::World> world = MakeWorld(1000);
  const char* mdx =
      "SELECT { EnergyType.Type.Members } ON COLUMNS, { Geography.City.Members } ON ROWS "
      "FROM [FlexOffers] WHERE ( State.[Accepted], Geography.[West Denmark], "
      "Time.[2013-01-01 : 2013-03-01] )";
  for (auto _ : state) {
    benchmark::DoNotOptimize(olap::ParseMdx(mdx, *world->cube));
  }
}
BENCHMARK(BM_MdxParse);

void BM_WarehouseSelect(benchmark::State& state) {
  std::unique_ptr<bench::World> world = MakeWorld(state.range(0));
  dw::FlexOfferFilter filter;
  filter.states = {core::FlexOfferState::kAccepted};
  filter.window = timeutil::TimeInterval(world->horizon.start,
                                         world->horizon.start + 6 * 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(world->db.SelectFlexOffers(filter));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(world->db.NumFlexOffers()));
}
BENCHMARK(BM_WarehouseSelect)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
