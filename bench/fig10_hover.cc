// Figure 10 — "On-the-fly information about flex-offers".
//
// Regenerates the hover interaction: aggregate a workload, render the basic
// view, point at an aggregate, and draw the overlay with the yellow
// creation/acceptance/assignment markers and the dashed red links to the
// offers that were aggregated into it. Also sweeps the pointer across the
// plot and reports hit-test latency (the interaction must be instant).

#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/aggregation.h"
#include "viz/basic_view.h"
#include "viz/interaction.h"

using namespace flexvis;

int main() {
  bench::PrintHeader("fig10_hover",
                     "Fig. 10: hover details with aggregation provenance links");

  bench::WorldOptions options;
  options.num_prosumers = 120;
  options.offers_per_prosumer = 4.0;
  std::unique_ptr<bench::World> world = bench::BuildWorld(options);

  core::AggregationParams agg_params;
  agg_params.est_tolerance_minutes = 180;
  agg_params.tft_tolerance_minutes = 180;
  agg_params.max_group_size = 12;
  core::FlexOfferId next_id = 1'000'000;
  core::AggregationResult aggregated =
      core::Aggregator(agg_params).Aggregate(world->workload.offers, &next_id);

  // Show aggregates alongside their members (the figure points at an
  // aggregate and sees links to its constituents).
  std::vector<core::FlexOffer> shown = world->workload.offers;
  for (const core::FlexOffer& a : aggregated.aggregates) {
    if (a.aggregated_from.size() >= 3) shown.push_back(a);
  }
  viz::BasicViewResult view = viz::RenderBasicView(shown, viz::BasicViewOptions{});

  // Point at the largest aggregate.
  const core::FlexOffer* target = nullptr;
  for (const core::FlexOffer& o : shown) {
    if (o.is_aggregate() && (target == nullptr ||
                             o.aggregated_from.size() > target->aggregated_from.size())) {
      target = &o;
    }
  }
  if (target == nullptr) {
    std::fprintf(stderr, "no aggregate to hover\n");
    return 1;
  }
  render::Point pointer{0, 0};
  for (const render::DisplayItem& item : view.scene->items()) {
    if (item.tag == target->id && item.kind == render::DisplayItem::Kind::kRect) {
      render::Rect b = item.Bounds();
      pointer = render::Point{b.x + b.width / 2, b.y + b.height / 2};
    }
  }

  viz::HoverInfo info = viz::HoverAt(*view.scene, shown, pointer);
  if (!info.hit) {
    std::fprintf(stderr, "hover missed the aggregate\n");
    return 1;
  }
  std::printf("\npointed offer: %s\n", info.description.c_str());
  std::printf("provenance links drawn: %zu\n", info.provenance.size());

  render::DisplayList overlay(view.scene->width(), view.scene->height());
  view.scene->ReplayAll(overlay);
  viz::DrawHoverOverlay(overlay, info, shown, *view.scene, view.time_scale, view.plot);
  if (Status export_status = bench::ExportScene(overlay, "fig10_hover"); !export_status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", export_status.ToString().c_str());
    return 1;
  }

  // Pointer sweep: hit-test latency across the plot.
  auto start = std::chrono::steady_clock::now();
  int sweeps = 0, hits = 0;
  for (double x = view.plot.x; x < view.plot.right(); x += 8.0) {
    for (double y = view.plot.y; y < view.plot.bottom(); y += 24.0) {
      ++sweeps;
      if (!view.scene->HitTest(render::Point{x, y}).empty()) ++hits;
    }
  }
  double ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                        start)
                  .count();
  std::printf("pointer sweep: %d probes, %d hits, %.3f ms/probe\n", sweeps, hits,
              ms / std::max(1, sweeps));
  return 0;
}
