// Figure 1 — "Examples of loads before and after the MIRABEL system balances
// demand and supply in the electricity grid".
//
// Regenerates the two panels from a full planning run: RES production as a
// line, non-flexible demand as the base area, flexible demand stacked on top
// at its requested times (before) vs. its scheduled times (after), and
// prints the underlying hourly series plus the headline imbalance numbers.

#include <cstdio>

#include "bench/bench_common.h"
#include "sim/enterprise.h"
#include "viz/balancing_view.h"

using namespace flexvis;

int main() {
  bench::PrintHeader("fig1_balancing",
                     "Fig. 1: loads before vs after MIRABEL balancing (concept chart)");

  bench::WorldOptions options;
  options.num_prosumers = 300;
  std::unique_ptr<bench::World> world = bench::BuildWorld(options);

  sim::EnterpriseParams params;
  params.aggregation.est_tolerance_minutes = 120;
  params.aggregation.tft_tolerance_minutes = 120;
  params.execution_noise = 0.0;
  params.non_compliance = 0.0;
  sim::Enterprise enterprise(params);
  Result<sim::PlanningReport> report =
      enterprise.PlanHorizon(world->workload.offers, world->horizon);
  if (!report.ok()) {
    std::fprintf(stderr, "planning failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  viz::BalancingViewResult view =
      viz::RenderBalancingView(*report, viz::BalancingViewOptions{});
  Status export_status = bench::ExportScene(*view.scene, "fig1_balancing");
  if (!export_status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", export_status.ToString().c_str());
    return 1;
  }

  // The series behind the chart, hourly.
  std::printf("\nhour  RES[kWh]  inflex[kWh]  flex_planned[kWh]\n");
  for (int h = 0; h < 24; ++h) {
    timeutil::TimePoint t = world->horizon.start + h * 60;
    double res = 0.0, inflex = 0.0, flex = 0.0;
    for (int s = 0; s < 4; ++s) {
      timeutil::TimePoint ts = t + s * 15;
      res += report->res_production.At(ts);
      inflex += report->inflexible_demand.At(ts);
      flex += report->planned_flexible_load.At(ts);
    }
    std::printf("%02d:00  %8.1f  %10.1f  %16.1f\n", h, res, inflex, flex);
  }
  std::printf("\nimbalance before balancing: %.0f kWh\n", view.imbalance_before_kwh);
  std::printf("imbalance after balancing:  %.0f kWh\n", view.imbalance_after_kwh);
  std::printf("reduction: %.1f%%  (the figure's qualitative claim: flexible demand\n",
              100.0 * (1.0 - view.imbalance_after_kwh /
                                 std::max(1.0, view.imbalance_before_kwh)));
  std::printf("moves under the RES curve after balancing)\n");
  return 0;
}
