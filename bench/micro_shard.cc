// Shard-scaling microbenchmarks (EXPERIMENTS.md Q8): what partitioning the
// prosumer population across N enterprise shards costs and buys. The custom
// main writes bench_out/BENCH_shard.json with online ticks/sec at 1/2/4/8
// shards (each at 1 and 8 worker threads), a byte-identity check of the
// 1-shard run against the unsharded OnlineEnterprise::Run, a cross-thread
// determinism flag at every shard count, and the wall cost of one
// replay-verified prosumer migration.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/coordinator.h"
#include "sim/online.h"
#include "sim/rebalance.h"
#include "sim/shard.h"
#include "util/parallel.h"
#include "util/strings.h"

using namespace flexvis;

namespace {

/// Fingerprint of a merged run for determinism comparisons: the protocol
/// stream plus every counter the merge sums.
struct RunDigest {
  std::vector<std::string> outbox;
  int offers_received = 0;
  int accepted = 0;
  int rejected = 0;
  int assigned = 0;
  double imbalance_kwh = 0.0;
  double total_offered_kwh = 0.0;

  bool operator==(const RunDigest& other) const {
    return outbox == other.outbox && offers_received == other.offers_received &&
           accepted == other.accepted && rejected == other.rejected &&
           assigned == other.assigned && imbalance_kwh == other.imbalance_kwh &&
           total_offered_kwh == other.total_offered_kwh;
  }
};

RunDigest Digest(const sim::MergedOnlineReport& merged) {
  RunDigest d;
  d.outbox = merged.global.outbox;
  d.offers_received = merged.global.offers_received;
  d.accepted = merged.global.accepted;
  d.rejected = merged.global.rejected;
  d.assigned = merged.global.assigned;
  d.imbalance_kwh = merged.global.imbalance_kwh;
  d.total_offered_kwh = merged.total_offered_kwh;
  return d;
}

// ---- google-benchmark timings (not run by the CI smoke filter) --------------

void BM_ShardedTicks(benchmark::State& state) {
  std::vector<core::FlexOffer> offers = bench::MakeRandomOffers(47, 400);
  timeutil::TimeInterval window(bench::BenchDay(),
                                bench::BenchDay() + 2 * timeutil::kMinutesPerDay);
  sim::CoordinatorParams params;
  params.num_shards = static_cast<int>(state.range(0));
  params.online.tick_minutes = 60;
  int64_t ticks = 0;
  for (auto _ : state) {
    Result<sim::MergedOnlineReport> merged =
        sim::Coordinator::RunSharded(params, offers, window);
    if (!merged.ok()) {
      state.SkipWithError(merged.status().ToString().c_str());
      return;
    }
    ticks += merged->global.ticks;
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(ticks);
}
BENCHMARK(BM_ShardedTicks)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---- The JSON report the CI gate archives -----------------------------------

bool WriteShardReport() {
  bench::BenchReport report("shard");
  bool ok = true;
  bool deterministic = true;

  std::vector<core::FlexOffer> offers =
      bench::MakeRandomOffers(47, bench::EnvSize("FLEXVIS_BENCH_SHARD_OFFERS", 1200));
  timeutil::TimeInterval window(bench::BenchDay(),
                                bench::BenchDay() + 2 * timeutil::kMinutesPerDay);
  sim::OnlineParams online;
  online.tick_minutes = 60;

  // The unsharded baseline the 1-shard run must reproduce byte for byte.
  Result<sim::OnlineReport> baseline =
      sim::OnlineEnterprise(online).Run(offers, window);
  if (!baseline.ok()) {
    std::fprintf(stderr, "FAIL: unsharded baseline errored: %s\n",
                 baseline.status().ToString().c_str());
    return false;
  }

  for (int shards : {1, 2, 4, 8}) {
    sim::CoordinatorParams params;
    params.num_shards = shards;
    params.online = online;

    RunDigest first_digest;
    bool have_first = false;
    for (int threads : {1, 8}) {
      SetParallelThreadCount(threads);
      Result<sim::MergedOnlineReport> merged =
          sim::Coordinator::RunSharded(params, offers, window);
      if (!merged.ok()) {
        std::fprintf(stderr, "FAIL: %d-shard run errored: %s\n", shards,
                     merged.status().ToString().c_str());
        SetParallelThreadCount(1);
        return false;
      }
      // Determinism: every (shard count) must produce the same bytes at
      // every thread count.
      RunDigest digest = Digest(*merged);
      if (!have_first) {
        first_digest = digest;
        have_first = true;
      } else if (!(digest == first_digest)) {
        std::fprintf(stderr, "FAIL: %d-shard run differs across thread counts\n",
                     shards);
        deterministic = false;
      }
      if (shards == 1 &&
          (merged->global.outbox != baseline->outbox ||
           merged->global.imbalance_kwh != baseline->imbalance_kwh ||
           merged->global.accepted != baseline->accepted ||
           merged->global.assigned != baseline->assigned)) {
        std::fprintf(stderr,
                     "FAIL: 1-shard run is not byte-identical to the unsharded run\n");
        ok = false;
      }

      const std::string label = StrFormat("sharded_run_%ds_%dt", shards, threads);
      const double ticks = static_cast<double>(merged->global.ticks);
      double wall_s = bench::MeasureSeconds([&] {
        Result<sim::MergedOnlineReport> timed =
            sim::Coordinator::RunSharded(params, offers, window);
        if (!timed.ok()) ok = false;
        benchmark::DoNotOptimize(timed);
      });
      report.AddSample(label, wall_s, threads, ticks);
      report.AddStage(label, "tick", wall_s, ticks);
      if (wall_s > 0.0) {
        report.SetCounter(label + "_ticks_per_sec", ticks / wall_s);
      }
    }
  }
  SetParallelThreadCount(1);

  // Wall cost of one replay-verified migration (4 shards, before any tick has
  // run, so every prosumer is idle and eligible). Each repeat pays Begin for
  // both the baseline and the migrating run; the reported cost is the delta.
  {
    sim::CoordinatorParams params;
    params.num_shards = 4;
    params.online = online;
    const core::ProsumerId prosumer = offers.front().prosumer;
    double begin_s = bench::MeasureSeconds([&] {
      sim::Coordinator coordinator(params);
      if (!coordinator.Begin(offers, window).ok()) ok = false;
    });
    double migrate_s = bench::MeasureSeconds([&] {
      sim::Coordinator coordinator(params);
      if (!coordinator.Begin(offers, window).ok()) ok = false;
      const int from = coordinator.router().ShardOfProsumer(
          prosumer, core::kInvalidRegionId, core::kInvalidGridNodeId);
      if (!coordinator.MigrateProsumer(prosumer, (from + 1) % 4).ok()) ok = false;
    });
    report.AddSample("migrate_one_prosumer_4s", migrate_s, 1, 1.0);
    report.SetCounter("migrate_overhead_seconds",
                      migrate_s > begin_s ? migrate_s - begin_s : 0.0);
  }

  // ---- The rebalancing gate (EXPERIMENTS.md Q12) ----------------------------
  // A pathologically skewed population: every prosumer id is remapped to one
  // that hashes to shard 0 of 4, so the whole arrival stream lands on one
  // shard of a 4-shard fleet with a bounded ingest queue. Without the
  // controller that shard sheds continuously while three shards idle. The two
  // hard gates: the self-healing controller must fire at least one plan AND
  // strictly reduce total sheds (rebalance_converged), and the rebalanced run
  // must stay settlement-conservative — every input offer back exactly once
  // in global input order, per-shard counters and outboxes summing to the
  // global merge (settlement_conserved).
  bool rebalance_converged = true;
  bool settlement_conserved = true;
  {
    sim::ShardRouter probe(4, sim::ShardPolicy::kHash);
    std::map<core::ProsumerId, core::ProsumerId> remap;
    core::ProsumerId candidate = 1;
    std::vector<core::FlexOffer> skewed = offers;
    for (core::FlexOffer& offer : skewed) {
      auto [it, inserted] = remap.try_emplace(offer.prosumer, 0);
      if (inserted) {
        while (probe.ShardOfProsumer(candidate, core::kInvalidRegionId,
                                     core::kInvalidGridNodeId) != 0) {
          ++candidate;
        }
        it->second = candidate++;
      }
      offer.prosumer = it->second;
    }

    sim::CoordinatorParams params;
    params.num_shards = 4;
    params.online = online;
    params.online.ingest_queue_capacity = 2;

    Result<sim::MergedOnlineReport> unbalanced =
        sim::Coordinator::RunSharded(params, skewed, window);
    if (!unbalanced.ok()) {
      std::fprintf(stderr, "FAIL: skewed baseline errored: %s\n",
                   unbalanced.status().ToString().c_str());
      return false;
    }

    sim::RebalanceParams rebalance;
    rebalance.window_ticks = 2;
    rebalance.cooldown_ticks = 2;
    rebalance.max_moves = 4;
    rebalance.queue_depth_threshold = 4;
    params.rebalance = rebalance;
    sim::Coordinator coordinator(params);
    int64_t plans = 0;
    double rebalanced_s = bench::MeasureSeconds([&] {
      sim::Coordinator timed(params);
      if (!timed.Begin(skewed, window).ok()) rebalance_converged = false;
      while (!timed.Done()) {
        if (!timed.Tick().ok()) {
          rebalance_converged = false;
          break;
        }
      }
      plans = timed.plans_executed();
      benchmark::DoNotOptimize(timed);
    });
    if (!coordinator.Begin(skewed, window).ok()) rebalance_converged = false;
    while (rebalance_converged && !coordinator.Done()) {
      if (!coordinator.Tick().ok()) rebalance_converged = false;
    }
    Result<sim::MergedOnlineReport> balanced = coordinator.Finish();
    if (!balanced.ok()) {
      std::fprintf(stderr, "FAIL: rebalanced run errored: %s\n",
                   balanced.status().ToString().c_str());
      return false;
    }

    if (plans < 1) {
      std::fprintf(stderr, "FAIL: the controller never fired a plan\n");
      rebalance_converged = false;
    }
    if (balanced->global.shed_offers >= unbalanced->global.shed_offers) {
      std::fprintf(stderr, "FAIL: rebalancing did not reduce sheds (%d -> %d)\n",
                   unbalanced->global.shed_offers, balanced->global.shed_offers);
      rebalance_converged = false;
    }

    if (balanced->global.offers.size() != skewed.size()) {
      settlement_conserved = false;
    } else {
      for (size_t i = 0; i < skewed.size(); ++i) {
        if (balanced->global.offers[i].id != skewed[i].id) {
          settlement_conserved = false;
          break;
        }
      }
    }
    int received = 0;
    int shed = 0;
    size_t outbox = 0;
    for (const sim::OnlineReport& shard : balanced->shard_reports) {
      received += shard.offers_received;
      shed += shard.shed_offers;
      outbox += shard.outbox.size();
    }
    if (received != balanced->global.offers_received ||
        shed != balanced->global.shed_offers ||
        outbox != balanced->global.outbox.size()) {
      settlement_conserved = false;
    }
    if (!settlement_conserved) {
      std::fprintf(stderr, "FAIL: rebalanced run violates settlement conservation\n");
    }

    report.AddSample("rebalanced_skewed_run_4s", rebalanced_s, 1,
                     static_cast<double>(balanced->global.ticks));
    report.SetCounter("rebalance_plans", static_cast<double>(plans));
    report.SetCounter("shed_skewed_baseline",
                      static_cast<double>(unbalanced->global.shed_offers));
    report.SetCounter("shed_rebalanced",
                      static_cast<double>(balanced->global.shed_offers));
  }

  report.SetCounter("deterministic", deterministic ? 1.0 : 0.0);
  report.SetCounter("one_shard_matches_unsharded", ok ? 1.0 : 0.0);
  report.SetCounter("rebalance_converged", rebalance_converged ? 1.0 : 0.0);
  report.SetCounter("settlement_conserved", settlement_conserved ? 1.0 : 0.0);

  if (Status status = report.Write(); !status.ok()) {
    std::fprintf(stderr, "report failed: %s\n", status.ToString().c_str());
    return false;
  }
  return ok && deterministic && rebalance_converged && settlement_conserved;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!WriteShardReport()) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
