// Figure 11 — "Aggregation tools of flex-offers".
//
// Regenerates the aggregation tool's parameter-tuning loop: sweep the EST
// and time-flexibility tolerances and report, for each setting, how many
// offers remain on screen and how much flexibility the aggregation retains
// — the trade-off the tool's dialog lets the analyst tune interactively.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/aggregation.h"
#include "core/measures.h"
#include "viz/session.h"

using namespace flexvis;

int main() {
  bench::PrintHeader("fig11_aggregation",
                     "Fig. 11: aggregation tool - interactive parameter tuning");

  bench::WorldOptions options;
  options.num_prosumers = 500;
  options.offers_per_prosumer = 8.0;
  std::unique_ptr<bench::World> world = bench::BuildWorld(options);
  const std::vector<core::FlexOffer>& offers = world->workload.offers;

  core::BalancingPotential raw_bp = core::ComputeBalancingPotential(offers);
  double raw_tf = core::Summarize(offers, core::NumericAttribute::kTimeFlexibilityMinutes)
                      .mean();
  std::printf("\ninput: %zu offers, mean time flexibility %.0f min, balancing potential %.3f\n",
              offers.size(), raw_tf, raw_bp.potential);

  std::printf("\n%-22s %8s %10s %14s %12s\n", "tolerances (EST/TFT)", "shown", "reduction",
              "mean TF [min]", "potential");
  const int64_t tolerances[] = {0, 15, 60, 240, 480, 1440};
  for (int64_t tol : tolerances) {
    core::AggregationParams params;
    params.est_tolerance_minutes = tol;
    params.tft_tolerance_minutes = tol;
    core::FlexOfferId next_id = 1'000'000;
    core::AggregationResult result = core::Aggregator(params).Aggregate(offers, &next_id);
    double mean_tf =
        core::Summarize(result.aggregates, core::NumericAttribute::kTimeFlexibilityMinutes)
            .mean();
    core::BalancingPotential bp = core::ComputeBalancingPotential(result.aggregates);
    std::printf("%6lld / %-13lld %8zu %9.1fx %14.0f %12.3f\n", static_cast<long long>(tol),
                static_cast<long long>(tol), result.aggregates.size(),
                static_cast<double>(offers.size()) /
                    static_cast<double>(std::max<size_t>(1, result.aggregates.size())),
                mean_tf, bp.potential);
  }
  std::printf("\n(wider tolerances shrink the on-screen count but erode time flexibility\n"
              " - the trade-off the tool's parameter dialog exposes)\n");

  // The session-level flow the figure's menu drives, exported as a view.
  viz::Session session(&world->db);
  Result<size_t> tab = session.LoadTab(dw::FlexOfferFilter{}, "All offers");
  if (!tab.ok()) return 1;
  core::AggregationParams params;
  params.est_tolerance_minutes = 240;
  params.tft_tolerance_minutes = 240;
  Result<size_t> agg_tab = session.AggregateTab(*tab, params);
  if (!agg_tab.ok()) return 1;
  viz::BasicViewResult view =
      session.tab(*agg_tab)->RenderBasic(viz::BasicViewOptions{});
  Status export_status = bench::ExportScene(*view.scene, "fig11_aggregation");
  if (!export_status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", export_status.ToString().c_str());
    return 1;
  }
  std::printf("tab '%s'\n", session.tab(*agg_tab)->title().c_str());
  return 0;
}
