// Q3 — "This allows, for example, reducing the count of flex-offers shown on
// a screen by aggregation, as well as allows interactive tuning values of
// the aggregation parameters."
//
// Quantifies the claim: aggregation throughput across workload sizes and
// tolerance settings (the operation must be fast enough for an interactive
// tuning loop), with the reduction ratio reported per setting, plus the
// disaggregation cost of one scheduled aggregate.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/aggregation.h"

using namespace flexvis;

namespace {

void BM_Aggregate(benchmark::State& state) {
  std::vector<core::FlexOffer> offers =
      bench::MakeRandomOffers(11, static_cast<size_t>(state.range(0)));
  core::AggregationParams params;
  params.est_tolerance_minutes = state.range(1);
  params.tft_tolerance_minutes = state.range(1);
  core::Aggregator aggregator(params);
  size_t aggregates = 0;
  for (auto _ : state) {
    core::FlexOfferId next_id = 1'000'000;
    core::AggregationResult result = aggregator.Aggregate(offers, &next_id);
    aggregates = result.aggregates.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["reduction"] =
      static_cast<double>(offers.size()) / static_cast<double>(std::max<size_t>(1, aggregates));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Aggregate)
    ->Args({1000, 15})
    ->Args({1000, 60})
    ->Args({1000, 240})
    ->Args({10000, 60})
    ->Args({10000, 240})
    ->Args({100000, 240});

void BM_Disaggregate(benchmark::State& state) {
  // One aggregate of `range(0)` members with a schedule.
  std::vector<core::FlexOffer> offers =
      bench::MakeRandomOffers(13, static_cast<size_t>(state.range(0)));
  // Force everything into one cell (and keep the deadline chain valid for
  // the shifted start window).
  for (core::FlexOffer& o : offers) {
    o.earliest_start = bench::BenchDay();
    o.latest_start = o.earliest_start + 4 * timeutil::kMinutesPerSlice;
    o.creation_time = o.earliest_start - 12 * 60;
    o.acceptance_deadline = o.creation_time + 60;
    o.assignment_deadline = o.creation_time + 120;
  }
  core::AggregationParams params;
  params.est_tolerance_minutes = 0;
  params.tft_tolerance_minutes = 0;
  core::FlexOfferId next_id = 1'000'000;
  core::AggregationResult result = core::Aggregator(params).Aggregate(offers, &next_id);
  core::FlexOffer aggregate = result.aggregates[0];
  core::Schedule sched;
  sched.start = aggregate.earliest_start;
  for (const core::ProfileSlice& u : aggregate.UnitProfile()) {
    sched.energy_kwh.push_back((u.min_energy_kwh + u.max_energy_kwh) / 2.0);
  }
  aggregate.schedule = sched;

  for (auto _ : state) {
    Result<std::vector<core::FlexOffer>> members = core::Disaggregate(aggregate, offers);
    benchmark::DoNotOptimize(members);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Disaggregate)->Arg(10)->Arg(100)->Arg(1000);

void BM_CompressProfile(benchmark::State& state) {
  std::vector<core::ProfileSlice> units;
  for (int i = 0; i < state.range(0); ++i) {
    units.push_back(core::ProfileSlice{1, static_cast<double>(i % 4), 4.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::CompressProfile(units));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompressProfile)->Arg(96)->Arg(960);

}  // namespace

BENCHMARK_MAIN();
