// Q3 — "This allows, for example, reducing the count of flex-offers shown on
// a screen by aggregation, as well as allows interactive tuning values of
// the aggregation parameters."
//
// Quantifies the claim: aggregation throughput across workload sizes and
// tolerance settings (the operation must be fast enough for an interactive
// tuning loop), with the reduction ratio reported per setting, plus the
// disaggregation cost of one scheduled aggregate.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"
#include "core/aggregation.h"
#include "core/profile_columns.h"
#include "util/parallel.h"

using namespace flexvis;

namespace {

void BM_Aggregate(benchmark::State& state) {
  std::vector<core::FlexOffer> offers =
      bench::MakeRandomOffers(11, static_cast<size_t>(state.range(0)));
  core::AggregationParams params;
  params.est_tolerance_minutes = state.range(1);
  params.tft_tolerance_minutes = state.range(1);
  core::Aggregator aggregator(params);
  size_t aggregates = 0;
  for (auto _ : state) {
    core::FlexOfferId next_id = 1'000'000;
    core::AggregationResult result = aggregator.Aggregate(offers, &next_id);
    aggregates = result.aggregates.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["reduction"] =
      static_cast<double>(offers.size()) / static_cast<double>(std::max<size_t>(1, aggregates));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Aggregate)
    ->Args({1000, 15})
    ->Args({1000, 60})
    ->Args({1000, 240})
    ->Args({10000, 60})
    ->Args({10000, 240})
    ->Args({100000, 240});

void BM_Disaggregate(benchmark::State& state) {
  // One aggregate of `range(0)` members with a schedule.
  std::vector<core::FlexOffer> offers =
      bench::MakeRandomOffers(13, static_cast<size_t>(state.range(0)));
  // Force everything into one cell (and keep the deadline chain valid for
  // the shifted start window).
  for (core::FlexOffer& o : offers) {
    o.earliest_start = bench::BenchDay();
    o.latest_start = o.earliest_start + 4 * timeutil::kMinutesPerSlice;
    o.creation_time = o.earliest_start - 12 * 60;
    o.acceptance_deadline = o.creation_time + 60;
    o.assignment_deadline = o.creation_time + 120;
  }
  core::AggregationParams params;
  params.est_tolerance_minutes = 0;
  params.tft_tolerance_minutes = 0;
  core::FlexOfferId next_id = 1'000'000;
  core::AggregationResult result = core::Aggregator(params).Aggregate(offers, &next_id);
  core::FlexOffer aggregate = result.aggregates[0];
  core::Schedule sched;
  sched.start = aggregate.earliest_start;
  for (const core::ProfileSlice& u : aggregate.UnitProfile()) {
    sched.energy_kwh.push_back((u.min_energy_kwh + u.max_energy_kwh) / 2.0);
  }
  aggregate.schedule = sched;

  for (auto _ : state) {
    Result<std::vector<core::FlexOffer>> members = core::Disaggregate(aggregate, offers);
    benchmark::DoNotOptimize(members);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Disaggregate)->Arg(10)->Arg(100)->Arg(1000);

void BM_CompressProfile(benchmark::State& state) {
  std::vector<core::ProfileSlice> units;
  for (int i = 0; i < state.range(0); ++i) {
    units.push_back(core::ProfileSlice{1, static_cast<double>(i % 4), 4.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::CompressProfile(units));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompressProfile)->Arg(96)->Arg(960);

// FNV-1a over the fields that define an aggregation result, to verify the
// threaded run is byte-equivalent to the serial one.
uint64_t HashAggregates(const core::AggregationResult& result) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const core::FlexOffer& a : result.aggregates) {
    mix(static_cast<uint64_t>(a.id));
    mix(static_cast<uint64_t>(a.earliest_start.minutes()));
    mix(static_cast<uint64_t>(a.latest_start.minutes()));
    mix(a.aggregated_from.size());
    for (core::FlexOfferId m : a.aggregated_from) mix(static_cast<uint64_t>(m));
    for (const core::ProfileSlice& s : a.profile) {
      mix(static_cast<uint64_t>(s.duration_slices));
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(s.min_energy_kwh));
      std::memcpy(&bits, &s.min_energy_kwh, sizeof(bits));
      mix(bits);
      std::memcpy(&bits, &s.max_energy_kwh, sizeof(bits));
      mix(bits);
    }
  }
  mix(result.passthrough.size());
  return h;
}

// Serial-vs-threaded speedup report for the CI gate. Returns false when the
// report cannot be written or the threaded run diverges from the serial one.
bool WriteSpeedupReport() {
  const size_t count = bench::EnvSize("FLEXVIS_BENCH_OFFERS", 100000);
  std::vector<core::FlexOffer> offers = bench::MakeRandomOffers(11, count);
  core::AggregationParams params;
  params.est_tolerance_minutes = 240;
  params.tft_tolerance_minutes = 240;
  core::Aggregator aggregator(params);

  auto run = [&]() {
    core::FlexOfferId next_id = 1'000'000;
    return aggregator.Aggregate(offers, &next_id);
  };

  SetParallelThreadCount(1);
  uint64_t serial_hash = HashAggregates(run());
  double serial_seconds = bench::MeasureSeconds([&] { run(); });

  // Per-stage breakdown of the serial pass (each stage re-timed through the
  // public API so a regression is attributable): `filter` is the validation
  // sweep, `scan` the AoS->SoA column build, `fold` the grid build + measure
  // roll-ups (the whole aggregation, dominated by grouping + BuildAggregate).
  double validate_seconds = bench::MeasureSeconds([&] {
    for (const core::FlexOffer& o : offers) {
      Status s = core::Validate(o);
      benchmark::DoNotOptimize(s);
    }
  });
  double columns_seconds = bench::MeasureSeconds([&] {
    core::ProfileColumns cols = core::ProfileColumns::FromOffers(offers);
    benchmark::DoNotOptimize(cols);
  });

  const int threads = std::max(4, ParallelThreadCount());
  SetParallelThreadCount(threads);
  core::AggregationResult threaded = run();
  uint64_t threaded_hash = HashAggregates(threaded);
  double threaded_seconds = bench::MeasureSeconds([&] { run(); });
  SetParallelThreadCount(0);  // back to the environment-resolved default

  bench::BenchReport report("micro_aggregate");
  report.AddSample("aggregate_serial", serial_seconds, 1, static_cast<double>(count));
  report.AddSample("aggregate_parallel", threaded_seconds, threads,
                   static_cast<double>(count));
  report.AddStage("aggregate_serial", "filter", validate_seconds,
                  static_cast<double>(count));
  report.AddStage("aggregate_serial", "scan", columns_seconds, static_cast<double>(count));
  report.AddStage("aggregate_serial", "fold", serial_seconds, static_cast<double>(count));
  report.AddStage("aggregate_parallel", "merge", threaded_seconds,
                  static_cast<double>(count));
  report.SetCounter("speedup", threaded_seconds > 0.0 ? serial_seconds / threaded_seconds : 0.0);
  report.SetCounter("reduction",
                    static_cast<double>(count) /
                        static_cast<double>(std::max<size_t>(1, threaded.aggregates.size())));
  const bool deterministic = serial_hash == threaded_hash;
  report.SetCounter("deterministic", deterministic ? 1.0 : 0.0);
  Status status = report.Write();
  if (!status.ok()) {
    std::fprintf(stderr, "report failed: %s\n", status.ToString().c_str());
    return false;
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: threaded aggregation diverged from serial output\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!WriteSpeedupReport()) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
