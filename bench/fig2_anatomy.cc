// Figure 2 — "Structural elements of a flex-offer".
//
// Regenerates the annotated anatomy diagram using the paper's own example
// (11 pm acceptance, 0 am assignment, 1 am earliest start, 3 am latest
// start, 2 h profile, 5 am latest end) and prints each structural element.

#include <cstdio>

#include "bench/bench_common.h"
#include "viz/anatomy_view.h"

using namespace flexvis;

int main() {
  bench::PrintHeader("fig2_anatomy", "Fig. 2: structural elements of a flex-offer");

  core::FlexOffer offer = viz::MakePaperExampleOffer();
  Status valid = core::Validate(offer);
  if (!valid.ok()) {
    std::fprintf(stderr, "example offer invalid: %s\n", valid.ToString().c_str());
    return 1;
  }

  viz::AnatomyViewResult view = viz::RenderAnatomyView(offer, viz::AnatomyViewOptions{});
  if (Status export_status = bench::ExportScene(*view.scene, "fig2_anatomy"); !export_status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", export_status.ToString().c_str());
    return 1;
  }

  std::printf("\nstructural elements (paper values in parentheses):\n");
  std::printf("  acceptance time     %s  (11 pm)\n",
              offer.acceptance_deadline.TimeOfDayString().c_str());
  std::printf("  assignment time     %s  (0 am)\n",
              offer.assignment_deadline.TimeOfDayString().c_str());
  std::printf("  earliest start      %s  (1 am)\n",
              offer.earliest_start.TimeOfDayString().c_str());
  std::printf("  latest start        %s  (3 am)\n",
              offer.latest_start.TimeOfDayString().c_str());
  std::printf("  latest end          %s  (5 am)\n",
              offer.latest_end().TimeOfDayString().c_str());
  std::printf("  profile duration    %lld min  (2 h)\n",
              static_cast<long long>(offer.profile_duration_minutes()));
  std::printf("  start flexibility   %lld min  (2 h)\n",
              static_cast<long long>(offer.time_flexibility_minutes()));
  std::printf("  min required energy %.1f kWh\n", offer.total_min_energy_kwh());
  std::printf("  energy flexibility  %.1f kWh\n", offer.energy_flexibility_kwh());
  std::printf("  scheduled energy    %.1f kWh from %s\n", offer.total_scheduled_energy_kwh(),
              offer.schedule->start.TimeOfDayString().c_str());
  return 0;
}
