// Figure 9 — "Profile view of flex-offers".
//
// Regenerates the detail view: a modest offer set (the paper notes the view
// "is effective for a smaller flex-offer set") with per-slice min/max energy
// bounds, the grey time-flexibility bands, red scheduled-energy step lines,
// and one synchronized ordinate scale across all lanes. Prints that shared
// scale and a per-offer summary.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/scheduler.h"
#include "sim/energy_models.h"
#include "viz/profile_view.h"

using namespace flexvis;

int main() {
  bench::PrintHeader("fig9_profile_view",
                     "Fig. 9: profile view with synchronized energy scales");

  bench::WorldOptions options;
  options.num_prosumers = 12;
  options.offers_per_prosumer = 3.0;
  std::unique_ptr<bench::World> world = bench::BuildWorld(options);

  // Schedule the offers so the red step lines appear, as in the figure.
  core::TimeSeries target = sim::MakeFlexibilityTarget(
      sim::MakeResProduction(world->horizon, sim::EnergyModelParams{}),
      sim::MakeInflexibleDemand(world->horizon, sim::EnergyModelParams{}));
  core::ScheduleResult plan = core::Scheduler().Plan(world->workload.offers, target);

  viz::ProfileViewOptions view_options;
  view_options.frame.height = 760;
  viz::ProfileViewResult view = viz::RenderProfileView(plan.offers, view_options);
  Status export_status = bench::ExportScene(*view.scene, "fig9_profile_view");
  if (!export_status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", export_status.ToString().c_str());
    return 1;
  }

  std::printf("\noffers: %zu in %d lanes\n", plan.offers.size(), view.layout.lane_count);
  std::printf("synchronized ordinate: 0 .. %.1f kWh per 15 min (all lanes share it)\n",
              view.max_energy_kwh);
  std::printf("\n%-5s %7s %12s %12s %12s\n", "offer", "slices", "min[kWh]", "max[kWh]",
              "sched[kWh]");
  for (size_t i = 0; i < std::min<size_t>(plan.offers.size(), 15); ++i) {
    const core::FlexOffer& o = plan.offers[i];
    std::printf("%-5lld %7d %12.2f %12.2f %12.2f\n", static_cast<long long>(o.id),
                o.profile_duration_slices(), o.total_min_energy_kwh(),
                o.total_max_energy_kwh(), o.total_scheduled_energy_kwh());
  }
  if (plan.offers.size() > 15) std::printf("... (%zu more)\n", plan.offers.size() - 15);
  return 0;
}
