// Tile-pyramid microbenchmark (EXPERIMENTS.md Q11): the O(pixels) claim of
// the LOD render path. The custom main writes bench_out/BENCH_tile.json with
// pan+zoom frame times over a 10k-offer and a 10M-offer pyramid (same
// extent, same tile geometry, same frame script — only the data volume
// differs) plus the tile-cache counters behind them. Two hard gates fail the
// binary:
//
//   frame_time_flat  the median pan+zoom frame time over the large
//                    population stays within FLEXVIS_TILE_FLAT_TOLERANCE
//                    (default 1.5x) of the small population — frame cost
//                    scales with pixels, not with offers;
//   deterministic    the pyramid build serializes byte-identically at 1 and
//                    8 worker threads, and tiles rendered from the large
//                    pyramid are byte-identical at 1 and 8 threads.
//
// Population sizes scale with FLEXVIS_BENCH_TILE_SMALL / _LARGE for quick
// local runs; the committed baseline was produced with the defaults.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "dw/lod.h"
#include "render/tile.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/strings.h"
#include "viz/lod_view.h"

using namespace flexvis;

namespace {

// One year of 15-minute slices: a pyramid deep enough that the zoom script
// crosses many levels.
timeutil::TimeInterval TileExtent() {
  return timeutil::TimeInterval(bench::BenchDay(),
                                bench::BenchDay() + 365 * timeutil::kMinutesPerDay);
}

/// Appends `count` cheap offers (1-3 profile entries, no schedules) spread
/// uniformly over the extent. Batched generation keeps peak memory at one
/// batch regardless of the population size.
void AppendOffers(Rng& rng, size_t count, std::vector<core::FlexOffer>* batch) {
  const timeutil::TimeInterval extent = TileExtent();
  const int64_t slices = extent.duration_minutes() / timeutil::kMinutesPerSlice;
  batch->clear();
  batch->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    core::FlexOffer o;
    o.id = static_cast<core::FlexOfferId>(i + 1);
    o.earliest_start =
        extent.start + rng.UniformInt(0, slices - 8) * timeutil::kMinutesPerSlice;
    o.latest_start =
        o.earliest_start + rng.UniformInt(0, 4) * timeutil::kMinutesPerSlice;
    const int entries = static_cast<int>(rng.UniformInt(1, 3));
    for (int e = 0; e < entries; ++e) {
      const double min = rng.Uniform(0.0, 2.0);
      o.profile.push_back(core::ProfileSlice{1, min, min + rng.Uniform(0.0, 2.0)});
    }
    batch->push_back(std::move(o));
  }
}

dw::LodPyramid BuildPyramid(uint64_t seed, size_t population) {
  dw::LodBuilder builder(TileExtent());
  Rng rng(seed);
  std::vector<core::FlexOffer> batch;
  constexpr size_t kBatch = 65536;
  for (size_t done = 0; done < population; done += kBatch) {
    AppendOffers(rng, std::min(kBatch, population - done), &batch);
    builder.Add(batch);
  }
  return builder.Finish();
}

render::TileConfig FrameConfig() {
  render::TileConfig config;
  config.buckets_per_tile = 64;
  config.px_per_bucket = 4;
  config.height_px = 96;
  config.max_tiles = 256;
  return config;
}

/// The deterministic pan+zoom script: walk a ladder of LOD levels coarse to
/// fine (adjacent steps, so zooming borrows placeholders from the cached
/// coarser level), panning a 1024 px viewport across the strip in half-tile
/// steps at each. Every frame composes the visible buckets and drains up to
/// two background fills — the shape of a real GUI frame.
std::vector<double> RunFrameScript(const dw::LodPyramid& pyramid,
                                   render::TileStats* stats_out) {
  const render::TileConfig config = FrameConfig();
  viz::LodStripPainter painter(&pyramid, viz::LodStripPainter::Kind::kDensity);
  render::TiledStrip strip(config);
  strip.SetGeneration(&painter, 1);

  const int64_t view_buckets = 1024 / config.px_per_bucket;
  render::RasterCanvas target(static_cast<int>(view_buckets) * config.px_per_bucket,
                              config.height_px);
  std::vector<double> seconds;
  for (int level : {10, 9, 8, 7, 6, 5, 4}) {
    if (level >= pyramid.num_levels()) continue;
    const int64_t level_buckets =
        static_cast<int64_t>(pyramid.level(level).buckets.size());
    int64_t begin = 0;
    for (int pan = 0; pan < 24; ++pan) {
      const auto start = std::chrono::steady_clock::now();
      strip.Compose(target, 0, 0, level, begin, begin + view_buckets);
      strip.FillPending(2);
      const auto end = std::chrono::steady_clock::now();
      seconds.push_back(std::chrono::duration<double>(end - start).count());
      begin += config.buckets_per_tile / 2;
      if (begin + view_buckets > level_buckets) begin = 0;
    }
  }
  if (stats_out != nullptr) *stats_out = strip.stats();
  return seconds;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = std::min(
      values.size() - 1, static_cast<size_t>(p * static_cast<double>(values.size())));
  return values[index];
}

double EnvTolerance(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return (end != value && parsed > 0.0) ? parsed : fallback;
}

// ---- google-benchmark timing (not run by the CI smoke filter) ---------------

void BM_TileComposeWarm(benchmark::State& state) {
  const dw::LodPyramid pyramid = BuildPyramid(1, 20000);
  const render::TileConfig config = FrameConfig();
  viz::LodStripPainter painter(&pyramid, viz::LodStripPainter::Kind::kDensity);
  render::TiledStrip strip(config);
  strip.SetGeneration(&painter, 1);
  const int64_t view_buckets = 1024 / config.px_per_bucket;
  render::RasterCanvas target(1024, config.height_px);
  strip.Compose(target, 0, 0, 4, 0, view_buckets);  // warm the cache
  for (auto _ : state) {
    strip.Compose(target, 0, 0, 4, 0, view_buckets);
    benchmark::DoNotOptimize(target);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TileComposeWarm);

// ---- The JSON report the CI gate archives -----------------------------------

bool WriteTileReport() {
  bench::BenchReport report("tile");
  bool ok = true;

  const size_t small_population = bench::EnvSize("FLEXVIS_BENCH_TILE_SMALL", 10'000);
  const size_t large_population =
      bench::EnvSize("FLEXVIS_BENCH_TILE_LARGE", 10'000'000);
  const double flat_tolerance = EnvTolerance("FLEXVIS_TILE_FLAT_TOLERANCE", 1.5);

  // ---- Hard gate: the pyramid build is thread-count deterministic ---------
  bool deterministic = true;
  {
    SetParallelThreadCount(1);
    const std::string serial = BuildPyramid(7, small_population).Serialize();
    SetParallelThreadCount(8);
    const std::string threaded = BuildPyramid(7, small_population).Serialize();
    SetParallelThreadCount(1);
    if (serial != threaded) {
      std::fprintf(stderr, "FAIL: pyramid build differs at 1 vs 8 threads\n");
      deterministic = false;
    }
    report.SetCounter("pyramid_deterministic", serial == threaded ? 1.0 : 0.0);
  }

  // ---- Frame times: same script, 10k vs 10M offers ------------------------
  const double small_build_s =
      bench::MeasureSeconds([&] { BuildPyramid(7, small_population); }, 1);
  const dw::LodPyramid small_pyramid = BuildPyramid(7, small_population);
  const double large_build_s =
      bench::MeasureSeconds([&] { BuildPyramid(7, large_population); }, 1);
  const dw::LodPyramid large_pyramid = BuildPyramid(7, large_population);
  report.SetCounter("build_seconds_small", small_build_s);
  report.SetCounter("build_seconds_large", large_build_s);

  render::TileStats small_stats;
  render::TileStats large_stats;
  const std::vector<double> small_frames = RunFrameScript(small_pyramid, &small_stats);
  const std::vector<double> large_frames = RunFrameScript(large_pyramid, &large_stats);

  double small_total = 0.0;
  for (double s : small_frames) small_total += s;
  double large_total = 0.0;
  for (double s : large_frames) large_total += s;
  report.AddSample("tile_frames_small", small_total, 1,
                   static_cast<double>(small_frames.size()));
  report.AddSample("tile_frames_large", large_total, 1,
                   static_cast<double>(large_frames.size()));
  report.AddStage("tile_frames_small", "build", small_build_s,
                  static_cast<double>(small_population));
  report.AddStage("tile_frames_small", "compose", small_total,
                  static_cast<double>(small_frames.size()));
  report.AddStage("tile_frames_large", "build", large_build_s,
                  static_cast<double>(large_population));
  report.AddStage("tile_frames_large", "compose", large_total,
                  static_cast<double>(large_frames.size()));

  const double small_p50 = Percentile(small_frames, 0.50);
  const double large_p50 = Percentile(large_frames, 0.50);
  report.SetCounter("frame_p50_seconds_small", small_p50);
  report.SetCounter("frame_p99_seconds_small", Percentile(small_frames, 0.99));
  report.SetCounter("frame_p50_seconds_large", large_p50);
  report.SetCounter("frame_p99_seconds_large", Percentile(large_frames, 0.99));
  report.SetCounter("offers_small", static_cast<double>(small_pyramid.num_offers()));
  report.SetCounter("offers_large", static_cast<double>(large_pyramid.num_offers()));
  report.SetCounter("tile_hits", static_cast<double>(large_stats.hits));
  report.SetCounter("tile_misses", static_cast<double>(large_stats.misses));
  report.SetCounter("tile_evictions", static_cast<double>(large_stats.evictions));
  report.SetCounter("tile_placeholder_serves",
                    static_cast<double>(large_stats.placeholder_serves));
  report.SetCounter("tile_background_fills",
                    static_cast<double>(large_stats.background_fills));

  const double ratio = small_p50 > 0.0 ? large_p50 / small_p50 : 0.0;
  report.SetCounter("frame_flat_ratio", ratio);
  report.SetCounter("frame_flat_tolerance", flat_tolerance);
  const bool flat = small_p50 > 0.0 && ratio <= flat_tolerance;
  report.SetCounter("frame_time_flat", flat ? 1.0 : 0.0);
  if (!flat) {
    std::fprintf(stderr,
                 "FAIL: median frame time grew %.2fx from %zu to %zu offers "
                 "(tolerance %.2fx)\n",
                 ratio, small_population, large_population, flat_tolerance);
    ok = false;
  }

  // ---- Hard gate: tiles of the large pyramid are thread-count exact -------
  {
    viz::LodStripPainter painter(&large_pyramid, viz::LodStripPainter::Kind::kEnvelope);
    render::TiledStrip strip(FrameConfig());
    strip.SetGeneration(&painter, 1);
    for (auto [level, index] : std::vector<std::pair<int, int64_t>>{
             {0, 0}, {0, 37}, {4, 3}, {8, 1}}) {
      if (level >= large_pyramid.num_levels()) continue;
      SetParallelThreadCount(1);
      const render::TileRaster serial = strip.RenderTile(level, index);
      SetParallelThreadCount(8);
      const render::TileRaster threaded = strip.RenderTile(level, index);
      SetParallelThreadCount(1);
      if (serial.rgb != threaded.rgb) {
        std::fprintf(stderr, "FAIL: tile %d/%lld differs at 1 vs 8 threads\n", level,
                     static_cast<long long>(index));
        deterministic = false;
      }
    }
  }
  report.SetCounter("deterministic", deterministic ? 1.0 : 0.0);
  ok = ok && deterministic;

  if (Status status = report.Write(); !status.ok()) {
    std::fprintf(stderr, "report failed: %s\n", status.ToString().c_str());
    return false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!WriteTileReport()) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
