// Figure 7 — "The flex-offer loading tab in the main window".
//
// Exercises the loading flow behind the tab: enumerate the legal entities
// (the prosumer dropdown), then load flex-offers for a chosen entity and an
// absolute time interval, reporting row counts and query latency for both a
// narrow and a broad selection — the data-plumbing the screenshot depicts.

#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "viz/session.h"

using namespace flexvis;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  bench::PrintHeader("fig7_loading",
                     "Fig. 7: loading tab - legal entity + absolute interval selection");

  bench::WorldOptions options;
  options.num_prosumers = 500;
  options.offers_per_prosumer = 12.0;
  std::unique_ptr<bench::World> world = bench::BuildWorld(options);
  viz::Session session(&world->db);

  std::printf("\nlegal entities in dropdown: %zu (first: '%s')\n",
              session.LegalEntities().size(),
              session.LegalEntities().front().name.c_str());
  std::printf("warehouse rows: %zu flex-offers\n", world->db.NumFlexOffers());

  struct Case {
    const char* label;
    dw::FlexOfferFilter filter;
  };
  dw::FlexOfferFilter one_entity;
  one_entity.prosumer = session.LegalEntities().front().id;
  one_entity.window = world->horizon;
  dw::FlexOfferFilter morning;
  morning.window = timeutil::TimeInterval(world->horizon.start, world->horizon.start + 6 * 60);
  dw::FlexOfferFilter everything;
  Case cases[] = {
      {"one legal entity, full day", one_entity},
      {"all entities, 00:00-06:00", morning},
      {"all entities, all time", everything},
  };

  std::printf("\n%-30s %10s %12s %10s\n", "selection", "offers", "latency[ms]", "tab");
  for (const Case& c : cases) {
    auto start = std::chrono::steady_clock::now();
    Result<size_t> tab = session.LoadTab(c.filter);
    double ms = MillisSince(start);
    if (!tab.ok()) {
      std::fprintf(stderr, "load failed: %s\n", tab.status().ToString().c_str());
      return 1;
    }
    std::printf("%-30s %10zu %12.2f %10zu\n", c.label,
                session.tabs()[*tab]->offers().size(), ms, *tab);
  }
  std::printf("\neach load opened a new view tab, as in the screenshot's tab strip\n");
  return 0;
}
