#ifndef FLEXVIS_BENCH_BENCH_COMMON_H_
#define FLEXVIS_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>

#include "dw/database.h"
#include "geo/atlas.h"
#include "grid/topology.h"
#include "olap/cube.h"
#include "render/display_list.h"
#include "sim/workload.h"
#include "time/time_point.h"

namespace flexvis::bench {

/// Shape of a benchmark world.
struct WorldOptions {
  uint64_t seed = 20130318;
  int num_prosumers = 200;
  double offers_per_prosumer = 5.0;
  /// Planning horizon; defaults to one day starting 2013-02-01 (the date of
  /// Fig. 6).
  timeutil::TimeInterval horizon;
  int transmission = 2;
  int plants = 2;
  int distribution_per_transmission = 2;
  int feeders_per_distribution = 4;
};

/// Everything the figure benches need: atlas, grid, DW with a loaded
/// workload, and the OLAP cube.
struct World {
  geo::Atlas atlas;
  grid::GridTopology topology = grid::GridTopology::MakeRadial(1, 1, 1, 1);
  dw::Database db;
  sim::Workload workload;
  std::unique_ptr<olap::Cube> cube;
  timeutil::TimeInterval horizon;
};

/// The default benchmark day (2013-02-01, matching Fig. 6's timestamps).
timeutil::TimePoint BenchDay();

/// Builds a deterministic world; aborts on internal errors (benches have no
/// error channel worth plumbing).
std::unique_ptr<World> BuildWorld(const WorldOptions& options);

/// Writes `scene` under bench_out/<name>.svg (creating the directory) and
/// prints the path. Returns false on I/O failure.
bool ExportScene(const render::DisplayList& scene, const std::string& name);

/// Prints the standard header every figure bench starts with.
void PrintHeader(const char* figure, const char* claim);

/// Cheap random flex-offers for micro benches (no atlas/grid/DW involved):
/// valid offers with varied extents, profiles, and flexibilities over a
/// two-day window starting at BenchDay().
std::vector<core::FlexOffer> MakeRandomOffers(uint64_t seed, size_t count);

}  // namespace flexvis::bench

#endif  // FLEXVIS_BENCH_BENCH_COMMON_H_
