#ifndef FLEXVIS_BENCH_BENCH_COMMON_H_
#define FLEXVIS_BENCH_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>

#include "dw/database.h"
#include "geo/atlas.h"
#include "grid/topology.h"
#include "olap/cube.h"
#include "render/display_list.h"
#include "sim/workload.h"
#include "time/time_point.h"
#include "util/json.h"
#include "util/status.h"

namespace flexvis::bench {

/// Shape of a benchmark world.
struct WorldOptions {
  uint64_t seed = 20130318;
  int num_prosumers = 200;
  double offers_per_prosumer = 5.0;
  /// Planning horizon; defaults to one day starting 2013-02-01 (the date of
  /// Fig. 6).
  timeutil::TimeInterval horizon;
  int transmission = 2;
  int plants = 2;
  int distribution_per_transmission = 2;
  int feeders_per_distribution = 4;
};

/// Everything the figure benches need: atlas, grid, DW with a loaded
/// workload, and the OLAP cube.
struct World {
  geo::Atlas atlas;
  grid::GridTopology topology = grid::GridTopology::MakeRadial(1, 1, 1, 1);
  dw::Database db;
  sim::Workload workload;
  std::unique_ptr<olap::Cube> cube;
  timeutil::TimeInterval horizon;
};

/// The default benchmark day (2013-02-01, matching Fig. 6's timestamps).
timeutil::TimePoint BenchDay();

/// Builds a deterministic world; aborts on internal errors (benches have no
/// error channel worth plumbing).
std::unique_ptr<World> BuildWorld(const WorldOptions& options);

/// Writes `scene` under bench_out/<name>.svg (creating the directory) and
/// prints the path. Any directory-creation or write failure is returned to
/// the caller so benches exit nonzero instead of silently continuing.
Status ExportScene(const render::DisplayList& scene, const std::string& name);

/// Machine-readable benchmark observability for CI gating. A bench records
/// timed samples (typically one serial and one threaded run of the same
/// workload) plus free-form counters, then writes
/// `bench_out/BENCH_<name>.json`:
///
/// {
///   "schema_version": 1,
///   "name": "<bench name>",
///   "meta": {"git_sha": "<commit>", "threads": n, "shards": k},
///   "samples": [
///     {"label": "...", "wall_seconds": s, "threads": n,
///      "items": i, "items_per_second": i/s}, ...
///   ],
///   "stages": [
///     {"sample": "...", "stage": "scan", "wall_seconds": s,
///      "items": i, "items_per_second": i/s}, ...
///   ],
///   "counters": {"speedup": ..., "deterministic": 1, ...}
/// }
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  /// Records one timed sample; `items` is the workload size (offers,
  /// display items, ...) used to derive the items_per_second rate.
  void AddSample(const std::string& label, double wall_seconds, int threads, double items);

  /// Records one per-stage throughput entry: the wall time and item rate of
  /// one internal stage (scan/filter/fold/merge, ...) of the sample named
  /// `sample`. Stages break a sampled operation down so a regression can be
  /// attributed to the stage that slowed, not just the end-to-end time; the
  /// regression gate reads each entry as stage:<sample>:<stage>:items_per_second.
  void AddStage(const std::string& sample, const std::string& stage, double wall_seconds,
                double items);

  /// Sets a free-form counter (speedup, reduction ratio, ...).
  void SetCounter(const std::string& key, double value);

  /// Writes bench_out/BENCH_<name>.json (creating the directory) and prints
  /// the path.
  Status Write() const;

 private:
  std::string name_;
  JsonValue samples_ = JsonValue::Array();
  JsonValue stages_ = JsonValue::Array();
  JsonValue counters_ = JsonValue::Object();
};

/// Best-of-`repeats` wall time of `fn` in seconds (steady clock).
double MeasureSeconds(const std::function<void()>& fn, int repeats = 3);

/// Reads a positive size_t from environment variable `name`; `fallback`
/// when unset or unparsable. Lets CI shrink report workloads.
size_t EnvSize(const char* name, size_t fallback);

/// Prints the standard header every figure bench starts with.
void PrintHeader(const char* figure, const char* claim);

/// Cheap random flex-offers for micro benches (no atlas/grid/DW involved):
/// valid offers with varied extents, profiles, and flexibilities over a
/// two-day window starting at BenchDay().
std::vector<core::FlexOffer> MakeRandomOffers(uint64_t seed, size_t count);

}  // namespace flexvis::bench

#endif  // FLEXVIS_BENCH_BENCH_COMMON_H_
