// Figure 4 — "Example of the schematic view of flex-offers".
//
// Regenerates the topological grid view: plants as "G" circles, substations
// connected by voltage-weighted lines, and per-load-area pies of accepted /
// assigned / rejected shares. The workload's state mix is calibrated to the
// figure's 31% / 43% / 26% split; the bench prints the achieved shares per
// area so the shape can be compared.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/measures.h"
#include "viz/schematic_view.h"

using namespace flexvis;

int main() {
  bench::PrintHeader("fig4_schematic",
                     "Fig. 4: schematic grid view, pies at 31/43/26 accepted/assigned/rejected");

  bench::WorldOptions options;
  options.num_prosumers = 400;
  options.transmission = 2;
  options.plants = 2;
  options.distribution_per_transmission = 3;  // ~5 load areas as in the figure
  std::unique_ptr<bench::World> world = bench::BuildWorld(options);

  viz::SchematicViewResult view = viz::RenderSchematicView(
      world->workload.offers, world->topology, viz::SchematicViewOptions{});
  Status export_status = bench::ExportScene(*view.scene, "fig4_schematic");
  if (!export_status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", export_status.ToString().c_str());
    return 1;
  }

  core::StateCounts global = core::CountByState(world->workload.offers);
  std::printf("\nglobal state mix (paper: 31%% / 43%% / 26%%):\n");
  std::printf("  accepted %.0f%%  assigned %.0f%%  rejected %.0f%%\n",
              100.0 * global.Fraction(core::FlexOfferState::kAccepted),
              100.0 * global.Fraction(core::FlexOfferState::kAssigned),
              100.0 * global.Fraction(core::FlexOfferState::kRejected));

  std::printf("\nper-load-area pies:\n");
  std::printf("%-8s %9s %9s %9s\n", "area", "accepted", "assigned", "rejected");
  for (size_t i = 0; i < view.pie_nodes.size(); ++i) {
    Result<grid::GridNode> node = world->topology.Find(view.pie_nodes[i]);
    const auto& counts = view.pie_counts[i];
    std::printf("%-8s %9lld %9lld %9lld\n", node.ok() ? node->name.c_str() : "?",
                static_cast<long long>(
                    counts[static_cast<size_t>(core::FlexOfferState::kAccepted)]),
                static_cast<long long>(
                    counts[static_cast<size_t>(core::FlexOfferState::kAssigned)]),
                static_cast<long long>(
                    counts[static_cast<size_t>(core::FlexOfferState::kRejected)]));
  }
  return 0;
}
