#include "bench/bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "render/svg_canvas.h"
#include "sim/coordinator.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/strings.h"

namespace flexvis::bench {

timeutil::TimePoint BenchDay() {
  return timeutil::TimePoint::FromCalendarOrDie(2013, 2, 1, 0, 0);
}

std::unique_ptr<World> BuildWorld(const WorldOptions& options) {
  // Honor FLEXVIS_FAULTS so every bench can report behavior under fault
  // load; a malformed spec is a hard error (silently ignoring it would
  // produce clean-run numbers labeled as fault-run numbers).
  if (Status faults = sim::InstallFaultsFromEnv(options.seed); !faults.ok()) {
    std::fprintf(stderr, "bench world: %s\n", faults.ToString().c_str());
    std::abort();
  }
  auto world = std::make_unique<World>();
  world->atlas = geo::Atlas::MakeDenmark();
  world->topology = grid::GridTopology::MakeRadial(options.transmission, options.plants,
                                                   options.distribution_per_transmission,
                                                   options.feeders_per_distribution);
  if (!world->atlas.RegisterWithDatabase(world->db).ok() ||
      !world->topology.RegisterWithDatabase(world->db).ok()) {
    std::fprintf(stderr, "bench world: dimension registration failed\n");
    std::abort();
  }
  world->horizon = options.horizon;
  if (world->horizon.empty()) {
    world->horizon =
        timeutil::TimeInterval(BenchDay(), BenchDay() + timeutil::kMinutesPerDay);
  }
  sim::WorkloadGenerator generator(&world->atlas, &world->topology);
  sim::WorkloadParams params;
  params.seed = options.seed;
  params.num_prosumers = options.num_prosumers;
  params.offers_per_prosumer = options.offers_per_prosumer;
  params.horizon = world->horizon;
  world->workload = *generator.Generate(params);
  if (!sim::WorkloadGenerator::LoadIntoDatabase(world->workload, world->db).ok()) {
    std::fprintf(stderr, "bench world: workload load failed\n");
    std::abort();
  }
  world->cube = std::make_unique<olap::Cube>(&world->db);
  if (!world->cube->AddStandardDimensions().ok()) {
    std::fprintf(stderr, "bench world: cube construction failed\n");
    std::abort();
  }
  return world;
}

namespace {

Status EnsureBenchOutDir() {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (ec) {
    return InternalError(StrFormat("cannot create bench_out: %s", ec.message().c_str()));
  }
  return OkStatus();
}

/// Commit every report is stamped with, so a BENCH_*.json artifact is
/// traceable to the exact tree it measured: GITHUB_SHA when CI exports it,
/// otherwise `git rev-parse`, otherwise "unknown" (outside a work tree).
std::string GitSha() {
  if (const char* env = std::getenv("GITHUB_SHA"); env != nullptr && *env != '\0') {
    std::string sha(env);
    if (sha.size() > 12) sha.resize(12);
    return sha;
  }
  std::string sha;
  if (std::FILE* pipe = ::popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
    char buffer[64];
    if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) sha = buffer;
    ::pclose(pipe);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) sha.pop_back();
  return sha.empty() ? "unknown" : sha;
}

}  // namespace

Status ExportScene(const render::DisplayList& scene, const std::string& name) {
  FLEXVIS_RETURN_IF_ERROR(EnsureBenchOutDir());
  render::SvgCanvas svg(scene.width(), scene.height());
  scene.ReplayAll(svg);
  std::string path = "bench_out/" + name + ".svg";
  FLEXVIS_RETURN_IF_ERROR(svg.WriteToFile(path));
  std::printf("artifact: %s\n", path.c_str());
  return OkStatus();
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::AddSample(const std::string& label, double wall_seconds, int threads,
                            double items) {
  JsonValue sample = JsonValue::Object();
  sample.Set("label", JsonValue::Str(label));
  sample.Set("wall_seconds", JsonValue::Double(wall_seconds));
  sample.Set("threads", JsonValue::Int(threads));
  sample.Set("items", JsonValue::Double(items));
  sample.Set("items_per_second",
             JsonValue::Double(wall_seconds > 0.0 ? items / wall_seconds : 0.0));
  samples_.Append(std::move(sample));
}

void BenchReport::AddStage(const std::string& sample, const std::string& stage,
                           double wall_seconds, double items) {
  JsonValue entry = JsonValue::Object();
  entry.Set("sample", JsonValue::Str(sample));
  entry.Set("stage", JsonValue::Str(stage));
  entry.Set("wall_seconds", JsonValue::Double(wall_seconds));
  entry.Set("items", JsonValue::Double(items));
  entry.Set("items_per_second",
            JsonValue::Double(wall_seconds > 0.0 ? items / wall_seconds : 0.0));
  stages_.Append(std::move(entry));
}

void BenchReport::SetCounter(const std::string& key, double value) {
  counters_.Set(key, JsonValue::Double(value));
}

Status BenchReport::Write() const {
  FLEXVIS_RETURN_IF_ERROR(EnsureBenchOutDir());
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", JsonValue::Int(1));
  doc.Set("name", JsonValue::Str(name_));
  JsonValue meta = JsonValue::Object();
  meta.Set("git_sha", JsonValue::Str(GitSha()));
  meta.Set("threads", JsonValue::Int(ParallelThreadCount()));
  meta.Set("shards", JsonValue::Int(sim::ShardsFromEnv(1)));
  doc.Set("meta", std::move(meta));
  doc.Set("samples", samples_);
  doc.Set("stages", stages_);
  doc.Set("counters", counters_);
  std::string path = "bench_out/BENCH_" + name_ + ".json";
  std::string body = doc.Pretty();
  body += "\n";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return InternalError(StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return InternalError(StrFormat("short write to '%s'", path.c_str()));
  }
  std::printf("report: %s\n", path.c_str());
  return OkStatus();
}

double MeasureSeconds(const std::function<void()>& fn, int repeats) {
  double best = 0.0;
  for (int i = 0; i < std::max(1, repeats); ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    if (i == 0 || elapsed.count() < best) best = elapsed.count();
  }
  return best;
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || v == 0) return fallback;
  return static_cast<size_t>(v);
}

std::vector<core::FlexOffer> MakeRandomOffers(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<core::FlexOffer> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    core::FlexOffer o;
    o.id = static_cast<core::FlexOfferId>(i + 1);
    o.prosumer = static_cast<core::ProsumerId>(i % 500 + 1);
    o.earliest_start = BenchDay() + rng.UniformInt(0, 191) * timeutil::kMinutesPerSlice;
    o.latest_start =
        o.earliest_start + rng.UniformInt(0, 24) * timeutil::kMinutesPerSlice;
    o.creation_time = o.earliest_start - rng.UniformInt(4, 24) * 60;
    o.acceptance_deadline = o.creation_time + 60;
    o.assignment_deadline = o.creation_time + 120;
    int slices = static_cast<int>(rng.UniformInt(1, 12));
    for (int s = 0; s < slices; ++s) {
      double min = rng.Uniform(0.1, 1.5);
      o.profile.push_back(core::ProfileSlice{1, min, min + rng.Uniform(0.0, 1.5)});
    }
    out.push_back(std::move(o));
  }
  return out;
}

void PrintHeader(const char* figure, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper artifact: %s\n", claim);
  std::printf("==============================================================\n");
}

}  // namespace flexvis::bench
