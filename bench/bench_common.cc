#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "render/svg_canvas.h"
#include "util/rng.h"

namespace flexvis::bench {

timeutil::TimePoint BenchDay() {
  return timeutil::TimePoint::FromCalendarOrDie(2013, 2, 1, 0, 0);
}

std::unique_ptr<World> BuildWorld(const WorldOptions& options) {
  auto world = std::make_unique<World>();
  world->atlas = geo::Atlas::MakeDenmark();
  world->topology = grid::GridTopology::MakeRadial(options.transmission, options.plants,
                                                   options.distribution_per_transmission,
                                                   options.feeders_per_distribution);
  if (!world->atlas.RegisterWithDatabase(world->db).ok() ||
      !world->topology.RegisterWithDatabase(world->db).ok()) {
    std::fprintf(stderr, "bench world: dimension registration failed\n");
    std::abort();
  }
  world->horizon = options.horizon;
  if (world->horizon.empty()) {
    world->horizon =
        timeutil::TimeInterval(BenchDay(), BenchDay() + timeutil::kMinutesPerDay);
  }
  sim::WorkloadGenerator generator(&world->atlas, &world->topology);
  sim::WorkloadParams params;
  params.seed = options.seed;
  params.num_prosumers = options.num_prosumers;
  params.offers_per_prosumer = options.offers_per_prosumer;
  params.horizon = world->horizon;
  world->workload = generator.Generate(params);
  if (!sim::WorkloadGenerator::LoadIntoDatabase(world->workload, world->db).ok()) {
    std::fprintf(stderr, "bench world: workload load failed\n");
    std::abort();
  }
  world->cube = std::make_unique<olap::Cube>(&world->db);
  if (!world->cube->AddStandardDimensions().ok()) {
    std::fprintf(stderr, "bench world: cube construction failed\n");
    std::abort();
  }
  return world;
}

bool ExportScene(const render::DisplayList& scene, const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  render::SvgCanvas svg(scene.width(), scene.height());
  scene.ReplayAll(svg);
  std::string path = "bench_out/" + name + ".svg";
  Status status = svg.WriteToFile(path);
  if (!status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
    return false;
  }
  std::printf("artifact: %s\n", path.c_str());
  return true;
}

std::vector<core::FlexOffer> MakeRandomOffers(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<core::FlexOffer> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    core::FlexOffer o;
    o.id = static_cast<core::FlexOfferId>(i + 1);
    o.prosumer = static_cast<core::ProsumerId>(i % 500 + 1);
    o.earliest_start = BenchDay() + rng.UniformInt(0, 191) * timeutil::kMinutesPerSlice;
    o.latest_start =
        o.earliest_start + rng.UniformInt(0, 24) * timeutil::kMinutesPerSlice;
    o.creation_time = o.earliest_start - rng.UniformInt(4, 24) * 60;
    o.acceptance_deadline = o.creation_time + 60;
    o.assignment_deadline = o.creation_time + 120;
    int slices = static_cast<int>(rng.UniformInt(1, 12));
    for (int s = 0; s < slices; ++s) {
      double min = rng.Uniform(0.1, 1.5);
      o.profile.push_back(core::ProfileSlice{1, min, min + rng.Uniform(0.0, 1.5)});
    }
    out.push_back(std::move(o));
  }
  return out;
}

void PrintHeader(const char* figure, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("paper artifact: %s\n", claim);
  std::printf("==============================================================\n");
}

}  // namespace flexvis::bench
