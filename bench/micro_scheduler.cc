// Ablations of the planning design choices DESIGN.md calls out:
//  - scheduling raw offers vs. scheduling aggregates (the MIRABEL pitch:
//    aggregation makes planning tractable at a bounded flexibility cost);
//  - the greedy order (least-flexible-first vs. largest-energy-first vs.
//    arrival order);
//  - the rejection threshold.
// Counters report plan quality (residual imbalance) next to runtime.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/aggregation.h"
#include "core/local_search.h"
#include "core/scheduler.h"
#include "sim/energy_models.h"

using namespace flexvis;

namespace {

core::TimeSeries MakeTarget() {
  timeutil::TimeInterval window(bench::BenchDay(),
                                bench::BenchDay() + 2 * timeutil::kMinutesPerDay);
  sim::EnergyModelParams params;
  params.wind_mean_kwh = 400.0;
  params.solar_peak_kwh = 200.0;
  params.demand_base_kwh = 150.0;
  return sim::MakeFlexibilityTarget(sim::MakeResProduction(window, params),
                                    sim::MakeInflexibleDemand(window, params));
}

// A contended target sized to the 2000-offer portfolio (surplus comparable
// to the offers' total energy): here placement genuinely matters, which is
// what the order and local-search ablations probe.
core::TimeSeries MakeTightTarget() {
  timeutil::TimeInterval window(bench::BenchDay(),
                                bench::BenchDay() + 2 * timeutil::kMinutesPerDay);
  sim::EnergyModelParams params;
  params.wind_mean_kwh = 60.0;
  params.solar_peak_kwh = 40.0;
  params.demand_base_kwh = 45.0;
  params.noise = 0.25;  // spiky surplus: good and bad slots differ
  return sim::MakeFlexibilityTarget(sim::MakeResProduction(window, params),
                                    sim::MakeInflexibleDemand(window, params));
}

// Ablation: plan raw offers directly.
void BM_ScheduleRaw(benchmark::State& state) {
  std::vector<core::FlexOffer> offers =
      bench::MakeRandomOffers(3, static_cast<size_t>(state.range(0)));
  core::TimeSeries target = MakeTarget();
  core::Scheduler scheduler;
  double after = 0.0, before = 0.0;
  for (auto _ : state) {
    core::ScheduleResult plan = scheduler.Plan(offers, target);
    after = plan.imbalance_after_kwh;
    before = plan.imbalance_before_kwh;
    benchmark::DoNotOptimize(plan);
  }
  state.counters["imbalance_before"] = before;
  state.counters["imbalance_after"] = after;
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScheduleRaw)->Arg(500)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

// The MIRABEL pipeline: aggregate first, schedule the aggregates.
void BM_ScheduleAggregated(benchmark::State& state) {
  std::vector<core::FlexOffer> offers =
      bench::MakeRandomOffers(3, static_cast<size_t>(state.range(0)));
  core::TimeSeries target = MakeTarget();
  core::AggregationParams agg_params;
  agg_params.est_tolerance_minutes = state.range(1);
  agg_params.tft_tolerance_minutes = state.range(1);
  core::Scheduler scheduler;
  double after = 0.0;
  double aggregates = 0.0;
  for (auto _ : state) {
    core::FlexOfferId next_id = 1'000'000;
    core::AggregationResult agg = core::Aggregator(agg_params).Aggregate(offers, &next_id);
    core::ScheduleResult plan = scheduler.Plan(agg.aggregates, target);
    after = plan.imbalance_after_kwh;
    aggregates = static_cast<double>(agg.aggregates.size());
    benchmark::DoNotOptimize(plan);
  }
  state.counters["aggregates"] = aggregates;
  state.counters["imbalance_after"] = after;
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScheduleAggregated)
    ->Args({2000, 60})
    ->Args({2000, 240})
    ->Args({8000, 60})
    ->Args({8000, 240})
    ->Unit(benchmark::kMillisecond);

// Greedy order ablation at fixed size.
void BM_ScheduleOrder(benchmark::State& state) {
  std::vector<core::FlexOffer> offers = bench::MakeRandomOffers(3, 2000);
  core::TimeSeries target = MakeTightTarget();
  core::SchedulerParams params;
  params.order = static_cast<core::SchedulerParams::Order>(state.range(0));
  core::Scheduler scheduler(params);
  double after = 0.0;
  for (auto _ : state) {
    core::ScheduleResult plan = scheduler.Plan(offers, target);
    after = plan.imbalance_after_kwh;
    benchmark::DoNotOptimize(plan);
  }
  state.counters["imbalance_after"] = after;
}
BENCHMARK(BM_ScheduleOrder)
    ->Arg(0)   // kLeastFlexibleFirst
    ->Arg(1)   // kLargestEnergyFirst
    ->Arg(2)   // kArrival
    ->Unit(benchmark::kMillisecond);

// Rejection-threshold sweep: stricter thresholds reject more mandatory load.
void BM_ScheduleRejection(benchmark::State& state) {
  std::vector<core::FlexOffer> offers = bench::MakeRandomOffers(5, 2000);
  core::TimeSeries target = MakeTarget();
  core::SchedulerParams params;
  params.rejection_threshold = static_cast<double>(state.range(0)) / 100.0;
  core::Scheduler scheduler(params);
  double rejected = 0.0, after = 0.0;
  for (auto _ : state) {
    core::ScheduleResult plan = scheduler.Plan(offers, target);
    rejected = plan.rejected;
    after = plan.imbalance_after_kwh;
    benchmark::DoNotOptimize(plan);
  }
  state.counters["rejected"] = rejected;
  state.counters["imbalance_after"] = after;
}
BENCHMARK(BM_ScheduleRejection)->Arg(5)->Arg(50)->Arg(500)->Unit(benchmark::kMillisecond);

// Greedy + local-search refinement: how much residual does the stochastic
// improver (standing in for the cited evolutionary scheduler) claw back per
// unit of extra runtime.
void BM_ScheduleWithLocalSearch(benchmark::State& state) {
  std::vector<core::FlexOffer> offers = bench::MakeRandomOffers(3, 2000);
  core::TimeSeries target = MakeTightTarget();
  core::Scheduler scheduler;
  core::LocalSearchParams ls;
  ls.iterations = static_cast<int>(state.range(0));
  ls.patience = ls.iterations;  // run the full budget for a clean sweep
  core::LocalSearchImprover improver(ls);
  double greedy_imbalance = 0.0, refined_imbalance = 0.0, accepted = 0.0;
  for (auto _ : state) {
    core::ScheduleResult plan = scheduler.Plan(offers, target);
    core::LocalSearchResult refined = improver.Improve(plan.offers, target);
    greedy_imbalance = plan.imbalance_after_kwh;
    refined_imbalance = refined.imbalance_after_kwh;
    accepted = refined.moves_accepted;
    benchmark::DoNotOptimize(refined);
  }
  state.counters["greedy_imbalance"] = greedy_imbalance;
  state.counters["refined_imbalance"] = refined_imbalance;
  state.counters["moves_accepted"] = accepted;
}
BENCHMARK(BM_ScheduleWithLocalSearch)
    ->Arg(0)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
