// Figure 8 — "Basic view of flex-offers".
//
// Regenerates the large-set basic view: thousands of raw and aggregated
// offers stacked into lanes, with a rubber-band selection rectangle, and
// reports the layout statistics (offers, lanes, display items) plus the
// selection result — the figure's "large numbers of flex-offers" claim in
// numbers.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/aggregation.h"
#include "viz/basic_view.h"
#include "viz/interaction.h"

using namespace flexvis;

int main() {
  bench::PrintHeader("fig8_basic_view",
                     "Fig. 8: basic view of a large flex-offer set with selection");

  bench::WorldOptions options;
  options.num_prosumers = 400;
  options.offers_per_prosumer = 5.0;
  options.horizon = timeutil::TimeInterval(
      bench::BenchDay(), bench::BenchDay() + 2 * timeutil::kMinutesPerDay);
  std::unique_ptr<bench::World> world = bench::BuildWorld(options);

  // Mix in some aggregates so both colors appear, as in the figure.
  std::vector<core::FlexOffer> offers = world->workload.offers;
  std::vector<core::FlexOffer> half(offers.begin() + offers.size() / 2, offers.end());
  offers.resize(offers.size() / 2);
  core::AggregationParams agg_params;
  agg_params.est_tolerance_minutes = 120;
  agg_params.tft_tolerance_minutes = 120;
  core::FlexOfferId next_id = 1'000'000;
  core::AggregationResult aggregated =
      core::Aggregator(agg_params).Aggregate(half, &next_id);
  size_t raw_count = offers.size();
  for (core::FlexOffer& a : aggregated.aggregates) offers.push_back(std::move(a));

  viz::BasicViewOptions view_options;
  view_options.frame.width = 1200;
  view_options.frame.height = 700;
  viz::BasicViewResult first_pass = viz::RenderBasicView(offers, view_options);

  // Rubber-band selection over the middle of the plot (the dashed red
  // rectangle of the figure).
  render::Rect band{first_pass.plot.x + first_pass.plot.width * 0.4,
                    first_pass.plot.y + first_pass.plot.height * 0.25,
                    first_pass.plot.width * 0.2, first_pass.plot.height * 0.5};
  std::vector<core::FlexOfferId> selected = viz::SelectByRectangle(*first_pass.scene, band);
  view_options.selection = band;
  viz::BasicViewResult view = viz::RenderBasicView(offers, view_options);
  Status export_status = bench::ExportScene(*view.scene, "fig8_basic_view");
  if (!export_status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", export_status.ToString().c_str());
    return 1;
  }

  std::printf("\noffers shown:        %zu (%zu raw + %zu aggregates)\n", offers.size(),
              raw_count, offers.size() - raw_count);
  std::printf("lanes used:          %d\n", view.layout.lane_count);
  std::printf("display items:       %zu\n", view.scene->size());
  std::printf("rubber-band matched: %zu offers\n", selected.size());
  return 0;
}
