// Figure 6 — "Example of the dashboard view of flex-offers".
//
// Regenerates the summary dashboard for the figure's exact time interval
// (2012-02-01 12:00 to 13:15): the accepted/assigned/rejected pie (31/43/26
// in the paper) and the per-15-minute stacked bars of active offers.

#include <cstdio>

#include "bench/bench_common.h"
#include "viz/dashboard_view.h"

using namespace flexvis;

int main() {
  bench::PrintHeader("fig6_dashboard",
                     "Fig. 6: dashboard for 2012-02-01 12:00..13:15, pie 31/43/26");

  timeutil::TimePoint from = timeutil::TimePoint::FromCalendarOrDie(2012, 2, 1, 12, 0);
  timeutil::TimePoint to = timeutil::TimePoint::FromCalendarOrDie(2012, 2, 1, 13, 15);

  bench::WorldOptions options;
  options.num_prosumers = 300;
  options.offers_per_prosumer = 4.0;
  options.horizon = timeutil::TimeInterval(from - 4 * 60, to + 4 * 60);
  std::unique_ptr<bench::World> world = bench::BuildWorld(options);

  viz::DashboardOptions view_options;
  view_options.window = timeutil::TimeInterval(from, to);
  viz::DashboardResult view = viz::RenderDashboardView(world->workload.offers, view_options);
  Status export_status = bench::ExportScene(*view.scene, "fig6_dashboard");
  if (!export_status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", export_status.ToString().c_str());
    return 1;
  }

  std::printf("\nFrom: %s  To: %s\n", from.ToString().c_str(), to.ToString().c_str());
  std::printf("pie (paper: Accepted 31%%, Assigned 43%%, Rejected 26%%):\n");
  std::printf("  Accepted %.0f%%  Assigned %.0f%%  Rejected %.0f%%\n",
              100.0 * view.counts.Fraction(core::FlexOfferState::kAccepted),
              100.0 * view.counts.Fraction(core::FlexOfferState::kAssigned),
              100.0 * view.counts.Fraction(core::FlexOfferState::kRejected));

  std::printf("\nactive offers per slice (the stacked bars):\n");
  std::printf("%-6s %9s %9s %9s\n", "slice", "accepted", "assigned", "rejected");
  for (size_t i = 0; i < view.accepted_per_slice.size(); ++i) {
    timeutil::TimePoint t = from + static_cast<int64_t>(i) * timeutil::kMinutesPerSlice;
    std::printf("%-6s %9.0f %9.0f %9.0f\n", t.TimeOfDayString().c_str(),
                view.accepted_per_slice.AtIndex(static_cast<int64_t>(i)),
                view.assigned_per_slice.AtIndex(static_cast<int64_t>(i)),
                view.rejected_per_slice.AtIndex(static_cast<int64_t>(i)));
  }
  return 0;
}
