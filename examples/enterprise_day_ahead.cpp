// The MIRABEL enterprise planning loop of Section 2, end to end: generate a
// prosumer population, collect their flex-offers into the data warehouse,
// forecast demand with both forecasters, run the day-ahead plan (aggregate ->
// schedule -> disaggregate -> write back), simulate the physical realization,
// and settle on the spot market — printing the numbers an operator would
// watch and writing the Fig. 1 before/after chart.
//
// Build & run:  ./build/examples/enterprise_day_ahead

#include <cstdio>

#include "render/svg_canvas.h"
#include "sim/enterprise.h"
#include "sim/forecaster.h"
#include "sim/workload.h"
#include "viz/balancing_view.h"

using namespace flexvis;
using timeutil::kMinutesPerDay;
using timeutil::TimeInterval;
using timeutil::TimePoint;

int main() {
  // ---- World: geography, grid, prosumers, flex-offers ----------------------
  geo::Atlas atlas = geo::Atlas::MakeDenmark();
  grid::GridTopology topology = grid::GridTopology::MakeRadial(3, 2, 3, 4);
  dw::Database db;
  if (!atlas.RegisterWithDatabase(db).ok() || !topology.RegisterWithDatabase(db).ok()) {
    return 1;
  }

  TimePoint day_start = TimePoint::FromCalendarOrDie(2013, 3, 18, 0, 0);
  TimeInterval day(day_start, day_start + kMinutesPerDay);

  sim::WorkloadGenerator generator(&atlas, &topology);
  sim::WorkloadParams wparams;
  wparams.seed = 20130318;
  wparams.num_prosumers = 250;
  wparams.offers_per_prosumer = 4.0;
  wparams.horizon = day;
  sim::Workload workload = *generator.Generate(wparams);
  if (!sim::WorkloadGenerator::LoadIntoDatabase(workload, db).ok()) return 1;
  std::printf("collected %zu flex-offers from %zu prosumers\n", workload.offers.size(),
              workload.prosumers.size());

  // ---- Forecast the inflexible demand (compare both forecasters) -----------
  // History: two weeks of synthetic demand before the planning day.
  sim::EnergyModelParams emodel;
  TimeInterval history_window(day_start - 14 * kMinutesPerDay, day_start);
  core::TimeSeries history = sim::MakeInflexibleDemand(history_window, emodel);
  core::TimeSeries actual = sim::MakeInflexibleDemand(day, emodel);

  sim::SeasonalNaiveForecaster naive;
  sim::HoltWintersForecaster holt_winters;
  for (const sim::Forecaster* f :
       std::initializer_list<const sim::Forecaster*>{&naive, &holt_winters}) {
    core::TimeSeries forecast = f->Forecast(history, 96);
    sim::ForecastError err = sim::EvaluateForecast(forecast, actual);
    std::printf("forecaster %-16s MAE %.2f kWh  RMSE %.2f kWh  MAPE %.1f%%\n",
                f->name().c_str(), err.mae, err.rmse, err.mape * 100.0);
  }

  // ---- Day-ahead planning ----------------------------------------------------
  sim::EnterpriseParams params;
  params.aggregation.est_tolerance_minutes = 120;
  params.aggregation.tft_tolerance_minutes = 120;
  params.execution_noise = 0.06;
  params.non_compliance = 0.03;
  sim::Enterprise enterprise(params);
  Result<sim::PlanningReport> planned = enterprise.RunDayAhead(db, day);
  if (!planned.ok()) {
    std::fprintf(stderr, "planning failed: %s\n", planned.status().ToString().c_str());
    return 1;
  }
  const sim::PlanningReport& report = *planned;

  std::printf("\n--- day-ahead plan for %s ---\n", day_start.ToString().c_str());
  std::printf("offers in                 %d\n", report.offers_in);
  std::printf("aggregates built          %d (assigned %d, rejected %d)\n",
              report.aggregates_built, report.aggregates_assigned,
              report.aggregates_rejected);
  std::printf("RES production            %.0f kWh\n", report.res_production.Total());
  std::printf("inflexible demand         %.0f kWh\n", report.inflexible_demand.Total());
  std::printf("flexible energy planned   %.0f kWh\n", report.planned_flexible_load.Total());
  std::printf("surplus imbalance         %.0f -> %.0f kWh\n", report.imbalance_before_kwh,
              report.imbalance_after_kwh);

  // ---- Physical realization and settlement ------------------------------------
  std::printf("\n--- realization & settlement ---\n");
  std::printf("realized flexible load    %.0f kWh\n", report.realized_flexible_load.Total());
  std::printf("plan deviation            %.0f kWh (worst slice %.1f kWh)\n",
              report.deviation.AbsTotal(),
              [&] {
                double worst = 0.0;
                for (double v : report.deviation.values()) worst = std::max(worst, std::abs(v));
                return worst;
              }());
  std::printf("spot trade cost           %.2f EUR\n", report.settlement.spot_cost_eur);
  std::printf("imbalance energy          %.0f kWh\n", report.settlement.imbalance_kwh);
  std::printf("imbalance fee             %.2f EUR\n", report.settlement.imbalance_cost_eur);
  std::printf("total cost                %.2f EUR\n", report.settlement.total_cost_eur);

  // ---- Fig. 1 chart --------------------------------------------------------------
  viz::BalancingViewResult view = viz::RenderBalancingView(report, viz::BalancingViewOptions{});
  render::SvgCanvas svg(view.scene->width(), view.scene->height());
  view.scene->ReplayAll(svg);
  if (svg.WriteToFile("enterprise_balancing.svg").ok()) {
    std::printf("\nwrote enterprise_balancing.svg (imbalance %.0f -> %.0f kWh)\n",
                view.imbalance_before_kwh, view.imbalance_after_kwh);
  }
  return 0;
}
