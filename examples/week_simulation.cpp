// A week of MIRABEL enterprise operation: for each of seven consecutive
// days, generate the day's flex-offers, run the day-ahead loop (once planning
// on the actual demand curve, once on a Holt-Winters forecast), settle, and
// scan for alerts — then print the week ledger an operator would review.
//
// Build & run:  ./build/examples/week_simulation

#include <cstdio>

#include "sim/alerts.h"
#include "sim/enterprise.h"
#include "sim/workload.h"

using namespace flexvis;
using timeutil::kMinutesPerDay;
using timeutil::TimeInterval;
using timeutil::TimePoint;

int main() {
  geo::Atlas atlas = geo::Atlas::MakeDenmark();
  grid::GridTopology topology = grid::GridTopology::MakeRadial(3, 2, 2, 4);
  sim::WorkloadGenerator generator(&atlas, &topology);

  TimePoint monday = TimePoint::FromCalendarOrDie(2013, 3, 18, 0, 0);
  const char* day_names[] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};

  struct ModeTotals {
    double imbalance_kwh = 0.0;
    double deviation_kwh = 0.0;
    double cost_eur = 0.0;
    int alerts = 0;
  };
  ModeTotals actual_mode, forecast_mode;

  std::printf("day   mode      offers  aggr  imbalance[kWh]  deviation[kWh]  cost[EUR]  alerts\n");
  for (int day = 0; day < 7; ++day) {
    TimeInterval window(monday + day * kMinutesPerDay, monday + (day + 1) * kMinutesPerDay);

    // The day's flex-offer intake (weekends are quieter).
    sim::WorkloadParams wparams;
    wparams.seed = 9000 + static_cast<uint64_t>(day);
    wparams.num_prosumers = day >= 5 ? 120 : 200;
    wparams.offers_per_prosumer = day >= 5 ? 3.0 : 4.5;
    wparams.horizon = window;
    sim::Workload workload = *generator.Generate(wparams);

    for (bool use_forecast : {false, true}) {
      sim::EnterpriseParams params;
      params.plan_on_forecast = use_forecast;
      params.local_search_iterations = 1000;
      params.seed = 5000 + static_cast<uint64_t>(day);
      sim::Enterprise enterprise(params);
      Result<sim::PlanningReport> report = enterprise.PlanHorizon(workload.offers, window);
      if (!report.ok()) {
        std::fprintf(stderr, "day %d failed: %s\n", day,
                     report.status().ToString().c_str());
        return 1;
      }
      sim::AlertParams aparams;
      aparams.shortage_threshold_kwh = 60.0;
      aparams.overcapacity_threshold_kwh = 60.0;
      aparams.deviation_threshold_kwh = 20.0;
      std::vector<sim::Alert> alerts = sim::AlertEngine(aparams).Scan(*report);

      std::printf("%s   %-9s %6d  %4d  %14.0f  %14.0f  %9.2f  %6zu\n", day_names[day],
                  use_forecast ? "forecast" : "actual", report->offers_in,
                  report->aggregates_built, report->imbalance_after_kwh,
                  report->deviation.AbsTotal(), report->settlement.total_cost_eur,
                  alerts.size());

      ModeTotals& totals = use_forecast ? forecast_mode : actual_mode;
      totals.imbalance_kwh += report->imbalance_after_kwh;
      totals.deviation_kwh += report->deviation.AbsTotal();
      totals.cost_eur += report->settlement.total_cost_eur;
      totals.alerts += static_cast<int>(alerts.size());
    }
  }

  std::printf("\nweek totals:\n");
  std::printf("  planning on actual demand:   imbalance %.0f kWh, cost %.2f EUR, %d alerts\n",
              actual_mode.imbalance_kwh, actual_mode.cost_eur, actual_mode.alerts);
  std::printf("  planning on forecast demand: imbalance %.0f kWh, cost %.2f EUR, %d alerts\n",
              forecast_mode.imbalance_kwh, forecast_mode.cost_eur, forecast_mode.alerts);
  std::printf("  forecast premium:            %.2f EUR (%.1f%% of the week's cost)\n",
              forecast_mode.cost_eur - actual_mode.cost_eur,
              actual_mode.cost_eur != 0.0
                  ? 100.0 * (forecast_mode.cost_eur - actual_mode.cost_eur) /
                        std::abs(actual_mode.cost_eur)
                  : 0.0);
  return 0;
}
