// OLAP exploration of flex-offer data (Section 3's pivot requirements): build
// the cube over a loaded warehouse, drill down the prosumer hierarchy, slice
// by geography and state, bucket by time, and run MDX queries like the
// pivot view's query window would — printing every pivot as text.
//
// Build & run:  ./build/examples/olap_exploration

#include <cstdio>

#include "olap/cube.h"
#include "olap/mdx.h"
#include "sim/workload.h"

using namespace flexvis;
using timeutil::TimeInterval;
using timeutil::TimePoint;

namespace {

void Show(const char* heading, const Result<olap::PivotResult>& pivot) {
  std::printf("\n=== %s ===\n", heading);
  if (!pivot.ok()) {
    std::printf("error: %s\n", pivot.status().ToString().c_str());
    return;
  }
  std::printf("%s", pivot->ToText().c_str());
}

}  // namespace

int main() {
  // World + workload.
  geo::Atlas atlas = geo::Atlas::MakeDenmark();
  grid::GridTopology topology = grid::GridTopology::MakeRadial(3, 2, 2, 4);
  dw::Database db;
  if (!atlas.RegisterWithDatabase(db).ok() || !topology.RegisterWithDatabase(db).ok()) return 1;

  TimePoint jan = TimePoint::FromCalendarOrDie(2013, 1, 1, 0, 0);
  TimePoint mar = TimePoint::FromCalendarOrDie(2013, 3, 1, 0, 0);
  sim::WorkloadGenerator generator(&atlas, &topology);
  sim::WorkloadParams params;
  params.seed = 1;
  params.num_prosumers = 400;
  params.offers_per_prosumer = 6.0;
  params.horizon = TimeInterval(jan, mar);
  sim::Workload workload = *generator.Generate(params);
  if (!sim::WorkloadGenerator::LoadIntoDatabase(workload, db).ok()) return 1;
  std::printf("warehouse: %zu flex-offers, Jan-Feb 2013\n", db.NumFlexOffers());

  olap::Cube cube(&db);
  if (!cube.AddStandardDimensions().ok()) return 1;

  // 1. Drill down the prosumer hierarchy (Fig. 5's navigation): roll-up at
  //    the Role level, then drill to Type.
  olap::CubeQuery roles;
  roles.axes = {olap::AxisSpec{"Prosumer", "Role", {}}};
  Show("flex-offer count by prosumer role (drill level 1)", cube.Evaluate(roles));

  olap::CubeQuery types;
  types.axes = {olap::AxisSpec{"Prosumer", "Type", {}}};
  types.measure = olap::Measure::kSumMaxEnergy;
  Show("max energy (kWh) by prosumer type (drill level 2)", cube.Evaluate(types));

  // 2. The Section 3 example: counts of accepted offers in West Denmark,
  //    Jan-Feb 2013, grouped by city and energy type.
  olap::CubeQuery section3;
  section3.axes = {olap::AxisSpec{"Geography", "City", {}},
                   olap::AxisSpec{"EnergyType", "Type", {}}};
  section3.slicers = {{"State", "Accepted"}, {"Geography", "West Denmark"}};
  section3.window = TimeInterval(jan, mar);
  Show("accepted offers, West Denmark, by city x energy type", cube.Evaluate(section3));

  // 3. Time on an axis: offers per week with the balancing-potential measure.
  olap::CubeQuery weekly;
  weekly.axes = {olap::AxisSpec{"Time", "", {}}, olap::AxisSpec{"State", "", {}}};
  weekly.window = TimeInterval(jan, mar);
  weekly.time_granularity = timeutil::Granularity::kWeek;
  Show("count per ISO week x state", cube.Evaluate(weekly));

  olap::CubeQuery potential;
  potential.axes = {olap::AxisSpec{"Appliance", "", {}}};
  potential.measure = olap::Measure::kBalancingPotential;
  Show("balancing potential by appliance type", cube.Evaluate(potential));

  // 4. The same analyses through the MDX surface.
  const char* queries[] = {
      "SELECT { Measures.Count } ON COLUMNS, { Geography.Region.Members } ON ROWS "
      "FROM [FlexOffers]",
      "SELECT { EnergyType.Class.Members } ON COLUMNS, { Prosumer.Role.Members } ON ROWS "
      "FROM [FlexOffers] WHERE ( State.[Assigned] )",
      "SELECT { Measures.AvgTimeFlexibility } ON COLUMNS, { Appliance.Members } ON ROWS "
      "FROM [FlexOffers]",
      "SELECT { Time.month.Members } ON ROWS FROM [FlexOffers] "
      "WHERE ( Time.[2013-01-01 : 2013-03-01] )",
  };
  for (const char* mdx : queries) {
    Result<olap::CubeQuery> parsed = olap::ParseMdx(mdx, cube);
    if (!parsed.ok()) {
      std::printf("\nMDX> %s\nparse error: %s\n", mdx, parsed.status().ToString().c_str());
      continue;
    }
    std::printf("\nMDX> %s", mdx);
    Show("result", cube.Evaluate(*parsed));
  }
  return 0;
}
