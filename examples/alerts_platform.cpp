// The paper's future-work "integrated energy planning and control platform
// offering high level qualitative information such as alerts about expected
// shortages or over-capacities and an option to drill down data to find out
// a reason behind this" — demonstrated end to end: plan a day, scan the plan
// for alerts, drill each alert down to the contributing flex-offers, and
// render the worst alert's offers in a basic view for inspection.
//
// Build & run:  ./build/examples/alerts_platform

#include <cstdio>

#include "render/svg_canvas.h"
#include "sim/alerts.h"
#include "sim/workload.h"
#include "viz/basic_view.h"

using namespace flexvis;
using timeutil::TimeInterval;
using timeutil::TimePoint;

int main() {
  // World and day-ahead plan.
  geo::Atlas atlas = geo::Atlas::MakeDenmark();
  grid::GridTopology topology = grid::GridTopology::MakeRadial(2, 2, 3, 4);
  dw::Database db;
  if (!atlas.RegisterWithDatabase(db).ok() || !topology.RegisterWithDatabase(db).ok()) return 1;

  TimePoint day = TimePoint::FromCalendarOrDie(2013, 3, 18, 0, 0);
  TimeInterval window(day, day + timeutil::kMinutesPerDay);
  sim::WorkloadGenerator generator(&atlas, &topology);
  sim::WorkloadParams wparams;
  wparams.seed = 404;
  wparams.num_prosumers = 200;
  wparams.offers_per_prosumer = 4.0;
  wparams.horizon = window;
  sim::Workload workload = *generator.Generate(wparams);
  if (!sim::WorkloadGenerator::LoadIntoDatabase(workload, db).ok()) return 1;

  sim::EnterpriseParams eparams;
  eparams.execution_noise = 0.08;
  eparams.non_compliance = 0.05;
  sim::Enterprise enterprise(eparams);
  Result<sim::PlanningReport> report = enterprise.RunDayAhead(db, window);
  if (!report.ok()) {
    std::fprintf(stderr, "planning failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("planned %d offers for %s\n", report->offers_in, day.ToString().c_str());

  // Scan the plan for operational alerts.
  sim::AlertParams aparams;
  aparams.shortage_threshold_kwh = 40.0;
  aparams.overcapacity_threshold_kwh = 40.0;
  aparams.deviation_threshold_kwh = 10.0;
  aparams.min_consecutive_slices = 2;
  sim::AlertEngine engine(aparams);
  std::vector<sim::Alert> alerts = engine.Scan(*report);
  std::printf("\n%zu alert(s) raised:\n", alerts.size());
  for (const sim::Alert& alert : alerts) {
    std::printf("  [%-14s] severity %.2f  %s\n",
                std::string(sim::AlertKindName(alert.kind)).c_str(), alert.severity,
                alert.message.c_str());
  }
  if (alerts.empty()) {
    std::printf("grid is balanced within thresholds - nothing to drill into\n");
    return 0;
  }

  // Pick the most severe alert and drill down.
  const sim::Alert* worst = &alerts[0];
  for (const sim::Alert& a : alerts) {
    if (a.severity > worst->severity) worst = &a;
  }
  Result<sim::AlertDrillDown> drill = sim::DrillDownAlert(*worst, db, 8);
  if (!drill.ok()) {
    std::fprintf(stderr, "drill-down failed: %s\n", drill.status().ToString().c_str());
    return 1;
  }
  std::printf("\ndrilling into the most severe alert (%s):\n", worst->message.c_str());
  std::printf("  flex-offers active in the interval: %zu\n", drill->offers.size());
  std::printf("  state mix: accepted %lld, assigned %lld, rejected %lld\n",
              static_cast<long long>(drill->states[core::FlexOfferState::kAccepted]),
              static_cast<long long>(drill->states[core::FlexOfferState::kAssigned]),
              static_cast<long long>(drill->states[core::FlexOfferState::kRejected]));
  std::printf("  remaining balancing potential: %.3f\n", drill->potential.potential);
  std::printf("  top contributors:\n");
  for (core::FlexOfferId id : drill->top_contributors) {
    for (const core::FlexOffer& o : drill->offers) {
      if (o.id == id) {
        std::printf("    %s\n", core::Describe(o).c_str());
        break;
      }
    }
  }

  // "drill down to the level of individual flex-offers": render them.
  std::vector<core::FlexOffer> to_show;
  for (core::FlexOfferId id : drill->top_contributors) {
    for (const core::FlexOffer& o : drill->offers) {
      if (o.id == id) to_show.push_back(o);
    }
  }
  viz::BasicViewOptions view_options;
  view_options.frame.title = "Alert drill-down: top contributing flex-offers";
  viz::BasicViewResult view = viz::RenderBasicView(to_show, view_options);
  render::SvgCanvas svg(view.scene->width(), view.scene->height());
  view.scene->ReplayAll(svg);
  if (svg.WriteToFile("alert_drilldown.svg").ok()) {
    std::printf("\nwrote alert_drilldown.svg\n");
  }
  return 0;
}
