// A tour of the visual flex-offer analysis framework: the loading tab flow
// of Fig. 7, the basic/profile views with interactive selection and hover
// (Figs. 8-10), the aggregation tool of Fig. 11, and the map / schematic /
// dashboard views of Figs. 3, 4 and 6 — all headless, exporting SVGs into
// ./visual_analysis_out/.
//
// Build & run:  ./build/examples/visual_analysis

#include <cstdio>
#include <filesystem>

#include "render/svg_canvas.h"
#include "sim/workload.h"
#include "viz/dashboard_view.h"
#include "viz/interaction.h"
#include "viz/map_view.h"
#include "viz/pivot_offers_view.h"
#include "viz/schematic_view.h"
#include "viz/session.h"

using namespace flexvis;
using timeutil::TimeInterval;
using timeutil::TimePoint;

namespace {

bool ExportSvg(const render::DisplayList& scene, const std::filesystem::path& path) {
  render::SvgCanvas svg(scene.width(), scene.height());
  scene.ReplayAll(svg);
  Status status = svg.WriteToFile(path.string());
  if (status.ok()) std::printf("wrote %s\n", path.string().c_str());
  return status.ok();
}

}  // namespace

int main() {
  std::filesystem::path out = "visual_analysis_out";
  std::filesystem::create_directories(out);

  // ---- World -----------------------------------------------------------------
  geo::Atlas atlas = geo::Atlas::MakeDenmark();
  grid::GridTopology topology = grid::GridTopology::MakeRadial(2, 2, 2, 4);
  dw::Database db;
  if (!atlas.RegisterWithDatabase(db).ok() || !topology.RegisterWithDatabase(db).ok()) return 1;

  TimePoint t0 = TimePoint::FromCalendarOrDie(2013, 2, 1, 0, 0);
  sim::WorkloadGenerator generator(&atlas, &topology);
  sim::WorkloadParams params;
  params.seed = 31;
  params.num_prosumers = 150;
  params.offers_per_prosumer = 5.0;
  params.horizon = TimeInterval(t0, t0 + timeutil::kMinutesPerDay);
  sim::Workload workload = *generator.Generate(params);
  if (!sim::WorkloadGenerator::LoadIntoDatabase(workload, db).ok()) return 1;

  // ---- Fig. 7: the loading tab — pick a legal entity and a time interval ------
  viz::Session session(&db);
  std::printf("loading tab offers %zu legal entities; loading the first one...\n",
              session.LegalEntities().size());
  dw::FlexOfferFilter one_entity;
  one_entity.prosumer = session.LegalEntities().front().id;
  one_entity.window = params.horizon;
  Result<size_t> entity_tab = session.LoadTab(one_entity);
  if (!entity_tab.ok()) return 1;
  std::printf("tab '%s': %zu offers\n", session.tab(*entity_tab)->title().c_str(),
              session.tab(*entity_tab)->offers().size());

  // A second tab with everything (the tab strip of Fig. 8).
  Result<size_t> all_tab = session.LoadTab(dw::FlexOfferFilter{}, "All offers");
  if (!all_tab.ok()) return 1;
  viz::ViewTab* tab = session.tab(*all_tab);

  // ---- Fig. 8: basic view with a rubber-band selection --------------------------
  viz::BasicViewOptions basic_options;
  viz::BasicViewResult basic = tab->RenderBasic(basic_options);
  render::Rect band{basic.plot.x + basic.plot.width * 0.35, basic.plot.y + 40,
                    basic.plot.width * 0.25, basic.plot.height * 0.5};
  std::vector<core::FlexOfferId> selected = viz::SelectByRectangle(*basic.scene, band);
  std::printf("rubber-band selected %zu offers\n", selected.size());
  tab->set_selection(selected);
  basic_options.selection = band;  // draw the dashed rectangle
  basic = tab->RenderBasic(basic_options);
  if (!ExportSvg(*basic.scene, out / "fig8_basic_view.svg")) return 1;

  // "The selected flex-offers can be shown on different tab".
  Result<size_t> selection_tab = session.OpenSelectionAsTab(*all_tab);
  if (selection_tab.ok()) {
    viz::ProfileViewResult profile =
        session.tab(*selection_tab)->RenderProfile(viz::ProfileViewOptions{});
    if (!ExportSvg(*profile.scene, out / "fig9_profile_view.svg")) return 1;
  }

  // ---- Fig. 11: the aggregation tool with parameter tuning ------------------------
  for (int64_t tolerance : {60, 240, 480}) {
    core::AggregationParams agg_params;
    agg_params.est_tolerance_minutes = tolerance;
    agg_params.tft_tolerance_minutes = tolerance;
    Result<size_t> agg_tab = session.AggregateTab(*all_tab, agg_params);
    if (!agg_tab.ok()) return 1;
    std::printf("aggregation tolerance %4lld min: %zu -> %zu offers on screen\n",
                static_cast<long long>(tolerance), tab->offers().size(),
                session.tab(*agg_tab)->offers().size());
  }
  // Render the last aggregated tab; aggregates show in light red.
  viz::BasicViewResult aggregated_view =
      session.tab(session.tabs().size() - 1)->RenderBasic(viz::BasicViewOptions{});
  if (!ExportSvg(*aggregated_view.scene, out / "fig11_aggregated_view.svg")) return 1;

  // ---- Fig. 10: hover an aggregate to see details and provenance -------------------
  const std::vector<core::FlexOffer>& agg_offers =
      session.tab(session.tabs().size() - 1)->offers();
  for (const core::FlexOffer& offer : agg_offers) {
    if (!offer.is_aggregate() || offer.aggregated_from.size() < 2) continue;
    // Point at its box via the scene tags.
    for (const render::DisplayItem& item : aggregated_view.scene->items()) {
      if (item.tag != offer.id) continue;
      render::Rect b = item.Bounds();
      viz::HoverInfo info =
          viz::HoverAt(*aggregated_view.scene, agg_offers,
                       render::Point{b.x + b.width / 2, b.y + b.height / 2});
      if (info.hit) {
        std::printf("hover: %s\n", info.description.c_str());
        render::DisplayList overlay(aggregated_view.scene->width(),
                                    aggregated_view.scene->height());
        aggregated_view.scene->ReplayAll(overlay);
        viz::DrawHoverOverlay(overlay, info, agg_offers, *aggregated_view.scene,
                              aggregated_view.time_scale, aggregated_view.plot);
        if (!ExportSvg(overlay, out / "fig10_hover.svg")) return 1;
      }
      break;
    }
    break;
  }

  // ---- Figs. 3, 4, 6: map, schematic, dashboard --------------------------------------
  viz::MapViewResult map = viz::RenderMapView(workload.offers, atlas, viz::MapViewOptions{});
  if (!ExportSvg(*map.scene, out / "fig3_map_view.svg")) return 1;
  viz::SchematicViewResult schematic =
      viz::RenderSchematicView(workload.offers, topology, viz::SchematicViewOptions{});
  if (!ExportSvg(*schematic.scene, out / "fig4_schematic_view.svg")) return 1;
  viz::DashboardResult dashboard =
      viz::RenderDashboardView(workload.offers, viz::DashboardOptions{});
  if (!ExportSvg(*dashboard.scene, out / "fig6_dashboard_view.svg")) return 1;

  // ---- The paper's announced pivot integration: basic views on swimlanes -------
  olap::Dimension prosumer_dim = olap::MakeProsumerTypeDimension();
  viz::PivotOffersViewOptions pivot_offers_options;
  pivot_offers_options.level = 2;  // prosumer types
  pivot_offers_options.aggregation.est_tolerance_minutes = 120;
  pivot_offers_options.aggregation.tft_tolerance_minutes = 120;
  viz::PivotOffersViewResult pivot_offers =
      viz::RenderPivotOffersView(workload.offers, prosumer_dim, pivot_offers_options);
  if (!ExportSvg(*pivot_offers.scene, out / "fig5ext_pivot_offers.svg")) return 1;
  for (const viz::PivotOffersLane& lane : pivot_offers.lanes) {
    std::printf("pivot-offers lane %-16s %4zu offers -> %3zu shown in %d sub-lanes\n",
                lane.label.c_str(), lane.raw_count, lane.shown_count, lane.sub_lanes);
  }

  std::printf("done; %zu tabs open at exit\n", session.tabs().size());
  return 0;
}
