// Quickstart: create flex-offers by hand, aggregate them, schedule the
// aggregate against a balancing target, disaggregate the schedule back to
// the individual offers, and render the result as SVG — the smallest
// end-to-end tour of the library's core concepts.
//
// Build & run:  ./build/examples/quickstart   (writes quickstart_*.svg)

#include <cstdio>

#include "core/aggregation.h"
#include "core/scheduler.h"
#include "render/svg_canvas.h"
#include "viz/basic_view.h"
#include "viz/profile_view.h"

using namespace flexvis;
using core::FlexOffer;
using core::ProfileSlice;
using timeutil::kMinutesPerSlice;
using timeutil::TimePoint;

namespace {

// A household EV that wants 4 x 15 min of charging, 1.8-2.2 kWh per slice,
// starting anywhere between 01:00 and 05:00.
FlexOffer MakeEvOffer(core::FlexOfferId id, int hour_offset) {
  FlexOffer offer;
  offer.id = id;
  offer.prosumer = id;
  offer.appliance_type = core::ApplianceType::kElectricVehicle;
  offer.earliest_start = TimePoint::FromCalendarOrDie(2013, 3, 18, 1 + hour_offset, 0);
  offer.latest_start = offer.earliest_start + 4 * 60;
  offer.creation_time = offer.earliest_start - 6 * 60;
  offer.acceptance_deadline = offer.creation_time + 60;
  offer.assignment_deadline = offer.creation_time + 120;
  offer.profile = {ProfileSlice{4, 1.8, 2.2}};
  return offer;
}

}  // namespace

int main() {
  // 1. Create and validate flex-offers.
  std::vector<FlexOffer> offers;
  for (int i = 0; i < 6; ++i) offers.push_back(MakeEvOffer(i + 1, i % 3));
  for (const FlexOffer& offer : offers) {
    Status status = core::Validate(offer);
    if (!status.ok()) {
      std::fprintf(stderr, "invalid offer: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("%s\n", core::Describe(offer).c_str());
  }

  // 2. Aggregate them (grid-based start alignment, 60-minute tolerances).
  core::AggregationParams params;
  params.est_tolerance_minutes = 60;
  params.tft_tolerance_minutes = 60;
  core::FlexOfferId next_id = 100;
  core::AggregationResult aggregated = core::Aggregator(params).Aggregate(offers, &next_id);
  std::printf("\naggregated %zu offers into %zu aggregate(s)\n", offers.size(),
              aggregated.aggregates.size());

  // 3. Schedule the aggregates against a synthetic wind-surplus target:
  //    plenty of cheap energy between 02:00 and 05:00.
  TimePoint t0 = TimePoint::FromCalendarOrDie(2013, 3, 18, 0, 0);
  core::TimeSeries target(t0, std::vector<double>(96, 0.0));
  for (int slice = 8; slice < 20; ++slice) target.Set(slice, 16.0);  // 02:00-05:00
  core::ScheduleResult plan = core::Scheduler().Plan(aggregated.aggregates, target);
  std::printf("imbalance before %.1f kWh, after %.1f kWh\n", plan.imbalance_before_kwh,
              plan.imbalance_after_kwh);

  // 4. Disaggregate each scheduled aggregate back onto its members.
  std::vector<FlexOffer> scheduled_members;
  for (const FlexOffer& aggregate : plan.offers) {
    if (!aggregate.schedule.has_value()) continue;
    std::vector<FlexOffer> members;
    for (core::FlexOfferId id : aggregate.aggregated_from) {
      for (const FlexOffer& o : offers) {
        if (o.id == id) members.push_back(o);
      }
    }
    Result<std::vector<FlexOffer>> result = core::Disaggregate(aggregate, members);
    if (!result.ok()) {
      std::fprintf(stderr, "disaggregation failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    for (FlexOffer& m : *result) scheduled_members.push_back(std::move(m));
  }
  std::printf("disaggregated into %zu member schedules\n", scheduled_members.size());
  for (const FlexOffer& m : scheduled_members) {
    std::printf("  offer %lld starts %s, %.2f kWh\n", static_cast<long long>(m.id),
                m.schedule->start.ToString().c_str(), m.total_scheduled_energy_kwh());
  }

  // 5. Render basic and profile views to SVG.
  auto export_svg = [](const render::DisplayList& scene, const char* path) {
    render::SvgCanvas svg(scene.width(), scene.height());
    scene.ReplayAll(svg);
    Status status = svg.WriteToFile(path);
    if (status.ok()) std::printf("wrote %s\n", path);
    return status.ok() ? 0 : 1;
  };
  viz::BasicViewResult basic = viz::RenderBasicView(scheduled_members, viz::BasicViewOptions{});
  viz::ProfileViewResult profile =
      viz::RenderProfileView(scheduled_members, viz::ProfileViewOptions{});
  int rc = export_svg(*basic.scene, "quickstart_basic.svg");
  rc |= export_svg(*profile.scene, "quickstart_profile.svg");
  return rc;
}
